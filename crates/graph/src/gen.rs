//! Internet-shaped graph generators: scale-free, small-world, and
//! hierarchical ISP topologies.
//!
//! The structured families in [`crate::generators`] (grids, cycles,
//! hypercubes) stress tiebreaking with *symmetry*; the random families
//! there (`G(n,p)`, `G(n,m)`) stress it with *volume*. Neither looks like
//! the networks the paper's MPLS deployment story runs on. This module
//! adds the three standard "Internet-shaped" models the scaling benches
//! and the CSR differential suite exercise:
//!
//! * [`preferential_attachment`] — Barabási–Albert scale-free growth:
//!   heavy-tailed degrees, a few hub routers touching a large fraction of
//!   all edges (the worst case for source-incident faults);
//! * [`watts_strogatz`] — a ring lattice with random rewiring: high
//!   clustering plus a few long-range shortcuts, the small-world regime
//!   where shortest paths funnel through rewired edges;
//! * [`isp_hierarchy`] — a two-level core/edge topology: a dense,
//!   well-connected core of backbone routers with dual-homed access
//!   routers hanging off it — the shape of a real ISP, where faults on
//!   access links are local and faults in the core reroute traffic at
//!   scale.
//!
//! All three are seeded and deterministic (same arguments ⇒ the same
//! [`Graph`], byte for byte), with exact edge-count accounting so scaling
//! experiments can state `m` up front.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::gen;
//!
//! let g = gen::preferential_attachment(200, 3, 42);
//! assert_eq!(g.n(), 200);
//! assert_eq!(g.m(), (200 - 3) * 3); // exact: star seed + 3 per arrival
//!
//! let ws = gen::watts_strogatz(100, 4, 0.1, 42);
//! assert_eq!(ws.m(), 100 * 4 / 2); // rewiring preserves the edge count
//!
//! let isp = gen::isp_hierarchy(20, 80, 42);
//! assert_eq!(isp.n(), 100);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::generators::connected_gnm;
use crate::graph::Graph;

/// Barabási–Albert preferential attachment: a scale-free graph on `n`
/// vertices where each arriving vertex attaches to `m_per` existing
/// vertices chosen proportionally to their current degree.
///
/// The seed graph is the star `K_{1,m_per}` on vertices `0..=m_per`
/// (center `0`), so the result is connected by construction and the edge
/// count is exactly `(n − m_per) · m_per`. Degree-proportional sampling
/// uses the endpoint-list trick: every edge contributes both endpoints to
/// a flat list, and a uniform draw from that list is a draw proportional
/// to degree. Arrivals attach to `m_per` *distinct* targets (duplicate
/// draws are rejected and retried).
///
/// The degree distribution follows a power law: expect a few hubs whose
/// degree is orders of magnitude above the mean, which is what makes this
/// family the adversarial workload for source-incident faults and for
/// per-row delta patches in the serving layer.
///
/// # Panics
///
/// Panics if `m_per == 0` or `n <= m_per`.
pub fn preferential_attachment(n: usize, m_per: usize, seed: u64) -> Graph {
    assert!(m_per > 0, "each arrival must attach at least one edge");
    assert!(n > m_per, "need more vertices than attachments per arrival");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Endpoint list: vertex v appears deg(v) times.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * (n - m_per) * m_per);
    for v in 1..=m_per {
        b.add_edge(0, v).expect("valid star seed edge");
        endpoints.push(0);
        endpoints.push(v);
    }
    let mut targets: Vec<usize> = Vec::with_capacity(m_per);
    for v in (m_per + 1)..n {
        targets.clear();
        while targets.len() < m_per {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(v, t).expect("valid attachment edge");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice on `n` vertices where
/// each vertex connects to its `k/2` nearest neighbors on each side, with
/// each lattice edge independently *rewired* with probability `p`.
///
/// Rewiring keeps the near endpoint and re-targets the far one to a
/// uniform random vertex (no self-loops, no duplicate edges; a rewire
/// that cannot find a free target after a bounded number of draws keeps
/// the original edge). The edge count is therefore exactly `n·k/2` for
/// every `p`. At `p = 0` the result is the connected ring lattice; small
/// `p` adds the long-range shortcuts that collapse the diameter while
/// preserving local clustering. Connectivity is overwhelmingly likely but
/// not *guaranteed* for `p > 0` — callers that need it should check
/// [`crate::is_connected`].
///
/// # Panics
///
/// Panics if `k` is odd, `k < 2`, `k >= n`, or `p` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "lattice degree k must be even and >= 2");
    assert!(k < n, "lattice degree k must be below n");
    assert!((0.0..=1.0).contains(&p), "rewiring probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for i in 1..=(k / 2) {
            let v = (u + i) % n;
            // Keep the lattice edge unless this slot rewires. A slot also
            // re-targets when an earlier rewire already occupies `(u, v)`,
            // which is what keeps the edge count exactly `n·k/2`.
            if !(p > 0.0 && rng.random_bool(p)) && b.add_edge_dedup(u, v).expect("in range") {
                continue;
            }
            let mut placed = false;
            for _ in 0..64 {
                let w = rng.random_range(0..n);
                if w != u && !b.has_edge(u, w) {
                    b.add_edge(u, w).expect("validated rewire target");
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Dense lattice: deterministic sweep to the first free
                // target, preserving the exact edge count.
                let w = (0..n)
                    .find(|&w| w != u && !b.has_edge(u, w))
                    .expect("rewiring saturated a vertex (k too close to n)");
                b.add_edge(u, w).expect("validated fallback target");
            }
        }
    }
    b.build()
}

/// Two-level ISP core/edge hierarchy: a dense backbone of `core_n` routers
/// with `edge_n` dual-homed access routers attached to it.
///
/// Vertices `0..core_n` are the core: a connected `G(n, m)` with exactly
/// `2·core_n` edges (average core degree 4 — the redundancy of a real
/// backbone). Vertices `core_n..core_n + edge_n` are access routers, each
/// attached to two *distinct* uniformly random core routers, so every
/// access router survives any single uplink fault. The graph is connected
/// by construction and the edge count is exactly `2·core_n + 2·edge_n`.
///
/// Faults on access links are maximally local (the affected subtree is a
/// single leaf); faults in the core force traffic-scale reroutes — the
/// two regimes a restorable tiebreaking scheme must handle in one
/// structure.
///
/// # Panics
///
/// Panics if `core_n < 5` (the dense core needs room for `2·core_n`
/// simple edges) or `edge_n == 0`.
pub fn isp_hierarchy(core_n: usize, edge_n: usize, seed: u64) -> Graph {
    assert!(core_n >= 5, "core needs at least 5 routers for average degree 4");
    assert!(edge_n > 0, "hierarchy needs at least one access router");
    let mut rng = StdRng::seed_from_u64(seed);
    let core = connected_gnm(core_n, 2 * core_n, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = core_n + edge_n;
    let mut b = GraphBuilder::new(n);
    for (_, u, v) in core.edges() {
        b.add_edge(u, v).expect("valid core edge");
    }
    for a in core_n..n {
        let first = rng.random_range(0..core_n);
        let mut second = rng.random_range(0..core_n);
        while second == first {
            second = rng.random_range(0..core_n);
        }
        b.add_edge(a, first).expect("valid uplink");
        b.add_edge(a, second).expect("valid uplink");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn preferential_attachment_accounting() {
        let g = preferential_attachment(100, 3, 7);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 97 * 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn watts_strogatz_accounting() {
        for p in [0.0, 0.1, 1.0] {
            let g = watts_strogatz(60, 6, p, 9);
            assert_eq!(g.n(), 60);
            assert_eq!(g.m(), 60 * 3, "rewiring must preserve m at p={p}");
        }
        assert!(is_connected(&watts_strogatz(60, 6, 0.0, 9)), "ring lattice");
    }

    #[test]
    fn isp_hierarchy_accounting() {
        let g = isp_hierarchy(10, 30, 5);
        assert_eq!(g.n(), 40);
        assert_eq!(g.m(), 2 * 10 + 2 * 30);
        assert!(is_connected(&g));
        for a in 10..40 {
            assert_eq!(g.degree(a), 2, "access router {a} is dual-homed");
        }
    }

    #[test]
    fn seeded_determinism() {
        assert_eq!(preferential_attachment(50, 2, 1), preferential_attachment(50, 2, 1));
        assert_ne!(preferential_attachment(50, 2, 1), preferential_attachment(50, 2, 2));
        assert_eq!(watts_strogatz(40, 4, 0.3, 1), watts_strogatz(40, 4, 0.3, 1));
        assert_ne!(watts_strogatz(40, 4, 0.3, 1), watts_strogatz(40, 4, 0.3, 2));
        assert_eq!(isp_hierarchy(8, 16, 1), isp_hierarchy(8, 16, 1));
        assert_ne!(isp_hierarchy(8, 16, 1), isp_hierarchy(8, 16, 2));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_lattice_degree_panics() {
        let _ = watts_strogatz(10, 3, 0.0, 0);
    }
}
