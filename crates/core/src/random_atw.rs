//! Randomized antisymmetric tiebreaking weight functions: the uniform grid
//! of Theorem 20 and the isolation-lemma grid of Corollary 22.
//!
//! Both constructions sample, for each edge `(u, v)` with `u < v`, a value
//! `r(u, v)` uniformly from a symmetric grid `{ i/(2nK) : i ∈ [−K, K] }`
//! and set `r(v, u) := −r(u, v)`. The perturbed weight of a directed edge
//! is `1 + r`; multiplying through by the scale `2nK` gives the exact
//! integer cost `2nK + i`, which is what we store. A path of `h` hops then
//! has cost `h·2nK + Σi`, and since `|Σi| ≤ (n−1)·K < nK`, hop classes
//! never mix — no non-shortest path of `G \ F` can become shortest in
//! `G* \ F`, exactly the argument of Theorem 20.
//!
//! The two constructors differ only in the grid half-width `K`:
//!
//! * [`RandomGridAtw::theorem20`] uses a huge fixed `K = 2^60`, standing in
//!   for the real-valued interval of the paper (see DESIGN.md substitution
//!   1: a fine grid with *exact* comparison preserves the probability-1
//!   uniqueness argument up to a `≤ m·(n²)/K` collision probability, which
//!   at `K = 2^60` is negligible for any graph that fits in memory);
//! * [`RandomGridAtw::corollary22`] uses `K = W = n^{f+4+c}` per the
//!   isolation lemma, giving the paper's `O(f log n)` bits per weight and
//!   failure probability `≤ 1/n^c` — this is the bit-complexity-optimal
//!   variant. `W` is clamped to `2^62` so costs fit `u128`; the clamp only
//!   binds where `O(f log n) > 62`, i.e. where the paper's bound already
//!   exceeds a machine word.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_graph::Graph;

use crate::scheme::ExactScheme;

/// Grid half-width of the Theorem 20 stand-in (see
/// [`RandomGridAtw::theorem20`]).
const THEOREM20_HALF_WIDTH: u128 = 1 << 60;

/// The scaled unit weight `2nK`, with the overflow guard every
/// construction path shares.
///
/// # Panics
///
/// Panics if path costs could overflow `u128`.
fn scaled_unit(g: &Graph, half_width: u128) -> u128 {
    let n = g.n().max(1) as u128;
    let unit = 2 * n * half_width;
    let max_path_cost = n * (unit + half_width);
    assert!(max_path_cost < u128::MAX / 2, "graph too large for u128 scaled costs");
    unit
}

/// The grid sampler: one numerator in `[−K, K]` per edge. The single
/// definition of the sampling order, so every construction path derives
/// the identical weight function from the same seed.
fn sample_numerators(m: usize, half_width: u128, seed: u64) -> impl Iterator<Item = i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lo = -(half_width as i64);
    let hi = half_width as i64;
    (0..m).map(move |_| rng.random_range(lo..=hi))
}

/// Exact per-direction costs `(unit + i, unit − i)` of one sampled
/// numerator — the scaled form of `1 ± r(u, v)`.
#[inline]
fn directed_costs_of(unit: u128, i: i64) -> (u128, u128) {
    ((unit as i128 + i as i128) as u128, (unit as i128 - i as i128) as u128)
}

/// A randomized antisymmetric `f`-fault tiebreaking weight function on a
/// symmetric integer grid.
///
/// See the module docs for the construction. Convert to a usable scheme
/// with [`RandomGridAtw::into_scheme`].
///
/// # Examples
///
/// ```
/// use rsp_core::{RandomGridAtw, Rpts};
/// use rsp_graph::{generators, FaultSet};
///
/// let g = generators::grid(3, 3);
/// let atw = RandomGridAtw::corollary22(&g, 1, 1, 42);
/// assert!(atw.bits_per_weight() <= 64);
/// let scheme = atw.into_scheme();
/// assert!(scheme.is_antisymmetric());
/// let spt = scheme.spt(0, &FaultSet::empty());
/// assert!(!spt.ties_detected()); // unique shortest paths in G*
/// ```
#[derive(Clone, Debug)]
pub struct RandomGridAtw {
    graph: Graph,
    /// Sampled grid numerators, one per canonical edge, in `[−K, K]`.
    r: Vec<i64>,
    /// Grid half-width `K`.
    half_width: u128,
    /// Scaled unit weight `2nK`.
    unit: u128,
}

impl RandomGridAtw {
    /// Samples with an explicit grid half-width `K`.
    ///
    /// # Panics
    ///
    /// Panics if `half_width` is zero or exceeds `2^62`, or if the graph is
    /// so large that path costs could overflow `u128`
    /// (`n · 2(n+1)K ≥ 2^127`, unreachable for realistic inputs).
    pub fn with_half_width(g: &Graph, half_width: u128, seed: u64) -> Self {
        assert!(half_width > 0, "grid half-width must be positive");
        assert!(half_width <= 1 << 62, "grid half-width must fit the i64 sampler");
        let unit = scaled_unit(g, half_width);
        let r = sample_numerators(g.m(), half_width, seed).collect();
        RandomGridAtw { graph: g.clone(), r, half_width, unit }
    }

    /// The Theorem 20 stand-in: a fine fixed grid of half-width `2^60`.
    ///
    /// With exact integer comparison, two tied-in-`G\F` paths collide in
    /// `G*` only if their perturbation sums coincide — probability
    /// `≤ (n−1)/2^61` per comparison, negligible at any feasible scale.
    pub fn theorem20(g: &Graph, seed: u64) -> Self {
        Self::with_half_width(g, THEOREM20_HALF_WIDTH, seed)
    }

    /// The Corollary 22 construction: grid half-width `W = n^{f+4+c}`,
    /// giving `O(f log n)` bits per weight and tie probability `≤ 1/n^c`.
    ///
    /// `W` is clamped to `2^62` (see module docs).
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn corollary22(g: &Graph, f: u32, c: u32, seed: u64) -> Self {
        assert!(g.n() > 0, "graph must be nonempty");
        let n = g.n() as u128;
        let cap: u128 = 1 << 62;
        let mut w: u128 = 1;
        for _ in 0..(f + 4 + c) {
            w = w.saturating_mul(n);
            if w >= cap {
                w = cap;
                break;
            }
        }
        Self::with_half_width(g, w.max(2), seed)
    }

    /// The sampled numerator `i` of `r(u, v) = i/(2nK)` for the canonical
    /// orientation of edge `e`.
    pub fn numerator(&self, e: rsp_graph::EdgeId) -> i64 {
        self.r[e]
    }

    /// Grid half-width `K` (the isolation lemma's `W`).
    pub fn half_width(&self) -> u128 {
        self.half_width
    }

    /// Bits needed to store one weight: `⌈log₂(2K + 1)⌉`.
    ///
    /// For [`RandomGridAtw::corollary22`] this is the paper's `O(f log n)`.
    pub fn bits_per_weight(&self) -> usize {
        (128 - (2 * self.half_width + 1).leading_zeros()) as usize
    }

    /// An upper bound on the probability that *some* pair/fault-set has a
    /// tie, per the isolation lemma union bound: `|E| / W`.
    pub fn tie_probability_bound(&self) -> f64 {
        self.graph.m() as f64 / self.half_width as f64
    }

    /// Materializes the induced replacement-path tiebreaking scheme
    /// (Theorem 19): `π(s, t | F)` = the unique minimum-cost path in
    /// `G* \ F`.
    pub fn into_scheme(self) -> ExactScheme<u128> {
        let bits = self.bits_per_weight();
        let unit = self.unit;
        let mut fwd: Vec<u128> = Vec::with_capacity(self.r.len());
        let mut bwd: Vec<u128> = Vec::with_capacity(self.r.len());
        for &i in &self.r {
            let (f, b) = directed_costs_of(unit, i);
            fwd.push(f);
            bwd.push(b);
        }
        ExactScheme::from_costs(self.graph, fwd, bwd, unit, bits)
    }

    /// Samples the [`RandomGridAtw::theorem20`] grid for `g` and writes
    /// the induced exact per-direction costs directly into `fwd` / `bwd`
    /// (cleared and refilled), returning the scaled unit weight.
    ///
    /// The allocation-free companion of
    /// `RandomGridAtw::theorem20(g, seed).into_scheme()`: it produces
    /// byte-identical cost vectors but skips the graph clone, the numerator
    /// vector, and the two fresh cost allocations — callers that rebuild a
    /// scheme per sub-instance (Algorithm 1's inner loop rebuilds one per
    /// source pair) hold the two buffers in their scratch and feed them
    /// straight to [`rsp_graph::DirectedCosts`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{dijkstra_into, generators, DirectedCosts, FaultSet, SearchScratch};
    ///
    /// let g = generators::grid(3, 3);
    /// let (mut fwd, mut bwd) = (Vec::new(), Vec::new());
    /// let mut scratch = SearchScratch::<u128>::with_capacity(g.n());
    /// for seed in 0..4 {
    ///     // One perturbed SPT per seed; the buffers are reused throughout.
    ///     RandomGridAtw::theorem20_costs_into(&g, seed, &mut fwd, &mut bwd);
    ///     dijkstra_into(&g, 0, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
    ///     assert!(!scratch.ties_detected(), "Theorem 20 weights are tie-free");
    /// }
    /// ```
    pub fn theorem20_costs_into(
        g: &Graph,
        seed: u64,
        fwd: &mut Vec<u128>,
        bwd: &mut Vec<u128>,
    ) -> u128 {
        let unit = scaled_unit(g, THEOREM20_HALF_WIDTH);
        fwd.clear();
        bwd.clear();
        fwd.reserve(g.m());
        bwd.reserve(g.m());
        // Same sampler, same order, same cost mapping as
        // `theorem20(g, seed).into_scheme()` — shared code, not a copy.
        for i in sample_numerators(g.m(), THEOREM20_HALF_WIDTH, seed) {
            let (f, b) = directed_costs_of(unit, i);
            fwd.push(f);
            bwd.push(b);
        }
        unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Rpts;
    use rsp_graph::{bfs, generators, FaultSet};

    #[test]
    fn antisymmetric_by_construction() {
        let g = generators::petersen();
        let s = RandomGridAtw::theorem20(&g, 1).into_scheme();
        assert!(s.is_antisymmetric());
    }

    #[test]
    fn perturbed_paths_are_shortest() {
        // Hop counts of the perturbed SPT must equal BFS distances, in the
        // fault-free graph and under every single fault.
        let g = generators::grid(4, 4);
        let s = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let mut fault_sets = vec![FaultSet::empty()];
        fault_sets.extend(g.edges().map(|(e, _, _)| FaultSet::single(e)));
        for faults in &fault_sets {
            for src in g.vertices() {
                let tree = s.tree_from(src, faults);
                let truth = bfs(&g, src, faults);
                for t in g.vertices() {
                    assert_eq!(tree.dist(t), truth.dist(t));
                }
            }
        }
    }

    #[test]
    fn no_ties_on_tie_heavy_graphs() {
        // Grids and hypercubes have huge numbers of tied shortest paths;
        // the perturbation must separate all of them.
        for g in [generators::grid(5, 5), generators::hypercube(4)] {
            let s = RandomGridAtw::theorem20(&g, 3).into_scheme();
            for src in g.vertices() {
                assert!(!s.spt(src, &FaultSet::empty()).ties_detected());
            }
        }
    }

    #[test]
    fn corollary22_bits_scale_with_f() {
        let g = generators::grid(4, 4);
        let b1 = RandomGridAtw::corollary22(&g, 1, 1, 0).bits_per_weight();
        let b3 = RandomGridAtw::corollary22(&g, 3, 1, 0).bits_per_weight();
        assert!(b1 < b3, "more faults need more bits ({b1} vs {b3})");
        assert!(b3 <= 64);
    }

    #[test]
    fn tie_probability_bound_small() {
        let g = generators::grid(4, 4);
        let atw = RandomGridAtw::corollary22(&g, 1, 2, 0);
        assert!(atw.tie_probability_bound() < 1e-3);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::petersen();
        let a = RandomGridAtw::theorem20(&g, 9);
        let b = RandomGridAtw::theorem20(&g, 9);
        assert_eq!(a.r, b.r);
        let c = RandomGridAtw::theorem20(&g, 10);
        assert_ne!(a.r, c.r);
    }

    #[test]
    fn theorem20_costs_into_matches_into_scheme() {
        let g = generators::grid(4, 3);
        for seed in [0, 7, 99] {
            let scheme = RandomGridAtw::theorem20(&g, seed).into_scheme();
            let (mut fwd, mut bwd) = (vec![1u128; 3], vec![2u128; 3]); // stale contents
            let unit = RandomGridAtw::theorem20_costs_into(&g, seed, &mut fwd, &mut bwd);
            assert_eq!(unit, *scheme.unit());
            assert_eq!(fwd.len(), g.m());
            for (e, u, v) in g.edges() {
                assert_eq!(fwd[e], scheme.edge_cost(e, u, v), "seed {seed} edge {e} fwd");
                assert_eq!(bwd[e], scheme.edge_cost(e, v, u), "seed {seed} edge {e} bwd");
            }
        }
    }

    #[test]
    fn numerators_within_grid() {
        let g = generators::complete(6);
        let atw = RandomGridAtw::with_half_width(&g, 100, 5);
        for e in 0..g.m() {
            assert!(atw.numerator(e).unsigned_abs() as u128 <= 100);
        }
        assert_eq!(atw.half_width(), 100);
    }
}
