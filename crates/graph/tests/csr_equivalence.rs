//! CSR-core differential suite: every production engine — `bfs_into` /
//! `dijkstra_into` under both heap policies, `dijkstra_batch` under every
//! [`CheckpointMode`], and the worker-pool fan-out at 1/2/8 workers — must
//! be cell-identical (costs, hop counts, parents, tie flags, reachable
//! counts) to the pre-migration Vec-of-Vec reference engine preserved in
//! [`rsp_graph::reference`], on every generator family the workloads use:
//! `G(n,m)`, grids, hypercubes, preferential attachment, Watts–Strogatz,
//! and the ISP core/edge hierarchy.

use std::ops::ControlFlow;

use proptest::prelude::*;
use rsp_arith::{BigInt, PathCost};
use rsp_graph::reference::{ref_bfs, ref_dijkstra, RefGraph, RefTree};
use rsp_graph::{
    bfs_batch_par, bfs_into, dijkstra_batch, dijkstra_batch_par, dijkstra_into, gen, generators,
    BatchScratch, CheckpointMode, DirectedCosts, FaultSet, Graph, HeapKind, SearchScratch, Vertex,
};

/// One graph drawn from the six generator families the differential suite
/// covers. `n` and `seed` steer every family; the structured families
/// (grid, hypercube) use `n` for shape only, keeping their tie-rich
/// symmetry intact.
fn family_graph() -> impl Strategy<Value = Graph> {
    (0u8..6, 10usize..=28, any::<u64>()).prop_map(|(fam, n, seed)| match fam {
        0 => {
            let m = (2 * n - 1).min(n * (n - 1) / 2);
            generators::connected_gnm(n, m, seed)
        }
        1 => generators::grid(3, n / 3),
        2 => generators::hypercube(4),
        3 => gen::preferential_attachment(n, 2, seed),
        4 => gen::watts_strogatz(n, 4, 0.2, seed),
        _ => gen::isp_hierarchy(5 + n / 4, n, seed),
    })
}

/// A `(source, fault set)` query plan: empty, single, and double fault
/// sets interleaved, shared by the CSR engine and the reference.
fn queries(
    g: &Graph,
    picks: &[(prop::sample::Index, prop::sample::Index)],
) -> Vec<(Vertex, FaultSet)> {
    picks
        .iter()
        .enumerate()
        .map(|(i, (sv, ev))| {
            let s = sv.index(g.n());
            let e = ev.index(g.m());
            let faults = match i % 3 {
                0 => FaultSet::empty(),
                1 => FaultSet::single(e),
                _ => FaultSet::from_edges([e, (e + g.m() / 2) % g.m()]),
            };
            (s, faults)
        })
        .collect()
}

fn assert_bfs_matches(g: &Graph, got: &SearchScratch<u32>, spec: &RefTree<u32>) {
    for v in g.vertices() {
        assert_eq!(got.dist(v), spec.reached(v).then_some(spec.hops[v]), "dist({v})");
        assert_eq!(got.parent(v), spec.parent[v], "parent({v})");
    }
    assert_eq!(got.reachable_count(), spec.reachable_count(), "reachable count");
}

fn assert_dijkstra_matches<C: PathCost>(g: &Graph, got: &SearchScratch<C>, spec: &RefTree<C>) {
    for v in g.vertices() {
        assert_eq!(got.cost(v), spec.cost[v].as_ref(), "cost({v})");
        assert_eq!(got.hops(v), spec.reached(v).then_some(spec.hops[v]), "hops({v})");
        assert_eq!(got.parent(v), spec.parent[v], "parent({v})");
    }
    assert_eq!(got.ties_detected(), spec.ties, "ties flag");
    assert_eq!(got.reachable_count(), spec.reachable_count(), "reachable count");
}

/// u64 costs with per-edge and per-direction variation: the inline-key
/// heap workload.
fn u64_cost(e: usize, from: Vertex, to: Vertex) -> u64 {
    1_000_000 + (e as u64 * 17) % 1000 + u64::from(from < to) * 3
}

proptest! {
    /// `bfs_into` equals the reference BFS on every family, with the
    /// scratch reused across the whole query plan.
    #[test]
    fn bfs_equals_reference_on_every_family(
        g in family_graph(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..7),
    ) {
        let r = RefGraph::from_graph(&g);
        let mut scratch = SearchScratch::<u32>::new();
        for (s, faults) in queries(&g, &picks) {
            bfs_into(&g, s, &faults, &mut scratch);
            assert_bfs_matches(&g, &scratch, &ref_bfs(&r, s, &faults));
        }
    }

    /// The inline-key engine (u64 costs) equals the reference lazy heap.
    #[test]
    fn dijkstra_inline_key_equals_reference(
        g in family_graph(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..7),
    ) {
        prop_assert_eq!(u64::HEAP, HeapKind::InlineKey);
        let r = RefGraph::from_graph(&g);
        let mut scratch = SearchScratch::<u64>::new();
        for (s, faults) in queries(&g, &picks) {
            dijkstra_into(&g, s, &faults, u64_cost, &mut scratch);
            assert_dijkstra_matches(&g, &scratch, &ref_dijkstra(&r, s, &faults, u64_cost));
        }
    }

    /// The indexed decrease-key engine (`BigInt` costs) equals the same
    /// reference — both heap policies pin to one specification.
    #[test]
    fn dijkstra_indexed_equals_reference(
        g in family_graph(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..5),
    ) {
        prop_assert_eq!(BigInt::HEAP, HeapKind::Indexed);
        let r = RefGraph::from_graph(&g);
        let cost = |e: usize, from: Vertex, to: Vertex| {
            BigInt::from(1_000_000i64 + (e as i64 * 17) % 1000 + i64::from(from < to) * 3)
        };
        let mut scratch = SearchScratch::<BigInt>::new();
        for (s, faults) in queries(&g, &picks) {
            dijkstra_into(&g, s, &faults, cost, &mut scratch);
            assert_dijkstra_matches(&g, &scratch, &ref_dijkstra(&r, s, &faults, cost));
        }
    }

    /// The borrowed-slice `DirectedCosts` source (the exact-scheme u128
    /// path) equals a closure reading the same tables in the reference.
    #[test]
    fn dijkstra_directed_costs_equals_reference(
        g in family_graph(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..5),
    ) {
        let r = RefGraph::from_graph(&g);
        let unit = 1u128 << 40;
        let fwd: Vec<u128> = (0..g.m()).map(|e| unit + (e as u128 * 7919) % 1024).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 2 * unit - f).collect();
        let mut scratch = SearchScratch::<u128>::new();
        for (s, faults) in queries(&g, &picks) {
            dijkstra_into(&g, s, &faults, DirectedCosts::new(&fwd, &bwd), &mut scratch);
            let spec = ref_dijkstra(&r, s, &faults, |e, from, to| {
                if from < to { fwd[e] } else { bwd[e] }
            });
            assert_dijkstra_matches(&g, &scratch, &spec);
        }
    }

    /// `dijkstra_batch` — every `CheckpointMode` under both heap engines —
    /// equals the reference on every cell of the `sources × fault_sets`
    /// plan. Near-colliding costs make tie flags part of the comparison.
    #[test]
    fn batch_equals_reference_under_all_modes_and_heaps(
        g in family_graph(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let r = RefGraph::from_graph(&g);
        let fs: Vec<FaultSet> = fault_picks
            .iter()
            .enumerate()
            .map(|(i, pick)| {
                let e = pick.index(g.m());
                match i % 3 {
                    0 => FaultSet::single(e),
                    1 => FaultSet::from_edges([e, (e + g.m() / 2) % g.m()]),
                    _ => FaultSet::empty(),
                }
            })
            .collect();
        let srcs: Vec<Vertex> = source_picks.iter().map(|p| p.index(g.n())).collect();
        let cost = |e: usize, from: Vertex, to: Vertex| {
            1_000u64 + (e as u64 * 17) % 3 + u64::from(from < to)
        };

        // Reference matrix, computed once and shared by all six configs.
        let spec: Vec<Vec<RefTree<u64>>> = srcs
            .iter()
            .map(|&s| fs.iter().map(|f| ref_dijkstra(&r, s, f, cost)).collect())
            .collect();

        for heap in [HeapKind::InlineKey, HeapKind::Indexed] {
            for mode in [CheckpointMode::Auto, CheckpointMode::Always, CheckpointMode::Never] {
                let mut batch =
                    BatchScratch::<u64>::new().with_checkpoint_mode(mode).with_heap_kind(heap);
                dijkstra_batch(&g, &srcs, &fs, cost, &mut batch, |si, fi, result| {
                    assert_dijkstra_matches(&g, result, &spec[si][fi]);
                    ControlFlow::Continue(())
                });
                prop_assert_eq!(batch.stats().queries, srcs.len() * fs.len(), "{:?}/{:?}", heap, mode);
            }
        }
    }

    /// The worker-pool fan-out at 1, 2, and 8 workers equals the
    /// reference matrix — for Dijkstra and BFS.
    #[test]
    fn parallel_fan_out_equals_reference(
        g in family_graph(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let r = RefGraph::from_graph(&g);
        let fs: Vec<FaultSet> =
            fault_picks.iter().map(|p| FaultSet::single(p.index(g.m()))).collect();
        let srcs: Vec<Vertex> = source_picks.iter().map(|p| p.index(g.n())).collect();

        type Cells<C> = (Vec<Option<C>>, Vec<Option<(Vertex, usize)>>, bool, usize);
        let dijkstra_spec: Vec<Vec<Cells<u64>>> = srcs
            .iter()
            .map(|&s| {
                fs.iter()
                    .map(|f| {
                        let t = ref_dijkstra(&r, s, f, u64_cost);
                        (t.cost.clone(), t.parent.clone(), t.ties, t.reachable_count())
                    })
                    .collect()
            })
            .collect();
        for workers in [1usize, 2, 8] {
            let par = dijkstra_batch_par(&g, &srcs, &fs, || u64_cost, workers, |_, _, s| {
                (
                    g.vertices().map(|v| s.cost(v).copied()).collect::<Vec<_>>(),
                    g.vertices().map(|v| s.parent(v)).collect::<Vec<_>>(),
                    s.ties_detected(),
                    s.reachable_count(),
                )
            });
            prop_assert_eq!(&par, &dijkstra_spec, "dijkstra workers={}", workers);
        }

        let bfs_spec: Vec<Vec<_>> = srcs
            .iter()
            .map(|&s| {
                fs.iter()
                    .map(|f| {
                        let t = ref_bfs(&r, s, f);
                        let dist: Vec<Option<u32>> =
                            g.vertices().map(|v| t.reached(v).then_some(t.hops[v])).collect();
                        (dist, t.parent.clone())
                    })
                    .collect()
            })
            .collect();
        for workers in [1usize, 2, 8] {
            let par = bfs_batch_par::<u32, _, _>(&g, &srcs, &fs, workers, |_, _, s| {
                (
                    g.vertices().map(|v| s.dist(v)).collect::<Vec<_>>(),
                    g.vertices().map(|v| s.parent(v)).collect::<Vec<_>>(),
                )
            });
            prop_assert_eq!(&par, &bfs_spec, "bfs workers={}", workers);
        }
    }
}
