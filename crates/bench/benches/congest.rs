//! E9 timing: CONGEST simulator throughput for the distributed
//! constructions (Lemma 34, Theorem 35, Lemma 36, Corollary 9).

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_congest::{
    distributed_1ft_subset_preserver, distributed_ft_spanner, distributed_spt, scheduled_multi_spt,
};
use rsp_core::RandomGridAtw;
use rsp_graph::generators;

fn bench_congest(c: &mut Criterion) {
    let g = generators::torus(10, 10);
    let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();

    c.bench_function("congest/spt_torus10x10", |b| {
        b.iter(|| distributed_spt(&g, &scheme, 0).expect("quota obeyed"))
    });

    let sources: Vec<usize> = (0..8).map(|i| i * 12).collect();
    c.bench_function("congest/multi_spt_s8_torus10x10", |b| {
        b.iter(|| scheduled_multi_spt(&g, &scheme, &sources, 7).expect("quota obeyed"))
    });

    c.bench_function("congest/1ft_preserver_s8_torus10x10", |b| {
        b.iter(|| distributed_1ft_subset_preserver(&g, &sources, 9).expect("quota obeyed"))
    });

    c.bench_function("congest/1ft_spanner_torus10x10", |b| {
        b.iter(|| distributed_ft_spanner(&g, 10, 11).expect("quota obeyed"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_congest
}
criterion_main!(benches);
