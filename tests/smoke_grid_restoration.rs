//! PR-1 smoke test: the end-to-end story the README sells, on one grid.
//!
//! Build a grid graph, construct a Theorem-20 restorable tiebreaking
//! scheme, kill one edge, and check that the restored path (a) exists,
//! (b) avoids the fault, and (c) is exactly as short as a from-scratch
//! Dijkstra/BFS on the faulted graph says it can be.

use restorable_tiebreaking::core::{restore_single_fault, RandomGridAtw, Rpts};
use restorable_tiebreaking::graph::{bfs, dijkstra, generators, FaultSet};

#[test]
fn grid_restoration_matches_dijkstra_on_faulted_graph() {
    let g = generators::grid(5, 5);
    let scheme = RandomGridAtw::theorem20(&g, 2024).into_scheme();
    let (s, t) = (0, g.n() - 1);

    // Kill the first edge of the selected s⇝t route, the worst case for a
    // router: the stored path itself is now unusable.
    let selected = scheme.path(s, t, &FaultSet::empty()).expect("grid is connected");
    let first_hop = selected.vertices()[1];
    let failed = g.edge_between(s, first_hop).expect("first hop is an edge");
    let faults = FaultSet::single(failed);

    let restored = restore_single_fault(&scheme, s, t, failed)
        .expect("grid stays connected after one edge fault");
    assert!(restored.avoids(&g, &faults), "restored path must avoid the fault");
    assert!(restored.is_valid_in(&g));

    // Exactly optimal, by two independent ground truths on G \ F.
    let bfs_dist = bfs(&g, s, &faults).dist(t).expect("still connected");
    assert_eq!(restored.hops() as u32, bfs_dist, "restored path must be shortest");
    let spt = dijkstra(&g, s, &faults, |_, _, _| 1u64);
    assert_eq!(Some(&(restored.hops() as u64)), spt.cost(t), "BFS and Dijkstra agree");
}

#[test]
fn grid_restoration_every_single_edge_fault() {
    // Smaller grid, exhaustive over faults: restoration never fails and
    // never returns a non-shortest path.
    let g = generators::grid(4, 4);
    let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    let (s, t) = (0, g.n() - 1);
    for (e, _, _) in g.edges() {
        let faults = FaultSet::single(e);
        let truth = bfs(&g, s, &faults).dist(t);
        let restored = restore_single_fault(&scheme, s, t, e);
        match (truth, &restored) {
            (Some(d), Some(p)) => {
                assert!(p.avoids(&g, &faults));
                assert_eq!(p.hops() as u32, d);
            }
            (None, None) => {}
            (truth, restored) => {
                panic!("restoration and BFS disagree on edge {e}: {truth:?} vs {restored:?}")
            }
        }
    }
}
