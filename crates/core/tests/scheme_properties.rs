//! Property tests for the tiebreaking schemes: the Theorem 19 guarantees
//! as universally quantified properties over random graphs and seeds.

use proptest::prelude::*;
use rsp_core::verify::{
    sample_fault_sets, verify_consistency_sampled, verify_shortest, verify_stability,
};
use rsp_core::{GeometricAtw, RandomGridAtw, Rpts};
use rsp_graph::{generators, FaultSet};

fn params() -> impl Strategy<Value = (usize, usize, u64, u64)> {
    (5usize..=20, 0usize..=3, any::<u64>(), any::<u64>()).prop_map(|(n, density, gseed, wseed)| {
        let m = ((n - 1) + density * n / 2).min(n * (n - 1) / 2);
        (n, m, gseed, wseed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Antisymmetry is structural: fwd + bwd = 2·unit on every edge, for
    /// every graph and seed.
    #[test]
    fn grid_atw_is_antisymmetric((n, m, gseed, wseed) in params()) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        prop_assert!(scheme.is_antisymmetric());
        let c22 = RandomGridAtw::corollary22(&g, 2, 1, wseed).into_scheme();
        prop_assert!(c22.is_antisymmetric());
    }

    /// Selected paths are shortest under the empty fault set and a
    /// sampled fault set (Definition 18's tiebreaking requirement).
    #[test]
    fn selected_paths_shortest((n, m, gseed, wseed) in params()) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let mut fs = vec![FaultSet::empty()];
        fs.extend(sample_fault_sets(g.m(), 1, 3, wseed ^ 1));
        fs.extend(sample_fault_sets(g.m(), 2, 2, wseed ^ 2));
        prop_assert!(verify_shortest(&scheme, &fs).is_ok());
    }

    /// Consistency on sampled pairs (Definition 14).
    #[test]
    fn consistency_sampled((n, m, gseed, wseed) in params()) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        prop_assert!(
            verify_consistency_sampled(&scheme, &FaultSet::empty(), 10, wseed).is_ok()
        );
        // And under one fault.
        let f = sample_fault_sets(g.m(), 1, 1, wseed)[0].clone();
        prop_assert!(verify_consistency_sampled(&scheme, &f, 6, wseed ^ 9).is_ok());
    }

    /// Stability (Definition 16) under the empty base fault set.
    #[test]
    fn stability_holds((n, m, gseed, wseed) in params()) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        prop_assert!(verify_stability(&scheme, &[FaultSet::empty()]).is_ok());
    }

    /// The scheme is deterministic in (graph, seed) and its paths match
    /// cost recomputation.
    #[test]
    fn scheme_determinism((n, m, gseed, wseed) in params()) {
        let g = generators::connected_gnm(n, m, gseed);
        let a = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let b = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let empty = FaultSet::empty();
        for t in g.vertices() {
            let pa = a.path(0, t, &empty);
            prop_assert_eq!(&pa, &b.path(0, t, &empty));
            if let Some(p) = pa {
                let spt = a.spt(0, &empty);
                let recomputed = a.cost_of_path(&p);
                prop_assert_eq!(recomputed.as_ref(), spt.cost(t));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The deterministic geometric scheme has NO ties, ever, on any
    /// sampled instance — its whole point.
    #[test]
    fn geometric_never_ties((n, gseed) in (5usize..=12, any::<u64>())) {
        let g = generators::connected_gnm(n, (n - 1) + n / 2, gseed);
        let scheme = GeometricAtw::new(&g).into_scheme();
        for s in g.vertices() {
            prop_assert!(!scheme.spt(s, &FaultSet::empty()).ties_detected());
        }
        prop_assert!(scheme.is_antisymmetric());
    }
}
