//! Concurrency suite for the serving layer: reader threads hammer
//! `(s, t, F)` queries while a writer publishes successive snapshot
//! epochs.
//!
//! Torn reads are made *observable* by construction: epoch `k`'s
//! snapshot is compiled from the base costs scaled by `k`, which keeps
//! every selected tree and hop distance identical but multiplies every
//! path cost by exactly `k` (pinned single-threadedly in
//! `oracle_properties::scaled_costs_keep_trees_and_scale_costs`). So an
//! answer is internally consistent with exactly one epoch iff all its
//! per-target costs are the base costs times the *same* `k` — and that
//! `k` must be the version of the snapshot the reader reports serving
//! from. Any cross-epoch mixing breaks the multiplier.
//!
//! Epoch retirement is pinned with `Weak` handles: once the last holder
//! of a replaced snapshot refreshes (or drops), the `Weak` no longer
//! upgrades.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use rsp_core::ExactScheme;
use rsp_graph::{generators, FaultSet, Graph, SearchScratch, Vertex};
use rsp_oracle::{Oracle, OracleSnapshot};

const UNIT: u128 = 1 << 40;

/// Base per-direction exact costs: distinct per edge and direction, the
/// same construction the batch-engine property tests use.
fn base_costs(g: &Graph) -> (Vec<u128>, Vec<u128>) {
    let fwd: Vec<u128> = (0..g.m()).map(|e| UNIT + (e as u128 * 7919) % 1024).collect();
    let bwd: Vec<u128> = fwd.iter().map(|f| 2 * UNIT - f).collect();
    (fwd, bwd)
}

/// The epoch-`k` scheme: base costs scaled by `k`.
fn scheme_at(g: &Graph, k: u128) -> ExactScheme<u128> {
    let (fwd, bwd) = base_costs(g);
    ExactScheme::from_costs(
        g.clone(),
        fwd.into_iter().map(|c| c * k).collect(),
        bwd.into_iter().map(|c| c * k).collect(),
        UNIT * k,
        10,
    )
}

fn snapshot_at(g: &Graph, k: u64) -> OracleSnapshot<u128> {
    OracleSnapshot::builder(&scheme_at(g, k as u128)).version(k).build()
}

/// One query's expected shape at scale 1: per-vertex `(hops, cost)`.
type Expected = Vec<Option<(u32, u128)>>;

fn query_pool(g: &Graph) -> Vec<(Vertex, FaultSet)> {
    let n = g.n();
    let m = g.m();
    let sources = [0, n / 3, n / 2, n - 1];
    let faults = [
        FaultSet::empty(),
        FaultSet::single(0),
        FaultSet::single(m / 2),
        FaultSet::from_edges([1, m / 3, m - 1]),
    ];
    sources.iter().flat_map(|&s| faults.iter().map(move |f| (s, f.clone()))).collect()
}

fn expected_at_base(g: &Graph, pool: &[(Vertex, FaultSet)]) -> Vec<Expected> {
    let base = scheme_at(g, 1);
    let mut scratch = SearchScratch::with_capacity(g.n());
    pool.iter()
        .map(|(s, f)| {
            base.spt_into(*s, f, &mut scratch);
            g.vertices()
                .map(|v| scratch.hops(v).map(|h| (h, *scratch.cost(v).expect("reached"))))
                .collect()
        })
        .collect()
}

/// N reader threads hammer the pool while the writer publishes epochs
/// 2..=LAST; every answer must be the base answer scaled by exactly the
/// epoch the reader reports, and every reader must observe the final
/// epoch once publishing stops.
#[test]
fn no_torn_reads_under_publish_storm() {
    const READERS: usize = 4;
    const LAST_EPOCH: u64 = 6;

    let g = generators::grid(8, 6);
    let pool = query_pool(&g);
    let expected = expected_at_base(&g, &pool);

    // Compile every epoch's snapshot up front: publishing is then pure
    // swap, maximizing swap pressure on the readers.
    let mut pending: Vec<OracleSnapshot<u128>> =
        (2..=LAST_EPOCH).map(|k| snapshot_at(&g, k)).collect();
    let oracle = Oracle::new(snapshot_at(&g, 1));
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for tid in 0..READERS {
            let mut reader = oracle.reader();
            let (pool, expected, done) = (&pool, &expected, &done);
            scope.spawn(move || {
                let mut versions_seen = Vec::new();
                let mut i = tid; // desynchronize the threads' pool walks
                loop {
                    let stop = done.load(Ordering::Acquire);
                    let (s, f) = &pool[i % pool.len()];
                    let answer: Vec<Option<(u32, u128)>> = {
                        let view = reader.query(*s, f);
                        (0..expected[0].len())
                            .map(|v| view.dist(v).map(|h| (h, *view.cost(v).expect("reached"))))
                            .collect()
                    };
                    // The view borrow has ended; without an intervening
                    // refresh the reader still holds the snapshot that
                    // answered, so this is the answer's epoch.
                    let k = reader.snapshot().version();
                    assert!((1..=LAST_EPOCH).contains(&k), "impossible epoch {k}");
                    for (v, base) in expected[i % pool.len()].iter().enumerate() {
                        let want = base.map(|(h, c)| (h, c * k as u128));
                        assert_eq!(answer[v], want, "reader {tid} epoch {k} s{s} {f} v{v}");
                    }
                    if versions_seen.last() != Some(&k) {
                        versions_seen.push(k);
                    }
                    i += 1;
                    if stop {
                        break;
                    }
                }
                // Epochs can only move forward under a reader.
                assert!(versions_seen.windows(2).all(|w| w[0] < w[1]), "{versions_seen:?}");
                // The post-stop query (auto-refresh) saw the last epoch.
                assert_eq!(versions_seen.last(), Some(&LAST_EPOCH), "reader {tid}");
            });
        }

        // Writer: storm of publishes, then signal the readers to finish.
        scope.spawn(|| {
            for snap in pending.drain(..) {
                std::thread::sleep(std::time::Duration::from_millis(2));
                oracle.publish(snap);
            }
            done.store(true, Ordering::Release);
        });
    });

    assert_eq!(oracle.epoch(), LAST_EPOCH, "one epoch bump per publish");
}

/// A replaced epoch stays alive exactly as long as its last holder: a
/// reader pinned to the old snapshot keeps answering from it, and the
/// moment the last holder refreshes, the old snapshot's memory drops.
#[test]
fn old_epochs_drop_once_last_reader_releases() {
    let g = generators::grid(4, 4);
    let oracle = Oracle::new(snapshot_at(&g, 1));
    let mut reader = oracle.reader();

    let old: Weak<OracleSnapshot<u128>> = Arc::downgrade(&oracle.snapshot());
    assert!(old.upgrade().is_some());

    oracle.publish(snapshot_at(&g, 2));
    assert_eq!(oracle.epoch(), 2);

    // The pinned reader still holds — and serves — epoch 1.
    assert_eq!(reader.epoch(), 1);
    assert_eq!(reader.snapshot().version(), 1);
    assert!(old.upgrade().is_some(), "pinned reader keeps the old epoch alive");

    // New readers are born on the current epoch; the old one survives.
    let fresh = oracle.reader();
    assert_eq!(fresh.snapshot().version(), 2);
    drop(fresh);
    assert!(old.upgrade().is_some());

    // The last holder releases: the old epoch drops.
    assert!(reader.refresh(), "epoch moved, refresh adopts it");
    assert_eq!(reader.epoch(), 2);
    assert!(old.upgrade().is_none(), "no holders left — epoch 1 retired");
    assert!(!reader.refresh(), "no further epoch movement");

    // Dropping a pinned reader also releases its epoch.
    let pinned = oracle.reader();
    let current: Weak<OracleSnapshot<u128>> = Arc::downgrade(&oracle.snapshot());
    oracle.publish(snapshot_at(&g, 3));
    reader.refresh();
    assert!(current.upgrade().is_some(), "`pinned` still holds epoch 2");
    drop(pinned);
    assert!(current.upgrade().is_none(), "dropping the last holder retires it");
}

/// An in-flight consumer holding a snapshot `Arc` across a publish keeps
/// a fully working, consistent snapshot — publish never invalidates.
#[test]
fn inflight_snapshot_survives_publish() {
    let g = generators::grid(4, 4);
    let oracle = Oracle::new(snapshot_at(&g, 1));

    let pinned = oracle.snapshot();
    oracle.publish(snapshot_at(&g, 5));

    // The pinned snapshot still answers, entirely at epoch-1 costs.
    let pool = query_pool(&g);
    let expected = expected_at_base(&g, &pool);
    let mut scratch = SearchScratch::with_capacity(g.n());
    for ((s, f), want) in pool.iter().zip(&expected) {
        let view = pinned.query(*s, f, &mut scratch);
        for (v, base) in want.iter().enumerate() {
            assert_eq!(view.dist(v).map(|h| (h, *view.cost(v).unwrap())), *base, "s{s} v{v}");
        }
    }
    assert_eq!(pinned.version(), 1);
    assert_eq!(oracle.snapshot().version(), 5);
}
