//! Baseline replacement path algorithms, used as ground truth in tests and
//! as comparison points in the benches (experiment E4).

use rsp_graph::{bfs_into, FaultSet, Graph, Path, SearchScratch, Vertex};

use crate::single_pair::{ReplacementEntry, SinglePairResult};
use crate::subset_rp::{PairReplacements, SubsetRpResult};

/// Naive single-pair replacement paths: one full BFS per failing path edge.
///
/// `O(ℓ·(n + m))` for a length-`ℓ` path — the quadratic-ish baseline the
/// near-linear algorithm is measured against. The caller supplies the
/// shortest path whose edges fail (so that fast and naive results are
/// comparable edge-for-edge).
///
/// # Panics
///
/// Panics if `path` is not a valid `s ⇝ t` path in `g`.
pub fn naive_single_pair(g: &Graph, s: Vertex, t: Vertex, path: Path) -> SinglePairResult {
    let mut scratch = SearchScratch::<u32>::with_capacity(g.n());
    naive_single_pair_with(g, s, t, path, &mut scratch)
}

/// [`naive_single_pair`] reusing one BFS scratch across all probed edges
/// (and across calls).
///
/// One fault set is allocated up front and re-pointed per failing edge via
/// [`FaultSet::replace_single`], so the per-edge loop allocates nothing
/// beyond the result entries.
///
/// # Panics
///
/// Panics if `path` is not a valid `s ⇝ t` path in `g`.
pub fn naive_single_pair_with(
    g: &Graph,
    s: Vertex,
    t: Vertex,
    path: Path,
    scratch: &mut SearchScratch<u32>,
) -> SinglePairResult {
    assert!(path.is_valid_in(g), "baseline needs a valid path");
    assert_eq!(path.source(), s, "path must start at s");
    assert_eq!(path.target(), t, "path must end at t");
    let mut faults = FaultSet::empty();
    let entries = path
        .edge_ids(g)
        .expect("valid path resolves to edges")
        .into_iter()
        .map(|edge| {
            faults.replace_single(edge);
            bfs_into(g, s, &faults, scratch);
            ReplacementEntry { edge, dist: scratch.dist(t) }
        })
        .collect();
    SinglePairResult::from_parts(s, t, path, entries)
}

/// Naive subset-rp: for every source pair, a BFS-selected path and one BFS
/// per failing path edge. `O(σ²·n·(n + m))` in the worst case.
pub fn naive_subset_rp(g: &Graph, sources: &[Vertex]) -> SubsetRpResult {
    let empty = FaultSet::empty();
    let mut scratch = SearchScratch::<u32>::with_capacity(g.n());
    let mut pairs = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        bfs_into(g, s, &empty, &mut scratch);
        let tree = scratch.to_bfs_tree();
        for &t in &sources[i + 1..] {
            let Some(path) = tree.path_to(t) else { continue };
            let result = naive_single_pair_with(g, s, t, path, &mut scratch);
            pairs.push(PairReplacements::new(s, t, result));
        }
    }
    SubsetRpResult::from_pairs(pairs)
}

/// Per-pair baseline: the near-linear single-pair algorithm run on the
/// **full graph** for every pair — `O(σ²·m)` instead of Algorithm 1's
/// `O(σm) + Õ(σ²n)`. This is the crossover the paper's Theorem 3 improves
/// on for dense graphs.
pub fn per_pair_subset_rp(g: &Graph, sources: &[Vertex], seed: u64) -> SubsetRpResult {
    let mut scratch = crate::single_pair::ReplacementScratch::with_capacity(g.n());
    let mut pairs = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        for (j, &t) in sources.iter().enumerate().skip(i + 1) {
            let pair_seed = seed ^ ((i as u64) << 32) ^ j as u64;
            if let Some(result) = crate::single_pair::single_pair_replacement_paths_with(
                g,
                s,
                t,
                pair_seed,
                &mut scratch,
            ) {
                pairs.push(PairReplacements::new(s, t, result));
            }
        }
    }
    SubsetRpResult::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::{bfs, generators};

    #[test]
    fn naive_single_pair_on_cycle() {
        let g = generators::cycle(6);
        let path = bfs(&g, 0, &FaultSet::empty()).path_to(3).unwrap();
        let r = naive_single_pair(&g, 0, 3, path);
        assert_eq!(r.entries().len(), 3);
        for e in r.entries() {
            assert_eq!(e.dist, Some(3), "reroute the other way around");
        }
    }

    #[test]
    fn naive_subset_covers_all_pairs() {
        let g = generators::petersen();
        let r = naive_subset_rp(&g, &[0, 3, 7]);
        assert_eq!(r.pair_count(), 3);
        assert!(r.pair(0, 3).is_some());
        assert!(r.pair(3, 0).is_some(), "pairs are unordered");
        assert!(r.pair(0, 9).is_none());
    }

    #[test]
    fn per_pair_matches_naive() {
        let g = generators::connected_gnm(18, 40, 5);
        let sources = [0, 5, 9, 17];
        let naive = naive_subset_rp(&g, &sources);
        let fast = per_pair_subset_rp(&g, &sources, 11);
        for (i, &s) in sources.iter().enumerate() {
            for &t in &sources[i + 1..] {
                let a = naive.pair(s, t).unwrap();
                let b = fast.pair(s, t).unwrap();
                assert_eq!(a.base_dist(), b.base_dist());
                // Distances must agree on every edge both consider.
                for entry in b.entries() {
                    assert_eq!(
                        entry.dist,
                        a.result().dist_after_fault(entry.edge),
                        "pair ({s},{t}) edge {}",
                        entry.edge
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "valid path")]
    fn invalid_path_rejected() {
        let g = generators::cycle(4);
        let bogus = Path::new(vec![0, 2]);
        let _ = naive_single_pair(&g, 0, 2, bogus);
    }
}
