//! Restorable shortest path tiebreaking for edge-faulty graphs — a full
//! Rust reproduction of Bodwin & Parter (PODC 2021).
//!
//! This facade crate re-exports the workspace so downstream users can
//! depend on one crate:
//!
//! * [`arith`] — exact arithmetic ([`arith::BigInt`], path costs);
//! * [`graph`] — CSR graphs, BFS, exact-weight Dijkstra, fault sets,
//!   routing tables, generators, and the query engine: reusable
//!   [`graph::SearchScratch`] state, batched `sources × fault_sets`
//!   queries with shared search prefixes ([`graph::dijkstra_batch`]), and
//!   worker-pool fan-out ([`graph::dijkstra_batch_par`]);
//! * [`core`] — **the paper's contribution**: antisymmetric tiebreaking
//!   weight functions (Theorems 20, 23, Corollary 22), the induced
//!   consistent/stable/restorable schemes (Theorem 19), restoration by
//!   concatenation (Theorem 2), and the Theorem 37 impossibility search;
//! * [`replacement`] — single-pair replacement paths (Theorem 28) and
//!   subset-rp Algorithm 1 (Theorem 3);
//! * [`preserver`] — fault-tolerant distance preservers (Theorems 26,
//!   31) and the Theorem 27 lower-bound family (Figures 2–3);
//! * [`spanner`] — fault-tolerant +4 additive spanners (Lemma 32,
//!   Theorem 7);
//! * [`labeling`] — fault-tolerant exact distance labels (Theorem 10);
//! * [`oracle`] — **the recommended serving API**: immutable compiled
//!   routing snapshots ([`oracle::OracleSnapshot`]) served lock-free to
//!   any number of reader threads through epoch-swapped
//!   [`oracle::Oracle`] / [`oracle::OracleReader`] handles — use this,
//!   not the raw engines, when answering live `(s, t, F)` queries;
//! * [`congest`] — the CONGEST simulator and distributed constructions
//!   (Lemma 34, Theorem 35, Lemma 36, Theorem 8, Corollary 9);
//! * [`dag`] — the Section 1.2 future-work direction: DAG substrate and
//!   the empirical DAG restoration experiments;
//! * [`mpls`] — the motivating MPLS failover application.
//!
//! Each crate's own documentation opens with a **paper cross-reference
//! table** mapping its modules to the theorems, definitions, and sections
//! of PAPER.md; `docs/ARCHITECTURE.md` at the repository root is the
//! canonical guide-level architecture — the crate layering, the
//! three-level query engine (scratch -> batch/checkpoint ->
//! pool/frontier), the preserver enumeration pipeline, and the serving
//! layer's control/data-plane split — which README.md's "Architecture"
//! section summarizes.
//!
//! # Quickstart
//!
//! ```
//! use restorable_tiebreaking::core::{RandomGridAtw, restore_single_fault};
//! use restorable_tiebreaking::graph::{generators, FaultSet};
//!
//! // 1. Build a restorable tiebreaking scheme for your network.
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//!
//! // 2. A link fails: rebuild the shortest route from stored paths only.
//! let failed = g.edge_between(5, 6).unwrap();
//! let path = restore_single_fault(&scheme, 0, 15, failed).unwrap();
//! assert!(path.avoids(&g, &FaultSet::single(failed)));
//! ```
//!
//! # Serving queries
//!
//! To *serve* fault queries (rather than run one-off computations),
//! compile the scheme into an immutable snapshot and read it lock-free
//! — see the "Serving layer" chapter of `docs/ARCHITECTURE.md`:
//!
//! ```
//! use restorable_tiebreaking::core::RandomGridAtw;
//! use restorable_tiebreaking::graph::{generators, FaultSet};
//! use restorable_tiebreaking::oracle::Oracle;
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//! let oracle = Oracle::build(&scheme); // control plane: compile + publish
//! let mut reader = oracle.reader(); // data plane: one handle per thread
//! assert_eq!(reader.dist(0, 15, &FaultSet::single(0)), Some(6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rsp_arith as arith;
pub use rsp_congest as congest;
pub use rsp_core as core;
pub use rsp_dag as dag;
pub use rsp_graph as graph;
pub use rsp_labeling as labeling;
pub use rsp_mpls as mpls;
pub use rsp_oracle as oracle;
pub use rsp_preserver as preserver;
pub use rsp_replacement as replacement;
pub use rsp_spanner as spanner;
