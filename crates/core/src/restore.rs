//! Restoration by concatenation: rebuilding replacement paths from stored
//! selected paths, the operation the restoration lemma is about.
//!
//! Given a scheme `π` and a fault set `F`, a replacement `s ⇝ t` path is
//! sought of the form `π(s, x | F′) ∘ reverse(π(t, x | F′))` for some
//! midpoint `x` and proper fault subset `F′ ⊊ F` (Definition 17). For an
//! `f`-restorable scheme this *always* succeeds; for an arbitrary scheme it
//! can fail — that gap is the paper's subject, quantified by
//! [`restoration_stats`] (experiment E1).

use std::ops::ControlFlow;

use rsp_graph::{bfs_into, connected_pair, parallel_indexed, BfsTree, FaultSet, Path, Vertex};

use crate::scheme::{Rpts, RptsScratch};

/// Attempts to restore a shortest `s ⇝ t` replacement path avoiding `F` by
/// concatenating two selected paths (Definition 17).
///
/// Scans proper fault subsets `F′ ⊊ F` in increasing size and midpoints
/// `x`; returns the first concatenation `π(s, x | F′) ∘ reverse(π(t, x |
/// F′))` that avoids all of `F` and has exactly the replacement-path
/// length `dist_{G\F}(s, t)`. Returns `None` if either no `s ⇝ t` path
/// survives in `G \ F`, or the scheme fails to be restorable on this
/// instance.
///
/// For `s == t` the trivial path is returned.
///
/// # Examples
///
/// ```
/// use rsp_core::{RandomGridAtw, restore_by_concatenation};
/// use rsp_graph::{generators, FaultSet};
///
/// let g = generators::petersen();
/// let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
/// let e = g.edge_between(0, 1).unwrap();
/// let p = restore_by_concatenation(&scheme, 0, 1, &FaultSet::single(e)).unwrap();
/// assert!(p.avoids(&g, &FaultSet::single(e)));
/// assert_eq!(p.hops(), 4); // girth-5 reroute around the failed edge
/// ```
pub fn restore_by_concatenation<S: Rpts>(
    scheme: &S,
    s: Vertex,
    t: Vertex,
    faults: &FaultSet,
) -> Option<Path> {
    let mut scratch = scheme.new_scratch();
    restore_by_concatenation_with(scheme, s, t, faults, &mut scratch)
}

/// [`restore_by_concatenation`] reusing scheme search state across calls.
///
/// Restoration sweeps (experiment E1, [`restoration_stats`], the
/// restorability verifier) issue one attempt per `(s, t, F)` instance;
/// passing one [`Rpts::new_scratch`] allocation through all of them keeps
/// the underlying tree queries allocation-free.
pub fn restore_by_concatenation_with<S: Rpts>(
    scheme: &S,
    s: Vertex,
    t: Vertex,
    faults: &FaultSet,
    scratch: &mut RptsScratch,
) -> Option<Path> {
    let g = scheme.graph();
    if s == t {
        return Some(Path::trivial(s));
    }
    if faults.is_empty() {
        // Nothing failed: the selected path is its own restoration.
        return scheme.path_with(s, t, faults, scratch);
    }
    let target_dist = {
        let truth = scratch.bfs_scratch();
        bfs_into(g, s, faults, truth);
        truth.dist(t)?
    };

    // Order proper subsets by size: stability usually makes small subsets
    // succeed, and the f = 1 case then needs only the non-faulty tables.
    let mut subsets: Vec<FaultSet> = faults.proper_subsets().collect();
    subsets.sort_by_key(|f| f.len());

    // One batched sweep: all subset trees from `s` arrive first (sharing
    // their settled search prefix — see `Rpts::for_each_tree`), then the
    // trees from `t`. As each `t` tree lands, its subset is complete, so
    // the midpoint scan runs immediately and a success breaks the sweep
    // before the remaining `t` trees are computed.
    let mut trees_s: Vec<Option<BfsTree>> = (0..subsets.len()).map(|_| None).collect();
    let mut restored: Option<Path> = None;
    scheme.for_each_tree(&[s, t], &subsets, scratch, &mut |si, fi, tree| {
        if si == 0 {
            trees_s[fi] = Some(tree);
            return ControlFlow::Continue(());
        }
        let tree_s = trees_s[fi].as_ref().expect("s trees precede t trees");
        let tree_t = &tree;
        for x in g.vertices() {
            let (Some(ps), Some(pt)) = (tree_s.path_to(x), tree_t.path_to(x)) else {
                continue;
            };
            if ps.hops() + pt.hops() != target_dist as usize {
                continue;
            }
            if !ps.avoids(g, faults) || !pt.avoids(g, faults) {
                continue;
            }
            let joined = ps.join_at(&pt).expect("both paths end at x");
            debug_assert!(joined.is_valid_in(g));
            restored = Some(joined);
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });
    restored
}

/// The single-fault fast path: restoration using only the *non-faulty*
/// routing tables (`F′ = ∅`), the exact MPLS scenario of Section 1.
///
/// Equivalent to [`restore_by_concatenation`] with `|F| = 1`, but computes
/// the two trees once with no subset scan.
pub fn restore_single_fault<S: Rpts>(
    scheme: &S,
    s: Vertex,
    t: Vertex,
    failed_edge: rsp_graph::EdgeId,
) -> Option<Path> {
    let mut scratch = scheme.new_scratch();
    restore_single_fault_with(scheme, s, t, failed_edge, &mut scratch)
}

/// [`restore_single_fault`] reusing scheme search state across calls.
pub fn restore_single_fault_with<S: Rpts>(
    scheme: &S,
    s: Vertex,
    t: Vertex,
    failed_edge: rsp_graph::EdgeId,
    scratch: &mut RptsScratch,
) -> Option<Path> {
    let g = scheme.graph();
    let faults = FaultSet::single(failed_edge);
    if s == t {
        return Some(Path::trivial(s));
    }
    let target_dist = {
        let truth = scratch.bfs_scratch();
        bfs_into(g, s, &faults, truth);
        truth.dist(t)?
    };
    let empty = [FaultSet::empty()];
    let mut pair: [Option<BfsTree>; 2] = [None, None];
    scheme.for_each_tree(&[s, t], &empty, scratch, &mut |si, _, tree| {
        pair[si] = Some(tree);
        ControlFlow::Continue(())
    });
    let [Some(tree_s), Some(tree_t)] = pair else { unreachable!("both roots visited") };
    for x in g.vertices() {
        let (Some(ps), Some(pt)) = (tree_s.path_to(x), tree_t.path_to(x)) else {
            continue;
        };
        if ps.hops() + pt.hops() != target_dist as usize {
            continue;
        }
        if !ps.avoids(g, &faults) || !pt.avoids(g, &faults) {
            continue;
        }
        return ps.join_at(&pt);
    }
    None
}

/// Aggregate outcome of restoration attempts over many instances
/// (experiment E1: the Figure 1 phenomenon, quantified).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RestorationStats {
    /// Instances where an `s ⇝ t` path survives in `G \ F`.
    pub attempted: usize,
    /// Instances restored by concatenation of selected paths.
    pub restored: usize,
    /// Instances where no midpoint/subset concatenation works.
    pub failed: usize,
    /// Failing instances, as `(s, t, fault set)`, capped at 32 entries.
    pub failures: Vec<(Vertex, Vertex, FaultSet)>,
}

impl RestorationStats {
    /// Fraction of attempted instances that could not be restored.
    pub fn failure_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.failed as f64 / self.attempted as f64
        }
    }
}

/// Runs [`restore_by_concatenation`] over every ordered pair and every
/// single-edge fault, tallying successes and failures.
///
/// For a restorable scheme the failure count is provably zero (Theorem 19);
/// for the BFS baseline it is typically positive already on small graphs —
/// that contrast is experiment E1.
pub fn restoration_stats<S: Rpts>(scheme: &S) -> RestorationStats {
    let g = scheme.graph();
    let mut stats = RestorationStats::default();
    let mut scratch = scheme.new_scratch();
    let mut faults = FaultSet::empty();
    for (e, _, _) in g.edges() {
        faults.replace_single(e);
        for s in g.vertices() {
            for t in g.vertices() {
                if s == t || !connected_pair(g, s, t, &faults) {
                    continue;
                }
                stats.attempted += 1;
                match restore_by_concatenation_with(scheme, s, t, &faults, &mut scratch) {
                    Some(_) => stats.restored += 1,
                    None => {
                        stats.failed += 1;
                        if stats.failures.len() < 32 {
                            stats.failures.push((s, t, faults.clone()));
                        }
                    }
                }
            }
        }
    }
    stats
}

/// [`restoration_stats`] with single-edge faults fanned out over a worker
/// pool (one scheme scratch per worker).
///
/// Tallies are merged in edge order, so the aggregate (and the ≤ 32
/// recorded failures) is identical to the sequential sweep for every
/// worker count.
pub fn restoration_stats_par<S: Rpts + Sync>(scheme: &S, workers: usize) -> RestorationStats {
    let g = scheme.graph();
    let per_edge = parallel_indexed(
        g.m(),
        workers,
        |_| scheme.new_scratch(),
        |scratch, e| {
            let faults = FaultSet::single(e);
            let mut stats = RestorationStats::default();
            for s in g.vertices() {
                for t in g.vertices() {
                    if s == t || !connected_pair(g, s, t, &faults) {
                        continue;
                    }
                    stats.attempted += 1;
                    match restore_by_concatenation_with(scheme, s, t, &faults, scratch) {
                        Some(_) => stats.restored += 1,
                        None => {
                            stats.failed += 1;
                            if stats.failures.len() < 32 {
                                stats.failures.push((s, t, faults.clone()));
                            }
                        }
                    }
                }
            }
            stats
        },
    );
    let mut total = RestorationStats::default();
    for stats in per_edge {
        total.attempted += stats.attempted;
        total.restored += stats.restored;
        total.failed += stats.failed;
        for failure in stats.failures {
            if total.failures.len() < 32 {
                total.failures.push(failure);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{BfsOrder, BfsScheme};
    use crate::random_atw::RandomGridAtw;
    use rsp_graph::{bfs, generators};

    #[test]
    fn restores_across_single_faults_on_cycle() {
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 11).into_scheme();
        for (e, _, _) in g.edges() {
            for s in g.vertices() {
                for t in g.vertices() {
                    let p = restore_by_concatenation(&scheme, s, t, &FaultSet::single(e))
                        .expect("cycle minus an edge stays connected");
                    assert!(p.avoids(&g, &FaultSet::single(e)));
                    let truth = bfs(&g, s, &FaultSet::single(e)).dist(t).unwrap();
                    assert_eq!(p.hops() as u32, truth);
                }
            }
        }
    }

    #[test]
    fn single_fault_fast_path_agrees() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        for (e, _, _) in g.edges().take(5) {
            for s in [0, 3, 7] {
                for t in [1, 5, 9] {
                    let a = restore_single_fault(&scheme, s, t, e).map(|p| p.hops());
                    let b = restore_by_concatenation(&scheme, s, t, &FaultSet::single(e))
                        .map(|p| p.hops());
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn disconnection_returns_none() {
        let g = generators::path_graph(4);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let e = g.edge_between(1, 2).unwrap();
        assert!(restore_by_concatenation(&scheme, 0, 3, &FaultSet::single(e)).is_none());
    }

    #[test]
    fn trivial_pair_restores() {
        let g = generators::cycle(4);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let p = restore_by_concatenation(&scheme, 2, 2, &FaultSet::single(0)).unwrap();
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn two_fault_restoration_uses_proper_subsets() {
        // On a 6-cycle with two failed edges the survivors still connect
        // some pairs; restoration must find F' among {}, {e1}, {e2}.
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 17).into_scheme();
        let e1 = g.edge_between(0, 1).unwrap();
        let e2 = g.edge_between(3, 4).unwrap();
        let faults = FaultSet::from_edges([e1, e2]);
        // 1,2,3 remain mutually connected; 4,5,0 likewise.
        for (s, t) in [(1, 3), (2, 1), (4, 0), (5, 4)] {
            let p = restore_by_concatenation(&scheme, s, t, &faults).unwrap();
            assert!(p.avoids(&g, &faults));
            assert_eq!(p.hops() as u32, bfs(&g, s, &faults).dist(t).unwrap());
        }
        // Cross-component pairs fail cleanly.
        assert!(restore_by_concatenation(&scheme, 1, 4, &faults).is_none());
    }

    #[test]
    fn stats_zero_failures_for_atw_scheme() {
        let g = generators::cycle(4);
        let scheme = RandomGridAtw::theorem20(&g, 23).into_scheme();
        let stats = restoration_stats(&scheme);
        assert!(stats.attempted > 0);
        assert_eq!(stats.failed, 0, "ATW schemes are provably 1-restorable");
        assert_eq!(stats.failure_rate(), 0.0);
    }

    #[test]
    fn parallel_stats_match_sequential() {
        for (g, seed) in [(generators::cycle(5), 3u64), (generators::grid(3, 3), 4)] {
            let scheme = RandomGridAtw::theorem20(&g, seed).into_scheme();
            let seq = restoration_stats(&scheme);
            for workers in [1, 2, 8] {
                assert_eq!(restoration_stats_par(&scheme, workers), seq, "workers={workers}");
            }
        }
        // Failure recording must also be deterministic across worker counts.
        let g = generators::grid(3, 3);
        let naive = BfsScheme::new(&g, BfsOrder::Ascending);
        let seq = restoration_stats(&naive);
        assert!(seq.failed > 0);
        for workers in [2, 8] {
            assert_eq!(restoration_stats_par(&naive, workers), seq, "workers={workers}");
        }
    }

    #[test]
    fn naive_scheme_fails_somewhere() {
        // The Figure 1 phenomenon: the BFS baseline is not restorable.
        // The 4-cycle alone does not defeat BFS-order (its failure needs
        // symmetric selections), but tie-rich grids do.
        let g = generators::grid(3, 3);
        let scheme = BfsScheme::new(&g, BfsOrder::Ascending);
        let stats = restoration_stats(&scheme);
        assert!(
            stats.failed > 0,
            "expected the naive scheme to fail on a tie-rich grid: {stats:?}"
        );
    }
}
