//! Fault-tolerant +4 additive spanners (Section 4.4 of Bodwin & Parter).
//!
//! An `f`-FT +4 additive spanner (Definition 6) is a subgraph `H` with
//! `dist_{H\F}(s, t) ≤ dist_{G\F}(s, t) + 4` for **all** vertex pairs and
//! all `|F| ≤ f`. The paper's construction (Lemma 32):
//!
//! 1. sample `σ` random *cluster centers* `C`;
//! 2. every vertex with `≥ f + 1` neighbors in `C` keeps `f + 1` of those
//!    edges (after `f` faults one surviving adjacency remains — this is
//!    where the fault budget enters); every other vertex keeps **all** its
//!    edges;
//! 3. add an `f`-FT `C × C` subset distance preserver (Theorem 31, built
//!    from the restorable tiebreaking scheme).
//!
//! Balancing `σ` per Theorem 33 gives the `O_f(n^{1+2^{f'}/(2^{f'}+1)})`
//! sizes (the theorem's `f'` is our tolerated-fault count minus one). The
//! stretch analysis routes any replacement path through the first and last
//! clustered vertices' centers, paying `+2` at each end.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`Spanner`], [`ft_additive_spanner`] | Definition 6 / Lemma 32: clustering + `C × C` subset preserver |
//! | [`theorem33_sigma`] | Theorem 33's center-count balance (Theorem 7 sizes) |
//! | [`verify_spanner_stretch`] | the `+4` stretch guarantee, checked against ground truth |
//!
//! # Examples
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_spanner::{ft_additive_spanner, verify_spanner_stretch};
//! use rsp_graph::{generators, FaultSet};
//!
//! let g = generators::connected_gnm(40, 140, 1);
//! let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
//! let spanner = ft_additive_spanner(&scheme, 6, 1, 7);
//! let faults: Vec<FaultSet> = (0..5).map(FaultSet::single).collect();
//! verify_spanner_stretch(&g, &spanner, 4, &faults).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustering;
mod verify;

pub use clustering::{ft_additive_spanner, theorem33_sigma, Spanner};
pub use verify::{verify_spanner_stretch, StretchViolation};
