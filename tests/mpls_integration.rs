//! MPLS failover over random topologies: every single-link failure must
//! be restored optimally by table splicing when the tables come from a
//! restorable scheme.

use restorable_tiebreaking::core::RandomGridAtw;
use restorable_tiebreaking::graph::{connected_pair, generators, FaultSet};
use restorable_tiebreaking::mpls::{MplsError, MplsNetwork};

#[test]
fn every_single_failure_restores_optimally_on_random_graphs() {
    for seed in 0..3 {
        let g = generators::connected_gnm(20, 45, seed);
        let scheme = RandomGridAtw::theorem20(&g, seed + 9).into_scheme();
        for (e, _, _) in g.edges() {
            for (s, t) in [(0, 19), (5, 12)] {
                let mut net = MplsNetwork::new(&scheme);
                let lsp = net.establish(s, t).expect("connected");
                net.fail_edge(e);
                match net.restore(lsp) {
                    Ok(report) => {
                        assert_eq!(
                            report.restored_path.hops() as u32,
                            report.optimal_hops,
                            "seed {seed} pair ({s},{t}) edge {e}"
                        );
                        assert!(report.restored_path.avoids(&g, &FaultSet::single(e)));
                    }
                    Err(MplsError::Disconnected { .. }) => {
                        assert!(
                            !connected_pair(&g, s, t, &FaultSet::single(e)),
                            "disconnection report must be genuine"
                        );
                    }
                    Err(other) => panic!("restorable tables failed: {other}"),
                }
            }
        }
    }
}

#[test]
fn sequential_failures_with_repair() {
    // Fail, restore, repair, fail another link: the network object keeps
    // consistent state throughout.
    let g = generators::torus(4, 5);
    let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
    let mut net = MplsNetwork::new(&scheme);
    let lsp = net.establish(0, 11).unwrap();
    let original = net.lsp(lsp).unwrap().path().clone();

    let e1 = original.edge_ids(net.graph()).unwrap()[0];
    net.fail_edge(e1);
    let r1 = net.restore(lsp).unwrap();
    assert!(r1.restored_path.avoids(net.graph(), net.failed_edges()));

    net.repair_edge(e1);
    assert!(net.failed_edges().is_empty());

    // Fail an edge of the restored path now.
    let e2 = r1.restored_path.edge_ids(net.graph()).unwrap()[0];
    net.fail_edge(e2);
    let r2 = net.restore(lsp).unwrap();
    assert!(r2.restored_path.avoids(net.graph(), net.failed_edges()));
    assert_eq!(r2.restored_path.hops() as u32, r2.optimal_hops);
}

#[test]
fn multi_lsp_bookkeeping() {
    let g = generators::grid(4, 4);
    let scheme = RandomGridAtw::theorem20(&g, 11).into_scheme();
    let mut net = MplsNetwork::new(&scheme);
    let a = net.establish(0, 15).unwrap();
    let b = net.establish(3, 12).unwrap();
    let c = net.establish(1, 2).unwrap();
    assert_eq!([a, b, c].iter().collect::<std::collections::HashSet<_>>().len(), 3);

    // Fail an edge on LSP a's path only; the others stay clean.
    let ea = net.lsp(a).unwrap().path().edge_ids(net.graph()).unwrap()[0];
    net.fail_edge(ea);
    let affected = net.affected_lsps();
    assert!(affected.contains(&a));
    for id in affected {
        net.restore(id).unwrap();
    }
    assert!(net.affected_lsps().is_empty());
}
