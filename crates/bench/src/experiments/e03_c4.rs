//! **E3 / Theorem 37 (Appendix A)** — the impossibility of symmetric
//! restorable tiebreaking, by exhaustive search, against the asymmetric
//! possibility (Theorem 2) on the same graphs.

use rsp_core::c4::search_symmetric_1_restorable;
use rsp_core::verify::{all_fault_sets, verify_restorability};
use rsp_core::RandomGridAtw;
use rsp_graph::generators;

use crate::reporting::Table;

/// Runs E3 and prints the table.
pub fn run(_quick: bool) {
    let mut table = Table::new(
        "E3 (Theorem 37): symmetric schemes vs asymmetric ATW",
        &["graph", "symmetric schemes", "any symmetric 1-restorable?", "ATW 1-restorable?"],
    );
    let cases = vec![
        ("C4", generators::cycle(4)),
        ("C5", generators::cycle(5)),
        ("C6", generators::cycle(6)),
        ("path-4", generators::path_graph(4)),
        ("K4", generators::complete(4)),
    ];
    for (name, g) in cases {
        let search = search_symmetric_1_restorable(&g, 64, 1_000_000)
            .expect("search space fits the caps on these graphs");
        let atw = RandomGridAtw::theorem20(&g, 3).into_scheme();
        let atw_ok = verify_restorability(&atw, &all_fault_sets(g.m(), 1)).is_ok();
        assert!(atw_ok, "Theorem 2 on {name}");
        if name == "C4" {
            assert!(search.witness.is_none(), "Theorem 37: C4 defeats symmetry");
            assert_eq!(search.schemes_tried, 4);
        }
        table.row(&[
            name.to_string(),
            search.schemes_tried.to_string(),
            if search.witness.is_some() { "yes" } else { "no (impossible)" }.to_string(),
            if atw_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "shape check: C4 (and even cycles generally) admit NO symmetric\n\
         1-restorable scheme, while the asymmetric ATW selection always works.\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_runs() {
        super::run(true);
    }
}
