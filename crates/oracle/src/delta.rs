//! Incremental snapshot builds: patch the predecessor instead of
//! recompiling every tree.
//!
//! A full [`crate::SnapshotBuilder`] run costs one exact SPT per
//! serving source — on a 16×16 grid with 256 sources, ~9ms per churn
//! epoch. But a single fault event changes each tree only in the
//! subtree hanging off the failed edge (and a repair only in the region
//! the restored edge improves), so per-epoch work should be
//! proportional to the *change*. [`DeltaBuilder`] delivers that:
//!
//! * **Fault arrival** (edge `e` fails): per source row, if `e` is not
//!   a tree edge the row is **provably unchanged** (removing a non-tree
//!   edge deletes no selected path and creates none) and is shared with
//!   the predecessor snapshot by [`std::sync::Arc`] clone — zero copy,
//!   zero recompute. If `e` is a tree edge, the detached subtree is
//!   collected in work proportional to its degree sum
//!   ([`rsp_graph::SubtreeScratch`]), its cells are cleared, and the
//!   subtree is reattached by **best-swap selection**: every non-tree
//!   edge crossing the cut seeds a candidate (`cost[outside] + w`) and
//!   a localized Dijkstra wave settles only the detached vertices, in
//!   exactly the engine's `(cost, vertex)` order.
//! * **Fault repair** (edge `e` restored): the endpoints are relaxed
//!   through `e`; if neither strictly improves the row is unchanged
//!   (shared), otherwise a decrease-propagation wave (Ramalingam–Reps
//!   style) re-settles exactly the improved region.
//! * **Batched events** are applied as sequential exact patches: each
//!   step patches against the correct intermediate fault set, so the
//!   final rows equal a from-scratch build at the target set.
//!
//! Equality with the full rebuild is *forced*, not hoped for: the
//! tiebreaking weights are tie-free (w.h.p., Theorem 20), so the
//! selected SPT per source is unique and any correct localized
//! recomputation must reproduce it cell for cell. Where that assumption
//! could bite — a genuine cost tie surfacing inside a patched region —
//! the builder detects the tie during relaxation and **refuses**
//! ([`DeltaUnsupported::TieDetected`]) instead of guessing, and the
//! churn pipeline falls back to the canonical full rebuild. The
//! pipeline additionally keeps its sampled `dijkstra_batch` cross-check
//! as the runtime correctness gate on every delta-built snapshot, and
//! `crates/oracle/tests/delta_equivalence.rs` pins delta-enabled
//! pipelines cell-by-cell against rebuild-only ones at every epoch.
//!
//! # Examples
//!
//! Patch one arrival and verify the copy-on-write sharing:
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_graph::{generators, FaultSet};
//! use rsp_oracle::delta::DeltaBuilder;
//! use rsp_oracle::OracleSnapshot;
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//! let prev = OracleSnapshot::builder(&scheme).version(1).build();
//!
//! let e = g.edge_between(0, 1).unwrap();
//! let faults = FaultSet::single(e);
//! let (snap, stats) = DeltaBuilder::new(&prev).version(2).build(&faults).unwrap();
//!
//! // The delta result is cell-identical to a from-scratch build...
//! let full = OracleSnapshot::builder(&scheme).base_faults(faults.clone()).build();
//! for s in g.vertices() {
//!     let a = snap.baseline(s).unwrap();
//!     let b = full.baseline(s).unwrap();
//!     for v in g.vertices() {
//!         assert_eq!(a.dist(v), b.dist(v));
//!         assert_eq!(a.parent(v), b.parent(v));
//!         assert_eq!(a.cost(v), b.cost(v));
//!     }
//! }
//! // ...but only the rows whose tree used the failed edge were
//! // recomputed; every other row is shared storage with `prev`.
//! assert!(stats.rows_shared > 0 && stats.rows_patched > 0);
//! assert_eq!(stats.rows_shared + stats.rows_patched, g.n());
//! let shared = g.vertices().filter(|&s| snap.shares_row_storage(&prev, s)).count();
//! assert_eq!(shared, stats.rows_shared);
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::Arc;

use rsp_arith::PathCost;
use rsp_graph::{
    tree_edge_child, DirectedCosts, EdgeCostSource, EdgeId, FaultSet, Graph, SubtreeScratch, Vertex,
};

use crate::snapshot::{BuildError, OracleSnapshot, TreeRow, NONE};

/// Why a delta build refused a configuration it could not patch
/// *exactly*. Structural refusals — the churn pipeline answers them by
/// running the canonical full rebuild in the same attempt, without
/// burning a retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaUnsupported {
    /// The predecessor snapshot carries compiled label/preserver
    /// artifacts, which a row patch cannot keep consistent.
    DerivedArtifacts,
    /// The predecessor snapshot has rows quarantined by the integrity
    /// scrubber ([`crate::scrub`]). A patch derives new rows from the
    /// predecessor's cells, so patching from a row known to be corrupt
    /// would propagate the corruption; the full rebuild recomputes
    /// every row from the graph (and lifts all quarantines).
    QuarantinedRows {
        /// How many rows were quarantined.
        rows: usize,
    },
    /// A genuine cost tie surfaced inside a patched region: the
    /// selected tree is not forced there, so the builder refuses
    /// rather than risk disagreeing with the canonical engine's
    /// tie-resolution order.
    TieDetected {
        /// The serving source whose row exposed the tie.
        source: Vertex,
    },
}

impl std::fmt::Display for DeltaUnsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaUnsupported::DerivedArtifacts => {
                write!(f, "predecessor carries label/preserver artifacts a patch cannot update")
            }
            DeltaUnsupported::QuarantinedRows { rows } => {
                write!(f, "predecessor has {rows} quarantined rows a patch would propagate")
            }
            DeltaUnsupported::TieDetected { source } => {
                write!(f, "cost tie inside the patched region of source {source}'s tree")
            }
        }
    }
}

impl std::error::Error for DeltaUnsupported {}

/// Why [`DeltaBuilder::build`] failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The configuration cannot be patched exactly; fall back to a full
    /// rebuild (see [`DeltaUnsupported`]).
    Unsupported(DeltaUnsupported),
    /// The target fault set failed validation against the graph (same
    /// errors as [`crate::SnapshotBuilder::try_build`]).
    Build(BuildError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Unsupported(u) => write!(f, "delta unsupported: {u}"),
            DeltaError::Build(e) => write!(f, "delta rejected configuration: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// What a successful [`DeltaBuilder::build`] did — the proof that
/// "delta" meant "patched", not "silently rebuilt".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Fault-set diff steps applied (arrivals + repairs between the
    /// predecessor's base faults and the target set).
    pub events_applied: usize,
    /// Rows recomputed (at least one cell rewritten); their storage is
    /// a fresh allocation.
    pub rows_patched: usize,
    /// Rows shared with the predecessor snapshot by Arc pointer —
    /// untouched by every step.
    pub rows_shared: usize,
    /// Cells adopted across all localized waves (each adoption writes
    /// one `(parent, hop, cost)` cell; the full rebuild writes
    /// `sources × n` of them).
    pub cells_recomputed: usize,
}

/// Patches a predecessor [`OracleSnapshot`] to a new base fault set
/// instead of rebuilding it — see the [module docs](self) for the
/// algorithm and the exactness argument.
///
/// The builder borrows the predecessor immutably; [`DeltaBuilder::build`]
/// returns a new snapshot whose untouched rows share the predecessor's
/// storage ([`OracleSnapshot::shares_row_storage`]).
#[derive(Debug)]
pub struct DeltaBuilder<'a, C> {
    prev: &'a OracleSnapshot<C>,
    version: u64,
}

impl<'a, C: PathCost + 'static> DeltaBuilder<'a, C> {
    /// Starts a delta build from the predecessor snapshot.
    pub fn new(prev: &'a OracleSnapshot<C>) -> Self {
        DeltaBuilder { prev, version: 0 }
    }

    /// Tags the patched snapshot with a version (default 0), exactly
    /// like [`crate::SnapshotBuilder::version`].
    pub fn version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Builds the snapshot serving `G \ target`: diffs `target` against
    /// the predecessor's base faults, applies each arrival as a
    /// detach-and-reattach patch and each repair as a
    /// decrease-propagation patch, and shares every untouched row.
    ///
    /// Returns the patched snapshot and the [`DeltaStats`] describing
    /// how much work the patch actually did.
    ///
    /// # Errors
    ///
    /// [`DeltaError::Build`] on an out-of-range fault edge;
    /// [`DeltaError::Unsupported`] when the configuration cannot be
    /// patched exactly (see [`DeltaUnsupported`]) — callers fall back
    /// to [`crate::SnapshotBuilder`].
    pub fn build(self, target: &FaultSet) -> Result<(OracleSnapshot<C>, DeltaStats), DeltaError> {
        let g = self.prev.graph();
        if let Some(edge) = target.iter().find(|&e| e >= g.m()) {
            return Err(DeltaError::Build(BuildError::BaseFaultOutOfRange { edge, m: g.m() }));
        }
        if self.prev.has_derived_artifacts() {
            return Err(DeltaError::Unsupported(DeltaUnsupported::DerivedArtifacts));
        }
        let quarantined = self.prev.quarantined_rows();
        if quarantined > 0 {
            return Err(DeltaError::Unsupported(DeltaUnsupported::QuarantinedRows {
                rows: quarantined,
            }));
        }

        let base = self.prev.base_faults();
        let arrivals: Vec<EdgeId> = target.iter().filter(|&e| !base.contains(e)).collect();
        let repairs: Vec<EdgeId> = base.iter().filter(|&e| !target.contains(e)).collect();

        // Cheap: rows are Arc'd, so this clone shares every tree.
        let mut snap = self.prev.clone();
        snap.set_version(self.version);

        let sources: Vec<Vertex> = self.prev.sources().to_vec();
        let mut patcher = Patcher::new(g, self.prev.scheme().directed_costs());
        let mut cur = base.clone();

        for &e in &arrivals {
            cur.insert(e);
            for (row, &s) in sources.iter().enumerate() {
                patcher
                    .patch_arrival(&mut snap, row, s, e, &cur)
                    .map_err(DeltaError::Unsupported)?;
            }
        }
        for &e in &repairs {
            cur.remove(e);
            for (row, &s) in sources.iter().enumerate() {
                patcher
                    .patch_repair(&mut snap, row, s, e, &cur)
                    .map_err(DeltaError::Unsupported)?;
            }
        }

        debug_assert_eq!(&cur, target, "diff steps reproduce the target fault set");
        snap.set_base_faults(cur);

        let mut stats = patcher.stats;
        stats.events_applied = arrivals.len() + repairs.len();
        for row in 0..sources.len() {
            if Arc::ptr_eq(snap.row_arc(row), self.prev.row_arc(row)) {
                stats.rows_shared += 1;
            } else {
                stats.rows_patched += 1;
            }
        }
        Ok((snap, stats))
    }
}

/// `v`'s parent in a tree row, in the `(vertex, edge)` form the cut
/// helpers consume.
fn row_parent<C>(r: &TreeRow<C>, v: Vertex) -> Option<(Vertex, EdgeId)> {
    let p = r.parent_vertex[v];
    (p != NONE).then(|| (p as Vertex, r.parent_edge[v] as EdgeId))
}

/// Reusable per-build state for the localized patch waves: the lazy
/// `(cost, vertex)` heap, a candidate-cost buffer, and the subtree
/// scratch — allocated once, reused across every `(event, row)` pair.
struct Patcher<'g, C: PathCost> {
    g: &'g Graph,
    costs: DirectedCosts<'g, C>,
    heap: BinaryHeap<Reverse<(C, Vertex)>>,
    cand: C,
    subtree: SubtreeScratch,
    detached: Vec<Vertex>,
    source: Vertex,
    stats: DeltaStats,
}

impl<'g, C: PathCost + 'static> Patcher<'g, C> {
    fn new(g: &'g Graph, costs: DirectedCosts<'g, C>) -> Self {
        Patcher {
            g,
            costs,
            heap: BinaryHeap::new(),
            cand: C::zero(),
            subtree: SubtreeScratch::with_capacity(g.n()),
            detached: Vec::new(),
            source: 0,
            stats: DeltaStats::default(),
        }
    }

    /// Applies the arrival of `e` to one row. `cur` already contains
    /// `e`. Rows where `e` is off-tree are untouched (and stay shared).
    fn patch_arrival(
        &mut self,
        snap: &mut OracleSnapshot<C>,
        row_idx: usize,
        source: Vertex,
        e: EdgeId,
        cur: &FaultSet,
    ) -> Result<(), DeltaUnsupported> {
        self.source = source;
        let g = self.g;

        // Read phase: is `e` a tree edge, and what hangs below it? The
        // Arc clone detaches the borrow from `snap` and is dropped
        // before `make_mut`, so an already-unshared row is not cloned.
        let r = Arc::clone(snap.row_arc(row_idx));
        let Some(child) = tree_edge_child(g, e, |v| row_parent(&r, v)) else {
            return Ok(());
        };
        let mut detached = std::mem::take(&mut self.detached);
        self.subtree.collect_subtree(g, child, |v| row_parent(&r, v), &mut detached);
        drop(r);

        // Write phase: clear the detached cells, seed every cut-crossing
        // candidate (best-swap selection: the cheapest reattachment per
        // vertex wins in the heap), and settle the subtree.
        let row = Arc::make_mut(snap.row_arc_mut(row_idx));
        self.heap.clear();
        for &w in &detached {
            row.clear_cell(w);
        }
        let mut outcome = Ok(());
        'seed: for &w in &detached {
            for (x, e2) in g.neighbors(w) {
                // Seed only from *outside* the cut: intra-subtree edges
                // are the wave's job, and relaxing one here would replay
                // the identical candidate later — a spurious "tie".
                if cur.contains(e2) || self.subtree.contains(x) || row.hops[x] == NONE {
                    continue;
                }
                if let Err(u) = self.relax(row, x, e2, w) {
                    outcome = Err(u);
                    break 'seed;
                }
            }
        }
        self.detached = detached;
        outcome?;
        self.wave(row, cur)
        // Detached vertices the wave never reached keep their cleared
        // (unreachable) cells — exactly what a full rebuild stores.
    }

    /// Applies the repair of `e` to one row. `cur` no longer contains
    /// `e`. Rows neither endpoint of `e` improves are untouched.
    fn patch_repair(
        &mut self,
        snap: &mut OracleSnapshot<C>,
        row_idx: usize,
        source: Vertex,
        e: EdgeId,
        cur: &FaultSet,
    ) -> Result<(), DeltaUnsupported> {
        self.source = source;
        let (u, v) = self.g.endpoints(e);

        // Read phase: does the restored edge strictly improve an
        // endpoint? At most one side can (positive weights), and an
        // exact cost tie is a refusal, not a guess.
        let improved = {
            let r = &**snap.row_arc(row_idx);
            let u_reached = r.hops[u] != NONE;
            let v_reached = r.hops[v] != NONE;
            let mut improved = None;
            if u_reached {
                self.costs.accumulate(&r.costs[u], e, u, v, &mut self.cand);
                if !v_reached {
                    improved = Some((u, v));
                } else {
                    match self.cand.cmp(&r.costs[v]) {
                        Ordering::Less => improved = Some((u, v)),
                        Ordering::Equal => {
                            return Err(DeltaUnsupported::TieDetected { source });
                        }
                        Ordering::Greater => {}
                    }
                }
            }
            if improved.is_none() && v_reached {
                self.costs.accumulate(&r.costs[v], e, v, u, &mut self.cand);
                if !u_reached {
                    improved = Some((v, u));
                } else {
                    match self.cand.cmp(&r.costs[u]) {
                        Ordering::Less => improved = Some((v, u)),
                        Ordering::Equal => {
                            return Err(DeltaUnsupported::TieDetected { source });
                        }
                        Ordering::Greater => {}
                    }
                }
            }
            improved
        };
        let Some((from, to)) = improved else { return Ok(()) };

        // Write phase: adopt the improved endpoint and propagate the
        // decrease until the wave dries up.
        let row = Arc::make_mut(snap.row_arc_mut(row_idx));
        self.heap.clear();
        self.relax(row, from, e, to)?;
        self.wave(row, cur)
    }

    /// Relaxes `from --e--> to` against the row's current cells:
    /// adopt on strict improvement (or first reach), refuse on an exact
    /// tie, ignore otherwise. Adopted vertices enter the heap.
    fn relax(
        &mut self,
        row: &mut TreeRow<C>,
        from: Vertex,
        e: EdgeId,
        to: Vertex,
    ) -> Result<(), DeltaUnsupported> {
        self.costs.accumulate(&row.costs[from], e, from, to, &mut self.cand);
        if row.hops[to] != NONE {
            match self.cand.cmp(&row.costs[to]) {
                Ordering::Greater => return Ok(()),
                Ordering::Equal => {
                    return Err(DeltaUnsupported::TieDetected { source: self.source })
                }
                Ordering::Less => {}
            }
        }
        row.costs[to].clone_from(&self.cand);
        row.parent_vertex[to] = from as u32;
        row.parent_edge[to] = e as u32;
        row.hops[to] = row.hops[from] + 1;
        self.stats.cells_recomputed += 1;
        self.heap.push(Reverse((row.costs[to].clone(), to)));
        Ok(())
    }

    /// Drains the heap in the engine's `(cost, vertex)` settle order,
    /// relaxing every non-faulted edge out of each settled vertex.
    /// Entries per vertex have strictly decreasing costs, so "cost
    /// still current" is the complete staleness test.
    fn wave(&mut self, row: &mut TreeRow<C>, cur: &FaultSet) -> Result<(), DeltaUnsupported> {
        let g = self.g;
        while let Some(Reverse((c, w))) = self.heap.pop() {
            if row.hops[w] == NONE || c != row.costs[w] {
                continue;
            }
            for (x, e2) in g.neighbors(w) {
                if cur.contains(e2) {
                    continue;
                }
                self.relax(row, w, e2, x)?;
            }
        }
        Ok(())
    }
}
