//! E1/E2/E3 timing: restoration by concatenation, property verification,
//! and the Theorem 37 exhaustive search.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rsp_core::c4::search_symmetric_1_restorable;
use rsp_core::verify::{all_fault_sets, verify_restorability};
use rsp_core::{restore_by_concatenation, restore_single_fault, RandomGridAtw};
use rsp_graph::{generators, FaultSet};

fn bench_restore(c: &mut Criterion) {
    let g = generators::grid(5, 5);
    let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    let (s, t) = (0, g.n() - 1);
    let e = g.edge_between(0, 1).expect("grid edge");

    c.bench_function("restore/single_fault_grid5x5", |b| {
        b.iter(|| restore_single_fault(&scheme, s, t, e).expect("connected"))
    });

    let faults = FaultSet::from_edges([e, g.edge_between(5, 6).expect("grid edge")]);
    c.bench_function("restore/two_faults_grid5x5", |b| {
        b.iter(|| restore_by_concatenation(&scheme, s, t, &faults).expect("connected"))
    });
}

fn bench_verify(c: &mut Criterion) {
    let g = generators::cycle(6);
    let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
    let singles = all_fault_sets(g.m(), 1);
    c.bench_function("verify/1-restorability_c6", |b| {
        b.iter(|| verify_restorability(&scheme, &singles).expect("restorable"))
    });
}

fn bench_theorem37(c: &mut Criterion) {
    c.bench_function("theorem37/search_c4", |b| {
        b.iter_batched(
            || generators::cycle(4),
            |g| {
                let r = search_symmetric_1_restorable(&g, 16, 10_000).expect("fits caps");
                assert!(r.witness.is_none());
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_restore, bench_verify, bench_theorem37
}
criterion_main!(benches);
