//! Query-engine microbenchmarks: the seed's allocating lazy-deletion
//! Dijkstra versus the indexed decrease-key engine, fresh-scratch and
//! reused-scratch, across the three cost types the tiebreaking schemes use
//! (`u64`, `u128`, `BigInt`) plus the unweighted BFS layer.
//!
//! Each iteration replays a fixed batch of `(source, single-fault)` queries
//! — the access pattern of the restorability, preserver, and replacement
//! experiments. Three engines are compared per workload:
//!
//! * `lazy_alloc` — the pre-scratch engine, reimplemented verbatim: fresh
//!   `O(n)` vectors per query and a `BinaryHeap<Reverse<(C, Vertex)>>` that
//!   clones every relaxed cost into the heap;
//! * `indexed_fresh` — the scratch engine through the allocating wrappers
//!   (one fresh `SearchScratch` per query);
//! * `indexed_reuse` — the scratch engine with one `SearchScratch` reused
//!   across the whole batch (the intended hot-loop shape).
//!
//! Since PR 4 the engine picks its heap per cost type
//! ([`rsp_arith::PathCost::HEAP`]): register-copy costs run a flat
//! inline-key lazy heap, `BigInt` keeps the indexed decrease-key heap. To
//! keep the trajectory diffable *and* the policy split an observed number:
//!
//! * `indexed_reuse` rows are pinned to the indexed engine via
//!   [`rsp_graph::SearchScratch::set_heap_kind`] — the engine PR 2
//!   shipped, directly comparable with `BENCH_2.json`;
//! * `inline_reuse` rows (Copy-cost groups only) run the inline-key
//!   engine the policy now selects for those types — this is the
//!   "policy-selected engine" row;
//! * `indexed_fresh` keeps its historical name but runs whatever the
//!   policy picks (it measures fresh-scratch allocation overhead, which
//!   is engine-independent);
//! * a `u64_gnm20k_80k` group measures both engines on a graph whose
//!   cost array outgrows cache, where the policy gap is widest (the
//!   indexed heap's sift comparisons become random out-of-cache loads).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_arith::PathCost;
use rsp_core::{ExactScheme, GeometricAtw, RandomGridAtw, Rpts};
use rsp_graph::{
    bfs, bfs_into, dijkstra, dijkstra_into, gen, generators, EdgeId, FaultSet, Graph, HeapKind,
    SearchScratch, Vertex,
};

/// Single-fault queries spread across the edge set, all from source 0.
fn fault_batch(g: &Graph, queries: usize) -> Vec<FaultSet> {
    (0..queries).map(|i| FaultSet::single(i * g.m() / queries)).collect()
}

/// The seed engine, kept verbatim as the benchmark baseline: lazy-deletion
/// binary heap, freshly allocated per-query state, costs cloned into the
/// heap on every improving relaxation.
fn lazy_dijkstra<C, F>(g: &Graph, source: Vertex, faults: &FaultSet, mut edge_cost: F) -> usize
where
    C: PathCost,
    F: FnMut(EdgeId, Vertex, Vertex) -> C,
{
    let n = g.n();
    let mut best: Vec<Option<C>> = vec![None; n];
    let mut parent: Vec<Option<(Vertex, EdgeId)>> = vec![None; n];
    let mut hops = vec![0u32; n];
    let mut settled = vec![false; n];
    let mut ties = false;
    let mut heap: BinaryHeap<Reverse<(C, Vertex)>> = BinaryHeap::new();
    best[source] = Some(C::zero());
    heap.push(Reverse((C::zero(), source)));
    while let Some(Reverse((cost_u, u))) = heap.pop() {
        if settled[u] || best[u].as_ref() != Some(&cost_u) {
            continue;
        }
        settled[u] = true;
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) {
                continue;
            }
            let cand = cost_u.plus(&edge_cost(e, u, v));
            match &best[v] {
                Some(cur) if *cur < cand => {}
                Some(cur) if *cur == cand => ties = true,
                _ => {
                    best[v] = Some(cand.clone());
                    parent[v] = Some((u, e));
                    hops[v] = hops[u] + 1;
                    heap.push(Reverse((cand, v)));
                }
            }
        }
    }
    std::hint::black_box(ties);
    best.iter().filter(|c| c.is_some()).count()
}

/// Benchmarks the three engines over a scheme's exact costs.
fn bench_scheme_engines<C: PathCost + 'static>(
    c: &mut Criterion,
    label: &str,
    scheme: &ExactScheme<C>,
    queries: usize,
) {
    let g = scheme.graph().clone();
    let faults = fault_batch(&g, queries);

    let mut group = c.benchmark_group(label);
    group.bench_function("lazy_alloc", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                reached += lazy_dijkstra(&g, 0, f, |e, u, v| scheme.edge_cost(e, u, v));
            }
            reached
        })
    });
    group.bench_function("indexed_fresh", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                reached += scheme.spt(0, f).reachable_count();
            }
            reached
        })
    });
    let mut scratch = SearchScratch::<C>::with_capacity(g.n()).with_heap_kind(HeapKind::Indexed);
    group.bench_function("indexed_reuse", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                scheme.spt_into(0, f, &mut scratch);
                reached += scratch.reachable_count();
            }
            reached
        })
    });
    if C::HEAP == HeapKind::InlineKey {
        let mut inline =
            SearchScratch::<C>::with_capacity(g.n()).with_heap_kind(HeapKind::InlineKey);
        group.bench_function("inline_reuse", |b| {
            b.iter(|| {
                let mut reached = 0usize;
                for f in &faults {
                    scheme.spt_into(0, f, &mut inline);
                    reached += inline.reachable_count();
                }
                reached
            })
        });
    }
    group.finish();
}

/// u64 costs on a grid: closure-supplied weights, no scheme overhead.
fn bench_u64_grid(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let faults = fault_batch(&g, 8);
    let cost = |e: EdgeId, from: Vertex, to: Vertex| {
        1_000_000u64 + (e as u64 % 251) + u64::from(from < to)
    };

    let mut group = c.benchmark_group("query_engine/u64_grid16x16");
    group.bench_function("lazy_alloc", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                reached += lazy_dijkstra(&g, 0, f, cost);
            }
            reached
        })
    });
    group.bench_function("indexed_fresh", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                reached += dijkstra(&g, 0, f, cost).reachable_count();
            }
            reached
        })
    });
    let mut scratch = SearchScratch::<u64>::with_capacity(g.n()).with_heap_kind(HeapKind::Indexed);
    group.bench_function("indexed_reuse", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                dijkstra_into(&g, 0, f, cost, &mut scratch);
                reached += scratch.reachable_count();
            }
            reached
        })
    });
    let mut inline = SearchScratch::<u64>::with_capacity(g.n()).with_heap_kind(HeapKind::InlineKey);
    group.bench_function("inline_reuse", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                dijkstra_into(&g, 0, f, cost, &mut inline);
                reached += inline.reachable_count();
            }
            reached
        })
    });
    group.finish();
}

/// u64 costs on a 20k-vertex G(n,m): the cost and stamp arrays outgrow
/// cache, which is where the heap-policy gap is widest (the indexed
/// heap's sift comparisons become random out-of-cache loads).
fn bench_u64_large(c: &mut Criterion) {
    let g = generators::connected_gnm(20_000, 80_000, 11);
    let faults = fault_batch(&g, 4);
    let cost = |e: EdgeId, from: Vertex, to: Vertex| {
        1_000_000u64 + (e as u64 % 251) + u64::from(from < to)
    };

    let mut group = c.benchmark_group("query_engine/u64_gnm20k_80k");
    group.bench_function("lazy_alloc", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                reached += lazy_dijkstra(&g, 0, f, cost);
            }
            reached
        })
    });
    let mut indexed = SearchScratch::<u64>::with_capacity(g.n()).with_heap_kind(HeapKind::Indexed);
    group.bench_function("indexed_reuse", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                dijkstra_into(&g, 0, f, cost, &mut indexed);
                reached += indexed.reachable_count();
            }
            reached
        })
    });
    // Forced for symmetry with the indexed row; this is also what the
    // u64 policy selects.
    let mut inline = SearchScratch::<u64>::with_capacity(g.n()).with_heap_kind(HeapKind::InlineKey);
    group.bench_function("inline_reuse", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                dijkstra_into(&g, 0, f, cost, &mut inline);
                reached += inline.reachable_count();
            }
            reached
        })
    });
    group.finish();
}

/// u128 costs: the Theorem 20 randomized scheme on a random graph.
fn bench_u128_random(c: &mut Criterion) {
    let g = generators::connected_gnm(300, 1200, 7);
    let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    bench_scheme_engines(c, "query_engine/u128_gnm300", &scheme, 8);
}

/// BigInt costs: the Theorem 23 deterministic geometric scheme — the
/// workload where heap clones and per-edge allocations hurt most.
fn bench_bigint_grid(c: &mut Criterion) {
    let g = generators::grid(10, 10);
    let scheme = GeometricAtw::new(&g).into_scheme();
    bench_scheme_engines(c, "query_engine/bigint_grid10x10", &scheme, 8);
}

/// The vertex count for the scaling group: `RSP_SCALING_N` if set (CI
/// smoke pins `10_000`), else the BENCH_10 default of `100_000`. Go to
/// `1_000_000` for the full scaling sweep — the group names embed `n`,
/// so trajectory rows at different scales never collide.
fn scaling_n() -> usize {
    std::env::var("RSP_SCALING_N").ok().and_then(|s| s.parse().ok()).unwrap_or(100_000)
}

/// The CSR scaling group: the query engine at `n = 10^5`–`10^6` on the
/// three Internet-shaped families (`rsp_graph::gen`), u64 costs — the
/// workload the flat `u32` CSR layout exists for. Per family: reused-
/// scratch BFS plus both heap engines, two single-fault queries per
/// iteration from source 0. Each family prints an `n`/`m`/CSR-footprint
/// provenance line so recorded JSON rows can cite the memory story.
fn bench_scaling(c: &mut Criterion) {
    let n = scaling_n();
    let cost = |e: EdgeId, from: Vertex, to: Vertex| {
        1_000_000u64 + (e as u64 % 251) + u64::from(from < to)
    };
    let families: [(&str, Graph); 3] = [
        ("pa", gen::preferential_attachment(n, 3, 42)),
        ("ws", gen::watts_strogatz(n, 6, 0.05, 42)),
        ("isp", gen::isp_hierarchy(n / 10, n - n / 10, 42)),
    ];
    for (family, g) in families {
        println!(
            "scaling/{family}: n={} m={} csr_bytes={} ({:.1} B/edge-slot)",
            g.n(),
            g.m(),
            g.memory_bytes(),
            g.memory_bytes() as f64 / (2 * g.m()) as f64,
        );
        let faults = fault_batch(&g, 2);
        let mut group = c.benchmark_group(format!("query_engine/scaling_{family}_n{n}"));
        let mut bfs_scratch = SearchScratch::<u32>::with_capacity(g.n());
        group.bench_function("bfs_scratch", |b| {
            b.iter(|| {
                let mut reached = 0usize;
                for f in &faults {
                    bfs_into(&g, 0, f, &mut bfs_scratch);
                    reached += bfs_scratch.reachable_count();
                }
                reached
            })
        });
        let mut inline =
            SearchScratch::<u64>::with_capacity(g.n()).with_heap_kind(HeapKind::InlineKey);
        group.bench_function("inline_reuse", |b| {
            b.iter(|| {
                let mut reached = 0usize;
                for f in &faults {
                    dijkstra_into(&g, 0, f, cost, &mut inline);
                    reached += inline.reachable_count();
                }
                reached
            })
        });
        let mut indexed =
            SearchScratch::<u64>::with_capacity(g.n()).with_heap_kind(HeapKind::Indexed);
        group.bench_function("indexed_reuse", |b| {
            b.iter(|| {
                let mut reached = 0usize;
                for f in &faults {
                    dijkstra_into(&g, 0, f, cost, &mut indexed);
                    reached += indexed.reachable_count();
                }
                reached
            })
        });
        group.finish();
    }
}

/// The unweighted layer: allocating BFS versus reused-scratch BFS.
fn bench_bfs(c: &mut Criterion) {
    let g = generators::connected_gnm(400, 1600, 3);
    let faults = fault_batch(&g, 16);

    let mut group = c.benchmark_group("query_engine/bfs_gnm400");
    group.bench_function("alloc", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                reached += bfs(&g, 0, f).reachable_count();
            }
            reached
        })
    });
    let mut scratch = SearchScratch::<u32>::with_capacity(g.n());
    group.bench_function("scratch_reuse", |b| {
        b.iter(|| {
            let mut reached = 0usize;
            for f in &faults {
                bfs_into(&g, 0, f, &mut scratch);
                reached += scratch.reachable_count();
            }
            reached
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_u64_grid, bench_u64_large, bench_u128_random, bench_bigint_grid, bench_bfs,
        bench_scaling
}
criterion_main!(benches);
