//! Oracle-vs-engine property tests: every answer the serving layer
//! produces — fast path or engine path, through a snapshot directly or
//! through an epoch-swapped reader — must be byte-identical to the raw
//! engines: `ExactScheme::spt_into` / `Rpts::tree_from_with` per query,
//! and `dijkstra_batch` over the full `sources × fault_sets` plan.

use std::ops::ControlFlow;

use proptest::prelude::*;
use rsp_core::{ExactScheme, RandomGridAtw, Rpts};
use rsp_graph::{dijkstra_batch, generators, BatchScratch, FaultSet, Graph, SearchScratch, Vertex};
use rsp_oracle::{Oracle, OracleSnapshot, TreeView};

fn gnm_params() -> impl Strategy<Value = (usize, usize, u64, u64)> {
    (3usize..=20, 0usize..=3, any::<u64>(), any::<u64>()).prop_map(|(n, density, gseed, wseed)| {
        let extra = density * n / 2;
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        (n, m, gseed, wseed)
    })
}

/// Raw edge-id lists as they might arrive at the serving boundary:
/// unsorted, with duplicates.
fn raw_fault_lists(g: &Graph, picks: &[prop::sample::Index]) -> Vec<Vec<usize>> {
    picks
        .iter()
        .enumerate()
        .map(|(i, pick)| {
            let e = pick.index(g.m());
            let other = (e + g.m() / 2) % g.m();
            match i % 4 {
                0 => vec![e],
                1 => vec![other, e, other], // duplicate, unsorted
                2 => vec![e, e, e],         // pure duplicates
                _ => vec![],
            }
        })
        .collect()
}

/// Everything observable about one `TreeView`, materialized.
type ViewData = (Vec<Option<u32>>, Vec<Option<(Vertex, usize)>>, Vec<Option<u128>>);

fn view_data(g: &Graph, view: &TreeView<'_, u128>) -> ViewData {
    (
        g.vertices().map(|v| view.dist(v)).collect(),
        g.vertices().map(|v| view.parent(v)).collect(),
        g.vertices().map(|v| view.cost(v).cloned()).collect(),
    )
}

fn engine_data(g: &Graph, s: &SearchScratch<u128>) -> ViewData {
    (
        g.vertices().map(|v| s.hops(v)).collect(),
        g.vertices().map(|v| s.parent(v)).collect(),
        g.vertices().map(|v| s.cost(v).cloned()).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot queries — whichever path answers them — equal a fresh
    /// engine run and the `Rpts::tree_from_with` tree, for every source
    /// and for raw duplicate-laden fault input normalized at the
    /// boundary.
    #[test]
    fn snapshot_query_equals_engines(
        (n, m, gseed, wseed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let snap = OracleSnapshot::builder(&scheme).build();
        let mut scratch = SearchScratch::with_capacity(g.n());
        let mut engine = SearchScratch::with_capacity(g.n());
        let mut rpts_scratch = scheme.new_scratch();

        for raw in raw_fault_lists(&g, &fault_picks) {
            let faults = FaultSet::from_edges(raw.iter().copied());
            for pick in &source_picks {
                let s = pick.index(g.n());
                let got = view_data(&g, &snap.query(s, &faults, &mut scratch));
                scheme.spt_into(s, &faults, &mut engine);
                prop_assert_eq!(&got, &engine_data(&g, &engine), "engine s{} {}", s, faults);

                // And the Rpts-trait view of the same answer.
                let tree = scheme.tree_from_with(s, &faults, &mut rpts_scratch);
                for v in g.vertices() {
                    prop_assert_eq!(got.0[v], tree.dist(v), "dist s{} v{}", s, v);
                    prop_assert_eq!(got.1[v], tree.parent(v), "parent s{} v{}", s, v);
                }
            }
        }
    }

    /// The full `sources × fault_sets` plan through `dijkstra_batch`
    /// matches the oracle cell by cell — the acceptance criterion's
    /// batch-engine pin.
    #[test]
    fn snapshot_query_equals_dijkstra_batch(
        (n, m, gseed, wseed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let snap = OracleSnapshot::builder(&scheme).build();
        let fs: Vec<FaultSet> = raw_fault_lists(&g, &fault_picks)
            .iter()
            .map(|raw| FaultSet::from_edges(raw.iter().copied()))
            .collect();
        let srcs: Vec<Vertex> = source_picks.iter().map(|p| p.index(g.n())).collect();

        let mut scratch = SearchScratch::with_capacity(g.n());
        let mut batch = BatchScratch::<u128>::new();
        dijkstra_batch(&g, &srcs, &fs, scheme.directed_costs(), &mut batch, |si, fi, result| {
            let got = view_data(&g, &snap.query(srcs[si], &fs[fi], &mut scratch));
            assert_eq!(got, engine_data(&g, result), "s{si} f{fi}");
            ControlFlow::Continue(())
        });
    }

    /// Faults off the canonical tree take the zero-traversal fast path;
    /// faults on it take the engine path. Both paths already proved
    /// equal to the engines above — here we pin that the *routing
    /// between paths* is what the docs claim.
    #[test]
    fn fast_path_taken_exactly_off_tree(
        (n, m, gseed, wseed) in gnm_params(),
        source_pick in any::<prop::sample::Index>(),
    ) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let snap = OracleSnapshot::builder(&scheme).build();
        let s = source_pick.index(g.n());
        let baseline = snap.baseline(s).expect("all vertices served by default");
        let on_tree: Vec<bool> = (0..g.m())
            .map(|e| {
                let (u, v) = g.endpoints(e);
                baseline.parent(u).is_some_and(|(_, pe)| pe == e)
                    || baseline.parent(v).is_some_and(|(_, pe)| pe == e)
            })
            .collect();
        let mut scratch = SearchScratch::with_capacity(g.n());
        for (e, &on) in on_tree.iter().enumerate() {
            let view = snap.query(s, &FaultSet::single(e), &mut scratch);
            prop_assert_eq!(view.from_baseline(), !on, "s{} e{}", s, e);
        }
        // Fault-free queries are always pure lookups.
        prop_assert!(snap.query(s, &FaultSet::empty(), &mut scratch).from_baseline());
    }

    /// Snapshots restricted to a source subset still answer correctly
    /// from non-serving sources (engine path), and `serves` reports the
    /// subset faithfully.
    #[test]
    fn restricted_sources_still_answer_everywhere(
        (n, m, gseed, wseed) in gnm_params(),
        served_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
        fault_pick in any::<prop::sample::Index>(),
    ) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        // Duplicates in the serving list are deliberate: first wins.
        let served: Vec<Vertex> =
            served_picks.iter().flat_map(|p| [p.index(g.n()); 2]).collect();
        let snap = OracleSnapshot::builder(&scheme).sources(served.clone()).build();
        prop_assert_eq!(snap.sources().len(), {
            let mut uniq = served.clone();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.len()
        });

        let faults = FaultSet::single(fault_pick.index(g.m()));
        let mut scratch = SearchScratch::with_capacity(g.n());
        let mut engine = SearchScratch::with_capacity(g.n());
        for s in g.vertices() {
            prop_assert_eq!(snap.serves(s), served.contains(&s), "serves {}", s);
            let got = view_data(&g, &snap.query(s, &faults, &mut scratch));
            scheme.spt_into(s, &faults, &mut engine);
            prop_assert_eq!(got, engine_data(&g, &engine), "s{}", s);
            if !snap.serves(s) {
                prop_assert!(snap.baseline(s).is_none());
            }
        }
    }

    /// The oracle-boundary regression from the satellite list: duplicate
    /// edge ids in raw wire input answer identically to the normalized
    /// fault set, through `OracleReader::query_edges`.
    #[test]
    fn reader_normalizes_duplicate_fault_input(
        (n, m, gseed, wseed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        source_pick in any::<prop::sample::Index>(),
    ) {
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let oracle = Oracle::build(&scheme);
        let mut reader = oracle.reader();
        let s = source_pick.index(g.n());
        for raw in raw_fault_lists(&g, &fault_picks) {
            let normalized = FaultSet::from_edges(raw.iter().copied());
            let via_raw = view_data(&g, &reader.query_edges(s, &raw));
            let via_set = view_data(&g, &reader.query(s, &normalized));
            prop_assert_eq!(via_raw, via_set, "raw {:?}", raw);
        }
    }
}

/// `ExactScheme` costs scaled by a constant keep the same trees and hop
/// distances — the invariant the concurrency suite leans on to detect
/// cross-epoch mixing. Pinned here single-threadedly so a failure there
/// means a real torn read, not a broken invariant.
#[test]
fn scaled_costs_keep_trees_and_scale_costs() {
    let g = generators::grid(5, 4);
    let unit = 1u128 << 40;
    let fwd: Vec<u128> = (0..g.m()).map(|e| unit + (e as u128 * 7919) % 1024).collect();
    let bwd: Vec<u128> = fwd.iter().map(|f| 2 * unit - f).collect();
    let base = ExactScheme::from_costs(g.clone(), fwd.clone(), bwd.clone(), unit, 10);
    let snap1 = OracleSnapshot::builder(&base).version(1).build();

    let k = 3u128;
    let scaled = ExactScheme::from_costs(
        g.clone(),
        fwd.iter().map(|c| c * k).collect(),
        bwd.iter().map(|c| c * k).collect(),
        unit * k,
        10,
    );
    let snapk = OracleSnapshot::builder(&scaled).version(3).build();

    let mut scratch = SearchScratch::with_capacity(g.n());
    let faults = FaultSet::single(0);
    for s in g.vertices() {
        let b = {
            let view = snap1.query(s, &faults, &mut scratch);
            view_data(&g, &view)
        };
        let v = {
            let view = snapk.query(s, &faults, &mut scratch);
            view_data(&g, &view)
        };
        assert_eq!(b.0, v.0, "hop distances are scale-invariant (s{s})");
        assert_eq!(b.1, v.1, "tree parents are scale-invariant (s{s})");
        for t in g.vertices() {
            assert_eq!(v.2[t], b.2[t].map(|c| c * k), "costs scale by k (s{s} t{t})");
        }
    }
}
