//! **E9 / Lemma 34, Theorem 35, Lemma 36, Theorem 8, Corollary 9** —
//! distributed constructions in the CONGEST simulator: measured rounds,
//! per-edge congestion, and edge counts, plus the paper's round formulas
//! for the black-boxed higher-fault constructions.

use rsp_congest::{
    distributed_1ft_subset_preserver, distributed_ft_spanner, distributed_spt, scheduled_multi_spt,
    theorem8_round_bound,
};
use rsp_core::RandomGridAtw;
use rsp_graph::{diameter, generators};

use crate::reporting::{f3, Table};
use crate::workloads::spread_sources;

/// Runs E9 and prints the tables.
pub fn run(quick: bool) {
    // Lemma 34: O(D) rounds, O(1) messages/edge, O(log n)-bit messages.
    let mut t1 = Table::new(
        "E9a (Lemma 34): distributed tie-breaking SPT",
        &["graph", "n", "D", "rounds", "max msgs/edge", "max msg bits"],
    );
    let graphs = [
        ("grid-8x8", generators::grid(8, 8)),
        ("torus-8x8", generators::torus(8, 8)),
        ("gnm-100-300", generators::connected_gnm(100, 300, 3)),
        ("path-64", generators::path_graph(64)),
    ];
    let graphs = if quick { &graphs[..2] } else { &graphs[..] };
    for (name, g) in graphs {
        let scheme = RandomGridAtw::corollary22(g, 1, 1, 5).into_scheme();
        let r = distributed_spt(g, &scheme, 0).expect("protocol obeys the quota");
        let d = diameter(g);
        assert!(r.stats.rounds as u32 <= d + 3, "O(D) rounds on {name}");
        assert!(r.stats.max_messages_per_edge <= 2, "O(1) msgs/edge on {name}");
        t1.row(&[
            name.to_string(),
            g.n().to_string(),
            d.to_string(),
            r.stats.rounds.to_string(),
            r.stats.max_messages_per_edge.to_string(),
            r.stats.max_message_bits.to_string(),
        ]);
    }
    t1.print();

    // Theorem 35: σ concurrent SPTs in Õ(D + σ), not σ·D.
    let g = generators::torus(8, 8);
    let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    let d = diameter(&g) as usize;
    let mut t2 = Table::new(
        "E9b (Theorem 35): random-delay scheduling of sigma SPTs on torus-8x8",
        &["sigma", "rounds", "D + sigma", "sequential sigma*(D+2)", "speedup"],
    );
    let sigmas: &[usize] = if quick { &[2, 8] } else { &[2, 4, 8, 16, 32] };
    for &sigma in sigmas {
        let sources = spread_sources(g.n(), sigma);
        let r = scheduled_multi_spt(&g, &scheme, &sources, 11).expect("quota obeyed");
        let sequential = sigma * (d + 2);
        assert!(r.stats.rounds < sequential.max(8), "additive scaling at sigma={sigma}");
        t2.row(&[
            sigma.to_string(),
            r.stats.rounds.to_string(),
            (d + sigma).to_string(),
            sequential.to_string(),
            f3(sequential as f64 / r.stats.rounds as f64),
        ]);
    }
    t2.print();

    // Lemma 36 + Corollary 9(1): distributed preserver and spanner.
    let mut t3 = Table::new(
        "E9c (Lemma 36, Cor 9(1)): distributed 1-FT structures",
        &["object", "graph", "rounds", "edges", "bound"],
    );
    let g = generators::connected_gnm(80, 240, 9);
    let sources = spread_sources(g.n(), 6);
    let p = distributed_1ft_subset_preserver(&g, &sources, 13).expect("quota obeyed");
    t3.row(&[
        "1-FT SxS preserver".to_string(),
        "gnm-80-240".to_string(),
        p.stats.rounds.to_string(),
        p.edge_count().to_string(),
        format!("|S|*n = {}", sources.len() * g.n()),
    ]);
    let sp = distributed_ft_spanner(&g, 9, 15).expect("quota obeyed");
    t3.row(&[
        "1-FT +4 spanner".to_string(),
        "gnm-80-240".to_string(),
        sp.stats.rounds.to_string(),
        sp.edge_count().to_string(),
        format!("n^1.5 = {}", f3((g.n() as f64).powf(1.5))),
    ]);
    t3.print();

    // Theorem 8's round formulas for the black-boxed 2/3-fault cases.
    let mut t4 = Table::new(
        "E9d (Theorem 8): round formulas for f = 1..3 (log factors dropped)",
        &["f", "n=10^4, D=20, sigma=100", "n=10^6, D=50, sigma=1000"],
    );
    for f in 1..=3 {
        t4.row(&[
            f.to_string(),
            f3(theorem8_round_bound(10_000, 20, 100, f)),
            f3(theorem8_round_bound(1_000_000, 50, 1000, f)),
        ]);
    }
    t4.print();
    println!(
        "shape check: SPT rounds track D (not n); scheduled rounds track\n\
         D + sigma (not sigma*D); distributed structures match the\n\
         centralized edge bounds.\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_runs_quick() {
        super::run(true);
    }
}
