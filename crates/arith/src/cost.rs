//! The [`PathCost`] abstraction: totally ordered costs accumulated along paths.
//!
//! The exact-weight Dijkstra in `rsp-graph` is generic over the cost type so
//! that the same shortest-path engine serves all three tiebreaking weight
//! constructions of the paper:
//!
//! * Theorem 20 (random grid) and Corollary 22 (isolation lemma) scale their
//!   rational weights to integers that fit in [`u128`];
//! * Theorem 23 (deterministic geometric) needs `O(|E|)`-bit integers, i.e.
//!   [`crate::BigInt`].

use crate::BigInt;

/// A totally ordered cost that can be accumulated along a path.
///
/// Implementors must form a *commutative monoid* under [`PathCost::plus`]
/// with identity [`PathCost::zero`], and the order must be translation
/// invariant (`a < b` implies `a+c < b+c`) — both hold trivially for the
/// provided integer implementations. Dijkstra additionally requires edge
/// costs to be non-negative, which the tiebreaking constructions guarantee
/// by scaling (each perturbed weight `1 + r(u,v)` is strictly positive since
/// `|r| < 1/(2n)`).
///
/// # Examples
///
/// ```
/// use rsp_arith::PathCost;
///
/// let total = u128::zero().plus(&10).plus(&32);
/// assert_eq!(total, 42);
/// ```
pub trait PathCost: Clone + Ord + std::fmt::Debug {
    /// The identity cost (an empty path).
    fn zero() -> Self;

    /// Returns the cost extended by one edge.
    ///
    /// # Panics
    ///
    /// Native integer implementations panic on overflow; callers size their
    /// weight scales so that the longest simple path cannot overflow.
    fn plus(&self, edge: &Self) -> Self;
}

impl PathCost for u64 {
    fn zero() -> Self {
        0
    }

    fn plus(&self, edge: &Self) -> Self {
        self.checked_add(*edge).expect("u64 path cost overflow")
    }
}

impl PathCost for u128 {
    fn zero() -> Self {
        0
    }

    fn plus(&self, edge: &Self) -> Self {
        self.checked_add(*edge).expect("u128 path cost overflow")
    }
}

impl PathCost for u32 {
    fn zero() -> Self {
        0
    }

    fn plus(&self, edge: &Self) -> Self {
        self.checked_add(*edge).expect("u32 path cost overflow")
    }
}

impl PathCost for BigInt {
    fn zero() -> Self {
        BigInt::zero()
    }

    fn plus(&self, edge: &Self) -> Self {
        self + edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_monoid() {
        assert_eq!(u128::zero().plus(&5).plus(&7), 12);
        assert_eq!(u128::zero().plus(&0), 0);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn u64_overflow_panics() {
        let _ = u64::MAX.plus(&1);
    }

    #[test]
    fn bigint_monoid() {
        let a = BigInt::pow2(100);
        let b = BigInt::pow2(100);
        assert_eq!(a.plus(&b), BigInt::pow2(101));
        assert_eq!(BigInt::zero().plus(&BigInt::one()), BigInt::one());
    }

    #[test]
    fn order_translation_invariance_spot_check() {
        let a = 3u128;
        let b = 9u128;
        let c = 1u128 << 100;
        assert!(a < b && a.plus(&c) < b.plus(&c));
    }
}
