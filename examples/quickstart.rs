//! Quickstart: build a restorable tiebreaking scheme, break an edge, and
//! restore the route by concatenating two stored paths — no shortest-path
//! recomputation.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use restorable_tiebreaking::core::{restore_single_fault, RandomGridAtw, Rpts};
use restorable_tiebreaking::graph::{generators, FaultSet};

fn main() {
    // A 5x5 grid: the classic tie-rich topology (many equal shortest
    // paths between most pairs).
    let g = generators::grid(5, 5);
    println!("network: 5x5 grid, n = {}, m = {}", g.n(), g.m());

    // Theorem 2: select ONE shortest path per ordered pair such that
    // replacement paths are always concatenations of selected paths.
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let (s, t) = (0, 24); // opposite corners

    let primary = scheme.path(s, t, &FaultSet::empty()).expect("grid is connected");
    println!("selected primary route {s} -> {t}: {primary}");

    // Fail each edge of the primary route in turn; restoration by
    // concatenation finds an optimal replacement from stored tables.
    for (u, v) in primary.steps() {
        let e = g.edge_between(u, v).expect("route edges exist");
        let replacement =
            restore_single_fault(&scheme, s, t, e).expect("grid survives one failure");
        println!(
            "  link ({u}, {v}) down -> spliced replacement of {} hops: {replacement}",
            replacement.hops(),
        );
        assert!(replacement.avoids(&g, &FaultSet::single(e)));
    }

    println!("all failures restored by path concatenation alone (Theorem 2)");
}
