//! **E1 / Figure 1** — tiebreaking sensitivity, quantified.
//!
//! The paper's Figure 1 illustrates that restoration-by-concatenation can
//! fail when the routing table committed to an arbitrary canonical
//! shortest path. This experiment measures *how often*: over every
//! `(s, t, failing edge)` triple of each workload, the fraction of
//! instances an arbitrary-but-consistent BFS scheme fails to restore,
//! against the ATW scheme of Theorem 2 (provably zero failures).

use rsp_core::{restoration_stats, BfsOrder, BfsScheme, RandomGridAtw};

use crate::reporting::{f3, Table};
use crate::workloads::tie_rich_small;

/// Runs E1 and prints the table.
pub fn run(quick: bool) {
    let mut table = Table::new(
        "E1 (Figure 1): restoration-by-concatenation failure rates",
        &["graph", "n", "m", "triples", "bfs-asc fail", "bfs-desc fail", "atw fail"],
    );
    let workloads = tie_rich_small();
    let workloads = if quick { &workloads[..4] } else { &workloads[..] };
    for w in workloads {
        let g = &w.graph;
        let asc = restoration_stats(&BfsScheme::new(g, BfsOrder::Ascending));
        let desc = restoration_stats(&BfsScheme::new(g, BfsOrder::Descending));
        let atw = restoration_stats(&RandomGridAtw::theorem20(g, 42).into_scheme());
        assert_eq!(atw.failed, 0, "Theorem 2 guarantees zero ATW failures");
        table.row(&[
            w.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            asc.attempted.to_string(),
            format!("{} ({})", asc.failed, f3(asc.failure_rate())),
            format!("{} ({})", desc.failed, f3(desc.failure_rate())),
            format!("{} ({})", atw.failed, f3(atw.failure_rate())),
        ]);
    }
    table.print();
    println!(
        "shape check: arbitrary consistent tiebreaking fails on tie-rich graphs;\n\
         the restorable ATW scheme never fails (Theorem 2).\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_runs_quick() {
        super::super::e01_sensitivity::run(true);
    }
}
