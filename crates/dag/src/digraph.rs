//! The directed graph substrate.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// An arc identifier: an index in `0..m`.
pub type ArcId = usize;

/// Error raised when constructing an invalid directed graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// Number of vertices.
        n: usize,
    },
    /// A self-loop `u → u`.
    SelfLoop {
        /// The offending vertex.
        vertex: usize,
    },
    /// The same arc appeared twice.
    DuplicateArc {
        /// Tail of the duplicated arc.
        from: usize,
        /// Head of the duplicated arc.
        to: usize,
    },
    /// The arcs contain a directed cycle (only raised by
    /// [`Digraph::require_acyclic`]).
    NotAcyclic,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for {n} vertices")
            }
            DagError::SelfLoop { vertex } => write!(f, "self-loop at {vertex}"),
            DagError::DuplicateArc { from, to } => write!(f, "duplicate arc ({from}, {to})"),
            DagError::NotAcyclic => write!(f, "arcs contain a directed cycle"),
        }
    }
}

impl Error for DagError {}

/// A simple directed graph in CSR form (out- and in-adjacency).
///
/// # Examples
///
/// ```
/// use rsp_dag::Digraph;
///
/// let d = Digraph::from_arcs(3, [(0, 1), (1, 2), (0, 2)])?;
/// assert_eq!(d.out_degree(0), 2);
/// assert!(d.topological_order().is_some());
/// # Ok::<(), rsp_dag::DagError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Digraph {
    n: usize,
    arcs: Vec<(usize, usize)>,
    out_offsets: Vec<usize>,
    out_targets: Vec<usize>,
    out_arc_ids: Vec<ArcId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<usize>,
    in_arc_ids: Vec<ArcId>,
}

impl Digraph {
    /// Builds a digraph from arcs `(from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError`] on out-of-range endpoints, self-loops, or
    /// duplicate arcs (antiparallel arcs are allowed — acyclicity is a
    /// separate check).
    pub fn from_arcs(
        n: usize,
        arcs: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, DagError> {
        let mut list = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (u, v) in arcs {
            if u >= n {
                return Err(DagError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(DagError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(DagError::SelfLoop { vertex: u });
            }
            if !seen.insert((u, v)) {
                return Err(DagError::DuplicateArc { from: u, to: v });
            }
            list.push((u, v));
        }
        let m = list.len();
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for &(u, v) in &list {
            out_deg[u] += 1;
            in_deg[v] += 1;
        }
        let prefix = |deg: &[usize]| {
            let mut off = Vec::with_capacity(n + 1);
            let mut acc = 0;
            off.push(0);
            for &d in deg {
                acc += d;
                off.push(acc);
            }
            off
        };
        let out_offsets = prefix(&out_deg);
        let in_offsets = prefix(&in_deg);
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        let mut out_targets = vec![0; m];
        let mut out_arc_ids = vec![0; m];
        let mut in_sources = vec![0; m];
        let mut in_arc_ids = vec![0; m];
        for (a, &(u, v)) in list.iter().enumerate() {
            out_targets[out_cursor[u]] = v;
            out_arc_ids[out_cursor[u]] = a;
            out_cursor[u] += 1;
            in_sources[in_cursor[v]] = u;
            in_arc_ids[in_cursor[v]] = a;
            in_cursor[v] += 1;
        }
        Ok(Digraph {
            n,
            arcs: list,
            out_offsets,
            out_targets,
            out_arc_ids,
            in_offsets,
            in_sources,
            in_arc_ids,
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn m(&self) -> usize {
        self.arcs.len()
    }

    /// Tail and head of arc `a`.
    pub fn arc(&self, a: ArcId) -> (usize, usize) {
        self.arcs[a]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.out_offsets[u + 1] - self.out_offsets[u]
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.in_offsets[u + 1] - self.in_offsets[u]
    }

    /// Iterates `(head, arc id)` over arcs leaving `u`.
    pub fn out_neighbors(&self, u: usize) -> impl Iterator<Item = (usize, ArcId)> + '_ {
        let lo = self.out_offsets[u];
        let hi = self.out_offsets[u + 1];
        self.out_targets[lo..hi].iter().copied().zip(self.out_arc_ids[lo..hi].iter().copied())
    }

    /// Iterates `(tail, arc id)` over arcs entering `u`.
    pub fn in_neighbors(&self, u: usize) -> impl Iterator<Item = (usize, ArcId)> + '_ {
        let lo = self.in_offsets[u];
        let hi = self.in_offsets[u + 1];
        self.in_sources[lo..hi].iter().copied().zip(self.in_arc_ids[lo..hi].iter().copied())
    }

    /// Iterates all arcs as `(arc id, from, to)`.
    pub fn all_arcs(&self) -> impl Iterator<Item = (ArcId, usize, usize)> + '_ {
        self.arcs.iter().enumerate().map(|(a, &(u, v))| (a, u, v))
    }

    /// All vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = usize> {
        0..self.n
    }

    /// A topological order, or `None` if the digraph has a cycle
    /// (Kahn's algorithm).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg: Vec<usize> = (0..self.n).map(|v| self.in_degree(v)).collect();
        let mut queue: VecDeque<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for (v, _) in self.out_neighbors(u) {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        (order.len() == self.n).then_some(order)
    }

    /// Returns `true` iff acyclic.
    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Errors unless acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`DagError::NotAcyclic`] on a cyclic digraph.
    pub fn require_acyclic(&self) -> Result<(), DagError> {
        if self.is_dag() {
            Ok(())
        } else {
            Err(DagError::NotAcyclic)
        }
    }
}

/// A small sorted set of failed arcs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArcFaults {
    arcs: Vec<ArcId>,
}

impl ArcFaults {
    /// The empty fault set.
    pub fn empty() -> Self {
        ArcFaults::default()
    }

    /// A single failed arc.
    pub fn single(a: ArcId) -> Self {
        ArcFaults { arcs: vec![a] }
    }

    /// From arc ids, sorted and deduplicated.
    pub fn from_arcs(arcs: impl IntoIterator<Item = ArcId>) -> Self {
        let mut arcs: Vec<ArcId> = arcs.into_iter().collect();
        arcs.sort_unstable();
        arcs.dedup();
        ArcFaults { arcs }
    }

    /// Membership test.
    pub fn contains(&self, a: ArcId) -> bool {
        self.arcs.binary_search(&a).is_ok()
    }

    /// Number of failed arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }
}

/// Directed BFS distances from a source under arc faults.
#[derive(Clone, Debug)]
pub struct DirectedBfs {
    dist: Vec<Option<u32>>,
}

impl DirectedBfs {
    /// Runs directed BFS from `source` in `d \ faults`.
    pub fn run(d: &Digraph, source: usize, faults: &ArcFaults) -> Self {
        let mut dist = vec![None; d.n()];
        let mut queue = VecDeque::new();
        dist[source] = Some(0);
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued");
            for (v, a) in d.out_neighbors(u) {
                if faults.contains(a) || dist[v].is_some() {
                    continue;
                }
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
        DirectedBfs { dist }
    }

    /// Distance to `v`, `None` if unreachable.
    pub fn dist(&self, v: usize) -> Option<u32> {
        self.dist[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_degrees() {
        let d = Digraph::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(d.n(), 4);
        assert_eq!(d.m(), 4);
        assert_eq!(d.out_degree(0), 2);
        assert_eq!(d.in_degree(3), 2);
        assert_eq!(d.out_neighbors(0).count(), 2);
        assert_eq!(d.in_neighbors(3).count(), 2);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(Digraph::from_arcs(2, [(0, 5)]), Err(DagError::VertexOutOfRange { .. })));
        assert!(matches!(Digraph::from_arcs(2, [(1, 1)]), Err(DagError::SelfLoop { .. })));
        assert!(matches!(
            Digraph::from_arcs(2, [(0, 1), (0, 1)]),
            Err(DagError::DuplicateArc { .. })
        ));
    }

    #[test]
    fn antiparallel_allowed_but_cyclic() {
        let d = Digraph::from_arcs(2, [(0, 1), (1, 0)]).unwrap();
        assert!(!d.is_dag());
        assert_eq!(d.require_acyclic(), Err(DagError::NotAcyclic));
    }

    #[test]
    fn topological_order_is_valid() {
        let d = Digraph::from_arcs(5, [(0, 2), (2, 1), (1, 4), (0, 3), (3, 4)]).unwrap();
        let order = d.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (_, u, v) in d.all_arcs() {
            assert!(pos[u] < pos[v], "arc ({u},{v}) respects the order");
        }
    }

    #[test]
    fn directed_bfs_distances() {
        let d = Digraph::from_arcs(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let bfs = DirectedBfs::run(&d, 0, &ArcFaults::empty());
        assert_eq!(bfs.dist(3), Some(1), "direct arc wins");
        assert_eq!(bfs.dist(2), Some(2));
        // Direction matters: nothing reaches 0.
        let back = DirectedBfs::run(&d, 3, &ArcFaults::empty());
        assert_eq!(back.dist(0), None);
    }

    #[test]
    fn faults_reroute_or_disconnect() {
        let d = Digraph::from_arcs(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let direct = 3; // arc (0,3)
        let bfs = DirectedBfs::run(&d, 0, &ArcFaults::single(direct));
        assert_eq!(bfs.dist(3), Some(3), "reroute through the chain");
        let chain0 = 0; // arc (0,1)
        let bfs = DirectedBfs::run(&d, 0, &ArcFaults::from_arcs([direct, chain0]));
        assert_eq!(bfs.dist(3), None);
    }
}
