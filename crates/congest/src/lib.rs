//! CONGEST model simulator and the distributed constructions of Section
//! 4.5 of Bodwin & Parter.
//!
//! In the CONGEST model the network **is** the graph: one processor per
//! vertex, synchronous rounds, and `O(log n)` bits per edge per direction
//! per round. The quantities the paper's distributed theorems bound —
//! round complexity and per-edge congestion — are exactly what the
//! simulator in [`sim`] counts (and its bandwidth quota *enforces*).
//!
//! On top of the simulator:
//!
//! * [`distributed_spt`] — **Lemma 34**: a shortest-path tree under a
//!   tiebreaking weight function `ω` in `O(D)` rounds with `O(1)` messages
//!   per edge (the SPT under `ω` is layered exactly like a BFS tree, so
//!   BFS waves carrying perturbed distances suffice);
//! * [`scheduled_multi_spt`] — **Theorem 35**'s random-delay composition:
//!   `σ` SPT constructions run simultaneously, each edge forwarding at
//!   most one message per round and queueing the rest; total rounds
//!   `Õ(D + σ)`;
//! * [`distributed_1ft_subset_preserver`] — **Lemma 36 / Theorem 8(1)**:
//!   sample the restorable weight function locally (one exchange round),
//!   run the `σ` scheduled SPTs, and union the tree edges: a 1-FT `S × S`
//!   preserver with `O(|S|·n)` edges in `Õ(D + |S|)` rounds;
//! * [`distributed_ft_spanner`] — **Corollary 9(1)**: local clustering
//!   plus the distributed `C × C` preserver gives the first distributed
//!   1-FT +4 additive spanner;
//! * [`theorem8_round_bound`] — the paper's round formulas for the 2- and
//!   3-fault sourcewise constructions of \[30\], which the paper (and this
//!   reproduction — see DESIGN.md substitution 5) uses as black boxes; the
//!   corresponding edge sets are built centrally by `rsp-preserver`.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`sim`] | the CONGEST model itself: rounds, `O(log n)`-bit messages, congestion counting |
//! | [`distributed_spt`] | Lemma 34: SPT under `ω` in `O(D)` rounds, `O(1)` messages/edge |
//! | [`scheduled_multi_spt`] | Theorem 35: random-delay composition of `σ` SPTs, `Õ(D + σ)` rounds |
//! | [`distributed_1ft_subset_preserver`] | Lemma 36 / Theorem 8(1): distributed 1-FT `S × S` preserver |
//! | [`distributed_ft_spanner`] | Corollary 9(1): first distributed 1-FT +4 spanner |
//! | [`theorem8_round_bound`] | Theorem 8(2–3) round formulas (black-box edge sets, DESIGN.md substitution 5) |
//! | [`broadcast`], [`convergecast_sum`] | the standard primitives the constructions compose |
//!
//! # Examples
//!
//! ```
//! use rsp_congest::distributed_spt;
//! use rsp_core::RandomGridAtw;
//! use rsp_graph::{diameter, generators};
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
//! let run = distributed_spt(&g, &scheme, 0).unwrap();
//! // Lemma 34: O(D) rounds, O(1) messages per edge.
//! assert!(run.stats.rounds as u32 <= diameter(&g) + 3);
//! assert!(run.stats.max_messages_per_edge <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs_spt;
mod broadcast;
mod preserver_dist;
mod scheduler;
pub mod sim;

pub use bfs_spt::{distributed_spt, DistributedSptResult, SptMsg};
pub use broadcast::{
    broadcast, convergecast_sum, AggregateMsg, BroadcastMsg, BroadcastResult, ConvergecastResult,
};
pub use preserver_dist::{
    distributed_1ft_preserver_full_protocol, distributed_1ft_subset_preserver,
    distributed_ft_spanner, theorem8_round_bound, DistributedEdgeSet,
};
pub use scheduler::{scheduled_multi_spt, MultiSptResult, TaggedMsg};
pub use sim::{CongestionError, MsgSize, Network, NodeCtx, Outbox, Program, RunStats};
