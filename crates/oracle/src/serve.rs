//! The control/data-plane split: publishing snapshots, reading lock-free.
//!
//! An [`Oracle`] is a shared publication point for [`OracleSnapshot`]s;
//! an [`OracleReader`] is one thread's private serving handle. The
//! contract mirrors a RIB/FIB router split:
//!
//! * **Publish** ([`Oracle::publish`], any thread, typically one
//!   control-plane writer): replace the current snapshot `Arc` and bump
//!   the epoch counter. Publishing never waits for readers and never
//!   invalidates anything a reader is mid-way through — in-flight
//!   queries keep their epoch's `Arc` alive until they finish.
//! * **Read** ([`OracleReader::query`], any number of threads): each
//!   reader caches an `Arc` to the snapshot it last saw plus the epoch
//!   it was published under. The per-query hot path is **one atomic
//!   epoch load and zero locks**: if the epoch is unchanged the cached
//!   snapshot answers directly. Only on an epoch change does the reader
//!   take the publication mutex for exactly one `Arc` clone — once per
//!   publish per reader, never reader-vs-reader, and the writer's
//!   critical section is a pointer store, so no reader ever blocks
//!   behind another reader or behind snapshot *construction* (builders
//!   compile snapshots entirely outside the lock).
//! * **Retire** (automatic): a replaced snapshot lives exactly as long
//!   as the last `Arc` referencing it — when the final in-flight reader
//!   refreshes, the old epoch's memory drops. The concurrency suite
//!   pins this with `Weak` handles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rsp_arith::PathCost;
use rsp_core::ExactScheme;
use rsp_graph::{EdgeId, FaultSet, SearchScratch, Vertex};

use crate::snapshot::{OracleSnapshot, QueryError, TreeView};

/// The shared publication cell: the current snapshot plus its epoch.
///
/// `epoch` is bumped *inside* the mutex's critical section, so a reader
/// that clones the slot under the lock reads a consistent
/// `(snapshot, epoch)` pair; the lock-free fast path only ever compares
/// epochs, which is safe against any interleaving (a stale comparison
/// merely delays the refresh to the next query).
struct Shared<C> {
    epoch: AtomicU64,
    slot: Mutex<Arc<OracleSnapshot<C>>>,
}

impl<C> Shared<C> {
    /// Locks the slot, **recovering from poison**: the protected value
    /// is a plain `Arc` that is always whole at every await-free point
    /// of every critical section (the store in `publish` either happens
    /// or it doesn't), so a publisher that panicked while holding the
    /// lock left valid state behind — either the old snapshot or the
    /// fully-stored new one. Refusing to serve forever because of a
    /// past panic would turn one failed publish into a permanent
    /// outage; see the poison-recovery regression test below.
    fn lock_slot(&self) -> MutexGuard<'_, Arc<OracleSnapshot<C>>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The serving handle: an epoch-swapped publication point for immutable
/// routing snapshots.
///
/// Cloning an `Oracle` clones the handle, not the snapshot — clones
/// publish to and read from the same cell, which is how a control-plane
/// thread and N data-plane threads share one oracle.
///
/// # Examples
///
/// Build, query, publish a new epoch, observe the swap:
///
/// ```
/// use rsp_core::RandomGridAtw;
/// use rsp_graph::generators;
/// use rsp_oracle::{Oracle, OracleSnapshot};
///
/// let g = generators::grid(4, 4);
/// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
/// let oracle = Oracle::build(&scheme);
/// let mut reader = oracle.reader();
/// assert_eq!(reader.query(0, &rsp_graph::FaultSet::empty()).dist(15), Some(6));
///
/// // A cost change arrives: compile and publish a new snapshot epoch.
/// // Readers pick it up on their next query; nothing blocks.
/// let rebuilt = RandomGridAtw::theorem20(&g, 43).into_scheme();
/// let before = oracle.epoch();
/// oracle.publish(OracleSnapshot::builder(&rebuilt).version(2).build());
/// assert_eq!(oracle.epoch(), before + 1);
/// let _ = reader.query(0, &rsp_graph::FaultSet::empty());
/// assert_eq!(reader.snapshot().version(), 2);
/// ```
pub struct Oracle<C> {
    shared: Arc<Shared<C>>,
}

impl<C> Clone for Oracle<C> {
    fn clone(&self) -> Self {
        Oracle { shared: Arc::clone(&self.shared) }
    }
}

impl<C: PathCost + 'static> Oracle<C> {
    /// Wraps an already-built snapshot as epoch 1.
    pub fn new(snapshot: OracleSnapshot<C>) -> Self {
        Oracle {
            shared: Arc::new(Shared {
                epoch: AtomicU64::new(1),
                slot: Mutex::new(Arc::new(snapshot)),
            }),
        }
    }

    /// Compiles a default snapshot (every vertex a serving source, no
    /// optional artifacts) from `scheme` and serves it — the one-liner
    /// for "give me a serving oracle for this network".
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultSet};
    /// use rsp_oracle::Oracle;
    ///
    /// let g = generators::grid(4, 4);
    /// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    /// let oracle = Oracle::build(&scheme);
    ///
    /// let mut reader = oracle.reader();
    /// let view = reader.query(0, &FaultSet::single(0));
    /// assert_eq!(view.dist(15), Some(6), "corner-to-corner survives one fault");
    /// ```
    pub fn build(scheme: &ExactScheme<C>) -> Self {
        Oracle::new(OracleSnapshot::builder(scheme).build())
    }

    /// Publishes `snapshot` as the new current epoch and returns that
    /// epoch number.
    ///
    /// The critical section is one `Arc` store plus the epoch bump;
    /// snapshot compilation ([`crate::SnapshotBuilder::build`]) happens
    /// before this call, outside any lock. Readers mid-query keep the
    /// previous epoch's snapshot alive until they next refresh.
    pub fn publish(&self, snapshot: OracleSnapshot<C>) -> u64 {
        let next = Arc::new(snapshot);
        let mut slot = self.shared.lock_slot();
        *slot = next;
        // Inside the lock: a reader cloning the slot under the lock sees
        // the epoch that matches the snapshot it cloned.
        self.shared.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The current epoch number (starts at 1, +1 per publish).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// An owned handle to the current snapshot (control-plane
    /// inspection; data-plane threads should use [`Oracle::reader`]).
    pub fn snapshot(&self) -> Arc<OracleSnapshot<C>> {
        Arc::clone(&self.shared.lock_slot())
    }

    /// Creates a data-plane reader: a per-thread handle owning its own
    /// cached snapshot `Arc`, search scratch, and fault-normalization
    /// buffer. Create one per serving thread and keep it — readers are
    /// cheap to use but hold warm buffers worth reusing.
    pub fn reader(&self) -> OracleReader<C> {
        let snapshot = self.snapshot();
        let n = snapshot.graph().n();
        OracleReader {
            shared: Arc::clone(&self.shared),
            epoch: self.epoch(),
            snapshot,
            scratch: SearchScratch::with_capacity(n),
            faults: FaultSet::empty(),
        }
    }
}

/// A per-thread data-plane handle answering `(s, t, F)` queries against
/// the oracle's current snapshot.
///
/// The hot path — [`OracleReader::query`] with a fault set missing the
/// precomputed tree — is one atomic epoch load, an `O(|F|)` tree-touch
/// check, and flat-array reads: **zero locks, zero allocation**. Fault
/// sets that hit the tree run the exact engine inside the reader's own
/// warm scratch (still allocation-free). Epoch changes are absorbed at
/// query boundaries: one `Arc` clone under the publication mutex, after
/// which the retired snapshot is released.
pub struct OracleReader<C> {
    shared: Arc<Shared<C>>,
    epoch: u64,
    snapshot: Arc<OracleSnapshot<C>>,
    scratch: SearchScratch<C>,
    /// Reused normalization buffer for [`OracleReader::query_edges`].
    faults: FaultSet,
}

impl<C: PathCost + 'static> OracleReader<C> {
    /// Adopts the latest published snapshot if the epoch moved; returns
    /// `true` iff the cached snapshot changed.
    ///
    /// Called automatically at every query boundary; exposed so callers
    /// pinning a snapshot across *multiple* queries (a consistent
    /// multi-query transaction) can control exactly when they move
    /// epochs — between refreshes a reader's answers all come from one
    /// immutable snapshot, no matter what the publisher does.
    pub fn refresh(&mut self) -> bool {
        // Lock-free fast path: epoch unchanged ⇒ cached snapshot current.
        if self.shared.epoch.load(Ordering::Acquire) == self.epoch {
            return false;
        }
        let slot = self.shared.lock_slot();
        self.snapshot = Arc::clone(&slot);
        // Read the epoch while holding the lock so it matches the clone
        // (publish bumps it inside its critical section).
        self.epoch = self.shared.epoch.load(Ordering::Acquire);
        true
    }

    /// The epoch of the snapshot this reader currently serves from.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshot this reader currently serves from (stable until the
    /// next [`OracleReader::refresh`] / query boundary).
    pub fn snapshot(&self) -> &OracleSnapshot<C> {
        &self.snapshot
    }

    /// Answers `(s, · , F)` against the latest published snapshot: the
    /// selected tree from `s` in `G \ F` as a borrowed [`TreeView`]
    /// (read `dist`/`cost`/`parent` per target `t` — all
    /// allocation-free).
    ///
    /// # Panics
    ///
    /// Panics if `s` or a fault edge id is out of range in the current
    /// snapshot's graph. Serving threads handling untrusted wire input
    /// should use [`OracleReader::try_query`] /
    /// [`OracleReader::try_query_edges`] instead.
    pub fn query(&mut self, s: Vertex, faults: &FaultSet) -> TreeView<'_, C> {
        self.try_query(s, faults).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible twin of [`OracleReader::query`]: malformed queries
    /// (out-of-range source, out-of-range fault edge id) return a
    /// [`QueryError`] instead of panicking the serving thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultSet};
    /// use rsp_oracle::{Oracle, QueryError};
    ///
    /// let g = generators::petersen(); // 10 vertices
    /// let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    /// let mut reader = Oracle::build(&scheme).reader();
    /// let err = reader.try_query(10, &FaultSet::empty()).map(|_| ());
    /// assert_eq!(err.unwrap_err(), QueryError::SourceOutOfRange { source: 10, n: 10 });
    /// ```
    pub fn try_query(
        &mut self,
        s: Vertex,
        faults: &FaultSet,
    ) -> Result<TreeView<'_, C>, QueryError> {
        self.refresh();
        self.snapshot.try_query(s, faults, &mut self.scratch)
    }

    /// [`OracleReader::query`] from a **raw edge-id list**: the serving
    /// boundary's normalization point. The ids are sorted and
    /// deduplicated into the reader's reusable [`FaultSet`] buffer
    /// ([`FaultSet::set_from`]), so duplicate faults in wire input
    /// cannot desynchronize the membership fast path from the
    /// tree-touch check — and nothing allocates once the buffer is
    /// warm.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::generators;
    /// use rsp_oracle::Oracle;
    ///
    /// let g = generators::grid(4, 4);
    /// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    /// let oracle = Oracle::build(&scheme);
    /// let mut reader = oracle.reader();
    /// // Duplicated fault report from the wire: same answer as the set.
    /// let dup = reader.query_edges(0, &[3, 3, 3]).dist(15);
    /// let set = reader.query(0, &rsp_graph::FaultSet::single(3)).dist(15);
    /// assert_eq!(dup, set);
    /// ```
    /// # Panics
    ///
    /// Panics if `s` or an edge id is out of range; untrusted wire
    /// boundaries should call [`OracleReader::try_query_edges`].
    pub fn query_edges(&mut self, s: Vertex, edges: &[EdgeId]) -> TreeView<'_, C> {
        self.try_query_edges(s, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible serving boundary for **raw wire queries**: edge ids
    /// are normalized into the reader's buffer, validated, and answered
    /// — a malformed frame yields `Err`, never a panic, so one hostile
    /// client cannot take a reader thread (and with it a poisoned lock)
    /// down.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::generators;
    /// use rsp_oracle::{Oracle, QueryError};
    ///
    /// let g = generators::petersen(); // 15 edges
    /// let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    /// let mut reader = Oracle::build(&scheme).reader();
    /// // Garbage edge id from the wire: refused, reader keeps serving.
    /// let err = reader.try_query_edges(0, &[usize::MAX]).map(|_| ());
    /// assert_eq!(err.unwrap_err(), QueryError::FaultOutOfRange { edge: usize::MAX, m: 15 });
    /// assert!(reader.try_query_edges(0, &[3, 3]).is_ok());
    /// ```
    pub fn try_query_edges(
        &mut self,
        s: Vertex,
        edges: &[EdgeId],
    ) -> Result<TreeView<'_, C>, QueryError> {
        self.refresh();
        self.snapshot.try_query_edges(s, edges, &mut self.faults, &mut self.scratch)
    }

    /// Point-to-point convenience: `dist_{G\F}(s, t)`.
    pub fn dist(&mut self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<u32> {
        self.query(s, faults).dist(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_core::RandomGridAtw;
    use rsp_graph::generators;

    /// Poisons the publication slot: a scoped thread takes the guard —
    /// through the same un-poisoning [`Shared::lock_slot`] path every
    /// production caller uses, so the helper works even on an
    /// *already-poisoned* slot — and panics while holding it.
    fn poison_slot<C: PathCost + Send + Sync + 'static>(oracle: &Oracle<C>) {
        let shared = Arc::clone(&oracle.shared);
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let _guard = shared.lock_slot();
                panic!("deliberate publisher panic while holding the slot");
            });
            assert!(handle.join().is_err(), "the poisoning thread must panic");
        });
        assert!(oracle.shared.slot.is_poisoned(), "postcondition: slot is poisoned");
    }

    /// The un-poisoning regression from the churn-hardening issue: a
    /// thread that panics while holding the publication slot must not
    /// brick publishing or reader refresh. Before the fix, every
    /// subsequent `publish`/`snapshot`/`refresh` died on
    /// `expect("oracle slot poisoned")`.
    #[test]
    fn publish_and_refresh_survive_poisoned_slot() {
        let g = generators::grid(4, 4);
        let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
        let oracle = Oracle::build(&scheme);
        let mut reader = oracle.reader();
        assert_eq!(reader.query(0, &FaultSet::empty()).dist(15), Some(6));

        // Poison the slot: panic on a scoped thread while holding the
        // guard. (This is exactly what a panicking publisher mid-critical-
        // section does to the mutex.)
        poison_slot(&oracle);

        // A publish after the panic must succeed, not unwind...
        let rebuilt = RandomGridAtw::theorem20(&g, 43).into_scheme();
        let before = oracle.epoch();
        let epoch = oracle.publish(OracleSnapshot::builder(&rebuilt).version(7).build());
        assert_eq!(epoch, before + 1);
        // ...and readers must refresh onto the new epoch and keep serving.
        assert!(reader.refresh());
        assert_eq!(reader.snapshot().version(), 7);
        assert_eq!(reader.query(0, &FaultSet::empty()).dist(15), Some(6));
        // Control-plane inspection works too.
        assert_eq!(oracle.snapshot().version(), 7);
    }

    /// Mirror of the publish-after-panic regression for *repeated*
    /// poisoning: a second publisher panic on the already-recovered
    /// slot must not brick anything either — recovery is a property of
    /// every acquisition, not a one-shot cleanup. Before the last
    /// `lock().unwrap()` call site was routed through
    /// [`Shared::lock_slot`], the setup itself (taking the guard on a
    /// poisoned slot to poison it again) would unwind early.
    #[test]
    fn repeated_poisoning_never_bricks_the_slot() {
        let g = generators::grid(4, 4);
        let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
        let oracle = Oracle::build(&scheme);
        let mut reader = oracle.reader();

        for round in 0..3u64 {
            poison_slot(&oracle);
            // Each round: publish through the poison, readers refresh
            // and keep answering correctly.
            let rebuilt = RandomGridAtw::theorem20(&g, 43 + round).into_scheme();
            let before = oracle.epoch();
            let epoch =
                oracle.publish(OracleSnapshot::builder(&rebuilt).version(10 + round).build());
            assert_eq!(epoch, before + 1);
            assert!(reader.refresh());
            assert_eq!(reader.snapshot().version(), 10 + round);
            assert_eq!(reader.query(0, &FaultSet::empty()).dist(15), Some(6));
        }
    }
}
