//! Incremental, validating graph construction.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::graph::{Graph, Vertex};

/// Error raised when constructing an invalid graph.
///
/// # Examples
///
/// ```
/// use rsp_graph::{Graph, GraphError};
///
/// assert!(matches!(Graph::from_edges(2, [(0, 0)]), Err(GraphError::SelfLoop { .. })));
/// assert!(matches!(Graph::from_edges(2, [(0, 5)]), Err(GraphError::VertexOutOfRange { .. })));
/// assert!(matches!(
///     Graph::from_edges(2, [(0, 1), (1, 0)]),
///     Err(GraphError::DuplicateEdge { .. })
/// ));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// Both endpoints were equal; simple graphs have no self-loops.
    SelfLoop {
        /// The offending vertex.
        vertex: Vertex,
    },
    /// The edge was already present; simple graphs have no parallel edges.
    DuplicateEdge {
        /// Canonical endpoints of the duplicated edge.
        u: Vertex,
        /// Canonical endpoints of the duplicated edge.
        v: Vertex,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
        }
    }
}

impl Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// Validates each edge as it is added; [`GraphBuilder::build`] is infallible.
///
/// # Examples
///
/// ```
/// use rsp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), rsp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
    seen: HashSet<(Vertex, Vertex)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices with no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new(), seen: HashSet::new() }
    }

    /// Number of vertices of the graph under construction.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge; endpoint order is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops, or
    /// duplicates.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u: key.0, v: key.1 });
        }
        self.edges.push(key);
        Ok(())
    }

    /// Adds an edge if it is not already present, ignoring duplicates.
    ///
    /// Returns `true` if the edge was newly added.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints or self-loops.
    pub fn add_edge_dedup(&mut self, u: Vertex, v: Vertex) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Returns `true` iff the edge is already present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Edge ids are assigned in insertion order.
    pub fn build(self) -> Graph {
        Graph::from_canonical_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(0, 2), Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn rejects_duplicate_both_orders() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.add_edge(1, 0), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    }

    #[test]
    fn dedup_add() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_dedup(0, 1).unwrap());
        assert!(!b.add_edge_dedup(1, 0).unwrap());
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    fn edge_ids_in_insertion_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 2).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.endpoints(0), (2, 3));
        assert_eq!(g.endpoints(1), (0, 1));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert_eq!(e.to_string(), "duplicate edge (1, 2)");
    }
}
