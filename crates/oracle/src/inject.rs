//! The deterministic fault-injection harness for the churn pipeline.
//!
//! Everything here is seeded and replayable: the same seed produces the
//! same hostile stream and the same build-fault schedule, so a failing
//! robustness run reproduces exactly. The harness has three layers:
//!
//! * [`random_trace`] / [`random_trace_with`] — a *valid* event trace:
//!   arrivals and repairs that each pass validation when applied in
//!   order (the ground truth a pipeline under attack must still
//!   converge to). [`TraceOptions`] adds dense same-edge repair bursts
//!   and a concurrent-fault cap for the delta suite.
//! * [`InjectionPlan`] / [`StreamInjector`] — the wire-level attacker:
//!   drops, duplicates, reorders, and corrupts the encoded frames of a
//!   trace before they reach [`ChurnPipeline::ingest_wire`].
//! * [`flaky_builder`] / [`flaky_delta_builder`] — the build-side
//!   attackers: probes for [`ChurnPipeline::set_build_probe`] that
//!   panic the snapshot builder (or only its delta patches) or corrupt
//!   its output for the first N attempts, then heal — exercising retry,
//!   backoff, cross-check rejection, delta fallback, and full-rebuild
//!   escalation.
//! * [`flip_random_bit`] / [`truncate_random`] — durability attackers
//!   for serialized **journal streams** ([`ChurnPipeline::export_journal`]):
//!   a seeded single-bit flip the CRC framing must catch, and a seeded
//!   truncation the torn-tail recovery must absorb.
//! * [`corrupt_published_row`] with [`CellCorruption`] — the
//!   post-publication attacker: flips one cell (hop, parent, or cost)
//!   of a row the oracle is *currently serving*, the damage only the
//!   background scrubber ([`crate::scrub`]) can catch. Detection, not
//!   luck, is what the scrub suite proves.
//!
//! [`verify_published`] closes the loop: whatever was injected, the
//! snapshot actually serving must agree cell-for-cell with a fresh
//! engine run on its own base fault state.
//!
//! # Examples
//!
//! A complete attack-and-converge cycle:
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_graph::generators;
//! use rsp_oracle::churn::inject::{random_trace, InjectionPlan, StreamInjector};
//! use rsp_oracle::churn::inject::verify_published;
//! use rsp_oracle::churn::ChurnPipeline;
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//! let mut pipeline = ChurnPipeline::new(&scheme).unwrap();
//!
//! let trace = random_trace(&g, 30, 0xabcd);
//! let mut injector = StreamInjector::new(InjectionPlan::hostile(0xabcd));
//! for frame in injector.perturb(&trace) {
//!     let _ = pipeline.ingest_wire(&frame); // quarantines are expected
//! }
//! pipeline.commit().unwrap();
//! verify_published(&pipeline).unwrap();
//! ```

use std::sync::Arc;

use rand::{rngs::StdRng, Rng, SeedableRng};
use rsp_arith::PathCost;
use rsp_core::Rpts;
use rsp_graph::{FaultEvent, FaultState, Graph, SearchScratch, Vertex};

use super::{BuildFault, BuildProbe, ChurnPipeline};
use crate::serve::Oracle;
use crate::snapshot::NONE;

/// Generates a *valid* random churn trace of `len` events: every event
/// passes validation when the trace is applied in order from a
/// fault-free start (arrivals only fault live edges, repairs only
/// faulted ones). Deterministic in `seed`.
///
/// The trace never gets stuck: when every edge is faulted it must
/// repair, when none is it must arrive.
///
/// Equivalent to [`random_trace_with`] under [`TraceOptions::default`]
/// (byte-identical traces, same seed).
///
/// # Examples
///
/// ```
/// use rsp_graph::{generators, FaultState};
/// use rsp_oracle::churn::inject::random_trace;
///
/// let g = generators::grid(3, 3);
/// let trace = random_trace(&g, 50, 7);
/// let mut state = FaultState::for_graph(&g);
/// for ev in &trace {
///     state.apply(*ev).expect("every trace event validates in order");
/// }
/// assert_eq!(trace, random_trace(&g, 50, 7), "deterministic in the seed");
/// ```
pub fn random_trace(g: &Graph, len: usize, seed: u64) -> Vec<FaultEvent> {
    random_trace_with(g, len, seed, TraceOptions::default())
}

/// Shape knobs for [`random_trace_with`]. The default is exactly
/// [`random_trace`]'s historical behavior (same RNG consumption, so the
/// same seed yields the same trace).
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// Probability a free-choice step repairs instead of arriving
    /// (default 0.4).
    pub repair_bias: f64,
    /// Probability an arrival is immediately followed by a **dense
    /// burst** on the same edge — `Repair(e)` then `Arrive(e)` appended
    /// right behind `Arrive(e)`, all inside one commit window (default
    /// 0.0). This is the same-edge arrive→repair→arrive shape a batched
    /// commit must fold correctly; plain [`random_trace`] never emits
    /// it.
    pub burst: f64,
    /// Cap on concurrently faulted edges; when reached the trace must
    /// repair. `None` means the graph's edge count (default).
    pub max_faults: Option<usize>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { repair_bias: 0.4, burst: 0.0, max_faults: None }
    }
}

/// [`random_trace`] with [`TraceOptions`]: repair bias, dense same-edge
/// repair bursts, and a concurrent-fault cap. Every emitted trace is
/// valid in order from a fault-free start, whatever the options.
///
/// # Examples
///
/// ```
/// use rsp_graph::{generators, FaultEvent, FaultState};
/// use rsp_oracle::churn::inject::{random_trace_with, TraceOptions};
///
/// let g = generators::grid(3, 3);
/// let opts = TraceOptions { burst: 0.5, max_faults: Some(3), ..TraceOptions::default() };
/// let trace = random_trace_with(&g, 60, 7, opts);
/// let mut state = FaultState::for_graph(&g);
/// for ev in &trace {
///     state.apply(*ev).expect("every trace event validates in order");
///     assert!(state.len() <= 3, "the fault cap holds at every prefix");
/// }
/// // Bursty traces contain the same-edge arrive -> repair -> arrive run:
/// let bursts = trace.windows(3).filter(|w| match *w {
///     [FaultEvent::Arrive(a), FaultEvent::Repair(b), FaultEvent::Arrive(c)] => {
///         a == b && b == c
///     }
///     _ => false,
/// });
/// assert!(bursts.count() > 0);
/// ```
pub fn random_trace_with(g: &Graph, len: usize, seed: u64, opts: TraceOptions) -> Vec<FaultEvent> {
    let cap = opts.max_faults.unwrap_or(g.m()).min(g.m());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = FaultState::for_graph(g);
    let mut trace = Vec::with_capacity(len);
    while trace.len() < len {
        let must_repair = state.len() >= cap;
        let must_arrive = state.is_empty();
        let repair = must_repair || (!must_arrive && rng.random_bool(opts.repair_bias));
        let ev = if repair {
            let faulted = state.faults().as_slice();
            FaultEvent::Repair(faulted[rng.random_range(0..faulted.len())])
        } else {
            let live: Vec<_> = (0..g.m()).filter(|&e| !state.faults().contains(e)).collect();
            FaultEvent::Arrive(live[rng.random_range(0..live.len())])
        };
        state.apply(ev).expect("trace generator only emits admissible events");
        trace.push(ev);
        // Dense burst: hammer the edge that just failed with
        // repair-then-re-arrive. (The `> 0.0` guard keeps the default
        // RNG consumption identical to the historical generator.)
        if opts.burst > 0.0 {
            if let FaultEvent::Arrive(e) = ev {
                if trace.len() + 2 <= len && rng.random_bool(opts.burst) {
                    for burst_ev in [FaultEvent::Repair(e), FaultEvent::Arrive(e)] {
                        state.apply(burst_ev).expect("same-edge burst is always admissible");
                        trace.push(burst_ev);
                    }
                }
            }
        }
    }
    trace
}

/// Probabilities for each wire-level perturbation a [`StreamInjector`]
/// applies, plus the seed driving them. All probabilities are per-event
/// and independent.
#[derive(Clone, Copy, Debug)]
pub struct InjectionPlan {
    /// Seed for the injector's deterministic random stream.
    pub seed: u64,
    /// Probability an event's frame is silently dropped.
    pub drop: f64,
    /// Probability an event's frame is delivered twice.
    pub duplicate: f64,
    /// Probability an event's frame is replaced by a corrupted one
    /// (truncated, bad tag, or random bytes).
    pub corrupt: f64,
    /// Probability each adjacent frame pair is swapped in the final
    /// reorder pass.
    pub reorder: f64,
}

impl InjectionPlan {
    /// A faithful wire: nothing dropped, duplicated, corrupted, or
    /// reordered (the control arm of every robustness experiment).
    pub fn clean(seed: u64) -> Self {
        InjectionPlan { seed, drop: 0.0, duplicate: 0.0, corrupt: 0.0, reorder: 0.0 }
    }

    /// The default hostile mix: 5% drops, 10% duplicates, 10%
    /// corruptions, 15% adjacent swaps.
    pub fn hostile(seed: u64) -> Self {
        InjectionPlan { seed, drop: 0.05, duplicate: 0.1, corrupt: 0.1, reorder: 0.15 }
    }
}

/// Applies an [`InjectionPlan`] to event traces, producing the byte
/// frames "the network actually delivered".
#[derive(Clone, Debug)]
pub struct StreamInjector {
    plan: InjectionPlan,
    rng: StdRng,
}

impl StreamInjector {
    /// A new injector; its random stream is seeded from the plan.
    pub fn new(plan: InjectionPlan) -> Self {
        StreamInjector { rng: StdRng::seed_from_u64(plan.seed), plan }
    }

    /// Perturbs `trace` into delivered wire frames: per event, maybe
    /// drop, maybe corrupt (replacing the clean frame), maybe
    /// duplicate; then a reorder pass swapping adjacent frames.
    ///
    /// Note a corrupted frame *replaces* the clean one — and random
    /// bytes occasionally decode to a different valid event, which is
    /// exactly the byzantine input the pipeline's validation layer (not
    /// the codec) must absorb.
    pub fn perturb(&mut self, trace: &[FaultEvent]) -> Vec<Vec<u8>> {
        let mut frames: Vec<Vec<u8>> = Vec::with_capacity(trace.len());
        for ev in trace {
            if self.rng.random_bool(self.plan.drop) {
                continue;
            }
            let frame = if self.rng.random_bool(self.plan.corrupt) {
                self.garble(ev)
            } else {
                ev.encode().to_vec()
            };
            if self.rng.random_bool(self.plan.duplicate) {
                frames.push(frame.clone());
            }
            frames.push(frame);
        }
        for i in 1..frames.len() {
            if self.rng.random_bool(self.plan.reorder) {
                frames.swap(i - 1, i);
            }
        }
        frames
    }

    /// One corrupted frame: truncation, an undefined tag byte, or fully
    /// random bytes of the correct length.
    fn garble(&mut self, ev: &FaultEvent) -> Vec<u8> {
        let clean = ev.encode();
        match self.rng.random_range(0u8..3) {
            0 => clean[..self.rng.random_range(0..clean.len())].to_vec(),
            1 => {
                let mut f = clean.to_vec();
                f[0] = self.rng.random_range(3u8..=u8::MAX);
                f
            }
            _ => (0..clean.len()).map(|_| self.rng.random_range(0u8..=u8::MAX)).collect(),
        }
    }
}

/// A build probe that fails the first `panics + corrupts` attempts it
/// sees — `panics` by panicking inside the builder, then `corrupts` by
/// letting the build succeed and corrupting a cross-checked cell — and
/// then behaves. Install with [`ChurnPipeline::set_build_probe`].
///
/// With `panics + corrupts` < the retry budget the pipeline recovers
/// within one commit; with more it escalates to a full rebuild; with
/// even more the commit stalls and the last good snapshot keeps
/// serving. The robustness suite pins all three regimes.
pub fn flaky_builder(panics: u32, corrupts: u32) -> BuildProbe {
    let mut seen = 0u32;
    Box::new(move |_ctx| {
        seen += 1;
        if seen <= panics {
            BuildFault::Panic
        } else if seen <= panics + corrupts {
            BuildFault::Corrupt
        } else {
            BuildFault::None
        }
    })
}

/// A build probe that attacks only **delta** attempts (those with
/// [`super::BuildContext::delta`] set): the first `panics` delta
/// attempts panic inside the patch, the next `corrupts` let the patch
/// succeed and corrupt a cross-checked cell; full-rebuild attempts are
/// always left alone. Install with [`ChurnPipeline::set_build_probe`].
///
/// This is how the delta suite proves the fallback ladder heals: a
/// poisoned delta burns attempt 0, and the pipeline publishes via the
/// untouched from-scratch builder with the reason recorded in
/// [`super::ChurnHealth::last_delta_fallback`].
pub fn flaky_delta_builder(panics: u32, corrupts: u32) -> BuildProbe {
    let mut seen = 0u32;
    Box::new(move |ctx| {
        if !ctx.delta {
            return BuildFault::None;
        }
        seen += 1;
        if seen <= panics {
            BuildFault::Panic
        } else if seen <= panics + corrupts {
            BuildFault::Corrupt
        } else {
            BuildFault::None
        }
    })
}

/// Asserts the pipeline's *published* snapshot agrees cell-for-cell
/// (hops, parents, exact costs, every source × every vertex) with a
/// fresh engine run on the snapshot's own base fault state. Returns the
/// first disagreeing `(source, vertex)` on failure.
///
/// This is the harness's end-of-experiment gate: after any injection
/// schedule, a converged pipeline must serve answers indistinguishable
/// from recomputing [`ExactScheme::spt_into`] from scratch.
///
/// [`ExactScheme::spt_into`]: rsp_core::ExactScheme::spt_into
pub fn verify_published<C: PathCost + 'static>(
    pipeline: &ChurnPipeline<C>,
) -> Result<(), (Vertex, Vertex)> {
    let snapshot = pipeline.published_snapshot();
    let scheme = pipeline.scheme();
    let g = scheme.graph();
    let mut scratch = SearchScratch::with_capacity(g.n());
    for s in g.vertices() {
        let row = snapshot.baseline(s).expect("default snapshots serve every vertex");
        scheme.spt_into(s, snapshot.base_faults(), &mut scratch);
        for v in g.vertices() {
            if row.dist(v) != scratch.hops(v)
                || row.parent(v) != scratch.parent(v)
                || row.cost(v) != scratch.cost(v)
            {
                return Err((s, v));
            }
        }
    }
    Ok(())
}

/// Asserts full convergence: nothing pending, not degraded, the
/// published snapshot folds exactly the pipeline's accepted fault
/// state, and [`verify_published`] passes. Returns a description of the
/// first violated condition.
pub fn verify_converged<C: PathCost + 'static>(pipeline: &ChurnPipeline<C>) -> Result<(), String> {
    let health = pipeline.health();
    if health.pending_events != 0 {
        return Err(format!("{} accepted events not yet published", health.pending_events));
    }
    if health.degraded {
        return Err(format!("pipeline degraded: {:?}", health.last_failure));
    }
    let snapshot = pipeline.published_snapshot();
    if snapshot.base_faults() != pipeline.fault_state().faults() {
        return Err("published base faults disagree with the accepted fault state".to_string());
    }
    verify_published(pipeline)
        .map_err(|(s, v)| format!("published snapshot wrong at source {s}, vertex {v}"))
}

/// Flips one seeded-random bit of `bytes` in place, returning the byte
/// offset touched (`None` on an empty stream). The single-event wire
/// codec has no checksum — this is the corruption the journal frame
/// layer's CRC32 ([`rsp_graph::journal`]) exists to catch, and the
/// recovery proptests drive it across every offset.
pub fn flip_random_bit(bytes: &mut [u8], seed: u64) -> Option<usize> {
    if bytes.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let at = rng.random_range(0..bytes.len());
    bytes[at] ^= 1 << rng.random_range(0u32..8);
    Some(at)
}

/// Truncates `bytes` to a seeded-random proper prefix (possibly empty),
/// returning the new length — the "power failed mid-append" journal
/// tail that [`super::ChurnPipeline::recover`] must treat as a clean
/// recovery point ([`rsp_graph::journal::JournalTail::Torn`]), never an
/// error and never a panic.
pub fn truncate_random(bytes: &mut Vec<u8>, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = if bytes.is_empty() { 0 } else { rng.random_range(0..bytes.len()) };
    bytes.truncate(keep);
    keep
}

/// Which cell of a published tree row [`corrupt_published_row`] flips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellCorruption {
    /// Bump a reachable non-source vertex's hop count by one.
    Hop,
    /// Erase a reachable non-source vertex's parent pointer.
    Parent,
    /// Zero a reachable non-source vertex's exact path cost.
    Cost,
}

/// Corrupts one cell of source `s`'s tree row in the snapshot `oracle`
/// is **currently serving** — clone, flip, republish — and returns the
/// vertex whose cell was damaged (`None` if `s` has no row or no
/// corruptible cell).
///
/// This models damage that strikes *after* every commit-time gate has
/// passed (a stray write, bad RAM): readers consume the wrong cell from
/// the fast path until the scrubber's audit catches it. The scrub suite
/// uses this probe to prove detection and repair, not luck, is what
/// keeps served answers correct.
pub fn corrupt_published_row<C: PathCost + 'static>(
    oracle: &Oracle<C>,
    s: Vertex,
    kind: CellCorruption,
) -> Option<Vertex> {
    let snap = oracle.snapshot();
    let row_idx = snap.row_of(s)?;
    let n = snap.graph().n();
    let mut corrupted = (*snap).clone();
    let row = Arc::make_mut(corrupted.row_arc_mut(row_idx));
    let victim = (0..n).find(|&v| v != s && row.hops[v] != NONE)?;
    match kind {
        CellCorruption::Hop => row.hops[victim] += 1,
        CellCorruption::Parent => {
            row.parent_vertex[victim] = NONE;
            row.parent_edge[victim] = NONE;
        }
        CellCorruption::Cost => row.costs[victim].set_zero(),
    }
    oracle.publish(corrupted);
    Some(victim)
}
