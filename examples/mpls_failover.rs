//! MPLS failover: the paper's motivating application, end to end.
//!
//! Establishes label-switched paths over a service-provider-style
//! topology, fails links, and restores LSPs by splicing stored routes
//! from the dual routing tables (forward `π` + reverse `π̄`). Also shows
//! the Figure 1 incident: with naive BFS tables the same splice procedure
//! strands traffic that a restorable scheme recovers.
//!
//! ```text
//! cargo run --example mpls_failover
//! ```

use restorable_tiebreaking::core::{BfsOrder, BfsScheme, RandomGridAtw};
use restorable_tiebreaking::graph::generators;
use restorable_tiebreaking::mpls::{MplsError, MplsNetwork};

fn main() {
    // A metro ring of rings: two tori bridged — lots of equal-cost paths.
    let g = generators::torus(4, 8);
    println!("provider network: 4x8 torus, n = {}, m = {}\n", g.n(), g.m());

    // --- Restorable tables (Theorem 2) ------------------------------
    let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    let mut net = MplsNetwork::new(&scheme);

    let flows = [(0, 19), (3, 28), (8, 17), (12, 31)];
    let lsps: Vec<_> = flows
        .iter()
        .map(|&(s, t)| {
            let id = net.establish(s, t).expect("connected");
            println!("LSP {id:?} established {s} -> {t}: {}", net.lsp(id).unwrap().path());
            id
        })
        .collect();

    // Fail the first hop of the first LSP.
    let victim = lsps[0];
    let first_hop = net.lsp(victim).unwrap().path().vertices()[1];
    let failed = net.graph().edge_between(flows[0].0, first_hop).expect("edge exists");
    net.fail_edge(failed);
    println!("\nlink ({}, {first_hop}) FAILED", flows[0].0);
    println!("affected LSPs: {:?}", net.affected_lsps());

    for id in net.affected_lsps() {
        let report = net.restore(id).expect("restorable tables always splice");
        println!(
            "restored {id:?} via midpoint {}: {} ({} hops; optimum {})",
            report.midpoint,
            report.restored_path,
            report.restored_path.hops(),
            report.optimal_hops,
        );
        assert_eq!(report.restored_path.hops() as u32, report.optimal_hops);
    }

    // --- The Figure 1 incident with naive tables --------------------
    // Run the same splice procedure with textbook BFS tables on a
    // tie-rich metro grid, across every flow and every failure.
    let metro = generators::grid(3, 4);
    println!("\n--- same procedure with naive BFS routing tables (3x4 metro grid) ---");
    let naive = BfsScheme::new(&metro, BfsOrder::Ascending);
    let mut incidents = 0;
    let mut restored = 0;
    for (e, _, _) in metro.edges() {
        for s in metro.vertices() {
            for t in metro.vertices() {
                if s == t {
                    continue;
                }
                let mut n2 = MplsNetwork::new(&naive);
                let Ok(id) = n2.establish(s, t) else { continue };
                n2.fail_edge(e);
                match n2.restore(id) {
                    Ok(_) => restored += 1,
                    Err(MplsError::RestorationFailed { .. }) => incidents += 1,
                    Err(_) => {}
                }
            }
        }
    }
    println!(
        "naive tables: {restored} flows restored, {incidents} STRANDED \
         (restorable tables on the same grid: 0 stranded, by Theorem 2)"
    );
    assert!(incidents > 0, "the grid is known to defeat naive tables");
}
