//! **E5 / Theorems 5, 26, 31** — fault-tolerant preserver sizes against
//! the `O(n^{2−1/2^f} |S|^{1/2^f})` bound, with sampled correctness
//! verification.

use rsp_core::verify::sample_fault_sets;
use rsp_core::RandomGridAtw;
use rsp_preserver::{ft_subset_preserver, verify_preserver, PairSet};

use crate::reporting::{f3, loglog_slope, Table};
use crate::workloads::{sparse_sweep, spread_sources};

/// Runs E5 and prints the tables.
pub fn run(quick: bool) {
    let sizes: &[usize] = if quick { &[40, 80] } else { &[40, 80, 160, 320] };
    let sigma = 4;
    for f_total in [1usize, 2] {
        let mut table = Table::new(
            &format!("E5 (Theorem 31): {f_total}-FT S x S preserver sizes, sigma = {sigma}"),
            &["graph", "n", "m", "edges", "bound n^(2-1/2^f) s^(1/2^f)", "edges/bound"],
        );
        let mut ns = Vec::new();
        let mut es = Vec::new();
        for w in sparse_sweep(sizes, 5) {
            let g = &w.graph;
            let scheme = RandomGridAtw::theorem20(g, 13).into_scheme();
            let sources = spread_sources(g.n(), sigma);
            // Theorem 31 sets the internal overlay depth to f_total − 1.
            let p = ft_subset_preserver(&scheme, &sources, f_total);
            // Sampled ground-truth verification.
            let fault_sets = sample_fault_sets(g.m(), f_total, if quick { 8 } else { 25 }, 17);
            verify_preserver(g, &p, &PairSet::subset(sources.clone()), &fault_sets)
                .expect("preserver must be correct");
            let fexp = f_total - 1; // the bound's f is the overlay depth
            let bound = (g.n() as f64).powf(2.0 - 1.0 / (1u64 << fexp) as f64)
                * (sigma as f64).powf(1.0 / (1u64 << fexp) as f64);
            ns.push(g.n() as f64);
            es.push(p.edge_count() as f64);
            table.row(&[
                w.name.clone(),
                g.n().to_string(),
                g.m().to_string(),
                p.edge_count().to_string(),
                f3(bound),
                f3(p.edge_count() as f64 / bound),
            ]);
        }
        table.print();
        let slope = loglog_slope(&ns, &es);
        let fexp = f_total - 1;
        let predicted = 2.0 - 1.0 / (1u64 << fexp) as f64;
        println!(
            "measured growth exponent {} vs theorem exponent {} \
             (must not exceed it asymptotically)\n",
            f3(slope),
            f3(predicted)
        );
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_runs_quick() {
        super::run(true);
    }
}
