//! Property tests: `BigInt` against `i128` reference arithmetic, and the
//! algebraic laws the exact-cost Dijkstra relies on.

use proptest::prelude::*;
use rsp_arith::{BigInt, PathCost};

/// Values small enough that sums/differences stay within i128.
fn small() -> impl Strategy<Value = i128> {
    any::<i64>().prop_map(|v| v as i128)
}

proptest! {
    #[test]
    fn add_matches_i128(a in small(), b in small()) {
        let got = BigInt::from_i128(a) + BigInt::from_i128(b);
        prop_assert_eq!(got, BigInt::from_i128(a + b));
    }

    #[test]
    fn sub_matches_i128(a in small(), b in small()) {
        let got = BigInt::from_i128(a) - BigInt::from_i128(b);
        prop_assert_eq!(got, BigInt::from_i128(a - b));
    }

    #[test]
    fn neg_involution(a in small()) {
        prop_assert_eq!(-(-BigInt::from_i128(a)), BigInt::from_i128(a));
    }

    #[test]
    fn ordering_matches_i128(a in small(), b in small()) {
        prop_assert_eq!(
            BigInt::from_i128(a).cmp(&BigInt::from_i128(b)),
            a.cmp(&b)
        );
    }

    #[test]
    fn to_i128_round_trip(a in any::<i128>()) {
        prop_assert_eq!(BigInt::from_i128(a).to_i128(), Some(a));
    }

    #[test]
    fn display_matches_i128(a in any::<i128>()) {
        prop_assert_eq!(BigInt::from_i128(a).to_string(), a.to_string());
    }

    #[test]
    fn shift_is_doubling(a in small(), k in 0u32..40) {
        let shifted = BigInt::from_i128(a) << k as usize;
        prop_assert_eq!(shifted, BigInt::from_i128(a) * (1u64 << k));
    }

    #[test]
    fn mul_u64_matches_i128(a in -(1i128 << 40)..(1i128 << 40), b in 0u64..(1 << 20)) {
        let got = BigInt::from_i128(a) * b;
        prop_assert_eq!(got, BigInt::from_i128(a * b as i128));
    }

    #[test]
    fn addition_is_commutative_and_associative(a in small(), b in small(), c in small()) {
        let (x, y, z) = (BigInt::from_i128(a), BigInt::from_i128(b), BigInt::from_i128(c));
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
    }

    /// The translation invariance Dijkstra's correctness needs:
    /// a < b implies a + c < b + c.
    #[test]
    fn order_translation_invariant(a in small(), b in small(), c in small()) {
        prop_assume!(a < b);
        let (x, y, z) = (BigInt::from_i128(a), BigInt::from_i128(b), BigInt::from_i128(c));
        prop_assert!(&x + &z < &y + &z);
    }

    /// PathCost laws: zero identity and agreement with addition.
    #[test]
    fn path_cost_laws(a in 0i128..(1 << 60)) {
        let x = BigInt::from_i128(a);
        prop_assert_eq!(BigInt::zero().plus(&x), x.clone());
        prop_assert_eq!(x.plus(&BigInt::zero()), x.clone());
        prop_assert_eq!(x.plus(&x), BigInt::from_i128(2 * a));
    }

    #[test]
    fn bits_matches_magnitude(a in 1u64..) {
        let b = BigInt::from_u128(a as u128);
        prop_assert_eq!(b.bits(), (64 - a.leading_zeros()) as usize);
    }
}
