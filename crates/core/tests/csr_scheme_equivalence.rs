//! Scheme-level CSR differential suite: the exact-scheme query paths —
//! `ExactScheme::spt_into` over the CSR core and the `Rpts::tree_from_with`
//! trait view — must be cell-identical to the pre-migration Vec-of-Vec
//! reference engine reading the same antisymmetric weight tables, on the
//! Internet-shaped generator families; and Theorem 20 must stay what it
//! claims — tie-free — on every one of those families.

use proptest::prelude::*;
use rsp_core::{RandomGridAtw, Rpts};
use rsp_graph::reference::{ref_dijkstra, RefGraph};
use rsp_graph::{gen, generators, EdgeCostSource, FaultSet, Graph, SearchScratch, Vertex};

/// One graph per Internet-shaped family, plus the `G(n, m)` control.
fn family_graph() -> impl Strategy<Value = Graph> {
    (0u8..4, 10usize..=24, any::<u64>()).prop_map(|(fam, n, seed)| match fam {
        0 => generators::connected_gnm(n, (2 * n - 1).min(n * (n - 1) / 2), seed),
        1 => gen::preferential_attachment(n, 2, seed),
        2 => gen::watts_strogatz(n, 4, 0.2, seed),
        _ => gen::isp_hierarchy(5 + n / 4, n, seed),
    })
}

fn fault_plan(g: &Graph, picks: &[prop::sample::Index]) -> Vec<FaultSet> {
    picks
        .iter()
        .enumerate()
        .map(|(i, pick)| {
            let e = pick.index(g.m());
            match i % 3 {
                0 => FaultSet::empty(),
                1 => FaultSet::single(e),
                _ => FaultSet::from_edges([e, (e + g.m() / 2) % g.m()]),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `spt_into` over the CSR core equals the reference engine reading
    /// the scheme's own directed cost tables — costs, hops, parents, tie
    /// flags — and `tree_from_with` agrees with both.
    #[test]
    fn scheme_queries_equal_reference(
        g in family_graph(),
        wseed in any::<u64>(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let r = RefGraph::from_graph(&g);
        let mut engine = SearchScratch::with_capacity(g.n());
        let mut rpts_scratch = scheme.new_scratch();
        for faults in fault_plan(&g, &fault_picks) {
            for pick in &source_picks {
                let s = pick.index(g.n());
                scheme.spt_into(s, &faults, &mut engine);
                let mut dc = scheme.directed_costs();
                let spec = ref_dijkstra(&r, s, &faults, |e: usize, from: Vertex, to: Vertex| {
                    dc.compute(&0u128, e, from, to)
                });
                for v in g.vertices() {
                    prop_assert_eq!(engine.cost(v), spec.cost[v].as_ref(), "cost s{} v{}", s, v);
                    prop_assert_eq!(
                        engine.hops(v),
                        spec.reached(v).then_some(spec.hops[v]),
                        "hops s{} v{}", s, v
                    );
                    prop_assert_eq!(engine.parent(v), spec.parent[v], "parent s{} v{}", s, v);
                }
                prop_assert_eq!(engine.ties_detected(), spec.ties, "ties s{}", s);

                let tree = scheme.tree_from_with(s, &faults, &mut rpts_scratch);
                for v in g.vertices() {
                    prop_assert_eq!(
                        tree.dist(v),
                        spec.reached(v).then_some(spec.hops[v]),
                        "tree dist s{} v{}", s, v
                    );
                    prop_assert_eq!(tree.parent(v), spec.parent[v], "tree parent s{} v{}", s, v);
                }
            }
        }
    }

    /// Theorem 20 on the Internet-shaped families: the randomized grid
    /// scheme stays tie-free from every source, with and without faults —
    /// the property the whole perturbation exists to provide, now pinned
    /// on scale-free, small-world, and hierarchical topologies too.
    #[test]
    fn theorem20_is_tie_free_on_gen_families(
        g in family_graph(),
        wseed in any::<u64>(),
        fault_pick in any::<prop::sample::Index>(),
    ) {
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let faults = FaultSet::single(fault_pick.index(g.m()));
        let mut engine = SearchScratch::with_capacity(g.n());
        for s in g.vertices() {
            scheme.spt_into(s, &FaultSet::empty(), &mut engine);
            prop_assert!(!engine.ties_detected(), "tie from source {} (no faults)", s);
            scheme.spt_into(s, &faults, &mut engine);
            prop_assert!(!engine.ties_detected(), "tie from source {} under {}", s, &faults);
        }
    }
}
