//! Fault-tolerant exact distance labels (Theorem 30): answer
//! `dist(s, t | F)` from two bitstrings and the failure description —
//! no access to the graph at query time.
//!
//! ```text
//! cargo run --example fault_labels
//! ```

use restorable_tiebreaking::core::RandomGridAtw;
use restorable_tiebreaking::graph::{bfs, generators, FaultSet};
use restorable_tiebreaking::labeling::build_labeling;

fn main() {
    let g = generators::connected_gnm(40, 120, 77);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // Labels supporting one edge fault: each vertex stores its 0-FT
    // preserver (a tree) — restorability earns the extra fault.
    let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
    let labeling = build_labeling(&scheme, 0);
    println!(
        "labels built: max {} bits/vertex, {} bits total (supports {} fault)",
        labeling.max_label_bits(),
        labeling.total_bits(),
        labeling.faults_supported(),
    );

    // Simulate a decoder that has ONLY the two labels + the fault.
    let (s, t) = (0, 39);
    println!("\nquerying dist({s}, {t}) under every single-edge failure:");
    let mut changed = 0;
    for (e, u, v) in g.edges() {
        let answer = labeling.query(s, t, &[(u, v)]);
        let truth = bfs(&g, s, &FaultSet::single(e)).dist(t);
        assert_eq!(answer, truth, "label decoder must be exact");
        if truth != bfs(&g, s, &FaultSet::empty()).dist(t) {
            changed += 1;
            println!("  edge ({u}, {v}) down: dist = {answer:?}");
        }
    }
    println!(
        "\nall {} failure queries exact; {} failures actually changed the distance",
        g.m(),
        changed
    );
}
