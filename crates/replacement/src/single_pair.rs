//! The near-linear single-pair replacement path algorithm (Theorem 28).
//!
//! For a pair `(s, t)`, the algorithm must report `dist_{G\{e}}(s, t)` for
//! every edge `e` on a shortest `s ⇝ t` path. Structure:
//!
//! 1. Perturb edge weights with a restorable ATW function so all shortest
//!    paths are unique, and compute the two trees `T_s`, `T_t`.
//! 2. Let `π(s, t) = v_0 … v_ℓ` be the (unique) selected path. Because
//!    shortest paths are unique, `T_s` restricted to path vertices is the
//!    path prefix, so every vertex `u` hangs off a well-defined *branch
//!    index* `a(u)`: the deepest path vertex on `u`'s tree path. The path
//!    edges used by `sp(s, u)` are exactly `e_1 … e_{a(u)}`; symmetrically
//!    `sp(v, t)` uses `e_{b(v)+1} … e_ℓ`.
//! 3. Each *non-path* edge `(u, v)` (in both orientations) yields a
//!    candidate replacement path `sp(s, u) ∘ (u, v) ∘ sp(v, t)` of length
//!    `d(s,u) + 1 + d(v,t)`, valid exactly for failing edges
//!    `e_i` with `a(u) < i ≤ b(v)` — a contiguous interval. (Path edges
//!    yield no useful candidates: their interval is empty once the edge
//!    itself is excluded.)
//! 4. Sort candidates by length and sweep with the [`crate::NextFree`]
//!    union-find: each failing position receives the first (= shortest)
//!    candidate that covers it. Completeness is the weighted restoration
//!    lemma (Theorem 11 in the paper).

use rsp_arith::PathCost;
use rsp_core::RandomGridAtw;
use rsp_graph::{DirectedCosts, EdgeId, Graph, Path, SearchScratch, Vertex};

use crate::unionfind::NextFree;

/// Reusable search state for repeated single-pair replacement-path
/// computations (two shortest-path trees per pair).
///
/// Algorithm 1 and the all-pairs oracle run the single-pair routine once
/// per source pair — `O(σ²)` to `O(n²)` times — so all per-pair buffers
/// are hoisted here and reused across
/// [`single_pair_replacement_paths_with`] calls: the two Dijkstra
/// scratches *and* the two `O(m)` perturbed cost vectors (regenerated in
/// place per pair via [`RandomGridAtw::theorem20_costs_into`], never
/// reallocated).
#[derive(Debug, Default)]
pub struct ReplacementScratch {
    /// Scratch for the tree rooted at the pair's source.
    from_s: SearchScratch<u128>,
    /// Scratch for the tree rooted at the pair's target.
    from_t: SearchScratch<u128>,
    /// Perturbed forward (canonical-direction) edge costs.
    fwd: Vec<u128>,
    /// Perturbed backward edge costs.
    bwd: Vec<u128>,
}

impl ReplacementScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for graphs with up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        ReplacementScratch {
            from_s: SearchScratch::with_capacity(n),
            from_t: SearchScratch::with_capacity(n),
            fwd: Vec::new(),
            bwd: Vec::new(),
        }
    }
}

/// Replacement distance for one failing edge of the selected path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplacementEntry {
    /// The failing path edge.
    pub edge: EdgeId,
    /// `dist_{G\{edge}}(s, t)`, or `None` if the failure disconnects the
    /// pair.
    pub dist: Option<u32>,
}

/// Output of the single-pair replacement path computation.
#[derive(Clone, Debug)]
pub struct SinglePairResult {
    s: Vertex,
    t: Vertex,
    path: Path,
    entries: Vec<ReplacementEntry>,
}

impl SinglePairResult {
    /// Assembles a result from parts (used by the baselines and by
    /// Algorithm 1's edge-id translation).
    pub(crate) fn from_parts(
        s: Vertex,
        t: Vertex,
        path: Path,
        entries: Vec<ReplacementEntry>,
    ) -> Self {
        SinglePairResult { s, t, path, entries }
    }

    /// The source.
    pub fn s(&self) -> Vertex {
        self.s
    }

    /// The target.
    pub fn t(&self) -> Vertex {
        self.t
    }

    /// The selected shortest `s ⇝ t` path whose edges are the failure
    /// points.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fault-free distance.
    pub fn base_dist(&self) -> u32 {
        self.path.hops() as u32
    }

    /// One entry per path edge, in path order.
    pub fn entries(&self) -> &[ReplacementEntry] {
        &self.entries
    }

    /// Replacement distance if `e` fails: the per-edge entry for path
    /// edges, the unchanged base distance otherwise (failing an off-path
    /// edge cannot lengthen the selected path).
    pub fn dist_after_fault(&self, e: EdgeId) -> Option<u32> {
        match self.entries.iter().find(|r| r.edge == e) {
            Some(entry) => entry.dist,
            None => Some(self.base_dist()),
        }
    }
}

/// Runs the single-pair algorithm on `g` for the pair `(s, t)`.
///
/// Returns `None` if `t` is unreachable from `s` (there is no path whose
/// edges could fail). For `s == t` returns a trivial result with no
/// entries.
///
/// `seed` drives the internal weight perturbation; any seed yields correct
/// output (ties are broken, not distances changed).
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn single_pair_replacement_paths(
    g: &Graph,
    s: Vertex,
    t: Vertex,
    seed: u64,
) -> Option<SinglePairResult> {
    let mut scratch = ReplacementScratch::with_capacity(g.n());
    single_pair_replacement_paths_with(g, s, t, seed, &mut scratch)
}

/// [`single_pair_replacement_paths`] reusing a [`ReplacementScratch`]
/// across calls — the form the `O(σ²)`-pair callers (Algorithm 1, the
/// all-pairs oracle) loop over.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn single_pair_replacement_paths_with(
    g: &Graph,
    s: Vertex,
    t: Vertex,
    seed: u64,
    scratch: &mut ReplacementScratch,
) -> Option<SinglePairResult> {
    assert!(s < g.n() && t < g.n(), "pair out of range");
    if s == t {
        return Some(SinglePairResult { s, t, path: Path::trivial(s), entries: Vec::new() });
    }
    // Regenerate the Theorem 20 perturbation into the scratch-held cost
    // buffers: same weights as building an `ExactScheme`, none of the
    // per-pair allocations (see ReplacementScratch docs).
    RandomGridAtw::theorem20_costs_into(g, seed, &mut scratch.fwd, &mut scratch.bwd);
    let costs = DirectedCosts::new(&scratch.fwd, &scratch.bwd);
    let empty = rsp_graph::FaultSet::empty();
    rsp_graph::dijkstra_into(g, s, &empty, costs, &mut scratch.from_s);
    rsp_graph::dijkstra_into(g, t, &empty, costs, &mut scratch.from_t);
    let (spt_s, spt_t) = (&scratch.from_s, &scratch.from_t);
    let path = spt_s.path_to(t)?;
    let verts = path.vertices();
    let ell = path.hops(); // path edges are e_1 … e_ℓ at positions 1..=ℓ

    // Position of each path vertex, and the path's edge ids.
    let mut pos = vec![usize::MAX; g.n()];
    for (i, &v) in verts.iter().enumerate() {
        pos[v] = i;
    }
    let path_edges: Vec<EdgeId> = path.edge_ids(g).expect("selected path is valid");
    let mut is_path_edge = vec![false; g.m()];
    for &e in &path_edges {
        is_path_edge[e] = true;
    }

    // Branch indices. a[u]: path edges of sp(s, u) are e_1 … e_{a[u]}.
    // Unique shortest paths make sp(s, v_j) the path prefix, so a[v_j] = j
    // and a[u] = a[parent(u)] otherwise. Process in hop order so parents
    // come first.
    let a = branch_indices(g, spt_s, &pos);
    // b[v]: path edges of sp(t, v) are e_{b[v]+1} … e_ℓ; b[v_j] = j.
    let b = branch_indices(g, spt_t, &pos);

    // Candidates from non-path edges, both orientations.
    struct Candidate {
        len: u32,
        lo: usize,
        hi: usize,
    }
    let mut candidates = Vec::new();
    for (e, x, y) in g.edges() {
        if is_path_edge[e] {
            continue;
        }
        for (u, v) in [(x, y), (y, x)] {
            let (Some(du), Some(dv)) = (spt_s.hops(u), spt_t.hops(v)) else {
                continue;
            };
            let (Some(au), Some(bv)) = (a[u], b[v]) else { continue };
            // Valid for failing e_i with a(u) < i ≤ b(v).
            let lo = au + 1;
            let hi = bv;
            if lo > hi {
                continue;
            }
            candidates.push(Candidate { len: du + 1 + dv, lo, hi });
        }
    }
    candidates.sort_by_key(|c| c.len);

    // Sweep: positions 1..=ℓ map to union-find slots 0..ℓ.
    let mut answers: Vec<Option<u32>> = vec![None; ell];
    let mut free = NextFree::new(ell);
    let mut remaining = ell;
    'sweep: for c in &candidates {
        let mut i = free.find(c.lo - 1);
        while let Some(slot) = i {
            if slot > c.hi - 1 {
                break;
            }
            answers[slot] = Some(c.len);
            free.mark(slot);
            remaining -= 1;
            if remaining == 0 {
                break 'sweep;
            }
            i = free.find(slot);
        }
    }

    let entries = path_edges
        .iter()
        .zip(&answers)
        .map(|(&edge, &dist)| ReplacementEntry { edge, dist })
        .collect();
    Some(SinglePairResult { s, t, path, entries })
}

/// Computes branch indices against a tree: `Some(j)` when the deepest path
/// vertex on the tree path to `u` is `v_j`, `None` for unreachable `u`.
fn branch_indices<C: PathCost>(
    g: &Graph,
    spt: &SearchScratch<C>,
    pos: &[usize],
) -> Vec<Option<usize>> {
    let n = g.n();
    let mut order: Vec<Vertex> = (0..n).filter(|&v| spt.hops(v).is_some()).collect();
    order.sort_by_key(|&v| spt.hops(v).expect("filtered reachable"));
    let mut out: Vec<Option<usize>> = vec![None; n];
    for v in order {
        out[v] = if pos[v] != usize::MAX {
            Some(pos[v])
        } else {
            let (p, _) = spt.parent(v).expect("non-root reachable vertex has a parent");
            out[p]
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::naive_single_pair;
    use rsp_graph::generators;

    fn check_against_naive(g: &Graph, s: Vertex, t: Vertex, seed: u64) {
        let fast = single_pair_replacement_paths(g, s, t, seed).unwrap();
        let naive = naive_single_pair(g, s, t, fast.path().clone());
        assert_eq!(fast.entries().len(), naive.entries().len());
        for (f, n) in fast.entries().iter().zip(naive.entries()) {
            assert_eq!(f.edge, n.edge);
            assert_eq!(f.dist, n.dist, "edge {} of pair ({s},{t})", f.edge);
        }
    }

    #[test]
    fn matches_naive_on_cycle() {
        let g = generators::cycle(8);
        check_against_naive(&g, 0, 4, 1);
        check_against_naive(&g, 1, 2, 2);
    }

    #[test]
    fn matches_naive_on_grid() {
        let g = generators::grid(4, 4);
        for (s, t) in [(0, 15), (3, 12), (5, 10), (0, 1)] {
            check_against_naive(&g, s, t, 7);
        }
    }

    #[test]
    fn matches_naive_on_petersen_and_hypercube() {
        let g = generators::petersen();
        for (s, t) in [(0, 7), (2, 8), (4, 5)] {
            check_against_naive(&g, s, t, 3);
        }
        let h = generators::hypercube(4);
        for (s, t) in [(0, 15), (1, 14), (3, 5)] {
            check_against_naive(&h, s, t, 4);
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::connected_gnm(24, 40, seed);
            for (s, t) in [(0, 23), (5, 17), (11, 2)] {
                check_against_naive(&g, s, t, seed + 100);
            }
        }
    }

    #[test]
    fn bridge_failure_disconnects() {
        let g = generators::path_graph(5);
        let r = single_pair_replacement_paths(&g, 0, 4, 1).unwrap();
        assert_eq!(r.entries().len(), 4);
        for e in r.entries() {
            assert_eq!(e.dist, None, "every path edge is a bridge");
        }
    }

    #[test]
    fn barbell_bridge_vs_clique_edges() {
        let g = generators::barbell(4, 1);
        let r = single_pair_replacement_paths(&g, 0, 7, 5).unwrap();
        let naive = naive_single_pair(&g, 0, 7, r.path().clone());
        assert_eq!(
            r.entries().iter().map(|e| e.dist).collect::<Vec<_>>(),
            naive.entries().iter().map(|e| e.dist).collect::<Vec<_>>()
        );
        // The bridge edge must be among the disconnecting ones.
        assert!(r.entries().iter().any(|e| e.dist.is_none()));
    }

    #[test]
    fn trivial_pair() {
        let g = generators::cycle(4);
        let r = single_pair_replacement_paths(&g, 2, 2, 0).unwrap();
        assert_eq!(r.base_dist(), 0);
        assert!(r.entries().is_empty());
    }

    #[test]
    fn unreachable_pair_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(single_pair_replacement_paths(&g, 0, 3, 0).is_none());
    }

    #[test]
    fn off_path_fault_keeps_base_distance() {
        let g = generators::grid(3, 3);
        let r = single_pair_replacement_paths(&g, 0, 8, 9).unwrap();
        let on_path: Vec<EdgeId> = r.path().edge_ids(&g).unwrap();
        for (e, _, _) in g.edges() {
            if !on_path.contains(&e) {
                assert_eq!(r.dist_after_fault(e), Some(r.base_dist()));
            }
        }
    }

    #[test]
    fn seeds_agree_on_distances() {
        // Different perturbations may pick different canonical paths, but
        // the replacement *distances* for shared path edges must agree
        // with the naive recomputation regardless of seed.
        let g = generators::connected_gnm(20, 45, 3);
        for seed in [10, 20, 30] {
            check_against_naive(&g, 0, 19, seed);
        }
    }

    use rsp_graph::Graph;
}
