//! The clustering construction of Lemma 32.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rsp_core::Rpts;
use rsp_graph::{EdgeId, Graph, Vertex};
use rsp_preserver::ft_subset_preserver;

/// An `f`-FT +4 additive spanner with its build statistics.
#[derive(Clone, Debug)]
pub struct Spanner {
    n: usize,
    edges: Vec<EdgeId>,
    centers: Vec<Vertex>,
    clustered: usize,
    preserver_edges: usize,
    faults_tolerated: usize,
}

impl Spanner {
    /// Number of edges — the size objective of Theorem 33.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The spanner's edge ids (in the original graph), sorted.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The sampled cluster centers `C`.
    pub fn centers(&self) -> &[Vertex] {
        &self.centers
    }

    /// How many vertices were clustered (kept only `f + 1` center edges).
    pub fn clustered_count(&self) -> usize {
        self.clustered
    }

    /// Edges contributed by the `C × C` subset preserver.
    pub fn preserver_edge_count(&self) -> usize {
        self.preserver_edges
    }

    /// The fault budget `f` the spanner was built for.
    pub fn faults_tolerated(&self) -> usize {
        self.faults_tolerated
    }

    /// Materializes the spanner as a standalone graph on the same
    /// vertex set.
    pub fn subgraph(&self, g: &Graph) -> Graph {
        assert_eq!(g.n(), self.n, "spanner belongs to a different graph");
        g.edge_subgraph(self.edges.iter().copied())
    }
}

/// Builds an `f`-FT +4 additive spanner with `σ = sigma` random cluster
/// centers (Lemma 32 over the Theorem 31 subset preserver).
///
/// `f ≥ 1` is the number of tolerated edge faults. The stretch guarantee
/// is deterministic; only the edge count is randomized (repeat with
/// different seeds and keep the sparsest to boost the bound, as the paper
/// notes).
///
/// # Panics
///
/// Panics if `f == 0`, `sigma == 0`, or `sigma > n`.
pub fn ft_additive_spanner<S: Rpts>(scheme: &S, sigma: usize, f: usize, seed: u64) -> Spanner {
    assert!(f >= 1, "the fault-tolerant construction starts at one fault");
    let g = scheme.graph();
    assert!(sigma >= 1 && sigma <= g.n(), "need 1 <= sigma <= n");

    // Step 1: sample the centers.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<Vertex> = g.vertices().collect();
    perm.shuffle(&mut rng);
    let mut centers: Vec<Vertex> = perm.into_iter().take(sigma).collect();
    centers.sort_unstable();
    let mut is_center = vec![false; g.n()];
    for &c in &centers {
        is_center[c] = true;
    }

    // Step 2: clustering. Clustered vertices keep f + 1 center edges;
    // unclustered vertices keep everything.
    let mut keep = vec![false; g.m()];
    let mut clustered = 0;
    for v in g.vertices() {
        let center_edges: Vec<EdgeId> =
            g.neighbors(v).filter(|&(u, _)| is_center[u]).map(|(_, e)| e).collect();
        if center_edges.len() > f {
            clustered += 1;
            for &e in center_edges.iter().take(f + 1) {
                keep[e] = true;
            }
        } else {
            for (_, e) in g.neighbors(v) {
                keep[e] = true;
            }
        }
    }

    // Step 3: the f-FT C × C subset distance preserver (Theorem 31).
    let preserver = ft_subset_preserver(scheme, &centers, f);
    let preserver_edges = preserver.edge_count();
    for &e in preserver.edges() {
        keep[e] = true;
    }

    let edges: Vec<EdgeId> = (0..g.m()).filter(|&e| keep[e]).collect();
    Spanner { n: g.n(), edges, centers, clustered, preserver_edges, faults_tolerated: f }
}

/// The Theorem 33 balancing choice of `σ` for an `f`-tolerated-fault
/// spanner: `σ = ⌈n^{1/(2^{f−1}+1)}⌉` (the theorem's parameter is
/// `f' = f − 1`, and it picks `σ = n^{1/(2^{f'}+1)}`).
///
/// # Panics
///
/// Panics if `f == 0`.
pub fn theorem33_sigma(n: usize, f: usize) -> usize {
    assert!(f >= 1, "fault budget starts at one");
    let exp = 1.0 / ((1u64 << (f - 1)) as f64 + 1.0);
    ((n as f64).powf(exp).ceil() as usize).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_spanner_stretch;
    use rsp_core::{verify::sample_fault_sets, RandomGridAtw};
    use rsp_graph::{generators, FaultSet};

    #[test]
    fn spanner_is_subgraph_and_contains_preserver() {
        let g = generators::connected_gnm(30, 90, 2);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let sp = ft_additive_spanner(&scheme, 5, 1, 3);
        assert!(sp.edge_count() <= g.m());
        assert!(sp.preserver_edge_count() <= sp.edge_count());
        assert_eq!(sp.centers().len(), 5);
        assert_eq!(sp.faults_tolerated(), 1);
    }

    #[test]
    fn one_fault_stretch_holds_exhaustively() {
        let g = generators::connected_gnm(24, 70, 4);
        let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
        let sp = ft_additive_spanner(&scheme, 5, 1, 5);
        let singles: Vec<FaultSet> = g.edges().map(|(e, _, _)| FaultSet::single(e)).collect();
        verify_spanner_stretch(&g, &sp, 4, &singles).unwrap();
    }

    #[test]
    fn two_fault_stretch_holds_on_samples() {
        let g = generators::connected_gnm(18, 44, 6);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        let sp = ft_additive_spanner(&scheme, 4, 2, 7);
        let doubles = sample_fault_sets(g.m(), 2, 25, 8);
        verify_spanner_stretch(&g, &sp, 4, &doubles).unwrap();
    }

    #[test]
    fn dense_graph_gets_sparsified() {
        // On a dense random graph the spanner should drop a constant
        // fraction of edges at a sensible sigma.
        let n = 60;
        let g = generators::connected_gnm(n, n * (n - 1) / 4, 9);
        let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
        let sigma = theorem33_sigma(n, 1);
        let sp = ft_additive_spanner(&scheme, sigma, 1, 10);
        assert!(
            sp.edge_count() < g.m(),
            "spanner {} should be sparser than G {}",
            sp.edge_count(),
            g.m()
        );
    }

    #[test]
    fn sigma_balancing_is_monotone() {
        // Higher fault budgets use smaller exponents, hence fewer centers.
        let n = 10_000;
        let s1 = theorem33_sigma(n, 1);
        let s2 = theorem33_sigma(n, 2);
        let s3 = theorem33_sigma(n, 3);
        assert!(s1 >= s2 && s2 >= s3);
        assert_eq!(s1, 100, "n^{{1/2}} for one fault");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::connected_gnm(20, 50, 1);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let a = ft_additive_spanner(&scheme, 4, 1, 42);
        let b = ft_additive_spanner(&scheme, 4, 1, 42);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    #[should_panic(expected = "one fault")]
    fn zero_faults_rejected() {
        let g = generators::cycle(5);
        let scheme = RandomGridAtw::theorem20(&g, 0).into_scheme();
        let _ = ft_additive_spanner(&scheme, 2, 0, 0);
    }
}
