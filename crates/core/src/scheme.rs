//! Replacement-path tiebreaking schemes (Definition 15) and the
//! weight-induced scheme of Theorem 19.

use rsp_arith::PathCost;
use rsp_graph::{dijkstra, BfsTree, EdgeId, FaultSet, Graph, Path, Vertex, WeightedSpt};

/// An `f`-replacement-path tiebreaking scheme (Definition 15): a function
/// `π(s, t | F)` selecting one shortest `s ⇝ t` path in `G \ F` per ordered
/// pair and fault set.
///
/// Implementations in this workspace are all *tree-structured*: for a fixed
/// source and fault set the selected paths to all targets form a tree, so
/// the primary operation is [`Rpts::tree_from`] and `π(s, t | F)` is the
/// tree path. (This holds automatically for weight-induced schemes, whose
/// selected paths are unique shortest paths in `G* \ F`, and for the
/// BFS-order baseline.)
///
/// Note that `π(s, · | F)` and `π(t, · | F)` are **independent selections**
/// — the asymmetry that Theorem 2 shows is essential for restorability.
pub trait Rpts {
    /// The underlying fault-free graph `G`.
    fn graph(&self) -> &Graph;

    /// The selected shortest-path tree `π(s, · | F)` in `G \ F`.
    fn tree_from(&self, s: Vertex, faults: &FaultSet) -> BfsTree;

    /// The selected path `π(s, t | F)`, or `None` if `t` is unreachable
    /// in `G \ F`.
    ///
    /// The default computes a full tree; callers iterating over many targets
    /// for one `(s, F)` should call [`Rpts::tree_from`] once instead.
    fn path(&self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<Path> {
        self.tree_from(s, faults).path_to(t)
    }

    /// Unweighted distance of the selected path (equals `dist_{G\F}(s, t)`
    /// for a valid scheme).
    fn dist(&self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<u32> {
        self.tree_from(s, faults).dist(t)
    }
}

/// The scheme induced by exact per-direction edge costs in `G*` — the
/// weight-generated RPTS of Theorem 19.
///
/// Holds the graph plus, for every edge `e = (u, v)` (canonical `u < v`),
/// the exact scaled costs of traversing `u → v` (`fwd`) and `v → u`
/// (`bwd`). For an antisymmetric tiebreaking weight function these satisfy
/// `fwd[e] + bwd[e] = 2·unit` where `unit` is the scaled weight of an
/// unperturbed edge.
///
/// Constructed by [`crate::RandomGridAtw`] and [`crate::GeometricAtw`], or
/// directly via [`ExactScheme::from_costs`] (used by the lower-bound
/// machinery, which needs a specific *bad* weight function).
#[derive(Clone, Debug)]
pub struct ExactScheme<C> {
    graph: Graph,
    fwd: Vec<C>,
    bwd: Vec<C>,
    unit: C,
    bits_per_weight: usize,
}

impl<C: PathCost> ExactScheme<C> {
    /// Builds a scheme from explicit per-direction edge costs.
    ///
    /// `unit` is the scaled cost of an unperturbed unit edge and
    /// `bits_per_weight` the storage the perturbations need (reported by
    /// experiment E10).
    ///
    /// # Panics
    ///
    /// Panics if the cost vectors are not of length `g.m()`.
    pub fn from_costs(
        graph: Graph,
        fwd: Vec<C>,
        bwd: Vec<C>,
        unit: C,
        bits_per_weight: usize,
    ) -> Self {
        assert_eq!(fwd.len(), graph.m(), "one forward cost per edge");
        assert_eq!(bwd.len(), graph.m(), "one backward cost per edge");
        ExactScheme { graph, fwd, bwd, unit, bits_per_weight }
    }

    /// The exact cost of traversing edge `e` from `from` to its other
    /// endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `e`.
    pub fn edge_cost(&self, e: EdgeId, from: Vertex, to: Vertex) -> C {
        let (u, v) = self.graph.endpoints(e);
        if (from, to) == (u, v) {
            self.fwd[e].clone()
        } else {
            assert_eq!((from, to), (v, u), "({from}, {to}) does not match edge {e}");
            self.bwd[e].clone()
        }
    }

    /// The scaled cost of one unperturbed unit edge.
    pub fn unit(&self) -> &C {
        &self.unit
    }

    /// Bits needed to store one perturbation value (experiment E10).
    pub fn bits_per_weight(&self) -> usize {
        self.bits_per_weight
    }

    /// Checks the antisymmetry invariant `fwd[e] + bwd[e] = 2·unit` on
    /// every edge.
    pub fn is_antisymmetric(&self) -> bool {
        let two_units = self.unit.plus(&self.unit);
        (0..self.graph.m()).all(|e| self.fwd[e].plus(&self.bwd[e]) == two_units)
    }

    /// The full weighted shortest-path tree from `s` in `G* \ F`.
    ///
    /// For a valid tiebreaking weight function
    /// [`WeightedSpt::ties_detected`] is `false` and the tree's paths are
    /// the unique minimum-cost — hence canonical — shortest paths.
    pub fn spt(&self, s: Vertex, faults: &FaultSet) -> WeightedSpt<C> {
        dijkstra(&self.graph, s, faults, |e, from, to| self.edge_cost(e, from, to))
    }

    /// The exact cost of an explicit path under this scheme's weights.
    ///
    /// Returns `None` if the path is not valid in the graph.
    pub fn cost_of_path(&self, p: &Path) -> Option<C> {
        let mut total = C::zero();
        for (u, v) in p.steps() {
            let e = self.graph.edge_between(u, v)?;
            total = total.plus(&self.edge_cost(e, u, v));
        }
        Some(total)
    }

    /// The reverse-table path `π̄(s, t | F) := reverse(π(t, s | F))`.
    ///
    /// The MPLS deployment sketched in Section 1 carries two routing
    /// tables: one for `π` and one for its reverse. This accessor is the
    /// second table.
    pub fn reverse_path(&self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<Path> {
        self.path(t, s, faults).map(|p| p.reversed())
    }
}

impl<C: PathCost> Rpts for ExactScheme<C> {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn tree_from(&self, s: Vertex, faults: &FaultSet) -> BfsTree {
        self.spt(s, faults).to_bfs_tree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::generators;

    /// A hand-built antisymmetric scheme on the 4-cycle: unit 1000, scaled
    /// perturbations +1/-1 alternating so paths are unique.
    fn tiny_scheme() -> ExactScheme<u128> {
        let g = generators::cycle(4);
        let m = g.m();
        let fwd: Vec<u128> = (0..m).map(|e| 1000 + (e as u128 % 3) + 1).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 2000 - f).collect();
        ExactScheme::from_costs(g, fwd, bwd, 1000, 2)
    }

    #[test]
    fn antisymmetry_invariant() {
        assert!(tiny_scheme().is_antisymmetric());
    }

    #[test]
    fn antisymmetry_violation_detected() {
        let g = generators::cycle(3);
        let s = ExactScheme::from_costs(g, vec![10u64, 10, 10], vec![10u64, 10, 11], 10u64, 1);
        assert!(!s.is_antisymmetric());
    }

    #[test]
    fn edge_cost_orientation() {
        let s = tiny_scheme();
        let (u, v) = s.graph().endpoints(0);
        let f = s.edge_cost(0, u, v);
        let b = s.edge_cost(0, v, u);
        assert_eq!(f + b, 2000);
    }

    #[test]
    fn cost_of_path_matches_spt() {
        let s = tiny_scheme();
        let spt = s.spt(0, &FaultSet::empty());
        for t in s.graph().vertices() {
            let p = spt.path_to(t).unwrap();
            assert_eq!(s.cost_of_path(&p).as_ref(), spt.cost(t));
        }
    }

    #[test]
    fn cost_of_invalid_path_is_none() {
        let s = tiny_scheme();
        assert!(s.cost_of_path(&Path::new(vec![0, 2])).is_none());
    }

    #[test]
    fn reverse_path_reverses() {
        let s = tiny_scheme();
        let p = s.path(0, 2, &FaultSet::empty()).unwrap();
        let q = s.reverse_path(2, 0, &FaultSet::empty()).unwrap();
        assert_eq!(p.reversed(), q);
    }

    #[test]
    fn tree_from_is_bfs_consistent() {
        let s = tiny_scheme();
        let tree = s.tree_from(1, &FaultSet::empty());
        for t in s.graph().vertices() {
            assert_eq!(
                tree.dist(t),
                rsp_graph::bfs(s.graph(), 1, &FaultSet::empty()).dist(t),
                "perturbed shortest paths must stay shortest"
            );
        }
    }
}
