//! The sourcewise setting: replacement paths for all pairs in `{s} × V`.
//!
//! Section 1.1 recounts the history: Chechik–Cohen introduced the
//! sourcewise problem and gave an `Õ(m√n + n²)` algorithm that is
//! BMM-conditionally optimal. This module provides the combinatorial
//! `O(n·(n + m))` construction that the subsetwise Algorithm 1 is
//! measured against at `S = {s}` scale: one BFS per *tree edge* of the
//! selected SPT (only tree-edge failures can change any `{s} × V`
//! distance, by stability), with answers stored per tree edge.

use std::collections::HashMap;

use rsp_core::RandomGridAtw;
use rsp_graph::{bfs, EdgeId, FaultSet, Graph, Vertex};

/// All `{s} × V` replacement distances: `dist_{G\{e}}(s, t)` for every
/// target `t` and every edge `e`.
///
/// # Examples
///
/// ```
/// use rsp_replacement::SourcewiseReplacementPaths;
/// use rsp_graph::generators;
///
/// let g = generators::cycle(6);
/// let rp = SourcewiseReplacementPaths::build(&g, 0, 7);
/// // Any failure on the canonical 0⇝3 path reroutes to 3 hops the
/// // other way.
/// for (e, _, _) in g.edges() {
///     assert!(rp.dist_after_fault(3, e) == Some(3));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SourcewiseReplacementPaths {
    source: Vertex,
    /// Fault-free distances from the source.
    base: Vec<Option<u32>>,
    /// Per selected-tree edge: the full `{s} × V` distance vector in
    /// `G \ {e}`.
    per_tree_edge: HashMap<EdgeId, Vec<Option<u32>>>,
    /// For each target, the tree edges on its selected path (so queries
    /// know whether a fault is relevant).
    path_edges: Vec<Vec<EdgeId>>,
}

impl SourcewiseReplacementPaths {
    /// Builds the structure: one restorable-scheme SPT plus one BFS per
    /// tree edge — `O(n·(n + m))`.
    pub fn build(g: &Graph, source: Vertex, seed: u64) -> Self {
        assert!(source < g.n(), "source out of range");
        let scheme = RandomGridAtw::theorem20(g, seed).into_scheme();
        let empty = FaultSet::empty();
        let spt = scheme.spt(source, &empty);
        let base: Vec<Option<u32>> = g.vertices().map(|v| spt.hops(v)).collect();
        let path_edges: Vec<Vec<EdgeId>> = g
            .vertices()
            .map(|t| {
                spt.path_to(t)
                    .map_or(Vec::new(), |p| p.edge_ids(g).expect("selected paths are valid"))
            })
            .collect();
        let tree_edges: Vec<EdgeId> = spt.tree_edges().collect();
        let per_tree_edge = tree_edges
            .into_iter()
            .map(|e| {
                let tree = bfs(g, source, &FaultSet::single(e));
                (e, g.vertices().map(|v| tree.dist(v)).collect())
            })
            .collect();
        SourcewiseReplacementPaths { source, base, per_tree_edge, path_edges }
    }

    /// The source vertex.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Fault-free distance to `t`.
    pub fn base_dist(&self, t: Vertex) -> Option<u32> {
        self.base[t]
    }

    /// `dist_{G\{e}}(s, t)` for **any** edge `e`.
    ///
    /// Off-path faults cannot change the selected path (stability), so
    /// the base distance is returned; tree-edge faults on the path are
    /// answered from the precomputed BFS.
    pub fn dist_after_fault(&self, t: Vertex, e: EdgeId) -> Option<u32> {
        if !self.path_edges[t].contains(&e) {
            return self.base[t];
        }
        self.per_tree_edge.get(&e).expect("path edges are tree edges")[t]
    }

    /// Number of stored distance vectors (= selected tree edges).
    pub fn vectors_stored(&self) -> usize {
        self.per_tree_edge.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::generators;

    #[test]
    fn matches_bfs_truth_for_all_targets_and_edges() {
        let g = generators::connected_gnm(18, 40, 3);
        let rp = SourcewiseReplacementPaths::build(&g, 0, 9);
        for (e, _, _) in g.edges() {
            let truth = bfs(&g, 0, &FaultSet::single(e));
            for t in g.vertices() {
                assert_eq!(rp.dist_after_fault(t, e), truth.dist(t), "t={t} e={e}");
            }
        }
    }

    #[test]
    fn storage_is_one_vector_per_tree_edge() {
        let g = generators::complete(8);
        let rp = SourcewiseReplacementPaths::build(&g, 0, 1);
        assert_eq!(rp.vectors_stored(), g.n() - 1);
    }

    #[test]
    fn disconnection_reported() {
        let g = generators::path_graph(5);
        let rp = SourcewiseReplacementPaths::build(&g, 0, 2);
        let e = g.edge_between(2, 3).unwrap();
        assert_eq!(rp.dist_after_fault(4, e), None);
        assert_eq!(rp.dist_after_fault(2, e), Some(2));
        assert_eq!(rp.base_dist(4), Some(4));
    }

    #[test]
    fn off_path_faults_keep_base_distance() {
        let g = generators::grid(3, 4);
        let rp = SourcewiseReplacementPaths::build(&g, 0, 4);
        // A corner-incident edge far from vertex 1's path.
        let far = g.edge_between(10, 11).unwrap();
        assert_eq!(rp.dist_after_fault(1, far), rp.base_dist(1));
    }

    #[test]
    fn source_distance_is_zero_under_any_fault() {
        let g = generators::cycle(5);
        let rp = SourcewiseReplacementPaths::build(&g, 2, 5);
        for (e, _, _) in g.edges() {
            assert_eq!(rp.dist_after_fault(2, e), Some(0));
        }
    }
}
