//! Property tests for the graph substrate: CSR invariants, BFS/Dijkstra
//! agreement, and generator contracts.

use proptest::prelude::*;
use rsp_graph::{bfs, dijkstra, generators, is_connected, EdgeWeights, FaultSet, Graph, Path};

fn gnm_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (3usize..=24, 0usize..=3, any::<u64>()).prop_map(|(n, density, seed)| {
        let extra = density * n / 2;
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        (n, m, seed)
    })
}

proptest! {
    /// CSR structural invariants: degree sums, symmetric adjacency,
    /// sorted neighbor lists, consistent edge lookups.
    #[test]
    fn csr_invariants((n, m, seed) in gnm_params()) {
        let g = generators::connected_gnm(n, m, seed);
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), m);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * m, "handshake lemma");
        for u in g.vertices() {
            let nbrs: Vec<_> = g.neighbors(u).collect();
            prop_assert!(nbrs.windows(2).all(|w| w[0].0 < w[1].0), "sorted adjacency");
            for (v, e) in nbrs {
                prop_assert_eq!(g.edge_between(u, v), Some(e));
                prop_assert_eq!(g.edge_between(v, u), Some(e), "symmetry");
                prop_assert_eq!(g.other_endpoint(e, u), v);
            }
        }
    }

    /// BFS and unit-cost Dijkstra agree everywhere, with and without
    /// faults.
    #[test]
    fn bfs_equals_unit_dijkstra((n, m, seed) in gnm_params(), fault in any::<prop::sample::Index>()) {
        let g = generators::connected_gnm(n, m, seed);
        let e = fault.index(g.m());
        for faults in [FaultSet::empty(), FaultSet::single(e)] {
            let tree = bfs(&g, 0, &faults);
            let spt = dijkstra(&g, 0, &faults, |_, _, _| 1u64);
            for v in g.vertices() {
                prop_assert_eq!(tree.dist(v).map(u64::from), spt.cost(v).copied());
            }
        }
    }

    /// BFS tree paths are valid shortest paths.
    #[test]
    fn bfs_paths_are_valid((n, m, seed) in gnm_params()) {
        let g = generators::connected_gnm(n, m, seed);
        let tree = bfs(&g, 0, &FaultSet::empty());
        for v in g.vertices() {
            let p = tree.path_to(v).expect("connected");
            prop_assert!(p.is_valid_in(&g));
            prop_assert!(p.is_simple());
            prop_assert_eq!(p.hops() as u32, tree.dist(v).expect("connected"));
        }
    }

    /// Edge-list serialization round-trips.
    #[test]
    fn io_round_trip((n, m, seed) in gnm_params()) {
        let g = generators::connected_gnm(n, m, seed);
        let s = rsp_graph::to_edge_list_string(&g);
        prop_assert_eq!(rsp_graph::from_edge_list_str(&s).expect("round trip"), g);
    }

    /// connected_gnm delivers its contract: connected, exact m, simple.
    #[test]
    fn generator_contract((n, m, seed) in gnm_params()) {
        let g = generators::connected_gnm(n, m, seed);
        prop_assert!(is_connected(&g));
        let mut seen = std::collections::HashSet::new();
        for (_, u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(seen.insert((u, v)), "no duplicate edges");
        }
    }

    /// Path joins: join_at produces a walk with matched endpoints.
    #[test]
    fn join_at_endpoints((n, m, seed) in gnm_params(), a in any::<prop::sample::Index>(), b in any::<prop::sample::Index>()) {
        let g = generators::connected_gnm(n, m, seed);
        let (s, t) = (a.index(n), b.index(n));
        let x = n / 2;
        let ps = bfs(&g, s, &FaultSet::empty()).path_to(x).expect("connected");
        let pt = bfs(&g, t, &FaultSet::empty()).path_to(x).expect("connected");
        let joined = ps.join_at(&pt).expect("shared midpoint");
        prop_assert_eq!(joined.source(), s);
        prop_assert_eq!(joined.target(), t);
        prop_assert!(joined.is_valid_in(&g));
        prop_assert_eq!(joined.hops(), ps.hops() + pt.hops());
    }

    /// Weighted SSSP lower-bounds hop distance times min weight and
    /// upper-bounds it times max weight.
    #[test]
    fn weighted_sssp_sandwich((n, m, seed) in gnm_params(), wseed in any::<u64>()) {
        let g = generators::connected_gnm(n, m, seed);
        let w = EdgeWeights::random(&g, 9, wseed);
        let spt = rsp_graph::weighted_sssp(&g, &w, 0, &FaultSet::empty());
        let tree = bfs(&g, 0, &FaultSet::empty());
        for v in g.vertices() {
            let hops = tree.dist(v).expect("connected") as u64;
            let cost = *spt.cost(v).expect("connected");
            prop_assert!(cost >= hops, "min weight is 1");
            prop_assert!(cost <= hops * 9 + 9 * n as u64, "bounded by max weight");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FaultSet algebra: with/without/contains/subset laws.
    #[test]
    fn fault_set_algebra(edges in prop::collection::vec(0usize..40, 0..8), extra in 0usize..40) {
        let f = FaultSet::from_edges(edges.iter().copied());
        prop_assert_eq!(f.contains(extra), edges.contains(&extra));
        let g = f.with(extra);
        prop_assert!(g.contains(extra));
        prop_assert!(f.is_subset_of(&g));
        prop_assert_eq!(g.without(extra).contains(extra), false);
        // proper_subsets: count and strictness.
        if f.len() <= 6 {
            let subs: Vec<_> = f.proper_subsets().collect();
            prop_assert_eq!(subs.len(), (1usize << f.len()) - 1);
            for s in subs {
                prop_assert!(s.is_subset_of(&f));
                prop_assert!(s != f);
            }
        }
    }

    /// Path reversal and display invariants.
    #[test]
    fn path_reversal(verts in prop::collection::vec(0usize..50, 1..10)) {
        let p = Path::new(verts.clone());
        prop_assert_eq!(p.reversed().reversed(), p.clone());
        prop_assert_eq!(p.reversed().hops(), p.hops());
        prop_assert_eq!(p.reversed().source(), p.target());
    }
}

#[test]
fn graph_from_edges_rejects_invalid() {
    assert!(Graph::from_edges(3, [(0, 0)]).is_err());
    assert!(Graph::from_edges(3, [(0, 4)]).is_err());
    assert!(Graph::from_edges(3, [(0, 1), (1, 0)]).is_err());
}
