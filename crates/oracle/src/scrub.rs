//! The background integrity scrubber: continuous cell-level audit of
//! the *published* snapshot, with quarantine, targeted repair, and
//! full-rebuild escalation.
//!
//! The churn pipeline's commit-time cross-check samples a handful of
//! sources per build — a corruption that slips past the sample (or
//! strikes *after* publication: a stray write, a cosmic bit flip in a
//! long-lived deployment) would otherwise be served forever with
//! nothing downstream to catch it. A [`Scrubber`] closes that window:
//!
//! * **Budgeted audit.** Each [`Scrubber::tick`] re-verifies
//!   [`ScrubConfig::rows_per_tick`] source rows of the currently
//!   published snapshot **cell by cell** (hops, parents, exact costs)
//!   against a fresh [`rsp_graph::dijkstra_batch`] run on the
//!   snapshot's own base fault state — the same ground truth the
//!   commit gate uses, but sweeping *every* row over successive ticks
//!   (a wrapping cursor; [`ScrubHealth::complete_passes`] counts full
//!   sweeps).
//! * **Quarantine before repair.** A corrupt row is immediately fenced
//!   off: the scrubber publishes a clone with the row marked
//!   quarantined, and [`crate::OracleSnapshot::try_query`] answers that
//!   source through the engine fallback — recomputed from the graph,
//!   so *correct* — until the row is healed. Detection is never
//!   silent and never a panic.
//! * **Repair ladder.** Quarantined rows are then healed: a **targeted
//!   repair** splices the freshly computed truth row back in
//!   (copy-on-write — untouched rows stay shared) and re-verifies it;
//!   if that is sabotaged or fails, the scrubber **escalates to a full
//!   rebuild** from the scheme; if even that fails, the quarantined
//!   snapshot stays published — degraded (slow path for that source)
//!   but correct, and retried next tick.
//! * **Health reporting.** [`ScrubHealth`] exposes rows audited,
//!   corruptions found and healed, escalations, current quarantine
//!   count, and completed passes — staleness and damage are surfaced,
//!   never hidden, mirroring [`crate::churn::ChurnHealth`].
//!
//! The scrubber is a *writer*: it publishes quarantine and repair
//! epochs through the same [`Oracle`] handle the control plane uses.
//! Run it on the control-plane thread, interleaving ticks with churn
//! commits — the workspace-wide single-writer discipline. Readers need
//! nothing new: quarantine is absorbed by the existing
//! [`crate::OracleSnapshot::try_query`] fallback seam. A full-rebuild
//! escalation recompiles from the scheme and therefore drops optional
//! label/preserver artifacts, exactly like the churn pipeline's own
//! rebuilds — churn deployments ship artifacts from a separate
//! fault-free snapshot (see [`crate::SnapshotBuilder::base_faults`]).
//!
//! # Examples
//!
//! A clean snapshot audits clean; a corrupted cell is caught, fenced,
//! and healed:
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_graph::generators;
//! use rsp_oracle::scrub::{ScrubConfig, Scrubber};
//! use rsp_oracle::Oracle;
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//! let oracle = Oracle::build(&scheme);
//!
//! let mut scrubber = Scrubber::new(oracle.clone(), ScrubConfig::default());
//! // Sweep the whole snapshot: 16 rows, 4 per tick.
//! for _ in 0..4 {
//!     let tick = scrubber.tick();
//!     assert_eq!(tick.corrupt_rows, 0, "a fresh snapshot audits clean");
//! }
//! let health = scrubber.health();
//! assert_eq!(health.rows_audited, 16);
//! assert_eq!(health.complete_passes, 1);
//! assert_eq!(health.corruptions_found, 0);
//! ```

use std::ops::ControlFlow;

use rsp_arith::PathCost;
use rsp_core::Rpts;
use rsp_graph::{dijkstra_batch, BatchScratch, Vertex};

use crate::serve::Oracle;
use crate::snapshot::{OracleSnapshot, TreeRow, NONE};

/// Tuning knobs for a [`Scrubber`].
#[derive(Clone, Copy, Debug)]
pub struct ScrubConfig {
    /// Source rows audited per [`Scrubber::tick`] (default 4). The
    /// audit budget — one `dijkstra_batch` run over this many sources
    /// per tick, amortizing a full sweep over
    /// `ceil(sources / rows_per_tick)` ticks. `0` is clamped to 1.
    pub rows_per_tick: usize,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig { rows_per_tick: 4 }
    }
}

/// Which rung of the repair ladder the scrubber is about to run —
/// the argument of a [`ScrubProbe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScrubStage {
    /// Splice the freshly computed truth rows into a clone of the
    /// published snapshot (copy-on-write; untouched rows stay shared).
    TargetedRepair,
    /// Recompile the whole snapshot from the scheme — the escalation
    /// when targeted repair fails.
    FullRebuild,
}

/// A deterministic saboteur for the repair ladder, installed with
/// [`Scrubber::set_probe`]: return `true` to make that stage fail
/// (the stage is skipped, as if its output had not verified). This is
/// how the robustness suite proves each rung — targeted repair, the
/// full-rebuild escalation, and the degraded-but-correct terminal
/// state — independently, instead of only ever exercising the first.
pub type ScrubProbe = Box<dyn FnMut(ScrubStage) -> bool + Send>;

/// Aggregate scrubber telemetry — the integrity counterpart of
/// [`crate::churn::ChurnHealth`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubHealth {
    /// Total rows audited cell-by-cell across all ticks.
    pub rows_audited: u64,
    /// Corrupt rows detected (each counted once per detection, not per
    /// retry of an already-quarantined row).
    pub corruptions_found: u64,
    /// Corrupt rows healed (by targeted repair or rebuild escalation).
    pub corruptions_healed: u64,
    /// Times the ladder escalated to a full rebuild.
    pub escalations: u64,
    /// Rows quarantined in the currently published snapshot: nonzero
    /// only while detected corruption awaits a successful heal (those
    /// sources serve through the engine fallback — slow but correct).
    pub quarantined_now: usize,
    /// Complete sweeps of every serving source finished so far.
    pub complete_passes: u64,
}

/// What one [`Scrubber::tick`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubTick {
    /// Rows audited this tick (cursor budget plus quarantine retries).
    pub rows_audited: usize,
    /// Rows found corrupt this tick (newly detected or still-corrupt
    /// quarantined rows being retried).
    pub corrupt_rows: usize,
    /// Corrupt rows healed this tick.
    pub healed_rows: usize,
    /// `true` iff the ladder escalated to a full rebuild this tick.
    pub escalated: bool,
    /// `true` iff this tick completed a full sweep of the sources.
    pub completed_pass: bool,
}

/// The background integrity auditor — see the [module docs](self) for
/// the audit/quarantine/repair contract and the single-writer rule.
pub struct Scrubber<C: PathCost> {
    oracle: Oracle<C>,
    config: ScrubConfig,
    /// Next row index to audit (wraps over the snapshot's sources).
    cursor: usize,
    probe: Option<ScrubProbe>,
    rows_audited: u64,
    corruptions_found: u64,
    corruptions_healed: u64,
    escalations: u64,
    complete_passes: u64,
}

impl<C: PathCost> std::fmt::Debug for Scrubber<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scrubber")
            .field("config", &self.config)
            .field("cursor", &self.cursor)
            .field("rows_audited", &self.rows_audited)
            .field("corruptions_found", &self.corruptions_found)
            .field("corruptions_healed", &self.corruptions_healed)
            .finish_non_exhaustive()
    }
}

impl<C: PathCost + 'static> Scrubber<C> {
    /// A scrubber auditing (and, on corruption, republishing through)
    /// `oracle`. Clone the handle out of a [`crate::churn::ChurnPipeline`]
    /// with [`crate::churn::ChurnPipeline::oracle`] to scrub a churn
    /// deployment.
    pub fn new(oracle: Oracle<C>, config: ScrubConfig) -> Self {
        Scrubber {
            oracle,
            config,
            cursor: 0,
            probe: None,
            rows_audited: 0,
            corruptions_found: 0,
            corruptions_healed: 0,
            escalations: 0,
            complete_passes: 0,
        }
    }

    /// Installs (or clears) the repair-ladder saboteur — test
    /// instrumentation, see [`ScrubProbe`].
    pub fn set_probe(&mut self, probe: Option<ScrubProbe>) {
        self.probe = probe;
    }

    /// Aggregate telemetry; `quarantined_now` is read from the
    /// currently published snapshot.
    pub fn health(&self) -> ScrubHealth {
        ScrubHealth {
            rows_audited: self.rows_audited,
            corruptions_found: self.corruptions_found,
            corruptions_healed: self.corruptions_healed,
            escalations: self.escalations,
            quarantined_now: self.oracle.snapshot().quarantined_rows(),
            complete_passes: self.complete_passes,
        }
    }

    /// One audit step: re-verify the next [`ScrubConfig::rows_per_tick`]
    /// rows of the published snapshot (plus any rows still quarantined
    /// from earlier ticks) cell-by-cell against the exact batch engine,
    /// quarantine what disagrees, and run the repair ladder. Returns
    /// what happened; cumulative counters via [`Scrubber::health`].
    ///
    /// Cheap when clean: one `dijkstra_batch` over the audited sources,
    /// zero publishes. On corruption it publishes at most twice (the
    /// quarantine epoch, then the healed epoch).
    pub fn tick(&mut self) -> ScrubTick {
        let snap = self.oracle.snapshot();
        let sources = snap.sources();
        if sources.is_empty() {
            return ScrubTick { completed_pass: true, ..ScrubTick::default() };
        }

        // Audit set: every still-quarantined row first (heal retries),
        // then the cursor's budget of fresh rows.
        let mut targets: Vec<Vertex> =
            sources.iter().copied().filter(|&s| snap.is_quarantined(s)).collect();
        let budget = self.config.rows_per_tick.max(1).min(sources.len());
        self.cursor %= sources.len();
        for i in 0..budget {
            let s = sources[(self.cursor + i) % sources.len()];
            if !targets.contains(&s) {
                targets.push(s);
            }
        }
        let completed_pass = self.cursor + budget >= sources.len();
        self.cursor = (self.cursor + budget) % sources.len();
        if completed_pass {
            self.complete_passes += 1;
        }
        self.rows_audited += targets.len() as u64;

        let corrupt = audit_rows(&snap, &targets);
        let mut tick = ScrubTick {
            rows_audited: targets.len(),
            corrupt_rows: corrupt.len(),
            completed_pass,
            ..ScrubTick::default()
        };
        if corrupt.is_empty() {
            return tick;
        }
        let newly_found = corrupt.iter().filter(|(s, _)| !snap.is_quarantined(*s)).count() as u64;
        self.corruptions_found += newly_found;

        // Fence first: readers must stop serving the corrupt cells
        // before any repair work runs.
        let mut fenced = (*snap).clone();
        for (s, _) in &corrupt {
            fenced.set_row_quarantined(*s, true);
        }
        self.oracle.publish(fenced.clone());

        // Rung 1: targeted repair — splice the truth rows in.
        if !self.sabotaged(ScrubStage::TargetedRepair) {
            let mut healed = fenced.clone();
            for (s, truth) in corrupt {
                healed.replace_row(s, truth);
            }
            if audit_rows(&healed, &targets).is_empty() {
                self.oracle.publish(healed);
                self.corruptions_healed += tick.corrupt_rows as u64;
                tick.healed_rows = tick.corrupt_rows;
                return tick;
            }
        }

        // Rung 2: full rebuild from the scheme (drops optional derived
        // artifacts, like every from-scratch churn rebuild).
        tick.escalated = true;
        self.escalations += 1;
        if !self.sabotaged(ScrubStage::FullRebuild) {
            let rebuilt = OracleSnapshot::builder(snap.scheme())
                .base_faults(snap.base_faults().clone())
                .version(snap.version())
                .try_build();
            if let Ok(rebuilt) = rebuilt {
                self.oracle.publish(rebuilt);
                self.corruptions_healed += tick.corrupt_rows as u64;
                tick.healed_rows = tick.corrupt_rows;
                return tick;
            }
        }

        // Terminal rung: the quarantined snapshot stays published —
        // those sources answer through the engine fallback (correct,
        // just slow) and the heal is retried next tick.
        tick
    }

    /// `true` iff the installed probe sabotages `stage`.
    fn sabotaged(&mut self, stage: ScrubStage) -> bool {
        self.probe.as_mut().is_some_and(|p| p(stage))
    }
}

/// Compares each target row of `snap` cell-by-cell (hops, parents,
/// exact costs) against a fresh batch-engine run on the snapshot's own
/// base fault state, returning the corrupt sources **with their freshly
/// computed truth rows** (the targeted repair's payload). Quarantine
/// flags are ignored here — raw cells are what is audited.
fn audit_rows<C: PathCost + 'static>(
    snap: &OracleSnapshot<C>,
    targets: &[Vertex],
) -> Vec<(Vertex, TreeRow<C>)> {
    if targets.is_empty() {
        return Vec::new();
    }
    let scheme = snap.scheme();
    let g = scheme.graph();
    let fault_sets = [snap.base_faults().clone()];
    let mut batch = BatchScratch::<C>::new();
    let mut corrupt: Vec<(Vertex, TreeRow<C>)> = Vec::new();
    dijkstra_batch(g, targets, &fault_sets, scheme.directed_costs(), &mut batch, |si, _fi, run| {
        let s = targets[si];
        let Some(row) = snap.row_of(s).map(|r| snap.row_arc(r)) else {
            return ControlFlow::Continue(());
        };
        let mut mismatch = false;
        let mut truth: TreeRow<C> = TreeRow::unreached(g.n());
        for v in g.vertices() {
            let hops = run.hops(v);
            let parent = run.parent(v);
            if let Some(h) = hops {
                truth.hops[v] = h;
                if let Some(c) = run.cost(v) {
                    truth.costs[v].clone_from(c);
                }
                if let Some((p, e)) = parent {
                    truth.parent_vertex[v] = p as u32;
                    truth.parent_edge[v] = e as u32;
                }
            }
            let cell_hops = (row.hops[v] != NONE).then_some(row.hops[v]);
            let cell_parent = (row.parent_vertex[v] != NONE)
                .then(|| (row.parent_vertex[v] as Vertex, row.parent_edge[v] as usize));
            let cell_cost = cell_hops.is_some().then(|| &row.costs[v]);
            if cell_hops != hops || cell_parent != parent || cell_cost != run.cost(v) {
                mismatch = true;
            }
        }
        if mismatch {
            corrupt.push((s, truth));
        }
        ControlFlow::Continue(())
    });
    corrupt
}
