//! Graph substrate for restorable shortest path tiebreaking.
//!
//! The Bodwin–Parter construction (PODC 2021) works over *undirected,
//! unweighted* graphs, converts them to symmetric directed graphs, perturbs
//! the unit weights by an antisymmetric tiebreaking weight function, and runs
//! shortest-path computations in the perturbed graph `G*` and in fault
//! subgraphs `G \ F`. This crate supplies everything below the tiebreaking
//! layer:
//!
//! * [`Graph`] — a compact CSR (compressed sparse row) undirected unweighted
//!   graph with stable edge identifiers;
//! * [`GraphBuilder`] — incremental, validating construction;
//! * [`FaultSet`] — a small set of failed edges, the `F` of the paper;
//! * [`FaultEvent`] / [`FaultState`] — the churn half of fault handling:
//!   a validated `fault arrives / fault repairs` event stream (with a
//!   fixed-width wire codec) folding into a running fault set, the
//!   substrate of `rsp_oracle`'s churn-hardened control plane;
//! * [`bfs`] — breadth-first search honoring fault sets (unweighted
//!   distances, the ground truth all experiments compare against);
//! * [`dijkstra`] — an *exact-cost* Dijkstra, generic over
//!   [`rsp_arith::PathCost`], used with the scaled integer weights of the
//!   tiebreaking schemes;
//! * [`SearchScratch`] with [`bfs_into`] / [`dijkstra_into`] — the
//!   reusable search-state engine behind both traversals: generation
//!   stamping, a dirty list, and a cost-specialized heap policy
//!   ([`rsp_arith::PathCost::HEAP`]: flat inline-key lazy heap for
//!   register-copy costs, indexed decrease-key heap for heavyweight
//!   costs) make repeated `(source, fault set)` queries allocation-free;
//! * [`BatchScratch`] with [`bfs_batch`] / [`dijkstra_batch`] — the batch
//!   engine over `sources × fault_sets`: fault sets agreeing on the early
//!   search frontier share the settled prefix of a per-source baseline
//!   run instead of searching from scratch, resuming from mid-run
//!   checkpoints ([`CheckpointMode`]) where available and reporting how
//!   every query was answered through [`BatchStats`];
//! * [`bfs_batch_par`] / [`dijkstra_batch_par`] / [`parallel_indexed`] —
//!   worker-pool fan-out over sources (`std::thread::scope`, one scratch
//!   per worker, deterministic index-ordered results);
//! * [`parallel_frontier`] / [`ShardedSet`] — the work-stealing frontier
//!   executor for jobs that *discover* further jobs (the FT-BFS fault-set
//!   enumeration in `rsp_preserver`), with a sharded concurrent visited
//!   set for frontier dedup;
//! * [`WeightedSpt`] / [`BfsTree`] — shortest-path trees with path
//!   extraction;
//! * [`SubtreeScratch`] / [`tree_edge_child`] — cut/subtree helpers
//!   over parent-pointer trees: which endpoint of a failed edge is the
//!   child, and the detached subtree below it in work proportional to
//!   the subtree (the substrate of `rsp_oracle`'s delta commits);
//! * [`NextHopTable`] — routing tables in the MPLS sense (consistency of a
//!   tiebreaking scheme is exactly what makes these well defined);
//! * [`generators`] — the graph families used across tests and experiments,
//!   including the 4-cycle of Theorem 37 and workloads for the benches;
//! * [`gen`] — Internet-shaped generators (preferential attachment,
//!   Watts–Strogatz small-world, two-level ISP core/edge hierarchy) for
//!   the scaling workloads;
//! * [`mod@reference`] — the pre-migration Vec-of-Vec engine, kept as the
//!   executable specification the CSR core's differential suites pin
//!   against.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), the preserver
//! enumeration pipeline, and the serving layer (its "Serving layer"
//! chapter — `rsp_oracle` serves this crate's query engine behind
//! immutable snapshots and epoch-swapped lock-free readers).
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`Graph`], [`GraphBuilder`] | Section 2 model: undirected, unweighted `G` |
//! | [`FaultSet`] | the fault set `F`, `\|F\| ≤ f`; `G \ F` everywhere |
//! | [`bfs`], [`bfs_into`] | ground-truth `dist_{G\F}`, the quantity every theorem bounds |
//! | [`dijkstra`], [`dijkstra_into`] | unique shortest paths in the perturbed `G* \ F` (Definition 18) |
//! | [`bfs_batch`], [`dijkstra_batch`], [`parallel_indexed`] | experiment scaling: the `sources × fault_sets` query loops behind Sections 3–4 |
//! | [`NextHopTable`] | Section 1's MPLS routing-table deployment |
//! | [`generators`] | Theorem 37's 4-cycle, tie-rich grids/hypercubes, G(n,m) workloads |
//!
//! # Examples
//!
//! ```
//! use rsp_graph::{generators, bfs, FaultSet};
//!
//! let g = generators::cycle(5);
//! let tree = bfs(&g, 0, &FaultSet::empty());
//! assert_eq!(tree.dist(2), Some(2));
//!
//! // Fail one edge of the cycle: distances re-route the long way.
//! let e = g.edge_between(0, 1).unwrap();
//! let tree = bfs(&g, 0, &FaultSet::single(e));
//! assert_eq!(tree.dist(1), Some(4));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod bfs;
mod builder;
mod connectivity;
mod dijkstra;
mod event;
mod fault;
pub mod gen;
pub mod generators;
mod graph;
mod io;
pub mod journal;
mod path;
mod pool;
pub mod reference;
mod routing;
mod scratch;
mod spt;
mod tree;
mod weights;

pub use batch::{
    bfs_batch, bfs_batch_par, dijkstra_batch, dijkstra_batch_par, BatchScratch, BatchStats,
    CheckpointMode,
};
pub use bfs::{bfs, bfs_all_pairs, BfsTree};
pub use builder::{GraphBuilder, GraphError};
pub use connectivity::{components, connected_pair, diameter, is_connected, is_connected_avoiding};
pub use dijkstra::dijkstra;
pub use event::{FaultEvent, FaultEventError, FaultState, WireEventError, WIRE_EVENT_LEN};
pub use fault::FaultSet;
pub use graph::{EdgeId, Graph, Vertex, MAX_EDGES, MAX_VERTICES};
pub use io::{from_edge_list_str, to_edge_list_string, ParseGraphError};
pub use path::Path;
pub use pool::{default_workers, parallel_frontier, parallel_indexed, FrontierStats, ShardedSet};
pub use routing::NextHopTable;
pub use rsp_arith::HeapKind;
pub use scratch::{bfs_into, dijkstra_into, DirectedCosts, EdgeCostSource, SearchScratch};
pub use spt::WeightedSpt;
pub use tree::{tree_edge_child, SubtreeScratch};
pub use weights::{weighted_sssp, EdgeWeights};
