//! Reusable search state: the zero-allocation query engine.
//!
//! Every experiment in the paper's evaluation is a loop over thousands of
//! `(source, fault set)` shortest-path queries, and the cost of allocating
//! (and zero-initializing) fresh `O(n)` state per query dominates once the
//! per-query work is small. [`SearchScratch`] amortizes that away:
//!
//! * **generation stamping** — every per-vertex slot carries the epoch of
//!   the query that last wrote it, so "resetting" the scratch between
//!   queries is a single counter bump, not an `O(n)` clear;
//! * **a dirty list** — the vertices a query actually touched, letting
//!   result extraction ([`SearchScratch::tree_edges`],
//!   [`SearchScratch::to_bfs_tree`]) skip the unreached part of the graph;
//! * **an indexed d-ary heap with decrease-key** — the heap stores only
//!   vertex ids and compares through the cost array, so exact costs
//!   (`u128`, [`rsp_arith::BigInt`]) are stored exactly once per vertex and
//!   never cloned into stale heap entries;
//! * **in-place cost arithmetic** — relaxations go through
//!   [`PathCost::add_into`], which for [`rsp_arith::BigInt`] reuses limb
//!   buffers instead of allocating per relaxed edge.
//!
//! The entry points are [`bfs_into`] and [`dijkstra_into`]; the classic
//! [`crate::bfs`] / [`crate::dijkstra`] are thin wrappers that allocate one
//! scratch, run the `_into` variant, and materialize an owned tree. Hot
//! loops hold one scratch per concurrent tree and read results straight
//! from it.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::{dijkstra_into, generators, FaultSet, SearchScratch};
//!
//! let g = generators::grid(4, 4);
//! let mut scratch = SearchScratch::<u64>::with_capacity(g.n());
//! for e in 0..g.m() {
//!     // One query per single-edge fault; no per-query allocation.
//!     dijkstra_into(&g, 0, &FaultSet::single(e), |_, _, _| 1u64, &mut scratch);
//!     assert!(scratch.cost(15).is_some(), "grid minus one edge stays connected");
//! }
//! ```

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::mem;

use rsp_arith::PathCost;

use crate::bfs::BfsTree;
use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};
use crate::path::Path;
use crate::spt::WeightedSpt;

/// Heap-position sentinel: the vertex is settled (or was never enqueued).
pub(crate) const SETTLED: u32 = u32::MAX;

/// Heap arity. Four keeps the tree shallow (fewer comparisons per
/// decrease-key, the dominant operation) while sift-down still touches one
/// cache line of children.
const ARITY: usize = 4;

/// Supplies directed edge costs to [`dijkstra_into`] by *accumulating*
/// `base + w(e, from → to)` into a caller-provided output buffer.
///
/// The accumulate form (rather than "return the edge cost") exists so that
/// implementations holding costs by reference — like the tiebreaking
/// schemes' per-direction cost tables — never clone an exact cost to hand
/// it to the search: they forward straight to [`PathCost::add_into`].
///
/// Any `FnMut(EdgeId, Vertex, Vertex) -> C` closure is an `EdgeCostSource`
/// via the blanket impl, which keeps the classic [`crate::dijkstra`]
/// signature working unchanged.
pub trait EdgeCostSource<C: PathCost> {
    /// Writes `base + w(e, from → to)` into `out`, reusing `out`'s storage.
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C);
}

impl<C: PathCost, F: FnMut(EdgeId, Vertex, Vertex) -> C> EdgeCostSource<C> for F {
    #[inline]
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C) {
        let w = self(e, from, to);
        base.add_into(&w, out);
    }
}

/// Per-direction edge costs held as two parallel slices, indexed by
/// [`EdgeId`]: `fwd[e]` is the cost of traversing `e` from its canonical
/// lower endpoint to the higher, `bwd[e]` the reverse.
///
/// This is the zero-clone [`EdgeCostSource`] used by the exact tiebreaking
/// schemes: relaxations borrow the stored cost and accumulate in place.
///
/// # Examples
///
/// ```
/// use rsp_graph::{dijkstra_into, generators, DirectedCosts, FaultSet, SearchScratch};
///
/// let g = generators::cycle(4);
/// let fwd = vec![10u64; g.m()];
/// let bwd = vec![10u64; g.m()];
/// let mut scratch = SearchScratch::new();
/// dijkstra_into(&g, 0, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
/// assert_eq!(scratch.cost(2), Some(&20));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DirectedCosts<'a, C> {
    fwd: &'a [C],
    bwd: &'a [C],
}

impl<'a, C: PathCost> DirectedCosts<'a, C> {
    /// Wraps per-direction cost slices (one entry per edge).
    pub fn new(fwd: &'a [C], bwd: &'a [C]) -> Self {
        assert_eq!(fwd.len(), bwd.len(), "one forward and one backward cost per edge");
        DirectedCosts { fwd, bwd }
    }
}

impl<C: PathCost> EdgeCostSource<C> for DirectedCosts<'_, C> {
    #[inline]
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C) {
        // Endpoints are canonicalized `u < v`, so the traversal direction is
        // recoverable from the endpoint order alone.
        let w = if from < to { &self.fwd[e] } else { &self.bwd[e] };
        base.add_into(w, out);
    }
}

/// Reusable single-source search state for [`bfs_into`] and
/// [`dijkstra_into`].
///
/// One scratch holds the complete result of its most recent query — costs,
/// hop counts, parent pointers, tie flag — readable through the accessor
/// methods without materializing an owned tree. Reusing the scratch across
/// queries skips all `O(n)` allocation and clearing: only the vertices the
/// previous query touched are ever rewritten.
///
/// The cost type parameter defaults to `u32` for unweighted (BFS-only) use.
///
/// # Examples
///
/// ```
/// use rsp_graph::{bfs_into, generators, FaultSet, SearchScratch};
///
/// let g = generators::cycle(6);
/// let mut scratch = SearchScratch::<u32>::new();
/// bfs_into(&g, 0, &FaultSet::empty(), &mut scratch);
/// assert_eq!(scratch.dist(3), Some(3));
///
/// // Back-to-back reuse: earlier results are invisible to the new query.
/// let cut = g.edge_between(0, 1).unwrap();
/// bfs_into(&g, 0, &FaultSet::single(cut), &mut scratch);
/// assert_eq!(scratch.dist(1), Some(5), "re-routed the long way around");
/// ```
#[derive(Clone, Debug)]
pub struct SearchScratch<C = u32> {
    /// Query generation; a per-vertex slot is valid iff `stamp[v] == epoch`.
    pub(crate) epoch: u32,
    /// Vertex count of the most recent query's graph.
    pub(crate) n: usize,
    pub(crate) source: Vertex,
    /// Whether the most recent query was weighted (`dijkstra_into`).
    pub(crate) weighted: bool,
    pub(crate) ties: bool,
    pub(crate) stamp: Vec<u32>,
    /// Tentative/final exact cost per vertex (weighted queries only).
    pub(crate) key: Vec<C>,
    /// Parent `(vertex, edge)`; valid iff stamped and not the source.
    pub(crate) parent: Vec<(Vertex, EdgeId)>,
    pub(crate) hops: Vec<u32>,
    /// Indexed d-ary min-heap of open vertices, ordered by `(key, id)`.
    pub(crate) heap: Vec<Vertex>,
    /// Position of each vertex in `heap`, or [`SETTLED`].
    pub(crate) heap_pos: Vec<u32>,
    /// BFS frontier ring buffer.
    pub(crate) queue: VecDeque<Vertex>,
    /// Dirty list: vertices reached by the current query, in reach order.
    pub(crate) touched: Vec<Vertex>,
    /// Relaxation buffer: the candidate cost under evaluation.
    pub(crate) cand: C,
}

impl<C: PathCost> SearchScratch<C> {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A scratch pre-sized for graphs with up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = SearchScratch {
            epoch: 0,
            n: 0,
            source: 0,
            weighted: false,
            ties: false,
            stamp: Vec::new(),
            key: Vec::new(),
            parent: Vec::new(),
            hops: Vec::new(),
            heap: Vec::with_capacity(n),
            heap_pos: Vec::new(),
            queue: VecDeque::with_capacity(n),
            touched: Vec::with_capacity(n),
            cand: C::zero(),
        };
        s.grow(n);
        s
    }

    fn grow(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.key.resize_with(n, C::zero);
            self.parent.resize(n, (0, 0));
            self.hops.resize(n, 0);
            self.heap_pos.resize(n, SETTLED);
        }
    }

    /// Opens a new query generation. All previous per-vertex state becomes
    /// invisible in `O(1)` (amortized: a full clear happens only when the
    /// 32-bit epoch wraps, once per ~4 billion queries).
    pub(crate) fn begin(&mut self, n: usize, source: Vertex, weighted: bool) {
        assert!(n < SETTLED as usize, "graph too large for scratch heap indices");
        self.grow(n);
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.n = n;
        self.source = source;
        self.weighted = weighted;
        self.ties = false;
        self.touched.clear();
        self.heap.clear();
        self.queue.clear();
    }

    /// The most recent query's source vertex.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// `true` iff the most recent query reached `v`.
    #[inline]
    pub fn reached(&self, v: Vertex) -> bool {
        v < self.n && self.stamp[v] == self.epoch
    }

    /// Exact cost of the selected source-to-`v` path, or `None` if `v` is
    /// unreachable. Meaningful after [`dijkstra_into`] only; BFS queries
    /// report `None` for every vertex.
    #[inline]
    pub fn cost(&self, v: Vertex) -> Option<&C> {
        if self.weighted && self.reached(v) {
            Some(&self.key[v])
        } else {
            None
        }
    }

    /// Hop count of the selected source-to-`v` path, or `None` if
    /// unreachable. For BFS queries this is the unweighted distance.
    #[inline]
    pub fn hops(&self, v: Vertex) -> Option<u32> {
        if self.reached(v) {
            Some(self.hops[v])
        } else {
            None
        }
    }

    /// Unweighted distance alias for [`SearchScratch::hops`] (the natural
    /// name after a [`bfs_into`] query).
    #[inline]
    pub fn dist(&self, v: Vertex) -> Option<u32> {
        self.hops(v)
    }

    /// Parent of `v` in the selected tree as `(vertex, edge id)`, or `None`
    /// for the source and unreachable vertices.
    #[inline]
    pub fn parent(&self, v: Vertex) -> Option<(Vertex, EdgeId)> {
        if v != self.source && self.reached(v) {
            Some(self.parent[v])
        } else {
            None
        }
    }

    /// `true` iff the most recent weighted query saw two equal-cost ways to
    /// reach some vertex (the runtime witness that a tiebreaking weight
    /// function failed to be tie-free).
    pub fn ties_detected(&self) -> bool {
        self.ties
    }

    /// Number of vertices the most recent query reached (incl. the source).
    pub fn reachable_count(&self) -> usize {
        self.touched.len()
    }

    /// The selected source-to-`v` path, or `None` if unreachable.
    pub fn path_to(&self, v: Vertex) -> Option<Path> {
        if !self.reached(v) {
            return None;
        }
        let mut verts = vec![v];
        let mut cur = v;
        while cur != self.source {
            let (p, _) = self.parent[cur];
            verts.push(p);
            cur = p;
        }
        verts.reverse();
        Some(Path::new(verts))
    }

    /// Tree edge ids of the most recent query (one per reached non-source
    /// vertex), in reach order. Iterates the dirty list, not all of `0..n`.
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let source = self.source;
        self.touched.iter().filter(move |&&v| v != source).map(|&v| self.parent[v].1)
    }

    /// Materializes the most recent query as an owned [`BfsTree`].
    ///
    /// # Panics
    ///
    /// Panics if no query has been run into this scratch.
    pub fn to_bfs_tree(&self) -> BfsTree {
        assert!(self.epoch > 0, "no search has been run into this scratch");
        let mut dist = vec![None; self.n];
        let mut parent = vec![None; self.n];
        for &v in &self.touched {
            dist[v] = Some(self.hops[v]);
            if v != self.source {
                parent[v] = Some(self.parent[v]);
            }
        }
        BfsTree::from_parts(self.source, dist, parent)
    }

    /// Materializes the most recent weighted query as an owned
    /// [`WeightedSpt`], cloning each reached vertex's cost once.
    ///
    /// # Panics
    ///
    /// Panics if the most recent query was not a [`dijkstra_into`] run.
    pub fn to_weighted_spt(&self) -> WeightedSpt<C> {
        assert!(self.weighted, "to_weighted_spt needs a dijkstra_into query");
        let mut cost = vec![None; self.n];
        let mut parent = vec![None; self.n];
        let mut hops = vec![0u32; self.n];
        for &v in &self.touched {
            cost[v] = Some(self.key[v].clone());
            hops[v] = self.hops[v];
            if v != self.source {
                parent[v] = Some(self.parent[v]);
            }
        }
        WeightedSpt::new(self.source, parent, cost, hops, self.ties)
    }
}

impl<C: PathCost> Default for SearchScratch<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Hooks into the search loops, called as the traversal progresses.
///
/// The batch engine ([`crate::batch`]) records settle order and per-step
/// progress through this trait to decide how much of a fault-free baseline
/// run a faulted query can reuse. The no-op [`NoObserver`] compiles away,
/// keeping the plain [`bfs_into`] / [`dijkstra_into`] hot paths unchanged.
pub(crate) trait SearchObserver {
    /// A vertex left the frontier and its final distance/cost is fixed
    /// (BFS dequeue; Dijkstra heap pop). Called *before* its edges relax.
    #[inline]
    fn popped(&mut self, _v: Vertex) {}

    /// All edges of the popped vertex have been relaxed. `reached` is the
    /// number of vertices discovered so far; `ties` the cumulative tie flag.
    #[inline]
    fn relaxed(&mut self, _reached: usize, _ties: bool) {}
}

/// The do-nothing observer behind the public single-query entry points.
pub(crate) struct NoObserver;

impl SearchObserver for NoObserver {}

/// Runs BFS from `source` in `g \ faults` into `scratch`, allocation-free
/// once the scratch is warm.
///
/// Identical traversal (and therefore identical trees) to [`crate::bfs`]:
/// neighbors are visited in increasing vertex id, ties broken by first
/// discovery. Results are read from the scratch.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn bfs_into<C: PathCost>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    scratch: &mut SearchScratch<C>,
) {
    bfs_observed(g, source, faults, scratch, &mut NoObserver);
}

/// [`bfs_into`] with an observer hook (the batch engine's entry point).
pub(crate) fn bfs_observed<C: PathCost, O: SearchObserver>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) {
    assert!(source < g.n(), "bfs source {source} out of range");
    scratch.begin(g.n(), source, false);
    scratch.stamp[source] = scratch.epoch;
    scratch.hops[source] = 0;
    scratch.touched.push(source);
    scratch.queue.push_back(source);
    bfs_run(g, faults, scratch, obs);
}

/// The BFS main loop over whatever frontier `scratch.queue` currently
/// holds; also the continuation step of a batch resume.
pub(crate) fn bfs_run<C: PathCost, O: SearchObserver>(
    g: &Graph,
    faults: &FaultSet,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) {
    let epoch = scratch.epoch;
    while let Some(u) = scratch.queue.pop_front() {
        obs.popped(u);
        let du = scratch.hops[u];
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) || scratch.stamp[v] == epoch {
                continue;
            }
            scratch.stamp[v] = epoch;
            scratch.hops[v] = du + 1;
            scratch.parent[v] = (u, e);
            scratch.touched.push(v);
            scratch.queue.push_back(v);
        }
        obs.relaxed(scratch.touched.len(), false);
    }
}

/// Runs exact-cost Dijkstra from `source` in `g \ faults` into `scratch`,
/// with decrease-key instead of lazy deletion.
///
/// Semantics match [`crate::dijkstra`] exactly — same trees, costs, hop
/// counts, and tie detection. Vertices settle in `(cost, vertex id)` order,
/// the same total order the lazy-deletion binary heap realized, so even on
/// inputs with genuine ties the selected tree is identical.
///
/// Costs must be non-negative. Each vertex's exact cost lives only in the
/// scratch's cost array; the heap holds vertex ids and compares through
/// that array, so no cost is ever cloned into the heap, and relaxed
/// candidates are accumulated in place via [`PathCost::add_into`].
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn dijkstra_into<C, F>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    costs: F,
    scratch: &mut SearchScratch<C>,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
{
    dijkstra_observed(g, source, faults, costs, scratch, &mut NoObserver);
}

/// [`dijkstra_into`] with an observer hook (the batch engine's entry point).
pub(crate) fn dijkstra_observed<C, F, O>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    costs: F,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    O: SearchObserver,
{
    assert!(source < g.n(), "dijkstra source {source} out of range");
    scratch.begin(g.n(), source, true);
    scratch.stamp[source] = scratch.epoch;
    scratch.key[source].set_zero();
    scratch.hops[source] = 0;
    scratch.touched.push(source);
    scratch.heap_pos[source] = 0;
    scratch.heap.push(source);
    dijkstra_run(g, faults, costs, scratch, obs);
}

/// Relaxes the single candidate route `u —e→ v` against `v`'s current
/// state. `cand` must already hold the candidate cost `key[u] + w(e)`.
///
/// Shared verbatim between the main loop and the batch engine's prefix
/// replay — the decision structure (and therefore parent selection and tie
/// detection) must be identical in both.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn relax<C: PathCost>(
    u: Vertex,
    v: Vertex,
    e: EdgeId,
    epoch: u32,
    cand: &mut C,
    stamp: &mut [u32],
    key: &mut [C],
    parent: &mut [(Vertex, EdgeId)],
    hops: &mut [u32],
    heap: &mut Vec<Vertex>,
    heap_pos: &mut [u32],
    touched: &mut Vec<Vertex>,
    ties: &mut bool,
) {
    if stamp[v] != epoch {
        // First route into v: adopt the candidate by swap, keeping
        // both buffers warm.
        stamp[v] = epoch;
        mem::swap(&mut key[v], cand);
        parent[v] = (u, e);
        hops[v] = hops[u] + 1;
        touched.push(v);
        let end = heap.len();
        heap_pos[v] = end as u32;
        heap.push(v);
        sift_up(heap, heap_pos, key, end);
    } else if heap_pos[v] != SETTLED {
        match (*cand).cmp(&key[v]) {
            Ordering::Less => {
                mem::swap(&mut key[v], cand);
                parent[v] = (u, e);
                hops[v] = hops[u] + 1;
                let pos = heap_pos[v] as usize;
                sift_up(heap, heap_pos, key, pos);
            }
            // Two distinct minimum-cost routes to v: a genuine tie.
            Ordering::Equal => *ties = true,
            Ordering::Greater => {}
        }
    } else if *cand == key[v] {
        // Equal-cost route into an already-settled vertex is a tie
        // too (matches the lazy-deletion engine's detection).
        *ties = true;
    }
}

/// The Dijkstra main loop over whatever open set `scratch.heap` currently
/// holds; also the continuation step of a batch resume.
pub(crate) fn dijkstra_run<C, F, O>(
    g: &Graph,
    faults: &FaultSet,
    mut costs: F,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    O: SearchObserver,
{
    let SearchScratch {
        epoch, stamp, key, parent, hops, heap, heap_pos, touched, cand, ties, ..
    } = scratch;
    let epoch = *epoch;

    while !heap.is_empty() {
        let u = pop_min(heap, heap_pos, key);
        obs.popped(u);
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) {
                continue;
            }
            costs.accumulate(&key[u], e, u, v, cand);
            relax(u, v, e, epoch, cand, stamp, key, parent, hops, heap, heap_pos, touched, ties);
        }
        obs.relaxed(touched.len(), *ties);
    }
}

/// `(key, id)`-lexicographic heap order; the id component never decides
/// path selection, it only makes the order total (and reproduces the lazy
/// binary heap's settle order on tied costs).
#[inline]
fn heap_less<C: Ord>(key: &[C], a: Vertex, b: Vertex) -> bool {
    match key[a].cmp(&key[b]) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a < b,
    }
}

fn sift_up<C: Ord>(heap: &mut [Vertex], pos: &mut [u32], key: &[C], mut i: usize) {
    while i > 0 {
        let p = (i - 1) / ARITY;
        if heap_less(key, heap[i], heap[p]) {
            heap.swap(i, p);
            pos[heap[i]] = i as u32;
            pos[heap[p]] = p as u32;
            i = p;
        } else {
            break;
        }
    }
}

fn sift_down<C: Ord>(heap: &mut [Vertex], pos: &mut [u32], key: &[C], mut i: usize) {
    loop {
        let first = i * ARITY + 1;
        if first >= heap.len() {
            break;
        }
        let last = (first + ARITY).min(heap.len());
        let mut best = i;
        for c in first..last {
            if heap_less(key, heap[c], heap[best]) {
                best = c;
            }
        }
        if best == i {
            break;
        }
        heap.swap(i, best);
        pos[heap[i]] = i as u32;
        pos[heap[best]] = best as u32;
        i = best;
    }
}

fn pop_min<C: Ord>(heap: &mut Vec<Vertex>, pos: &mut [u32], key: &[C]) -> Vertex {
    let root = heap[0];
    pos[root] = SETTLED;
    let last = heap.pop().expect("pop_min on an empty heap");
    if !heap.is_empty() {
        heap[0] = last;
        pos[last] = 0;
        sift_down(heap, pos, key, 0);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::dijkstra::dijkstra;
    use crate::generators;

    fn assert_same_bfs(g: &Graph, s: Vertex, faults: &FaultSet, scratch: &mut SearchScratch<u32>) {
        let fresh = bfs(g, s, faults);
        bfs_into(g, s, faults, scratch);
        for v in g.vertices() {
            assert_eq!(scratch.dist(v), fresh.dist(v), "dist({v})");
            assert_eq!(scratch.parent(v), fresh.parent(v), "parent({v})");
        }
        assert_eq!(scratch.to_bfs_tree().reachable_count(), fresh.reachable_count());
    }

    #[test]
    fn bfs_into_matches_bfs_under_reuse() {
        let mut scratch = SearchScratch::new();
        let g = generators::grid(4, 5);
        for s in [0, 7, 19] {
            for e in [None, Some(0), Some(5)] {
                let faults = e.map(FaultSet::single).unwrap_or_default();
                assert_same_bfs(&g, s, &faults, &mut scratch);
            }
        }
        // Switch to a different (smaller) graph with the same scratch.
        let h = generators::cycle(5);
        assert_same_bfs(&h, 3, &FaultSet::empty(), &mut scratch);
    }

    #[test]
    fn dijkstra_into_matches_dijkstra_under_reuse() {
        let g = generators::grid(4, 4);
        let mut scratch = SearchScratch::<u64>::new();
        for s in [0, 5, 15] {
            for e in 0..3 {
                let faults = FaultSet::single(e);
                let fresh = dijkstra(&g, s, &faults, |e, _, _| 100 + e as u64);
                dijkstra_into(&g, s, &faults, |e, _, _| 100 + e as u64, &mut scratch);
                for v in g.vertices() {
                    assert_eq!(scratch.cost(v), fresh.cost(v));
                    assert_eq!(scratch.hops(v), fresh.hops(v));
                    assert_eq!(scratch.parent(v), fresh.parent(v));
                }
                assert_eq!(scratch.ties_detected(), fresh.ties_detected());
            }
        }
    }

    #[test]
    fn decrease_key_reroutes_through_cheaper_parent() {
        // Diamond where the first discovery of vertex 3 is later improved:
        // 0-1 (1), 0-2 (10), 1-3 (100), 2-3 (1) ⇒ best is 0→1→3 at 101
        // versus 0→2→3 at 11; the engine must decrease 3's key after
        // settling 2.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = |e: EdgeId| [1u64, 10, 100, 1][e];
        let mut scratch = SearchScratch::<u64>::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), |e, _, _| w(e), &mut scratch);
        assert_eq!(scratch.cost(3), Some(&11));
        assert_eq!(scratch.path_to(3).unwrap().vertices(), &[0, 2, 3]);
        assert_eq!(scratch.hops(3), Some(2));
    }

    #[test]
    fn directed_costs_orientation() {
        // Path 0-1-2 with cheap canonical (low→high) traversal and
        // expensive reverse traversal: walking away from 0 uses fwd,
        // walking toward 0 uses bwd.
        let g = generators::path_graph(3);
        let fwd = vec![10u64; g.m()];
        let bwd = vec![1000u64; g.m()];
        let mut scratch = SearchScratch::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
        assert_eq!(scratch.cost(2), Some(&20), "two forward hops");
        dijkstra_into(&g, 2, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
        assert_eq!(scratch.cost(0), Some(&2000), "two backward hops");
    }

    #[test]
    fn stale_state_is_invisible_across_queries() {
        let g = generators::path_graph(6);
        let mut scratch = SearchScratch::<u64>::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), |_, _, _| 1u64, &mut scratch);
        assert_eq!(scratch.cost(5), Some(&5));
        // Cut the path: the unreachable side must read as unreached even
        // though its slots still hold the previous query's values.
        let cut = g.edge_between(2, 3).unwrap();
        dijkstra_into(&g, 0, &FaultSet::single(cut), |_, _, _| 1u64, &mut scratch);
        assert_eq!(scratch.cost(5), None);
        assert_eq!(scratch.hops(4), None);
        assert!(scratch.path_to(3).is_none());
        assert_eq!(scratch.reachable_count(), 3);
    }

    #[test]
    fn accessors_before_any_query_are_empty() {
        let scratch = SearchScratch::<u64>::new();
        assert!(!scratch.reached(0));
        assert_eq!(scratch.cost(0), None);
        assert_eq!(scratch.dist(0), None);
        assert!(scratch.path_to(0).is_none());
        assert_eq!(scratch.reachable_count(), 0);
        assert_eq!(scratch.tree_edges().count(), 0);
    }

    #[test]
    fn tree_edges_come_from_dirty_list() {
        let g = generators::complete(6);
        let mut scratch = SearchScratch::<u32>::new();
        bfs_into(&g, 2, &FaultSet::empty(), &mut scratch);
        let edges: Vec<EdgeId> = scratch.tree_edges().collect();
        assert_eq!(edges.len(), 5);
        let tree = scratch.to_bfs_tree();
        let mut expected: Vec<EdgeId> = tree.tree_edges().collect();
        let mut got = edges;
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn bigint_costs_accumulate_in_place() {
        use rsp_arith::BigInt;
        let g = generators::grid(3, 3);
        let mut scratch = SearchScratch::<BigInt>::new();
        let fwd: Vec<BigInt> =
            (0..g.m()).map(|e| BigInt::pow2(80) + BigInt::from(e as i64)).collect();
        let bwd: Vec<BigInt> =
            fwd.iter().map(|f| (BigInt::pow2(81) + BigInt::pow2(81)) - f.clone()).collect();
        for s in g.vertices() {
            dijkstra_into(&g, s, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
            let fresh = dijkstra(&g, s, &FaultSet::empty(), |e, from, to| {
                if from < to {
                    fwd[e].clone()
                } else {
                    bwd[e].clone()
                }
            });
            for v in g.vertices() {
                assert_eq!(scratch.cost(v), fresh.cost(v), "source {s} vertex {v}");
            }
        }
    }
}
