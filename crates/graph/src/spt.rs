//! Weighted shortest-path trees, the output of the exact-cost Dijkstra.

use rsp_arith::PathCost;

use crate::graph::{EdgeId, Vertex};
use crate::path::Path;

/// A shortest-path tree under exact perturbed costs.
///
/// Produced by [`crate::dijkstra`]. When the edge costs come from an
/// antisymmetric tiebreaking weight function, shortest paths in `G* \ F` are
/// unique and this tree *is* the paper's tiebreaking scheme `π(·, · | F)`
/// restricted to one source: `path_to(v) = π(source, v | F)`.
///
/// [`WeightedSpt::ties_detected`] reports whether Dijkstra ever saw two
/// equal-cost ways to reach a vertex. For a valid tiebreaking weight
/// function this must be `false`; the verifiers in `rsp-core` assert it.
#[derive(Clone, Debug)]
pub struct WeightedSpt<C> {
    source: Vertex,
    parent: Vec<Option<(Vertex, EdgeId)>>,
    cost: Vec<Option<C>>,
    hops: Vec<u32>,
    ties: bool,
}

impl<C: PathCost> WeightedSpt<C> {
    pub(crate) fn new(
        source: Vertex,
        parent: Vec<Option<(Vertex, EdgeId)>>,
        cost: Vec<Option<C>>,
        hops: Vec<u32>,
        ties: bool,
    ) -> Self {
        WeightedSpt { source, parent, cost, hops, ties }
    }

    /// The tree's root.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Exact perturbed cost of the source-to-`v` path, or `None` if
    /// unreachable.
    pub fn cost(&self, v: Vertex) -> Option<&C> {
        self.cost[v].as_ref()
    }

    /// Number of edges on the source-to-`v` tree path.
    ///
    /// Because tiebreaking weights only perturb *within* a hop class, this
    /// equals the unweighted distance whenever `v` is reachable.
    pub fn hops(&self, v: Vertex) -> Option<u32> {
        self.cost[v].as_ref().map(|_| self.hops[v])
    }

    /// Parent of `v` in the tree as `(vertex, edge id)`.
    pub fn parent(&self, v: Vertex) -> Option<(Vertex, EdgeId)> {
        self.parent[v]
    }

    /// The (unique) minimum-cost source-to-`v` path, or `None` if
    /// unreachable.
    pub fn path_to(&self, v: Vertex) -> Option<Path> {
        self.cost[v].as_ref()?;
        let mut verts = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur] {
            verts.push(p);
            cur = p;
        }
        verts.reverse();
        debug_assert_eq!(verts[0], self.source);
        Some(Path::new(verts))
    }

    /// `true` iff Dijkstra observed two equal-cost ways to reach some vertex.
    ///
    /// A correct tiebreaking weight function makes all shortest paths unique,
    /// so this is the cheap runtime witness that the perturbation worked.
    pub fn ties_detected(&self) -> bool {
        self.ties
    }

    /// All tree edge ids (one per reachable non-source vertex).
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.parent.iter().filter_map(|p| p.map(|(_, e)| e))
    }

    /// Number of reachable vertices (including the source).
    pub fn reachable_count(&self) -> usize {
        self.cost.iter().filter(|c| c.is_some()).count()
    }

    /// Views this weighted tree through the unweighted tree interface,
    /// discarding exact costs but keeping hop counts and parent pointers.
    ///
    /// Because tiebreaking weights only perturb within a hop class, the hop
    /// counts of a tiebreaking SPT are genuine unweighted distances, so the
    /// result is a valid BFS tree of `G \ F` — precisely Lemma 34's
    /// observation that "any shortest path tree under ω is also a legit BFS
    /// tree".
    pub fn to_bfs_tree(&self) -> crate::BfsTree {
        let dist = self.cost.iter().zip(&self.hops).map(|(c, &h)| c.as_ref().map(|_| h)).collect();
        crate::BfsTree::from_parts(self.source, dist, self.parent.clone())
    }
}
