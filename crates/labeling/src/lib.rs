//! Fault-tolerant exact distance labeling (Section 4.3 of Bodwin &
//! Parter, Theorem 30).
//!
//! A distance labeling scheme assigns each vertex a short bitstring such
//! that `dist(s, t)` is recoverable from the two labels alone. The
//! fault-tolerant version here recovers `dist_{G\F}(s, t)` from the labels
//! of `s` and `t` plus a description of `F` — notably **without edge
//! labels**, unlike prior forbidden-set labelings.
//!
//! Construction (Theorem 30): the label of `v` is the bit-packed edge set
//! of an `f`-FT `{v} × V` preserver built from a consistent stable
//! restorable RPTS. Restorability makes the **union of two labels**
//! `(f+1)`-fault tolerant for the pair: the replacement path concatenates
//! a path stored in `s`'s preserver with one stored in `t`'s. Label size
//! is `O(n^{2−1/2^f} log n)` bits; for `f = 0` that is `Õ(n)`, improving
//! the `Õ(n^{3/2})` of Bilò et al. as the paper notes.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), the preserver
//! enumeration pipeline, and the serving layer (its "Serving layer"
//! chapter — `rsp_oracle` snapshots can carry a [`DistanceLabeling`]
//! as a shippable artifact for off-box consumers).
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`build_labeling`], [`DistanceLabeling`] | Theorem 30: FT distance labels without edge labels |
//! | [`VertexLabel`] | one `{v} × V` preserver, bit-packed (`O(n^{2−1/2^f} log n)` bits) |
//! | [`BitReader`], [`BitWriter`] | the label encoding substrate |
//!
//! # Examples
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_labeling::build_labeling;
//! use rsp_graph::generators;
//!
//! let g = generators::petersen();
//! let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
//! let labeling = build_labeling(&scheme, 0); // supports one fault
//! // Query using ONLY the two labels and the fault description:
//! let d = labeling.query(0, 1, &[(0, 1)]);
//! assert_eq!(d, Some(4)); // Petersen girth-5 reroute
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bits;
mod scheme;

pub use bits::{BitReader, BitWriter};
pub use scheme::{build_labeling, DistanceLabeling, VertexLabel};
