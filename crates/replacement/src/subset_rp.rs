//! Algorithm 1 of the paper: subset replacement paths via restorable
//! tiebreaking (Theorem 29).
//!
//! The algorithm computes one shortest-path tree per source under a
//! 1-restorable tiebreaking scheme, then solves each pair `(s₁, s₂)` on
//! the union `T_{s₁} ∪ T_{s₂}` — a graph with only `O(n)` edges. The
//! correctness hinge is restorability: for any failing edge `e` there is a
//! midpoint `x` with `π(s₁, x) ∪ π(s₂, x)` a replacement shortest path,
//! and both halves live inside the two trees. Runtime
//! `O(σm) + Õ(σ²n)` versus `O(σ²m)` for the per-pair baseline.

use std::collections::HashMap;

use rsp_core::RandomGridAtw;
use rsp_graph::{dijkstra_batch_par, parallel_indexed, EdgeId, FaultSet, Graph, Path, Vertex};

use crate::single_pair::{
    single_pair_replacement_paths_with, ReplacementEntry, ReplacementScratch, SinglePairResult,
};

/// Replacement-path answers for one source pair.
#[derive(Clone, Debug)]
pub struct PairReplacements {
    s: Vertex,
    t: Vertex,
    result: SinglePairResult,
}

impl PairReplacements {
    /// Wraps a single-pair result for the pair `(s, t)`.
    pub(crate) fn new(s: Vertex, t: Vertex, result: SinglePairResult) -> Self {
        PairReplacements { s, t, result }
    }

    /// The pair, in the order it was computed.
    pub fn pair(&self) -> (Vertex, Vertex) {
        (self.s, self.t)
    }

    /// Fault-free distance.
    pub fn base_dist(&self) -> u32 {
        self.result.base_dist()
    }

    /// The selected shortest path between the pair.
    pub fn path(&self) -> &Path {
        self.result.path()
    }

    /// Per-path-edge replacement distances.
    pub fn entries(&self) -> &[ReplacementEntry] {
        self.result.entries()
    }

    /// The underlying single-pair result.
    pub fn result(&self) -> &SinglePairResult {
        &self.result
    }
}

/// Output of [`subset_replacement_paths`]: answers for all unordered
/// source pairs.
#[derive(Clone, Debug)]
pub struct SubsetRpResult {
    pairs: HashMap<(Vertex, Vertex), PairReplacements>,
}

impl SubsetRpResult {
    pub(crate) fn from_pairs(pairs: Vec<PairReplacements>) -> Self {
        SubsetRpResult {
            pairs: pairs
                .into_iter()
                .map(|p| {
                    let (s, t) = p.pair();
                    ((s.min(t), s.max(t)), p)
                })
                .collect(),
        }
    }

    /// Answers for the pair `{s, t}` (order-insensitive); `None` if the
    /// pair was disconnected or not requested.
    pub fn pair(&self, s: Vertex, t: Vertex) -> Option<&PairReplacements> {
        self.pairs.get(&(s.min(t), s.max(t)))
    }

    /// Number of connected pairs answered.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Iterates over all answered pairs.
    pub fn iter(&self) -> impl Iterator<Item = &PairReplacements> {
        self.pairs.values()
    }

    /// `dist_{G\{e}}(s, t)` for any edge `e`: the stored entry for edges on
    /// the pair's selected path, the base distance otherwise. `None` means
    /// the failure disconnects the pair (or the pair was never connected).
    pub fn dist_after_fault(&self, s: Vertex, t: Vertex, e: EdgeId) -> Option<u32> {
        self.pair(s, t)?.result().dist_after_fault(e)
    }
}

/// **Algorithm 1**: solves subset-rp for all pairs of `sources` in
/// `O(σm) + Õ(σ²n)` (Theorem 29).
///
/// `seed` drives the restorable tiebreaking perturbation and the per-pair
/// sub-perturbations; all seeds give correct output.
///
/// # Panics
///
/// Panics if any source is out of range.
///
/// # Examples
///
/// ```
/// use rsp_replacement::subset_replacement_paths;
/// use rsp_graph::generators;
///
/// let g = generators::cycle(8);
/// let r = subset_replacement_paths(&g, &[0, 4], 1);
/// // Any single edge failure on the 0⇝4 path reroutes the long way: 4 hops.
/// let pair = r.pair(0, 4).unwrap();
/// assert!(pair.entries().iter().all(|e| e.dist == Some(4)));
/// ```
pub fn subset_replacement_paths(g: &Graph, sources: &[Vertex], seed: u64) -> SubsetRpResult {
    subset_replacement_paths_par(g, sources, seed, 1)
}

/// [`subset_replacement_paths`] with both phases fanned out over a worker
/// pool: the per-source SPT builds run through
/// [`rsp_graph::dijkstra_batch_par`] (on the heap engine the `u128` cost
/// policy selects — see `rsp_arith::PathCost::HEAP`), and the `O(σ²)`
/// per-pair sub-instances are distributed across workers, each holding
/// its own [`ReplacementScratch`].
///
/// Output is identical to the sequential form for every worker count
/// (`workers = 1` runs inline on the calling thread).
///
/// # Panics
///
/// Panics if any source is out of range.
pub fn subset_replacement_paths_par(
    g: &Graph,
    sources: &[Vertex],
    seed: u64,
    workers: usize,
) -> SubsetRpResult {
    for &s in sources {
        assert!(s < g.n(), "source {s} out of range");
    }
    // Step 1–3 of Algorithm 1: restorable scheme + one outgoing SPT per
    // source, fanned out over the worker pool (one search scratch each).
    let scheme = RandomGridAtw::theorem20(g, seed).into_scheme();
    let empty = [FaultSet::empty()];
    let tree_edges: Vec<Vec<EdgeId>> = dijkstra_batch_par(
        g,
        sources,
        &empty,
        || scheme.directed_costs(),
        workers,
        |_, _, result| result.tree_edges().collect::<Vec<EdgeId>>(),
    )
    .into_iter()
    .map(|mut row| row.pop().expect("one fault set per source"))
    .collect();

    // Step 4–5: per pair, solve on the union of the two trees. Pairs are
    // independent, so they fan out too — one ReplacementScratch per worker
    // reused across that worker's sub-instances.
    let index_pairs: Vec<(usize, usize)> = (0..sources.len())
        .flat_map(|i| ((i + 1)..sources.len()).map(move |j| (i, j)))
        .filter(|&(i, j)| sources[i] != sources[j])
        .collect();
    let pairs = parallel_indexed(
        index_pairs.len(),
        workers,
        |_| ReplacementScratch::with_capacity(g.n()),
        |pair_scratch, p| {
            let (i, j) = index_pairs[p];
            let (s, t) = (sources[i], sources[j]);
            let union: Vec<EdgeId> =
                tree_edges[i].iter().chain(tree_edges[j].iter()).copied().collect();
            let u_graph = g.edge_subgraph(union);
            let pair_seed = seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + (i * 101 + j) as u64);
            let sub = single_pair_replacement_paths_with(&u_graph, s, t, pair_seed, pair_scratch)?;
            // Translate edge ids from the union graph back to G.
            let entries = sub
                .entries()
                .iter()
                .map(|entry| {
                    let (a, b) = u_graph.endpoints(entry.edge);
                    let edge = g.edge_between(a, b).expect("union edges come from G");
                    ReplacementEntry { edge, dist: entry.dist }
                })
                .collect();
            let result = SinglePairResult::from_parts(s, t, sub.path().clone(), entries);
            Some(PairReplacements::new(s, t, result))
        },
    );
    SubsetRpResult::from_pairs(pairs.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::naive_subset_rp;
    use rsp_graph::generators;

    /// Cross-checks Algorithm 1 against the naive recomputation: for every
    /// pair, every edge of Algorithm 1's selected path must get the true
    /// replacement distance.
    fn check_against_naive(g: &Graph, sources: &[Vertex], seed: u64) {
        let fast = subset_replacement_paths(g, sources, seed);
        for (i, &s) in sources.iter().enumerate() {
            for &t in &sources[i + 1..] {
                let pair = fast.pair(s, t).expect("connected test graphs");
                // Base distance must be the true distance.
                let truth0 = rsp_graph::bfs(g, s, &rsp_graph::FaultSet::empty()).dist(t).unwrap();
                assert_eq!(pair.base_dist(), truth0, "pair ({s},{t})");
                // Path edges carry true replacement distances.
                for entry in pair.entries() {
                    let truth =
                        rsp_graph::bfs(g, s, &rsp_graph::FaultSet::single(entry.edge)).dist(t);
                    assert_eq!(entry.dist, truth, "pair ({s},{t}) edge {}", entry.edge);
                }
            }
        }
    }

    #[test]
    fn algorithm1_matches_truth_on_cycle() {
        let g = generators::cycle(9);
        check_against_naive(&g, &[0, 3, 6], 1);
    }

    #[test]
    fn algorithm1_matches_truth_on_grid() {
        let g = generators::grid(4, 5);
        check_against_naive(&g, &[0, 4, 15, 19], 2);
    }

    #[test]
    fn algorithm1_matches_truth_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::connected_gnm(30, 70, seed);
            check_against_naive(&g, &[0, 7, 14, 21, 28], seed + 50);
        }
    }

    #[test]
    fn algorithm1_matches_truth_on_hypercube() {
        let g = generators::hypercube(4);
        check_against_naive(&g, &[0, 5, 10, 15], 9);
    }

    #[test]
    fn agrees_with_naive_subset_api() {
        let g = generators::petersen();
        let sources = [0, 2, 6, 9];
        let fast = subset_replacement_paths(&g, &sources, 4);
        let naive = naive_subset_rp(&g, &sources);
        assert_eq!(fast.pair_count(), naive.pair_count());
        for p in fast.iter() {
            let (s, t) = p.pair();
            assert_eq!(p.base_dist(), naive.pair(s, t).unwrap().base_dist());
        }
    }

    #[test]
    fn parallel_matches_sequential_for_all_worker_counts() {
        let g = generators::connected_gnm(24, 52, 11);
        let sources = [0, 5, 11, 17, 23];
        let seq = subset_replacement_paths(&g, &sources, 6);
        for workers in [2, 8] {
            let par = subset_replacement_paths_par(&g, &sources, 6, workers);
            assert_eq!(par.pair_count(), seq.pair_count(), "workers={workers}");
            for p in seq.iter() {
                let (s, t) = p.pair();
                let q = par.pair(s, t).expect("same pairs answered");
                assert_eq!(q.path(), p.path(), "workers={workers} pair ({s},{t})");
                assert_eq!(q.entries(), p.entries(), "workers={workers} pair ({s},{t})");
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_absent() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3), (3, 4)]).unwrap();
        let r = subset_replacement_paths(&g, &[0, 2, 4], 1);
        assert!(r.pair(0, 2).is_none());
        assert!(r.pair(2, 4).is_some());
        assert_eq!(r.pair_count(), 1);
    }

    #[test]
    fn bridge_faults_reported_as_disconnecting() {
        let g = generators::barbell(3, 2);
        let sources = [0, 6];
        let r = subset_replacement_paths(&g, &sources, 2);
        let pair = r.pair(0, 6).unwrap();
        assert!(
            pair.entries().iter().any(|e| e.dist.is_none()),
            "bridge edges disconnect the barbell"
        );
        check_against_naive(&g, &sources, 2);
    }

    #[test]
    fn query_off_path_edges() {
        let g = generators::grid(3, 3);
        let r = subset_replacement_paths(&g, &[0, 8], 3);
        let pair = r.pair(0, 8).unwrap();
        let on_path = pair.path().edge_ids(&g).unwrap();
        for (e, _, _) in g.edges() {
            if !on_path.contains(&e) {
                assert_eq!(r.dist_after_fault(0, 8, e), Some(pair.base_dist()));
            }
        }
    }

    use rsp_graph::Graph;
}
