//! Property tests for the reusable search scratch: `bfs_into` /
//! `dijkstra_into` with a *reused* [`SearchScratch`] must be
//! indistinguishable — trees, costs, hops, ties — from the allocating
//! `bfs` / `dijkstra`, including across back-to-back queries where stale
//! state from one query could leak into the next.

use proptest::prelude::*;
use rsp_arith::BigInt;
use rsp_graph::{
    bfs, bfs_into, dijkstra, dijkstra_into, generators, BfsTree, DirectedCosts, FaultSet, Graph,
    HeapKind, SearchScratch, WeightedSpt,
};

fn gnm_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (3usize..=24, 0usize..=3, any::<u64>()).prop_map(|(n, density, seed)| {
        let extra = density * n / 2;
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        (n, m, seed)
    })
}

/// A `(source, fault set)` query plan over a given graph.
fn queries(
    g: &Graph,
    picks: &[(prop::sample::Index, prop::sample::Index)],
) -> Vec<(usize, FaultSet)> {
    picks
        .iter()
        .enumerate()
        .map(|(i, (sv, ev))| {
            let s = sv.index(g.n());
            let faults = match i % 3 {
                0 => FaultSet::empty(),
                1 => FaultSet::single(ev.index(g.m())),
                _ => FaultSet::from_edges([ev.index(g.m()), (ev.index(g.m()) + 1) % g.m()]),
            };
            (s, faults)
        })
        .collect()
}

fn assert_bfs_identical(g: &Graph, fresh: &BfsTree, scratch: &SearchScratch<u32>) {
    for v in g.vertices() {
        assert_eq!(scratch.dist(v), fresh.dist(v), "dist({v})");
        assert_eq!(scratch.parent(v), fresh.parent(v), "parent({v})");
        assert_eq!(
            scratch.path_to(v).map(|p| p.vertices().to_vec()),
            fresh.path_to(v).map(|p| p.vertices().to_vec()),
            "path_to({v})"
        );
    }
    let tree = scratch.to_bfs_tree();
    assert_eq!(tree.reachable_count(), fresh.reachable_count());
    assert_eq!(tree.eccentricity(), fresh.eccentricity());
}

fn assert_spt_identical<C: rsp_arith::PathCost>(
    g: &Graph,
    fresh: &WeightedSpt<C>,
    scratch: &SearchScratch<C>,
) {
    for v in g.vertices() {
        assert_eq!(scratch.cost(v), fresh.cost(v), "cost({v})");
        assert_eq!(scratch.hops(v), fresh.hops(v), "hops({v})");
        assert_eq!(scratch.parent(v), fresh.parent(v), "parent({v})");
    }
    assert_eq!(scratch.ties_detected(), fresh.ties_detected(), "ties flag");
    assert_eq!(scratch.reachable_count(), fresh.reachable_count());
}

proptest! {
    /// Reused-scratch BFS equals allocating BFS on every query of a random
    /// back-to-back plan (stale-state isolation included: each comparison
    /// happens after the scratch served all previous queries).
    #[test]
    fn bfs_into_reused_equals_bfs(
        (n, m, seed) in gnm_params(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..7),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let mut scratch = SearchScratch::<u32>::new();
        for (s, faults) in queries(&g, &picks) {
            bfs_into(&g, s, &faults, &mut scratch);
            let fresh = bfs(&g, s, &faults);
            assert_bfs_identical(&g, &fresh, &scratch);
        }
    }

    /// Reused-scratch Dijkstra equals allocating Dijkstra — u64 costs with
    /// per-edge, per-direction variation.
    #[test]
    fn dijkstra_into_reused_equals_dijkstra_u64(
        (n, m, seed) in gnm_params(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..7),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let cost = |e: usize, from: usize, to: usize| {
            1_000_000u64 + (e as u64 * 17) % 1000 + if from < to { 3 } else { 5 }
        };
        let mut scratch = SearchScratch::<u64>::new();
        for (s, faults) in queries(&g, &picks) {
            dijkstra_into(&g, s, &faults, cost, &mut scratch);
            let fresh = dijkstra(&g, s, &faults, cost);
            assert_spt_identical(&g, &fresh, &scratch);
        }
    }

    /// Reused-scratch Dijkstra equals allocating Dijkstra — u128 costs via
    /// the borrowed-slice `DirectedCosts` source (the exact-scheme path).
    #[test]
    fn dijkstra_into_reused_equals_dijkstra_u128(
        (n, m, seed) in gnm_params(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..5),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let unit = 1u128 << 40;
        let fwd: Vec<u128> = (0..g.m()).map(|e| unit + (e as u128 * 7919) % 1024).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 2 * unit - f).collect();
        let mut scratch = SearchScratch::<u128>::new();
        for (s, faults) in queries(&g, &picks) {
            dijkstra_into(&g, s, &faults, DirectedCosts::new(&fwd, &bwd), &mut scratch);
            let fresh = dijkstra(&g, s, &faults, |e, from, to| {
                if from < to { fwd[e] } else { bwd[e] }
            });
            assert_spt_identical(&g, &fresh, &scratch);
        }
    }

    /// The inline-key and indexed heap engines are byte-identical: same
    /// costs, hops, parents, and tie flags on arbitrary graphs and
    /// back-to-back query plans. (Each engine is additionally pinned to
    /// the reference `dijkstra` by the tests above; this pins them to each
    /// other directly, including their reused-scratch state machines.)
    #[test]
    fn heap_engines_are_byte_identical(
        (n, m, seed) in gnm_params(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..7),
        tie_rich in any::<bool>(),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        // Tie-rich plans use near-colliding costs so both engines must
        // agree on tie detection, not just on unique shortest paths.
        let spread: u64 = if tie_rich { 2 } else { 997 };
        let cost = move |e: usize, from: usize, to: usize| {
            1_000u64 + (e as u64 * 17) % spread + u64::from(from < to && !tie_rich)
        };
        let mut inline = SearchScratch::<u64>::new().with_heap_kind(HeapKind::InlineKey);
        let mut indexed = SearchScratch::<u64>::new().with_heap_kind(HeapKind::Indexed);
        for (s, faults) in queries(&g, &picks) {
            dijkstra_into(&g, s, &faults, cost, &mut inline);
            dijkstra_into(&g, s, &faults, cost, &mut indexed);
            for v in g.vertices() {
                prop_assert_eq!(inline.cost(v), indexed.cost(v), "cost({})", v);
                prop_assert_eq!(inline.hops(v), indexed.hops(v), "hops({})", v);
                prop_assert_eq!(inline.parent(v), indexed.parent(v), "parent({})", v);
            }
            prop_assert_eq!(inline.ties_detected(), indexed.ties_detected(), "ties");
            prop_assert_eq!(inline.reachable_count(), indexed.reachable_count());
        }
    }

    /// Unit-cost reused Dijkstra agrees with BFS distances (ties galore:
    /// the decrease-key engine must pick the same trees as the allocating
    /// engine even when costs collide).
    #[test]
    fn unit_cost_dijkstra_into_matches_bfs(
        (n, m, seed) in gnm_params(),
        fault in any::<prop::sample::Index>(),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let e = fault.index(g.m());
        let mut scratch = SearchScratch::<u64>::new();
        for faults in [FaultSet::empty(), FaultSet::single(e)] {
            dijkstra_into(&g, 0, &faults, |_, _, _| 1u64, &mut scratch);
            let fresh = dijkstra(&g, 0, &faults, |_, _, _| 1u64);
            assert_spt_identical(&g, &fresh, &scratch);
            let tree = bfs(&g, 0, &faults);
            for v in g.vertices() {
                // Parent choices may differ (FIFO vs settle order breaks
                // ties differently); distances must not.
                prop_assert_eq!(scratch.hops(v), tree.dist(v));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// BigInt workload: limb buffers are reused across queries, so stale
    /// high limbs from a wide query must never contaminate a later query.
    #[test]
    fn dijkstra_into_reused_equals_dijkstra_bigint(
        (n, m, seed) in gnm_params(),
        picks in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..4),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        // Alternate wide and narrow weights between queries to stress
        // buffer reuse: query i uses weights around 2^(200/(i+1)).
        let mut scratch = SearchScratch::<BigInt>::new();
        for (i, (s, faults)) in queries(&g, &picks).into_iter().enumerate() {
            let shift = (200 / (i + 1)) as u32;
            let unit = BigInt::pow2(shift);
            let fwd: Vec<BigInt> =
                (0..g.m()).map(|e| &unit + &BigInt::from_i128(e as i128 % 97)).collect();
            let bwd: Vec<BigInt> =
                fwd.iter().map(|f| &(&unit + &unit) + &(-f.clone())).collect();
            dijkstra_into(&g, s, &faults, DirectedCosts::new(&fwd, &bwd), &mut scratch);
            let fresh = dijkstra(&g, s, &faults, |e, from, to| {
                if from < to { fwd[e].clone() } else { bwd[e].clone() }
            });
            assert_spt_identical(&g, &fresh, &scratch);
        }
    }

    /// One scratch serving graphs of different sizes back to back: results
    /// must always match a fresh run on the current graph.
    #[test]
    fn scratch_survives_graph_switches(
        (n1, m1, s1) in gnm_params(),
        (n2, m2, s2) in gnm_params(),
    ) {
        let big = generators::connected_gnm(n1.max(n2), m1.max(m2), s1);
        let small = generators::connected_gnm(n1.min(n2), m1.min(m2), s2);
        let mut scratch = SearchScratch::<u32>::new();
        for g in [&big, &small, &big, &small] {
            bfs_into(g, g.n() - 1, &FaultSet::empty(), &mut scratch);
            let fresh = bfs(g, g.n() - 1, &FaultSet::empty());
            assert_bfs_identical(g, &fresh, &scratch);
        }
    }
}
