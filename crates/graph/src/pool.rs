//! Scoped worker pools: indexed fan-out and a work-stealing frontier.
//!
//! See `docs/ARCHITECTURE.md` (repo root) for where this layer sits in the
//! query-engine story. Two execution shapes live here:
//!
//! * [`parallel_indexed`] — a **fixed job list**: the per-source work in
//!   this workspace (one shortest-path tree, or one whole FT-BFS
//!   enumeration, per source) is independent across sources once each
//!   worker owns its own scratch state. Jobs are claimed dynamically from
//!   an atomic next-index counter (which balances heavily skewed per-item
//!   costs) and results return **in index order**, so output is
//!   deterministic and independent of the worker count and of scheduling.
//! * [`parallel_frontier`] — a **self-growing frontier**: jobs may
//!   *discover* further jobs while running (the FT-BFS fault-set
//!   enumeration grows each fault set by edges of the tree just computed).
//!   Each worker owns a deque, pushes discoveries locally (LIFO, for
//!   locality), and **steals** from other workers when its own deque runs
//!   dry — the shape of the executor Bodwin–Parter-style `O(n^f)`
//!   enumerations need, built from `std::sync::Mutex` deques and scoped
//!   threads (no dependencies, no unsafe). [`ShardedSet`] is the matching
//!   concurrent visited set for frontier deduplication.
//!
//! `workers == 1` (or a single/empty job list) runs inline on the calling
//! thread with no thread spawned at all, which is also the sequential
//! reference implementation the equivalence tests compare against.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::parallel_indexed;
//!
//! // Square 0..8 on 3 workers; each worker counts its jobs in its state.
//! let squares = parallel_indexed(8, 3, |_worker| 0usize, |count, i| {
//!     *count += 1;
//!     i * i
//! });
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A sensible default worker count: the machine's available parallelism.
///
/// Falls back to 1 when the parallelism cannot be determined (e.g. in
/// restricted sandboxes).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `run(state, i)` for every `i in 0..count` across up to `workers`
/// scoped threads and returns the results in index order.
///
/// `make_state` is called once per worker (with the worker id) to build
/// that worker's private mutable state; `run` executes one job against it.
/// Items are claimed dynamically from a shared counter, so slow items do
/// not serialize behind fast ones. With `workers <= 1` — or fewer than two
/// items — everything runs inline on the calling thread.
///
/// The output is `[run(_, 0), run(_, 1), …]` regardless of which worker
/// executed which item; a caller that needs determinism only has to make
/// `run` itself deterministic per index.
///
/// # Panics
///
/// Propagates the first panic raised by any job.
pub fn parallel_indexed<R, S, FS, F>(count: usize, workers: usize, make_state: FS, run: F) -> Vec<R>
where
    R: Send,
    FS: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 || count <= 1 {
        let mut state = make_state(0);
        return (0..count).map(|i| run(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let make_state = &make_state;
                let run = &run;
                scope.spawn(move || {
                    let mut state = make_state(w);
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        produced.push((i, run(&mut state, i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every index is claimed exactly once")).collect()
}

/// Aggregate execution counters from one [`parallel_frontier`] run.
///
/// `executed` counts every frontier item run (each exactly once);
/// `stolen` counts the subset a worker claimed from *another* worker's
/// deque — the load-balancing traffic. `stolen == 0` on the inline
/// (single-worker) path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Frontier items executed, across all workers.
    pub executed: usize,
    /// Items claimed from another worker's deque (work-stealing events).
    pub stolen: usize,
}

/// Decrements the shared pending-item counter when dropped, so an item is
/// marked complete even if its step panics (otherwise the other workers
/// would spin on a count that can never reach zero).
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs a self-growing work frontier over up to `workers` scoped threads
/// with work stealing, and returns the per-worker `finish` results plus
/// execution stats.
///
/// `step(state, item, push)` processes one frontier item against the
/// worker's private state and may call `push` to add newly discovered
/// items; every pushed item is eventually processed exactly once. The run
/// ends when the frontier is exhausted: no items queued anywhere and none
/// in flight. `finish` folds each worker's state into a sendable result
/// on the worker's own thread — worker state itself never crosses threads
/// (so it may hold thread-local things like an `RptsScratch`).
///
/// Discovered items go to the discovering worker's own deque and are
/// popped newest-first (LIFO — depth-first, keeping the local deque
/// small); an idle worker steals oldest-first (FIFO) from the first
/// non-empty victim deque, taking the items most likely to fan out
/// further. Item execution **order** is therefore scheduling-dependent;
/// callers that need deterministic *results* must make the result a
/// function of the executed item **set** only (a union, a sum, …) —
/// exactly-once execution and private per-worker state make that
/// sufficient. The FT-BFS enumeration in `rsp_preserver` is the canonical
/// caller; [`ShardedSet`] supplies the dedup that keeps a frontier from
/// revisiting items.
///
/// `workers <= 1` — or an empty seed list — runs inline on the calling
/// thread with a plain LIFO stack (the sequential reference; one `finish`
/// result, zero steals). A **single** seed with many workers still spawns
/// them all: unlike [`parallel_indexed`]'s fixed job list, a frontier
/// grows, and the lone seed's discoveries are what the other workers
/// steal (the FT-BFS case: one source, `O(n^f)` descendant fault sets).
///
/// # Examples
///
/// Enumerate `{0, …, 29}` from seed `0` by pushing `i+1` and `2i` edges,
/// deduplicating with a [`ShardedSet`]:
///
/// ```
/// use rsp_graph::{parallel_frontier, ShardedSet};
///
/// let seen = ShardedSet::new(4);
/// seen.insert(0u32);
/// let (sums, stats) = parallel_frontier(
///     vec![0u32],
///     4,
///     |_worker| 0u64,
///     |sum, i, push| {
///         *sum += u64::from(i);
///         for next in [i + 1, 2 * i] {
///             if next < 30 && seen.insert(next) {
///                 push(next);
///             }
///         }
///     },
///     |sum| sum,
/// );
/// assert_eq!(stats.executed, 30);
/// assert_eq!(sums.iter().sum::<u64>(), (0..30).sum::<u64>());
/// ```
///
/// # Panics
///
/// Propagates the first panic raised by any step; remaining queued items
/// may or may not have been processed by then.
pub fn parallel_frontier<T, S, R, FS, F, FR>(
    seeds: Vec<T>,
    workers: usize,
    make_state: FS,
    step: F,
    finish: FR,
) -> (Vec<R>, FrontierStats)
where
    T: Send,
    R: Send,
    FS: Fn(usize) -> S + Sync,
    F: Fn(&mut S, T, &mut dyn FnMut(T)) + Sync,
    FR: Fn(S) -> R + Sync,
{
    let workers = workers.max(1);
    if workers <= 1 || seeds.is_empty() {
        let mut state = make_state(0);
        let mut stack = seeds;
        let mut executed = 0usize;
        while let Some(item) = stack.pop() {
            executed += 1;
            step(&mut state, item, &mut |t| stack.push(t));
        }
        return (vec![finish(state)], FrontierStats { executed, stolen: 0 });
    }
    let pending = AtomicUsize::new(seeds.len());
    let mut deques: Vec<Mutex<VecDeque<T>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, seed) in seeds.into_iter().enumerate() {
        deques[i % workers].get_mut().unwrap().push_back(seed);
    }
    let deques = &deques;
    let pending = &pending;
    let mut results = Vec::with_capacity(workers);
    let mut stats = FrontierStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let make_state = &make_state;
                let step = &step;
                let finish = &finish;
                scope.spawn(move || {
                    let mut state = make_state(w);
                    let mut executed = 0usize;
                    let mut stolen = 0usize;
                    let mut idle_scans = 0usize;
                    loop {
                        // Own deque first, newest-first (depth-first).
                        let mut item = deques[w].lock().unwrap().pop_back();
                        if item.is_none() {
                            // Steal oldest-first from the next non-empty
                            // victim (round-robin from w+1, so no victim
                            // is systematically favored).
                            for j in 1..workers {
                                item = deques[(w + j) % workers].lock().unwrap().pop_front();
                                if item.is_some() {
                                    stolen += 1;
                                    break;
                                }
                            }
                        }
                        match item {
                            Some(item) => {
                                idle_scans = 0;
                                executed += 1;
                                let guard = PendingGuard(pending);
                                step(&mut state, item, &mut |t| {
                                    pending.fetch_add(1, Ordering::SeqCst);
                                    deques[w].lock().unwrap().push_back(t);
                                });
                                drop(guard);
                            }
                            // `pending` counts queued + in-flight items,
                            // each incremented before it becomes visible
                            // and decremented only after its step (and
                            // that step's pushes) completed — so zero
                            // means globally quiescent, not just
                            // momentarily empty deques.
                            None if pending.load(Ordering::SeqCst) == 0 => break,
                            // Someone is still working but nothing is
                            // queued: yield while the wait is fresh, then
                            // back off to a short sleep so idle workers
                            // don't burn a core scanning deques for the
                            // whole duration of a long in-flight step
                            // (steps here are tree queries — micro- to
                            // milliseconds — so 50µs of staleness is
                            // noise, while a hot spin on an oversubscribed
                            // host steals cycles from the worker that has
                            // the work).
                            None if idle_scans < 64 => {
                                idle_scans += 1;
                                std::thread::yield_now();
                            }
                            None => std::thread::sleep(std::time::Duration::from_micros(50)),
                        }
                    }
                    (finish(state), executed, stolen)
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((result, executed, stolen)) => {
                    results.push(result);
                    stats.executed += executed;
                    stats.stolen += stolen;
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    (results, stats)
}

/// A sharded concurrent set: `insert` is first-wins across threads.
///
/// The visited-set companion of [`parallel_frontier`]: workers racing to
/// admit the same frontier item (the FT-BFS enumeration discovers one
/// fault set along many tree-edge paths) resolve through per-shard
/// mutexes, and exactly one racer wins. Values are spread over
/// `~4 × concurrency` shards by their [`Hash`], so contention stays on
/// the shard lock, not on one global set.
///
/// # Examples
///
/// ```
/// use rsp_graph::ShardedSet;
///
/// let set = ShardedSet::new(8);
/// assert!(set.insert("a"));
/// assert!(!set.insert("a"), "second insert of the same value loses");
/// assert!(set.insert("b"));
/// assert_eq!(set.len(), 2);
/// ```
pub struct ShardedSet<T> {
    shards: Vec<Mutex<HashSet<T>>>,
    /// `shards.len() - 1`; the shard count is a power of two so shard
    /// selection is a mask, not a division.
    mask: u64,
}

impl<T: Hash + Eq> ShardedSet<T> {
    /// A set sharded for about `concurrency` simultaneous inserters.
    pub fn new(concurrency: usize) -> Self {
        let count = (4 * concurrency.max(1)).next_power_of_two();
        ShardedSet {
            shards: (0..count).map(|_| Mutex::new(HashSet::new())).collect(),
            mask: count as u64 - 1,
        }
    }

    /// The index of the shard responsible for `value` — the single place
    /// the hasher choice and mask logic live.
    fn shard_of(&self, value: &T) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        value.hash(&mut hasher);
        (hasher.finish() & self.mask) as usize
    }

    /// Inserts `value`, returning `true` iff it was not already present.
    ///
    /// Linearizable per value (both racers hash to the same shard, whose
    /// mutex orders them): exactly one concurrent inserter of equal
    /// values is told `true`.
    pub fn insert(&self, value: T) -> bool {
        self.shards[self.shard_of(&value)].lock().unwrap().insert(value)
    }

    /// Returns `true` iff `value` has been inserted.
    pub fn contains(&self, value: &T) -> bool {
        self.shards[self.shard_of(value)].lock().unwrap().contains(value)
    }

    /// Total values inserted. Only meaningful once concurrent inserters
    /// have quiesced (it locks shards one at a time).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Returns `true` iff no value has been inserted (see
    /// [`ShardedSet::len`] for the quiescence caveat).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (a power of two, `≥ 4 × concurrency`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = parallel_indexed(20, workers, |_| (), |(), i| i * 2);
            assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker's state counts its jobs; the total must be `count`.
        let counts = parallel_indexed(
            50,
            4,
            |_| 0usize,
            |c, _| {
                *c += 1;
                *c
            },
        );
        // Per-item result is that worker's running job count: always ≥ 1.
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(counts.len(), 50);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<usize> = parallel_indexed(0, 8, |_| (), |(), i| i);
        assert!(none.is_empty());
        let one = parallel_indexed(1, 8, |_| (), |(), i| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn propagates_job_panics() {
        parallel_indexed(
            8,
            2,
            |_| (),
            |(), i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            },
        );
    }

    /// The frontier's expected item set for the doc-example growth rule
    /// (`i → i+1, 2i` under `limit`), as a plain sequential closure.
    fn closure_under(seeds: &[u32], limit: u32) -> std::collections::BTreeSet<u32> {
        let mut seen: std::collections::BTreeSet<u32> = seeds.iter().copied().collect();
        let mut stack: Vec<u32> = seeds.to_vec();
        while let Some(i) = stack.pop() {
            for next in [i + 1, 2 * i] {
                if next < limit && seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        seen
    }

    #[test]
    fn frontier_executes_closure_exactly_once_for_all_worker_counts() {
        let expected = closure_under(&[1], 200);
        for workers in [1, 2, 3, 8] {
            let seen = ShardedSet::new(workers);
            seen.insert(1u32);
            let (items, stats) = parallel_frontier(
                vec![1u32],
                workers,
                |_| Vec::new(),
                |mine: &mut Vec<u32>, i, push| {
                    mine.push(i);
                    for next in [i + 1, 2 * i] {
                        if next < 200 && seen.insert(next) {
                            push(next);
                        }
                    }
                },
                |mine| mine,
            );
            let all: Vec<u32> = items.into_iter().flatten().collect();
            assert_eq!(all.len(), expected.len(), "workers={workers}: exactly once");
            assert_eq!(
                all.iter().copied().collect::<std::collections::BTreeSet<_>>(),
                expected,
                "workers={workers}: same item set"
            );
            assert_eq!(stats.executed, expected.len(), "workers={workers}");
            assert_eq!(seen.len(), expected.len(), "workers={workers}");
        }
    }

    #[test]
    fn frontier_with_no_growth_is_a_parallel_map() {
        let (sums, stats) = parallel_frontier(
            (0..100u64).collect(),
            4,
            |_| 0u64,
            |sum, i, _push| *sum += i,
            |sum| sum,
        );
        assert_eq!(sums.iter().sum::<u64>(), (0..100).sum::<u64>());
        assert_eq!(stats.executed, 100);
    }

    #[test]
    fn frontier_empty_seeds_run_inline() {
        let (r, stats) = parallel_frontier(Vec::<u8>::new(), 8, |_| 0usize, |_, _, _| {}, |n| n);
        assert_eq!(r, vec![0]);
        assert_eq!(stats, FrontierStats { executed: 0, stolen: 0 });
    }

    #[test]
    fn frontier_single_seed_still_uses_every_worker() {
        // One seed must NOT clamp the pool to one worker: the frontier
        // grows, and the growth is what the other workers steal. Grow a
        // binary tree of depth 9 from the seed (1023 items, no dedup
        // needed — every path is distinct) and check the always-true
        // invariants: one finish result per worker, exactly-once
        // execution. Which worker ran what is scheduling-dependent.
        let (per_worker, stats) = parallel_frontier(
            vec![1u32],
            4,
            |_| 0usize,
            |count, i, push| {
                *count += 1;
                if i < 512 {
                    push(2 * i);
                    push(2 * i + 1);
                }
            },
            |count| count,
        );
        assert_eq!(per_worker.len(), 4, "all four workers spawned for one seed");
        assert_eq!(per_worker.iter().sum::<usize>(), stats.executed);
        assert_eq!(stats.executed, 1023, "items 1..=1023, each exactly once");
    }

    #[test]
    fn frontier_steals_skewed_work() {
        // Two seeds; one grows a deep chain, the other is a leaf. With
        // items parked behind a gate until both workers are up, the
        // leaf's worker must steal from the chain to finish. This is
        // inherently scheduling-dependent, so only assert the invariants
        // that always hold: exactly-once execution and a consistent sum.
        let gate = std::sync::Barrier::new(2);
        let (counts, stats) = parallel_frontier(
            vec![0u32, 1000],
            2,
            |_| 0usize,
            |count, i, push| {
                if i == 0 || i == 1000 {
                    gate.wait();
                }
                *count += 1;
                if (1..400).contains(&i) || i == 0 {
                    push(i + 1);
                }
            },
            |count| count,
        );
        assert_eq!(counts.iter().sum::<usize>(), 402);
        assert_eq!(stats.executed, 402);
    }

    #[test]
    #[should_panic(expected = "step 13 exploded")]
    fn frontier_propagates_step_panics() {
        parallel_frontier(
            (0..32u32).collect(),
            4,
            |_| (),
            |(), i, _push| {
                if i == 13 {
                    panic!("step 13 exploded");
                }
            },
            |()| (),
        );
    }

    #[test]
    fn sharded_set_first_insert_wins_under_contention() {
        let set = ShardedSet::new(4);
        // 8 threads race to insert the same 100 values; each insert must
        // be won by exactly one thread.
        let wins: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..100u32).filter(|&v| set.insert(v)).count()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(wins.iter().sum::<usize>(), 100, "every value won exactly once");
        assert_eq!(set.len(), 100);
        assert!(!set.is_empty());
        for v in 0..100u32 {
            assert!(set.contains(&v));
        }
        assert!(!set.contains(&200));
    }

    #[test]
    fn sharded_set_shard_count_is_padded_power_of_two() {
        for (concurrency, expect) in [(0usize, 4usize), (1, 4), (2, 8), (8, 32), (9, 64)] {
            let set = ShardedSet::<u64>::new(concurrency);
            assert_eq!(set.shard_count(), expect, "concurrency={concurrency}");
            assert!(set.shard_count().is_power_of_two());
        }
    }
}
