//! Boundary behavior of the `u32` CSR id space: vertex counts at and
//! beyond the id limit, multi-million-vertex graphs whose ids exceed
//! `u16`, and edge ids round-tripping losslessly through the [`FaultSet`]
//! and the 9-byte wire-event codec (which stays 64-bit wide on purpose —
//! the wire format must outlive the in-memory id width).

use proptest::prelude::*;
use rsp_graph::{
    bfs, FaultEvent, FaultSet, Graph, GraphBuilder, GraphError, WireEventError, MAX_EDGES,
    MAX_VERTICES, WIRE_EVENT_LEN,
};

/// The id limit itself: `u32::MAX` is the engine-wide sentinel (settled
/// marker, empty oracle cell), so the last usable vertex id is
/// `u32::MAX - 1` and each edge consumes two `u32` adjacency slots.
#[test]
fn id_limits_leave_room_for_the_sentinel() {
    assert_eq!(MAX_VERTICES, (u32::MAX - 1) as usize);
    assert_eq!(MAX_EDGES, ((u32::MAX - 1) / 2) as usize);
}

/// `try_new` succeeds at exactly the limit (the builder holds no
/// per-vertex state, so probing the boundary is free) and rejects one
/// past it — and anything past `u32::MAX` — with the typed error, never
/// a panic or a silent truncation.
#[test]
fn builder_accepts_limit_and_rejects_beyond() {
    assert!(GraphBuilder::try_new(MAX_VERTICES).is_ok());
    for n in [MAX_VERTICES + 1, u32::MAX as usize, u32::MAX as usize + 1, usize::MAX] {
        assert!(
            matches!(GraphBuilder::try_new(n), Err(GraphError::TooManyVertices { n: got }) if got == n),
            "n = {n} must be rejected with TooManyVertices"
        );
    }
    assert_eq!(
        Graph::from_edges(u32::MAX as usize + 1, []),
        Err(GraphError::TooManyVertices { n: u32::MAX as usize + 1 })
    );
}

/// A 3-million-vertex sparse graph — every id well past `u16`, the
/// offsets array genuinely wide — builds, stores endpoints losslessly,
/// and answers queries touching the very last ids.
#[test]
fn multi_million_vertex_graph_round_trips_ids() {
    let n = 3_000_000;
    let last = n - 1;
    let g = Graph::from_edges(n, [(last, last - 1), (last - 1, last - 2), (0, last)]).unwrap();
    assert_eq!(g.n(), n);
    assert_eq!(g.m(), 3);
    assert_eq!(g.endpoints(g.edge_between(0, last).unwrap()), (0, last));
    assert_eq!(g.degree(last), 2);
    assert_eq!(g.degree(1), 0, "untouched interior vertices stay isolated");
    let tree = bfs(&g, last, &FaultSet::empty());
    assert_eq!(tree.dist(last - 2), Some(2));
    assert_eq!(tree.dist(0), Some(1));
    assert_eq!(tree.reachable_count(), 4);
}

/// Fault-set membership at edge ids far beyond any buildable graph: the
/// set is pure id arithmetic and must not care about the CSR limits.
#[test]
fn fault_set_handles_huge_edge_ids() {
    let huge = [0usize, u32::MAX as usize, 1 << 40, usize::MAX];
    let fs = FaultSet::from_edges(huge);
    assert_eq!(fs.len(), huge.len());
    for e in huge {
        assert!(fs.contains(e));
        assert!(!fs.contains(e ^ 1), "neighbors of {e} are absent");
    }
    assert!(fs.without(1 << 40).is_subset_of(&fs));
}

/// Corrupted wire frames are rejected with the typed reason, never a
/// panic: wrong lengths, unknown tags.
#[test]
fn wire_codec_rejects_corrupt_frames() {
    let frame = FaultEvent::Arrive(7).encode();
    assert_eq!(frame.len(), WIRE_EVENT_LEN);
    assert_eq!(
        FaultEvent::decode(&frame[..WIRE_EVENT_LEN - 1]),
        Err(WireEventError::BadLength { got: 8 })
    );
    assert_eq!(FaultEvent::decode(&[]), Err(WireEventError::BadLength { got: 0 }));
    let mut bad_tag = frame;
    bad_tag[0] = 0x7f;
    assert_eq!(FaultEvent::decode(&bad_tag), Err(WireEventError::BadTag { tag: 0x7f }));
}

proptest! {
    /// Every edge id a 64-bit platform can hold round-trips through the
    /// 9-byte codec, for both event kinds — including ids past the `u32`
    /// graph limit, which the wire format deliberately still carries.
    #[test]
    fn wire_codec_round_trips_all_edge_ids(e in any::<u64>(), repair in any::<bool>()) {
        let e = e as usize;
        let ev = if repair { FaultEvent::Repair(e) } else { FaultEvent::Arrive(e) };
        let frame = ev.encode();
        prop_assert_eq!(frame.len(), WIRE_EVENT_LEN);
        prop_assert_eq!(FaultEvent::decode(&frame), Ok(ev));
        prop_assert_eq!(ev.edge(), e);
    }

    /// Insert/remove round-trip at arbitrary (huge) ids keeps the set
    /// sorted, deduplicated, and exact.
    #[test]
    fn fault_set_round_trips_arbitrary_ids(ids in prop::collection::vec(any::<u64>(), 0..12)) {
        let ids: Vec<usize> = ids.into_iter().map(|e| e as usize).collect();
        let mut fs = FaultSet::from_edges(ids.iter().copied());
        for &e in &ids {
            prop_assert!(fs.contains(e));
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(fs.as_slice(), &sorted[..]);
        for &e in &ids {
            fs.remove(e);
        }
        prop_assert!(fs.is_empty());
    }
}
