//! Theorem 37 machinery: exhaustive search over *symmetric* tiebreaking
//! schemes.
//!
//! Afek et al. observed — and Appendix A of the paper proves — that no
//! tiebreaking scheme can be simultaneously **symmetric** and
//! **1-restorable**, already on the 4-cycle. This module reproduces that
//! impossibility *constructively*: it enumerates every symmetric scheme on
//! a (small) input graph and checks 1-restorability of each. On `C4` the
//! search space is exactly four schemes and all four fail (experiment E3);
//! the asymmetric ATW schemes of this crate succeed on the same graph,
//! which is the content of Theorem 2.

use std::collections::HashMap;

use rsp_graph::{bfs, connected_pair, FaultSet, Graph, Path, Vertex};

/// Enumerates **all** shortest `s ⇝ t` paths in `g \ faults`, up to `cap`
/// paths.
///
/// Returns `None` if more than `cap` shortest paths exist (the enumeration
/// is inherently exponential; the exhaustive experiments run on tiny
/// graphs). Returns `Some(vec![])` if `t` is unreachable.
///
/// # Examples
///
/// ```
/// use rsp_core::c4::all_shortest_paths;
/// use rsp_graph::{generators, FaultSet};
///
/// let g = generators::cycle(4);
/// let paths = all_shortest_paths(&g, 0, 2, &FaultSet::empty(), 16).unwrap();
/// assert_eq!(paths.len(), 2); // both ways around
/// ```
pub fn all_shortest_paths(
    g: &Graph,
    s: Vertex,
    t: Vertex,
    faults: &FaultSet,
    cap: usize,
) -> Option<Vec<Path>> {
    let from_t = bfs(g, t, faults);
    let Some(d) = from_t.dist(s) else {
        return Some(Vec::new());
    };
    let mut out = Vec::new();
    let mut prefix = vec![s];
    // DFS along strictly distance-decreasing (toward t) edges.
    fn rec(
        g: &Graph,
        faults: &FaultSet,
        from_t: &rsp_graph::BfsTree,
        t: Vertex,
        prefix: &mut Vec<Vertex>,
        out: &mut Vec<Path>,
        cap: usize,
    ) -> bool {
        let u = *prefix.last().expect("nonempty prefix");
        if u == t {
            if out.len() == cap {
                return false;
            }
            out.push(Path::new(prefix.clone()));
            return true;
        }
        let du = from_t.dist(u).expect("on a shortest path");
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) {
                continue;
            }
            if from_t.dist(v) == Some(du - 1) {
                prefix.push(v);
                let ok = rec(g, faults, from_t, t, prefix, out, cap);
                prefix.pop();
                if !ok {
                    return false;
                }
            }
        }
        true
    }
    let _ = d;
    if rec(g, faults, &from_t, t, &mut prefix, &mut out, cap) {
        Some(out)
    } else {
        None
    }
}

/// A symmetric tiebreaking scheme: one undirected shortest path per
/// unordered pair (Definition 13 with `π(s, t) = π(t, s)`).
///
/// Paths are stored oriented from the smaller to the larger endpoint.
#[derive(Clone, Debug)]
pub struct SymmetricScheme {
    paths: HashMap<(Vertex, Vertex), Path>,
}

impl SymmetricScheme {
    /// The selected path between `s` and `t`, oriented `s → t`.
    ///
    /// Returns the trivial path when `s == t`, `None` if the pair is not
    /// in the scheme (disconnected).
    pub fn path(&self, s: Vertex, t: Vertex) -> Option<Path> {
        if s == t {
            return Some(Path::trivial(s));
        }
        let key = (s.min(t), s.max(t));
        let p = self.paths.get(&key)?;
        Some(if p.source() == s { p.clone() } else { p.reversed() })
    }

    /// Number of pairs with a selected path.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the scheme selects no paths (empty or edgeless graph).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Checks 1-restorability of a symmetric scheme: for every pair `(s, t)`
/// and failing edge `e` with `s, t` still connected in `G \ e`, some
/// midpoint `x` must give selected paths `π(s,x)`, `π(t,x)` that both
/// avoid `e` and concatenate to a replacement shortest path.
pub fn is_symmetric_scheme_1_restorable(g: &Graph, scheme: &SymmetricScheme) -> bool {
    for (e, _, _) in g.edges() {
        let faults = FaultSet::single(e);
        for s in g.vertices() {
            for t in (s + 1)..g.n() {
                if !connected_pair(g, s, t, &faults) {
                    continue;
                }
                let target = bfs(g, s, &faults).dist(t).expect("connected");
                let ok = g.vertices().any(|x| {
                    let (Some(ps), Some(pt)) = (scheme.path(s, x), scheme.path(t, x)) else {
                        return false;
                    };
                    ps.hops() + pt.hops() == target as usize
                        && ps.avoids(g, &faults)
                        && pt.avoids(g, &faults)
                });
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

/// Outcome of the exhaustive symmetric-scheme search (experiment E3).
#[derive(Clone, Debug)]
pub struct SymmetricSearch {
    /// Total symmetric schemes enumerated.
    pub schemes_tried: usize,
    /// A 1-restorable symmetric scheme, if any exists.
    pub witness: Option<SymmetricScheme>,
}

/// Exhaustively searches all symmetric tiebreaking schemes of `g` for a
/// 1-restorable one.
///
/// Returns `None` (in `witness`) if no symmetric scheme is 1-restorable —
/// on `C4` this reproduces Theorem 37. The product of per-pair path counts
/// must not exceed `scheme_cap` and no pair may have more than `path_cap`
/// shortest paths, else `Err` is returned with the offending size.
///
/// # Errors
///
/// Returns the estimated search-space size if it exceeds the caps.
pub fn search_symmetric_1_restorable(
    g: &Graph,
    path_cap: usize,
    scheme_cap: usize,
) -> Result<SymmetricSearch, usize> {
    let empty = FaultSet::empty();
    let mut pairs: Vec<((Vertex, Vertex), Vec<Path>)> = Vec::new();
    let mut total: usize = 1;
    for s in g.vertices() {
        for t in (s + 1)..g.n() {
            let choices = all_shortest_paths(g, s, t, &empty, path_cap).ok_or(usize::MAX)?;
            if choices.is_empty() {
                continue; // disconnected pair: nothing to select
            }
            total = total.saturating_mul(choices.len());
            if total > scheme_cap {
                return Err(total);
            }
            pairs.push(((s, t), choices));
        }
    }

    // Odometer over the per-pair choices.
    let mut idx = vec![0usize; pairs.len()];
    let mut tried = 0;
    loop {
        tried += 1;
        let scheme = SymmetricScheme {
            paths: pairs
                .iter()
                .zip(&idx)
                .map(|((key, choices), &i)| (*key, choices[i].clone()))
                .collect(),
        };
        if is_symmetric_scheme_1_restorable(g, &scheme) {
            return Ok(SymmetricSearch { schemes_tried: tried, witness: Some(scheme) });
        }
        // Advance the odometer.
        let mut pos = 0;
        loop {
            if pos == pairs.len() {
                return Ok(SymmetricSearch { schemes_tried: tried, witness: None });
            }
            idx[pos] += 1;
            if idx[pos] < pairs[pos].1.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::generators;

    #[test]
    fn enumerates_tied_paths_on_c4() {
        let g = generators::cycle(4);
        let paths = all_shortest_paths(&g, 1, 3, &FaultSet::empty(), 10).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.hops(), 2);
            assert!(p.is_valid_in(&g));
        }
    }

    #[test]
    fn enumeration_cap_respected() {
        // 3x3 grid corner-to-corner has 6 shortest paths; cap below that.
        let g = generators::grid(3, 3);
        assert!(all_shortest_paths(&g, 0, 8, &FaultSet::empty(), 5).is_none());
        let all = all_shortest_paths(&g, 0, 8, &FaultSet::empty(), 100).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn unreachable_pair_has_no_paths() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let paths = all_shortest_paths(&g, 0, 2, &FaultSet::empty(), 4).unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn theorem37_no_symmetric_restorable_scheme_on_c4() {
        let g = generators::cycle(4);
        let res = search_symmetric_1_restorable(&g, 16, 10_000).unwrap();
        assert_eq!(res.schemes_tried, 4, "C4 has exactly 4 symmetric schemes");
        assert!(res.witness.is_none(), "Theorem 37: all symmetric schemes fail");
    }

    #[test]
    fn asymmetric_atw_scheme_succeeds_on_c4() {
        // The other half of the story: Theorem 2's asymmetric selection is
        // 1-restorable on the same graph.
        use crate::random_atw::RandomGridAtw;
        use crate::verify::{all_fault_sets, verify_restorability};
        let g = generators::cycle(4);
        let scheme = RandomGridAtw::theorem20(&g, 77).into_scheme();
        verify_restorability(&scheme, &all_fault_sets(g.m(), 1)).unwrap();
    }

    #[test]
    fn trees_trivially_admit_symmetric_schemes() {
        // On a tree there are no ties and no replacement paths: the unique
        // scheme is vacuously 1-restorable.
        let g = generators::path_graph(4);
        let res = search_symmetric_1_restorable(&g, 4, 100).unwrap();
        assert!(res.witness.is_some());
    }

    #[test]
    fn odd_cycles_admit_symmetric_schemes() {
        // C5 has unique shortest paths; the symmetric scheme restores fine.
        let g = generators::cycle(5);
        let res = search_symmetric_1_restorable(&g, 4, 100).unwrap();
        assert!(res.witness.is_some(), "odd cycles have no ties to break");
    }

    #[test]
    fn search_cap_errors_out() {
        let g = generators::grid(3, 3);
        assert!(search_symmetric_1_restorable(&g, 100, 10).is_err());
    }

    use rsp_graph::Graph;
}
