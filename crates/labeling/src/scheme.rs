//! The labeling scheme of Theorem 30.

use rsp_core::Rpts;
use rsp_graph::{bfs, FaultSet, Graph, GraphBuilder, Vertex};
use rsp_preserver::ft_bfs_structure;

use crate::bits::{width_for, BitReader, BitWriter};

/// One vertex's label: the bit-packed edge set of its `f`-FT `{v} × V`
/// preserver.
///
/// Layout: `[n : 32][edge count : 32]([endpoint : w][endpoint : w])*` with
/// `w = ⌈log₂ n⌉` — the `O(log n)` bits per edge of the theorem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexLabel {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl VertexLabel {
    /// Exact size in bits — the quantity Theorem 30 bounds.
    pub fn bits(&self) -> usize {
        self.bit_len
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn encode(n: usize, edges: impl Iterator<Item = (Vertex, Vertex)>) -> Self {
        let w = width_for(n);
        let edges: Vec<(Vertex, Vertex)> = edges.collect();
        let mut out = BitWriter::new();
        out.write_bits(n as u64, 32);
        out.write_bits(edges.len() as u64, 32);
        for (u, v) in edges {
            out.write_bits(u as u64, w);
            out.write_bits(v as u64, w);
        }
        let (bytes, bit_len) = out.into_parts();
        VertexLabel { bytes, bit_len }
    }

    /// Decodes the label into `(n, edge list)`.
    ///
    /// Returns `None` if the label is malformed.
    pub fn decode(&self) -> Option<(usize, Vec<(Vertex, Vertex)>)> {
        let mut r = BitReader::new(&self.bytes);
        let n = r.read_bits(32)? as usize;
        let count = r.read_bits(32)? as usize;
        let w = width_for(n);
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let u = r.read_bits(w)? as usize;
            let v = r.read_bits(w)? as usize;
            edges.push((u, v));
        }
        Some((n, edges))
    }
}

/// An `(f+1)`-FT exact distance labeling (Theorem 30).
///
/// [`DistanceLabeling::query`] recovers `dist_{G\F}(s, t)` for any
/// `|F| ≤ f + 1` from the labels of `s` and `t` and the endpoints of `F`
/// alone — the host graph is not consulted.
#[derive(Clone, Debug)]
pub struct DistanceLabeling {
    n: usize,
    f_supported: usize,
    labels: Vec<VertexLabel>,
}

/// Builds the labeling: each vertex stores its `f`-FT `{v} × V` preserver
/// (so queries tolerate `f + 1` faults, by restorability of the scheme).
///
/// The scheme **must** be a restorable RPTS (any [`rsp_core::ExactScheme`]
/// from an ATW construction); with an arbitrary scheme the two-label union
/// does not earn the extra fault.
pub fn build_labeling<S: Rpts>(scheme: &S, f: usize) -> DistanceLabeling {
    let g = scheme.graph();
    let labels = g
        .vertices()
        .map(|v| {
            let p = ft_bfs_structure(scheme, v, f);
            VertexLabel::encode(g.n(), p.edges().iter().map(|&e| g.endpoints(e)))
        })
        .collect();
    DistanceLabeling { n: g.n(), f_supported: f + 1, labels }
}

impl DistanceLabeling {
    /// Number of labeled vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum number of faults a query may pass (`f + 1`).
    pub fn faults_supported(&self) -> usize {
        self.f_supported
    }

    /// The label of `v`.
    pub fn label(&self, v: Vertex) -> &VertexLabel {
        &self.labels[v]
    }

    /// Size of `v`'s label in bits.
    pub fn label_bits(&self, v: Vertex) -> usize {
        self.labels[v].bits()
    }

    /// The largest label, in bits — the per-vertex size Theorem 30 bounds
    /// by `O(n^{2−1/2^f} log n)`.
    pub fn max_label_bits(&self) -> usize {
        self.labels.iter().map(|l| l.bits()).max().unwrap_or(0)
    }

    /// Total bits across all labels.
    pub fn total_bits(&self) -> usize {
        self.labels.iter().map(|l| l.bits()).sum()
    }

    /// Recovers `dist_{G\F}(s, t)` from the two labels plus the fault
    /// description (edges as endpoint pairs, any orientation).
    ///
    /// Decodes both labels, unions the edge sets, deletes `F`, and runs
    /// BFS — exactly the decoder of Theorem 30. Returns `None` if the
    /// pair is disconnected in `G \ F`.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range, or if more than
    /// [`DistanceLabeling::faults_supported`] faults are passed (the
    /// answer could silently be wrong beyond the supported budget).
    pub fn query(&self, s: Vertex, t: Vertex, faults: &[(Vertex, Vertex)]) -> Option<u32> {
        assert!(s < self.n && t < self.n, "query pair out of range");
        assert!(
            faults.len() <= self.f_supported,
            "labeling supports at most {} faults, got {}",
            self.f_supported,
            faults.len()
        );
        let (n1, edges_s) = self.labels[s].decode().expect("labels are well-formed");
        let (_, edges_t) = self.labels[t].decode().expect("labels are well-formed");
        let mut b = GraphBuilder::new(n1);
        for (u, v) in edges_s.into_iter().chain(edges_t) {
            let _ = b.add_edge_dedup(u, v).expect("label edges are valid");
        }
        let union = b.build();
        let fault_set: FaultSet =
            faults.iter().filter_map(|&(u, v)| union.edge_between(u, v)).collect();
        bfs(&union, s, &fault_set).dist(t)
    }
}

#[allow(unused_imports)]
use rsp_graph::Path; // rustdoc link target
#[allow(unused_imports)]
use Graph as _;

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_core::RandomGridAtw;
    use rsp_graph::generators;

    fn faults_as_pairs(g: &Graph, f: &FaultSet) -> Vec<(Vertex, Vertex)> {
        f.iter().map(|e| g.endpoints(e)).collect()
    }

    #[test]
    fn single_fault_queries_match_truth() {
        let g = generators::connected_gnm(16, 36, 1);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let labeling = build_labeling(&scheme, 0);
        for (e, _, _) in g.edges() {
            let fs = FaultSet::single(e);
            let pairs = faults_as_pairs(&g, &fs);
            for s in [0, 5, 9] {
                let truth = bfs(&g, s, &fs);
                for t in g.vertices() {
                    assert_eq!(labeling.query(s, t, &pairs), truth.dist(t), "({s},{t}) e={e}");
                }
            }
        }
    }

    #[test]
    fn two_fault_queries_match_truth() {
        let g = generators::connected_gnm(12, 26, 2);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let labeling = build_labeling(&scheme, 1); // supports 2 faults
        let doubles = rsp_core::verify::all_fault_sets(g.m(), 2);
        for fs in doubles.iter().take(60) {
            let pairs = faults_as_pairs(&g, fs);
            for s in [0, 7] {
                let truth = bfs(&g, s, fs);
                for t in g.vertices() {
                    assert_eq!(labeling.query(s, t, &pairs), truth.dist(t));
                }
            }
        }
    }

    #[test]
    fn fault_free_queries() {
        let g = generators::grid(3, 4);
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        let labeling = build_labeling(&scheme, 0);
        let truth = bfs(&g, 0, &FaultSet::empty());
        for t in g.vertices() {
            assert_eq!(labeling.query(0, t, &[]), truth.dist(t));
        }
    }

    #[test]
    fn label_sizes_are_accounted_in_bits() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
        let labeling = build_labeling(&scheme, 0);
        // n=10 needs 4-bit endpoints: 64 header + 8·|edges| bits.
        for v in g.vertices() {
            let bits = labeling.label_bits(v);
            assert_eq!((bits - 64) % 8, 0);
            assert!(bits <= labeling.max_label_bits());
        }
        assert_eq!(
            labeling.total_bits(),
            g.vertices().map(|v| labeling.label_bits(v)).sum::<usize>()
        );
    }

    #[test]
    fn labels_round_trip() {
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let labeling = build_labeling(&scheme, 1);
        let (n, edges) = labeling.label(0).decode().unwrap();
        assert_eq!(n, 6);
        assert!(!edges.is_empty());
        for (u, v) in edges {
            assert!(g.has_edge(u, v), "decoded edges exist in G");
        }
    }

    #[test]
    #[should_panic(expected = "supports at most")]
    fn over_budget_queries_rejected() {
        let g = generators::cycle(5);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        let labeling = build_labeling(&scheme, 0);
        let _ = labeling.query(0, 2, &[(0, 1), (1, 2)]);
    }

    #[test]
    fn disconnecting_faults_return_none() {
        let g = generators::path_graph(5);
        let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
        let labeling = build_labeling(&scheme, 0);
        assert_eq!(labeling.query(0, 4, &[(2, 3)]), None);
    }
}
