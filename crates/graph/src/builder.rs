//! Incremental, validating graph construction.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::graph::{Graph, Vertex, MAX_EDGES, MAX_VERTICES};

/// Error raised when constructing an invalid graph.
///
/// # Examples
///
/// ```
/// use rsp_graph::{Graph, GraphError};
///
/// assert!(matches!(Graph::from_edges(2, [(0, 0)]), Err(GraphError::SelfLoop { .. })));
/// assert!(matches!(Graph::from_edges(2, [(0, 5)]), Err(GraphError::VertexOutOfRange { .. })));
/// assert!(matches!(
///     Graph::from_edges(2, [(0, 1), (1, 0)]),
///     Err(GraphError::DuplicateEdge { .. })
/// ));
/// assert!(matches!(
///     Graph::from_edges(usize::MAX, []),
///     Err(GraphError::TooManyVertices { .. })
/// ));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// Both endpoints were equal; simple graphs have no self-loops.
    SelfLoop {
        /// The offending vertex.
        vertex: Vertex,
    },
    /// The edge was already present; simple graphs have no parallel edges.
    DuplicateEdge {
        /// Canonical endpoints of the duplicated edge.
        u: Vertex,
        /// Canonical endpoints of the duplicated edge.
        v: Vertex,
    },
    /// The requested vertex count exceeds [`MAX_VERTICES`].
    ///
    /// Vertex ids are stored as `u32` with `u32::MAX` reserved as the
    /// engine-wide sentinel, so construction rejects oversized graphs
    /// instead of silently truncating ids.
    TooManyVertices {
        /// The requested vertex count.
        n: usize,
    },
    /// Adding the edge would exceed [`MAX_EDGES`].
    ///
    /// Edge ids and CSR offsets are stored as `u32` (each edge occupies two
    /// adjacency slots), so the edge count is capped rather than truncated.
    TooManyEdges {
        /// The edge count the graph already holds.
        m: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::TooManyVertices { n } => {
                write!(f, "vertex count {n} exceeds the u32-id limit of {MAX_VERTICES}")
            }
            GraphError::TooManyEdges { m } => {
                write!(f, "edge count {m} has reached the u32-id limit of {MAX_EDGES}")
            }
        }
    }
}

impl Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// Validates each edge as it is added; [`GraphBuilder::build`] is infallible.
/// Edges are stored in `u32` form up front, so building never re-validates
/// or converts. The builder itself allocates proportionally to the *edges*
/// added, not to `n`, which is why [`GraphBuilder::try_new`] accepts any
/// `n <= MAX_VERTICES` without reserving memory.
///
/// # Examples
///
/// ```
/// use rsp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), rsp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
    seen: HashSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices with no edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyVertices`] if `n` exceeds
    /// [`MAX_VERTICES`], the largest vertex count representable with
    /// `u32` ids once the `u32::MAX` sentinel is reserved.
    pub fn try_new(n: usize) -> Result<Self, GraphError> {
        if n > MAX_VERTICES {
            return Err(GraphError::TooManyVertices { n });
        }
        Ok(GraphBuilder { n, edges: Vec::new(), seen: HashSet::new() })
    }

    /// Creates a builder for a graph on `n` vertices with no edges.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_VERTICES`]; use
    /// [`GraphBuilder::try_new`] to get a typed error instead.
    pub fn new(n: usize) -> Self {
        match Self::try_new(n) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of vertices of the graph under construction.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge; endpoint order is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops,
    /// duplicates, or when the edge count has reached [`MAX_EDGES`].
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        // In range (`< n <= MAX_VERTICES < u32::MAX`), so the casts are exact.
        let (u, v) = (u as u32, v as u32);
        let key = if u < v { (u, v) } else { (v, u) };
        if self.seen.contains(&key) {
            return Err(GraphError::DuplicateEdge { u: key.0 as usize, v: key.1 as usize });
        }
        if self.edges.len() >= MAX_EDGES {
            return Err(GraphError::TooManyEdges { m: self.edges.len() });
        }
        self.seen.insert(key);
        self.edges.push(key);
        Ok(())
    }

    /// Adds an edge if it is not already present, ignoring duplicates.
    ///
    /// Returns `true` if the edge was newly added.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops, or a
    /// full edge table.
    pub fn add_edge_dedup(&mut self, u: Vertex, v: Vertex) -> Result<bool, GraphError> {
        match self.add_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge { .. }) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Returns `true` iff the edge is already present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        let (u, v) = (u as u32, v as u32);
        let key = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Edge ids are assigned in insertion order.
    pub fn build(self) -> Graph {
        Graph::from_canonical_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(0, 2), Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn rejects_duplicate_both_orders() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.add_edge(1, 0), Err(GraphError::DuplicateEdge { u: 0, v: 1 }));
    }

    #[test]
    fn rejects_too_many_vertices() {
        // Builders hold no per-vertex state, so probing the limit is free.
        assert!(matches!(
            GraphBuilder::try_new(MAX_VERTICES + 1),
            Err(GraphError::TooManyVertices { n }) if n == MAX_VERTICES + 1
        ));
        assert!(GraphBuilder::try_new(MAX_VERTICES).is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds the u32-id limit")]
    fn new_panics_past_limit() {
        let _ = GraphBuilder::new(MAX_VERTICES + 1);
    }

    #[test]
    fn dedup_add() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge_dedup(0, 1).unwrap());
        assert!(!b.add_edge_dedup(1, 0).unwrap());
        assert_eq!(b.build().m(), 1);
    }

    #[test]
    fn edge_ids_in_insertion_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 2).unwrap();
        b.add_edge(0, 1).unwrap();
        let g = b.build();
        assert_eq!(g.endpoints(0), (2, 3));
        assert_eq!(g.endpoints(1), (0, 1));
    }

    #[test]
    fn has_edge_out_of_range_is_false() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        assert!(b.has_edge(1, 0));
        assert!(!b.has_edge(0, 99));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert_eq!(e.to_string(), "duplicate edge (1, 2)");
        let e = GraphError::TooManyVertices { n: usize::MAX };
        assert!(e.to_string().contains("u32-id limit"));
    }
}
