//! Journal durability: CRC-framed export/recover round trips,
//! checkpointed compaction, torn-tail tolerance, corruption detection,
//! bounded memory under bursty churn, and admission control.
//!
//! The contract under test (ISSUE 9, tentpole layers 1 and 3): recovery
//! from a checkpoint plus tail is **state-identical to genesis replay**
//! at every compaction point; a journal stream truncated at *any* byte
//! recovers cleanly to the surviving prefix; interior corruption is a
//! typed error, never a panic and never a silently wrong state; journal
//! memory stays `O(events since checkpoint)` under the bursty soak; and
//! ingestion past the pending cap sheds with typed backpressure.

use proptest::prelude::*;
use rsp_core::RandomGridAtw;
use rsp_graph::journal::{JournalCheckpoint, JournalFrame};
use rsp_graph::{generators, FaultEvent, FaultState, Graph};
use rsp_oracle::churn::inject::{
    flip_random_bit, random_trace, random_trace_with, truncate_random, verify_converged,
    TraceOptions,
};
use rsp_oracle::churn::{ChurnConfig, ChurnPipeline, IngestError};

type Scheme = rsp_core::ExactScheme<u128>;

fn scheme_for(g: &Graph, wseed: u64) -> Scheme {
    RandomGridAtw::theorem20(g, wseed).into_scheme()
}

fn config() -> ChurnConfig {
    ChurnConfig::default()
}

/// Two pipelines are "state-identical" for the recovery contract:
/// same fault state, same accepted sequence, and both publish
/// snapshots the exact engines agree with cell-for-cell.
fn assert_state_identical(a: &ChurnPipeline<u128>, b: &ChurnPipeline<u128>) {
    assert_eq!(a.fault_state(), b.fault_state(), "fault states diverge");
    assert_eq!(a.accepted_seq(), b.accepted_seq(), "accepted sequences diverge");
    assert_eq!(
        a.published_snapshot().base_faults(),
        b.published_snapshot().base_faults(),
        "published base faults diverge"
    );
    verify_converged(a).unwrap();
    verify_converged(b).unwrap();
}

// ---------------------------------------------------------------------
// Deterministic scenarios
// ---------------------------------------------------------------------

/// The basic durability loop: churn, checkpoint, compact, churn more,
/// export, crash, recover from bytes — identical to the writer, and
/// identical to a genesis replay of the full trace.
#[test]
fn export_recover_round_trip_with_compaction() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let trace = random_trace(&g, 40, 0xd00d);

    let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
    for (i, &ev) in trace.iter().enumerate() {
        live.ingest(ev).unwrap();
        if i == 24 {
            live.commit().unwrap();
            live.checkpoint();
            assert_eq!(live.compact(), 25);
            assert_eq!(live.journal().len(), 0, "compaction empties the tail");
            assert_eq!(live.journal_base_seq(), 25);
        }
    }
    live.commit().unwrap();
    assert_eq!(live.journal().len(), 15, "memory holds only the tail");
    assert_eq!(live.accepted_seq(), 40);

    let bytes = live.export_journal();
    let (recovered, report) = ChurnPipeline::recover(&scheme, &bytes, config()).unwrap();
    assert_eq!(report.checkpoint_seq, 25);
    assert_eq!(report.events, 15);
    assert_eq!(report.torn_tail_at, None);
    assert_state_identical(&live, &recovered);

    let genesis = ChurnPipeline::replay(&scheme, &trace, config()).unwrap();
    assert_state_identical(&genesis, &recovered);
}

/// A journal truncated at **every** byte offset recovers cleanly: the
/// torn tail is a recovery point, never an error and never a panic, and
/// the recovered state is exactly the fold of the frames that survived.
#[test]
fn every_truncation_point_recovers_the_surviving_prefix() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 7);
    let trace = random_trace(&g, 6, 0xbeef);

    let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
    // Frame boundaries: [0] after the checkpoint frame, then one per
    // tail event — recovered state at a boundary cut must equal the
    // writer's state at that point in the stream.
    live.ingest(trace[0]).unwrap();
    live.ingest(trace[1]).unwrap();
    live.commit().unwrap();
    live.checkpoint();
    live.compact();
    let mut boundaries = vec![(live.export_journal().len(), live.fault_state().clone())];
    for &ev in &trace[2..] {
        live.ingest(ev).unwrap();
        boundaries.push((live.export_journal().len(), live.fault_state().clone()));
    }
    let bytes = live.export_journal();

    for cut in 0..=bytes.len() {
        let (recovered, report) = ChurnPipeline::recover(&scheme, &bytes[..cut], config())
            .unwrap_or_else(|e| panic!("truncation at byte {cut} must recover cleanly, got {e}"));
        // The recovered fold equals the deepest boundary at or below
        // the cut (the empty genesis state when the cut is inside the
        // checkpoint frame itself).
        let expected: Option<&FaultState> =
            boundaries.iter().rev().find(|(at, _)| *at <= cut).map(|(_, state)| state);
        match expected {
            Some(state) => assert_eq!(recovered.fault_state(), state, "cut at byte {cut}"),
            None => assert!(recovered.fault_state().is_empty(), "cut at byte {cut}"),
        }
        if cut > 0 && cut < bytes.len() && !boundaries.iter().any(|(at, _)| *at == cut) {
            assert!(report.torn_tail_at.is_some(), "mid-frame cut at {cut} reports torn");
        }
        verify_converged(&recovered).unwrap();
    }
}

/// Seeded single-bit flips across the stream are **always detected**:
/// either a typed decode error (the CRC catches the damage — detection,
/// not luck) or — when the flip hits a length prefix and inflates it
/// past end-of-stream, the codec's documented masquerade — a torn-tail
/// recovery of a strict, *correct* prefix of the history. Never a
/// panic, never a silently wrong state, never an invented event.
#[test]
fn bit_flips_are_always_detected_never_served() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 11);
    let trace = random_trace(&g, 8, 0xfeed);

    let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
    for &ev in &trace[..4] {
        live.ingest(ev).unwrap();
    }
    live.commit().unwrap();
    live.checkpoint();
    live.compact();
    let last_frame_start = live.export_journal().len();
    for &ev in &trace[4..] {
        live.ingest(ev).unwrap();
    }
    let pristine = live.export_journal();
    let last_frame_start = {
        // Start of the final event frame: total minus one event frame
        // (all event frames have equal length).
        let event_len = (pristine.len() - last_frame_start) / (trace.len() - 4);
        pristine.len() - event_len
    };

    let genesis = ChurnPipeline::replay(&scheme, &trace, config()).unwrap();
    let mut interior_rejections = 0;
    for seed in 0..128u64 {
        let mut bytes = pristine.clone();
        let at = flip_random_bit(&mut bytes, seed).unwrap();
        match ChurnPipeline::recover(&scheme, &bytes, config()) {
            Ok((recovered, report)) => {
                assert!(
                    report.torn_tail_at.is_some(),
                    "flip at byte {at} (seed {seed}): Ok recovery must report a torn tail"
                );
                // The recovered state is a strict, correct prefix of
                // the real history — nothing invented, nothing served
                // from the damaged frames.
                let k = recovered.accepted_seq() as usize;
                assert!(
                    k < genesis.accepted_seq() as usize,
                    "flip at byte {at} (seed {seed}): a flip must cost at least one frame"
                );
                let mut prefix = FaultState::for_graph(&g);
                for &ev in &trace[..k] {
                    prefix.apply(ev).unwrap();
                }
                assert_eq!(recovered.fault_state(), &prefix, "seed {seed}");
                verify_converged(&recovered).unwrap();
            }
            Err(_) => {
                if at < last_frame_start {
                    interior_rejections += 1;
                }
            }
        }
    }
    assert!(interior_rejections > 0, "the seeds must exercise interior CRC rejections");
}

/// Seeded truncation probe (the injector helper, as used by the CI
/// suite): whatever survives, recovery is clean and convergent.
#[test]
fn random_truncation_recovers_cleanly() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 5);
    let trace = random_trace(&g, 10, 0xcafe);
    let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
    for &ev in &trace {
        live.ingest(ev).unwrap();
    }
    live.commit().unwrap();
    let pristine = live.export_journal();

    for seed in 0..32u64 {
        let mut bytes = pristine.clone();
        let kept = truncate_random(&mut bytes, seed);
        assert!(kept < pristine.len(), "truncate_random always drops bytes");
        let (recovered, _) = ChurnPipeline::recover(&scheme, &bytes, config()).unwrap();
        verify_converged(&recovered).unwrap();
    }
}

/// The bounded-memory soak: a long bursty trace processed in
/// checkpoint/compact windows never holds more than one window of
/// events in memory, and the final state still round-trips through
/// export/recover.
#[test]
fn bursty_soak_keeps_journal_memory_bounded() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let opts = TraceOptions { burst: 0.5, max_faults: Some(6), ..TraceOptions::default() };
    let trace = random_trace_with(&g, 384, 0xabad, opts);
    const WINDOW: usize = 16;

    let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
    for chunk in trace.chunks(WINDOW) {
        for &ev in chunk {
            live.ingest(ev).unwrap();
            assert!(live.journal().len() <= WINDOW, "tail bounded by the window");
        }
        live.commit().unwrap();
        live.checkpoint();
        live.compact();
        let health = live.health();
        assert_eq!(health.journal_tail_len, 0, "compaction empties the tail");
        assert_eq!(health.compacted_seq, health.accepted_seq);
    }
    assert_eq!(live.accepted_seq(), trace.len() as u64);
    verify_converged(&live).unwrap();

    let bytes = live.export_journal();
    let (recovered, report) = ChurnPipeline::recover(&scheme, &bytes, config()).unwrap();
    assert_eq!(report.checkpoint_seq, trace.len() as u64);
    assert_state_identical(&live, &recovered);
}

/// Admission control: past [`ChurnConfig::max_pending_events`] pending
/// (journaled-but-uncommitted) events, ingestion sheds with typed
/// backpressure — bounded state behind a stalled builder — and resumes
/// once a commit drains the backlog. Recovery replays are exempt.
#[test]
fn backpressure_sheds_past_the_pending_cap() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 3);
    let trace = random_trace(&g, 8, 0x5eed);
    let cfg = ChurnConfig { max_pending_events: 4, ..ChurnConfig::default() };

    let mut pipeline = ChurnPipeline::with_config(&scheme, cfg.clone()).unwrap();
    for &ev in &trace[..4] {
        pipeline.ingest(ev).unwrap();
    }
    // The 5th is shed — typed, counted, and not journaled.
    let err = pipeline.ingest(trace[4]).unwrap_err();
    assert_eq!(err.code(), "backpressure");
    match &err {
        IngestError::Backpressure(bp) => {
            assert_eq!(bp.pending, 4);
            assert_eq!(bp.cap, 4);
        }
        other => panic!("expected backpressure, got {other}"),
    }
    assert_eq!(pipeline.journal().len(), 4);
    let health = pipeline.health();
    assert_eq!(health.shed_events, 1);
    assert_eq!(health.pending_events, 4);

    // Draining the backlog reopens admission.
    pipeline.commit().unwrap();
    pipeline.ingest(trace[4]).unwrap();
    pipeline.commit().unwrap();
    verify_converged(&pipeline).unwrap();

    // A recovery replay of a journal *longer* than the cap is never
    // shed: the cap guards live traffic, not accepted history.
    let long = random_trace(&g, 12, 0x1dea);
    let replayed = ChurnPipeline::replay(&scheme, &long, cfg).unwrap();
    assert_eq!(replayed.accepted_seq(), 12);
    assert_eq!(replayed.health().shed_events, 0);
}

/// The quarantine log is bounded: only the most recent
/// [`ChurnConfig::max_quarantine_log`] entries are retained, while the
/// total count keeps the full tally.
#[test]
fn quarantine_log_is_bounded() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 9);
    let cfg = ChurnConfig { max_quarantine_log: 2, ..ChurnConfig::default() };
    let mut pipeline = ChurnPipeline::with_config(&scheme, cfg).unwrap();
    for _ in 0..5 {
        // Repairing a never-faulted edge is always quarantined.
        assert!(pipeline.ingest(FaultEvent::Repair(0)).is_err());
    }
    assert_eq!(pipeline.quarantined().len(), 2, "log keeps only the cap");
    assert_eq!(pipeline.health().quarantined_total, 5, "the tally keeps everything");
}

/// Checkpoint frames themselves are validated on decode: a checkpoint
/// for the wrong graph is a typed replay error, never a panic.
#[test]
fn checkpoint_for_the_wrong_graph_is_refused() {
    let g_small = generators::grid(3, 3);
    let g_big = generators::grid(4, 4);
    let scheme_small = scheme_for(&g_small, 1);
    let scheme_big = scheme_for(&g_big, 1);

    let mut writer = ChurnPipeline::with_config(&scheme_big, config()).unwrap();
    writer.ingest(FaultEvent::Arrive(0)).unwrap();
    writer.commit().unwrap();
    writer.checkpoint();
    writer.compact();
    let bytes = writer.export_journal();

    let err = ChurnPipeline::recover(&scheme_small, &bytes, config());
    assert!(err.is_err(), "a 4x4 checkpoint must not fold into a 3x3 pipeline");
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole equivalence: at **every compaction point** of a
    /// random bursty trace, recovery from the exported checkpoint+tail
    /// bytes is state-identical to a genesis replay of the full prefix.
    #[test]
    fn checkpoint_recovery_equals_genesis_replay(
        wseed in any::<u64>(),
        tseed in any::<u64>(),
        compact_every in 3usize..9,
    ) {
        let g = generators::grid(3, 3);
        let scheme = scheme_for(&g, wseed);
        let opts = TraceOptions { burst: 0.4, ..TraceOptions::default() };
        let trace = random_trace_with(&g, 24, tseed, opts);

        let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
        for (i, &ev) in trace.iter().enumerate() {
            live.ingest(ev).unwrap();
            if (i + 1) % compact_every == 0 {
                live.commit().unwrap();
                live.checkpoint();
                live.compact();
                prop_assert_eq!(live.journal().len(), 0);

                let bytes = live.export_journal();
                let (recovered, report) =
                    ChurnPipeline::recover(&scheme, &bytes, config()).unwrap();
                prop_assert_eq!(report.torn_tail_at, None);
                prop_assert_eq!(report.checkpoint_seq, i as u64 + 1);
                let genesis =
                    ChurnPipeline::replay(&scheme, &trace[..=i], config()).unwrap();
                prop_assert_eq!(recovered.fault_state(), genesis.fault_state());
                prop_assert_eq!(recovered.accepted_seq(), genesis.accepted_seq());
                verify_converged(&recovered).unwrap();
            }
        }
    }

    /// Arbitrary byte garbage spliced into (or appended to) a valid
    /// journal stream never panics: recovery is a clean torn-tail
    /// prefix or a typed error, nothing else.
    #[test]
    fn garbage_injection_never_panics(
        wseed in any::<u64>(),
        tseed in any::<u64>(),
        garbage in prop::collection::vec(any::<u8>(), 1..48),
        at_permille in 0usize..=1000,
    ) {
        let g = generators::grid(3, 3);
        let scheme = scheme_for(&g, wseed);
        let trace = random_trace(&g, 10, tseed);
        let mut live = ChurnPipeline::with_config(&scheme, config()).unwrap();
        for &ev in &trace[..5] {
            live.ingest(ev).unwrap();
        }
        live.commit().unwrap();
        live.checkpoint();
        live.compact();
        for &ev in &trace[5..] {
            live.ingest(ev).unwrap();
        }

        let mut bytes = live.export_journal();
        let at = (bytes.len() * at_permille / 1000).min(bytes.len());
        let _ = bytes.splice(at..at, garbage.iter().copied()).count();

        // A typed refusal (`Err`) is the other allowed outcome.
        if let Ok((recovered, _report)) = ChurnPipeline::recover(&scheme, &bytes, config()) {
            // Whatever prefix survived, it is internally consistent
            // and the published snapshot matches the engines on it.
            verify_converged(&recovered).unwrap();
            prop_assert!(recovered.accepted_seq() <= live.accepted_seq());
        }
    }

    /// Hand-built checkpoint frames round-trip through the codec and
    /// the pipeline: encode, decode, replay_from with an empty tail.
    #[test]
    fn checkpoint_frames_round_trip(
        wseed in any::<u64>(),
        seq in 1u64..1000,
        epoch in 1u64..1000,
        edges in prop::collection::vec(0usize..12, 0..6),
    ) {
        let g = generators::grid(3, 3); // 12 edges
        let scheme = scheme_for(&g, wseed);
        let mut state = FaultState::for_graph(&g);
        for &e in &edges {
            if !state.faults().contains(e) {
                state.apply(FaultEvent::Arrive(e)).unwrap();
            }
        }
        let ckpt = JournalCheckpoint { seq, epoch, state };
        let mut bytes = Vec::new();
        JournalFrame::Checkpoint(ckpt.clone()).encode_into(&mut bytes);
        let (recovered, report) = ChurnPipeline::recover(&scheme, &bytes, config()).unwrap();
        prop_assert_eq!(report.checkpoint_seq, seq);
        prop_assert_eq!(recovered.accepted_seq(), seq);
        prop_assert_eq!(recovered.fault_state(), &ckpt.state);
        verify_converged(&recovered).unwrap();
    }
}
