//! FT-BFS enumeration benchmarks: the sequential stability-driven
//! fault-set enumeration (`ft_sv_preserver`) versus the work-stealing
//! frontier engine (`ft_sv_preserver_frontier`) at worker counts 1, 2,
//! and 4.
//!
//! The workload is the Theorem 26 regime the frontier was built for:
//! `|S|` small and `f = 2`, where a single source's `O(n^f)` tree
//! enumeration dominates wall time and per-source fan-out
//! (`parallel_indexed` over sources, the pre-PR 5 axis) cannot help. The
//! `frontier_w1` row is the executor's inline path — its gap to
//! `sequential` is the pure bookkeeping overhead (sharded visited set +
//! per-item push/pop) — and `frontier_w2`/`frontier_w4` add worker
//! scaling on top. After the timed rows each group prints one clean
//! run's [`rsp_preserver::EnumerationStats`] per worker count — fault
//! sets enumerated / admitted (deduped) / duplicate discoveries /
//! stolen — so the enumeration's shape and the steal traffic are
//! measured, not inferred.
//!
//! On a single-core container the `frontier_w2`/`frontier_w4` rows are
//! thread-overhead floors, not speedups (see the `BENCH_5.json`
//! provenance line); re-run on multi-core hardware before citing
//! scaling numbers.
//!
//! Append results to the repo's `BENCH_<n>.json` trajectory with:
//!
//! ```sh
//! CRITERION_JSON_PATH="$PWD/BENCH_5.json" \
//!   cargo bench -p rsp_bench --bench ft_bfs
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::{generators, Vertex};
use rsp_preserver::{ft_sv_preserver, ft_sv_preserver_frontier};

/// One group: sequential vs frontier at 1/2/4 workers, then the stats.
fn bench_family(c: &mut Criterion, label: &str, n: usize, m: usize, sources: &[Vertex], f: usize) {
    let g = generators::connected_gnm(n, m, 42);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();

    let mut group = c.benchmark_group(label);
    group.bench_function("sequential", |b| {
        b.iter(|| ft_sv_preserver(&scheme, sources, f).edge_count())
    });
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("frontier_w{workers}"), |b| {
            b.iter(|| ft_sv_preserver_frontier(&scheme, sources, f, workers).0.edge_count())
        });
    }
    group.finish();

    // One clean (untimed) run per worker count so the printed stats
    // describe a single build. Enumerated/deduped are worker-count
    // invariant; only the steal traffic varies with scheduling.
    for workers in [1usize, 2, 4] {
        let (p, stats) = ft_sv_preserver_frontier(&scheme, sources, f, workers);
        println!(
            "{label}/frontier_w{workers} stats: {stats} ({} preserver edges of {})",
            p.edge_count(),
            g.m()
        );
    }
}

/// The motivating regime: ONE source, `f = 2` — before the frontier this
/// build was fully sequential regardless of the worker budget.
fn bench_single_source(c: &mut Criterion) {
    bench_family(c, "ft_bfs/u128_gnm28_56_f2_s1", 28, 56, &[0], 2);
}

/// A small source set still dominated by per-source enumeration: the
/// frontier shares one worker budget across sources *and* fault sets.
fn bench_multi_source(c: &mut Criterion) {
    bench_family(c, "ft_bfs/u128_gnm28_56_f2_s2", 28, 56, &[0, 14], 2);
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_single_source, bench_multi_source
}
criterion_main!(benches);
