//! MPLS-style path restoration — the application that motivated the
//! restoration lemma (Section 1 of Bodwin & Parter, after Afek et al.).
//!
//! An MPLS network forwards packets along pre-established label-switched
//! paths and can efficiently **concatenate** existing paths. When a link
//! fails, the ideal recovery does not recompute shortest paths: it splices
//! a replacement out of paths the routing tables already store.
//!
//! The paper's deployment sketch carries **two** routing tables for a
//! restorable scheme `π`:
//!
//! * the *forward* table routes `s → x` along `π(s, x)`;
//! * the *reverse* table routes `x → t` along `reverse(π(t, x))` — i.e.
//!   by walking **up** the tree of selected paths rooted at `t`.
//!
//! On failure, the control plane scans midpoints `x` and splices
//! `π(s, x) ∘ reverse(π(t, x))`. Theorem 2 guarantees a splice of exactly
//! replacement-shortest length always exists; with a non-restorable scheme
//! (the arbitrary BFS tables of a textbook router) the same procedure can
//! come up empty — that is Figure 1 as an operations incident.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`MplsNetwork`] | Section 1's deployment sketch (after Afek et al.) |
//! | [`DualTables`] | the forward + reverse routing tables of a restorable `π` |
//! | [`MplsNetwork::restore`] | Theorem 2 as a failover operation: splice `π(s, x) ∘ reverse(π(t, x))` |
//! | [`forward_packet`] | data-plane walk of the two tables |
//!
//! # Examples
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_mpls::MplsNetwork;
//! use rsp_graph::generators;
//!
//! let g = generators::petersen();
//! let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
//! let mut net = MplsNetwork::new(&scheme);
//! let lsp = net.establish(0, 6).unwrap();
//! let first_hop = net.lsp(lsp).unwrap().path().vertices()[1];
//! let failed = net.graph().edge_between(0, first_hop).unwrap();
//! net.fail_edge(failed);
//! let report = net.restore(lsp).unwrap();
//! assert_eq!(report.restored_path.hops() as u32, report.optimal_hops);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataplane;
mod failover;
mod table;

pub use dataplane::{forward_packet, ForwardOutcome};
pub use failover::{LspId, MplsError, MplsNetwork, RestorationReport};
pub use table::DualTables;
