//! E5 timing: fault-tolerant preserver construction (Theorems 26 and 31).

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::generators;
use rsp_preserver::{ft_bfs_structure, ft_subset_preserver};

fn bench_preserver(c: &mut Criterion) {
    let g = generators::connected_gnm(120, 360, 5);
    let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();

    c.bench_function("preserver/ft_bfs_f1_n120", |b| b.iter(|| ft_bfs_structure(&scheme, 0, 1)));

    let sources = [0, 40, 80];
    c.bench_function("preserver/subset_1ft_n120_s3", |b| {
        b.iter(|| ft_subset_preserver(&scheme, &sources, 1))
    });
    c.bench_function("preserver/subset_2ft_n120_s3", |b| {
        b.iter(|| ft_subset_preserver(&scheme, &sources, 2))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_preserver
}
criterion_main!(benches);
