//! Scrubber integrity: post-publication corruption is detected by
//! audit (not luck), quarantined rows serve correct answers through the
//! engine fallback, and the repair ladder heals — targeted repair
//! first, full-rebuild escalation second, degraded-but-correct serving
//! as the terminal state.
//!
//! The contract under test (ISSUE 9, tentpole layer 2): a cell flipped
//! in a *published* snapshot row — damage the commit-time cross-check
//! can no longer see — is never served silently and never a panic.

use proptest::prelude::*;
use rsp_core::{RandomGridAtw, Rpts};
use rsp_graph::{generators, FaultSet, Graph, SearchScratch};
use rsp_oracle::churn::inject::{corrupt_published_row, verify_converged, CellCorruption};
use rsp_oracle::churn::{ChurnConfig, ChurnPipeline};
use rsp_oracle::delta::{DeltaBuilder, DeltaError, DeltaUnsupported};
use rsp_oracle::scrub::{ScrubConfig, ScrubStage, Scrubber};
use rsp_oracle::Oracle;

type Scheme = rsp_core::ExactScheme<u128>;

fn scheme_for(g: &Graph, wseed: u64) -> Scheme {
    RandomGridAtw::theorem20(g, wseed).into_scheme()
}

/// A scrub budget that audits the whole snapshot in one tick.
fn full_sweep(n: usize) -> ScrubConfig {
    ScrubConfig { rows_per_tick: n }
}

/// Asserts the oracle's published snapshot answers source `s`
/// identically to a fresh engine run (every vertex: dist, parent,
/// cost), whatever path the query takes.
fn assert_source_correct(oracle: &Oracle<u128>, scheme: &Scheme, s: usize) {
    let g = scheme.graph();
    let mut reader = oracle.reader();
    let mut scratch = SearchScratch::with_capacity(g.n());
    let snap = oracle.snapshot();
    scheme.spt_into(s, snap.base_faults(), &mut scratch);
    let view = reader.query(s, &FaultSet::empty());
    for v in g.vertices() {
        assert_eq!(view.dist(v), scratch.hops(v), "dist({s}, {v})");
        assert_eq!(view.parent(v), scratch.parent(v), "parent({s}, {v})");
        assert_eq!(view.cost(v), scratch.cost(v), "cost({s}, {v})");
    }
}

// ---------------------------------------------------------------------
// Detection and the happy-path heal
// ---------------------------------------------------------------------

/// Every corruption kind — hop, parent, cost — is detected by a full
/// audit sweep, quarantined, and healed by targeted repair; afterwards
/// the snapshot is clean and the answers are engine-identical.
#[test]
fn every_corruption_kind_is_detected_and_healed() {
    for kind in [CellCorruption::Hop, CellCorruption::Parent, CellCorruption::Cost] {
        let g = generators::grid(4, 4);
        let scheme = scheme_for(&g, 42);
        let oracle = Oracle::build(&scheme);
        let epoch_before = oracle.epoch();

        let victim = corrupt_published_row(&oracle, 5, kind)
            .unwrap_or_else(|| panic!("{kind:?}: no corruptible cell"));
        assert!(victim < g.n());

        let mut scrubber = Scrubber::new(oracle.clone(), full_sweep(g.n()));
        let tick = scrubber.tick();
        assert_eq!(tick.rows_audited, g.n(), "{kind:?}");
        assert_eq!(tick.corrupt_rows, 1, "{kind:?}: the damaged row is found");
        assert_eq!(tick.healed_rows, 1, "{kind:?}: targeted repair heals it");
        assert!(!tick.escalated, "{kind:?}: no rebuild needed");
        assert!(tick.completed_pass, "{kind:?}");

        let health = scrubber.health();
        assert_eq!(health.corruptions_found, 1, "{kind:?}");
        assert_eq!(health.corruptions_healed, 1, "{kind:?}");
        assert_eq!(health.quarantined_now, 0, "{kind:?}: quarantine lifted");
        // Corruption publish + quarantine publish + heal publish.
        assert_eq!(oracle.epoch(), epoch_before + 3, "{kind:?}");

        assert_source_correct(&oracle, &scheme, 5);
        // A second sweep confirms the heal stuck.
        let tick = scrubber.tick();
        assert_eq!(tick.corrupt_rows, 0, "{kind:?}: clean after heal");
    }
}

/// Untouched rows keep their storage across quarantine and targeted
/// repair — the heal is a patch, not a silent rebuild.
#[test]
fn targeted_repair_preserves_untouched_row_storage() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let oracle = Oracle::build(&scheme);
    let before = oracle.snapshot();

    corrupt_published_row(&oracle, 5, CellCorruption::Hop).unwrap();
    let mut scrubber = Scrubber::new(oracle.clone(), full_sweep(g.n()));
    let tick = scrubber.tick();
    assert_eq!(tick.healed_rows, 1);

    let after = oracle.snapshot();
    for s in g.vertices() {
        if s == 5 {
            assert!(!after.shares_row_storage(&before, s), "the healed row is a fresh allocation");
        } else {
            assert!(
                after.shares_row_storage(&before, s),
                "row {s} untouched by the heal keeps its storage"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The quarantine fence and the repair ladder
// ---------------------------------------------------------------------

/// With every repair rung sabotaged, the quarantined snapshot stays
/// published: the damaged source answers **correctly** through the
/// engine fallback (slow path), every other source keeps its fast
/// path, and nothing panics. Degraded, never wrong.
#[test]
fn failed_heal_serves_quarantined_rows_correctly_via_fallback() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let oracle = Oracle::build(&scheme);

    corrupt_published_row(&oracle, 5, CellCorruption::Hop).unwrap();
    let mut scrubber = Scrubber::new(oracle.clone(), full_sweep(g.n()));
    scrubber.set_probe(Some(Box::new(|_stage| true))); // sabotage everything
    let tick = scrubber.tick();
    assert_eq!(tick.corrupt_rows, 1);
    assert_eq!(tick.healed_rows, 0);
    assert!(tick.escalated, "the ladder tried the rebuild rung");

    let snap = oracle.snapshot();
    assert!(snap.is_quarantined(5), "the damaged row is fenced");
    assert_eq!(snap.quarantined_rows(), 1);
    assert_eq!(scrubber.health().quarantined_now, 1);

    // The quarantined source answers through the engine — correct.
    let mut reader = oracle.reader();
    let view = reader.query(5, &FaultSet::empty());
    assert!(!view.from_baseline(), "quarantined rows never serve the flat arrays");
    assert_source_correct(&oracle, &scheme, 5);
    // Other sources keep the zero-traversal fast path.
    let view = reader.query(0, &FaultSet::empty());
    assert!(view.from_baseline());
}

/// Sabotaging only the targeted repair escalates to the full rebuild,
/// which heals (and the escalation is counted).
#[test]
fn targeted_repair_failure_escalates_to_full_rebuild() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let oracle = Oracle::build(&scheme);

    corrupt_published_row(&oracle, 3, CellCorruption::Parent).unwrap();
    let mut scrubber = Scrubber::new(oracle.clone(), full_sweep(g.n()));
    scrubber.set_probe(Some(Box::new(|stage| stage == ScrubStage::TargetedRepair)));
    let tick = scrubber.tick();
    assert_eq!(tick.corrupt_rows, 1);
    assert!(tick.escalated);
    assert_eq!(tick.healed_rows, 1, "the rebuild rung heals");

    let health = scrubber.health();
    assert_eq!(health.escalations, 1);
    assert_eq!(health.quarantined_now, 0);
    assert_source_correct(&oracle, &scheme, 3);
}

/// A heal that fails this tick is retried next tick — quarantined rows
/// are audited first, ahead of the cursor's budget — and succeeds once
/// the sabotage stops.
#[test]
fn failed_heal_is_retried_and_recovers_next_tick() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let oracle = Oracle::build(&scheme);

    corrupt_published_row(&oracle, 9, CellCorruption::Cost).unwrap();
    // Tiny budget: the cursor alone would take 8 ticks to reach row 9,
    // but quarantine retries jump the queue.
    let mut scrubber = Scrubber::new(oracle.clone(), ScrubConfig { rows_per_tick: 2 });
    let mut sabotage_left = 2; // both rungs of tick N fail
    scrubber.set_probe(Some(Box::new(move |_stage| {
        if sabotage_left > 0 {
            sabotage_left -= 1;
            true
        } else {
            false
        }
    })));

    // Tick until the corruption is first detected (cursor sweep).
    let mut detected_tick = None;
    for i in 0..8 {
        let tick = scrubber.tick();
        if tick.corrupt_rows > 0 {
            detected_tick = Some((i, tick));
            break;
        }
    }
    let (_, tick) = detected_tick.expect("the sweep must reach the damaged row");
    assert_eq!(tick.healed_rows, 0, "the sabotaged ladder fails this tick");
    assert_eq!(oracle.snapshot().quarantined_rows(), 1);

    // Next tick: the quarantined row is retried first and heals.
    let tick = scrubber.tick();
    assert_eq!(tick.corrupt_rows, 1, "the still-corrupt row is re-audited");
    assert_eq!(tick.healed_rows, 1, "the un-sabotaged ladder heals");
    assert_eq!(oracle.snapshot().quarantined_rows(), 0);
    assert_source_correct(&oracle, &scheme, 9);
}

/// Pass accounting: a budget of 3 over 16 sources completes a sweep on
/// the 6th tick, and audits every source at least once per pass.
#[test]
fn scrub_passes_cover_every_source() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let oracle = Oracle::build(&scheme);
    let mut scrubber = Scrubber::new(oracle, ScrubConfig { rows_per_tick: 3 });
    for i in 0..6 {
        let tick = scrubber.tick();
        assert_eq!(tick.completed_pass, i == 5, "tick {i}");
    }
    let health = scrubber.health();
    assert_eq!(health.complete_passes, 1);
    assert_eq!(health.rows_audited, 18);
    assert_eq!(health.corruptions_found, 0);
}

// ---------------------------------------------------------------------
// Interaction with the delta builder and the churn pipeline
// ---------------------------------------------------------------------

/// A delta patch refuses a quarantined predecessor — patching from
/// known-corrupt rows would propagate the corruption — with a typed
/// refusal the churn pipeline answers by full rebuild.
#[test]
fn delta_refuses_quarantined_predecessor() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let oracle = Oracle::build(&scheme);

    corrupt_published_row(&oracle, 5, CellCorruption::Hop).unwrap();
    let mut scrubber = Scrubber::new(oracle.clone(), full_sweep(g.n()));
    scrubber.set_probe(Some(Box::new(|_| true))); // leave it quarantined
    scrubber.tick();
    let quarantined = oracle.snapshot();
    assert_eq!(quarantined.quarantined_rows(), 1);

    let err = DeltaBuilder::new(&quarantined).build(&FaultSet::single(0)).unwrap_err();
    assert_eq!(
        err,
        DeltaError::Unsupported(DeltaUnsupported::QuarantinedRows { rows: 1 }),
        "the refusal is typed and names the damage"
    );
}

/// End-to-end with the churn pipeline: corruption strikes the published
/// snapshot, the scrubber quarantines it (heal sabotaged), and the next
/// churn commit falls back from delta to a full rebuild — which clears
/// the quarantine and converges. The fallback reason is recorded.
#[test]
fn churn_commit_after_quarantine_rebuilds_and_clears() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, ChurnConfig::default()).unwrap();
    pipeline.ingest(rsp_graph::FaultEvent::Arrive(0)).unwrap();
    pipeline.commit().unwrap();
    assert!(pipeline.health().delta_commits >= 1 || pipeline.health().commits >= 1);

    // Post-publication damage + a failed heal: quarantine stays up.
    corrupt_published_row(pipeline.oracle(), 5, CellCorruption::Hop).unwrap();
    let mut scrubber = Scrubber::new(pipeline.oracle().clone(), full_sweep(g.n()));
    scrubber.set_probe(Some(Box::new(|_| true)));
    scrubber.tick();
    assert_eq!(pipeline.published_snapshot().quarantined_rows(), 1);

    // The next commit cannot delta-patch the fenced snapshot: it falls
    // back to the full rebuild, which recomputes every row and lifts
    // the quarantine.
    pipeline.ingest(rsp_graph::FaultEvent::Arrive(5)).unwrap();
    pipeline.commit().unwrap();
    let snap = pipeline.published_snapshot();
    assert_eq!(snap.quarantined_rows(), 0, "the rebuild clears the fence");
    let health = pipeline.health();
    assert!(
        health.last_delta_fallback.as_deref().is_some_and(|r| r.contains("quarantined")),
        "the fallback reason names the quarantine: {:?}",
        health.last_delta_fallback
    );
    verify_converged(&pipeline).unwrap();

    // And a clean scrub pass confirms the rebuilt snapshot.
    let mut scrubber = Scrubber::new(pipeline.oracle().clone(), full_sweep(g.n()));
    let tick = scrubber.tick();
    assert_eq!(tick.corrupt_rows, 0);
}

// ---------------------------------------------------------------------
// Property test
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever cell is flipped, wherever, under whatever weights: one
    /// full-budget tick detects and heals it, and the served answers
    /// for the damaged source are engine-identical afterwards.
    #[test]
    fn any_flipped_cell_is_caught_and_healed(
        wseed in any::<u64>(),
        source in 0usize..9,
        kind_ix in 0usize..3,
    ) {
        let kind = [CellCorruption::Hop, CellCorruption::Parent, CellCorruption::Cost][kind_ix];
        let g = generators::grid(3, 3);
        let scheme = scheme_for(&g, wseed);
        let oracle = Oracle::build(&scheme);

        let victim = corrupt_published_row(&oracle, source, kind);
        prop_assert!(victim.is_some(), "a grid row always has a corruptible cell");

        let mut scrubber = Scrubber::new(oracle.clone(), full_sweep(g.n()));
        let tick = scrubber.tick();
        prop_assert_eq!(tick.corrupt_rows, 1);
        prop_assert_eq!(tick.healed_rows, 1);
        prop_assert_eq!(oracle.snapshot().quarantined_rows(), 0);
        assert_source_correct(&oracle, &scheme, source);
        let tick = scrubber.tick();
        prop_assert_eq!(tick.corrupt_rows, 0, "clean after the heal");
    }
}
