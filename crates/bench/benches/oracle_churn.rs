//! Churn control-plane benchmarks: fault-event ingestion throughput,
//! commit latency for both build arms (from-scratch rebuild vs. delta
//! patch), and the full injection-convergence cycle.
//!
//! Four regimes, mirroring `rsp_oracle::churn`'s contract:
//!
//! * `ingest_events_hostile` — wire-frame ingestion through decode →
//!   validate → journal/quarantine, fed the seeded hostile mix (drops,
//!   duplicates, reorders, corruptions). One iteration ingests the whole
//!   pre-perturbed frame batch, so events/sec is
//!   `FRAMES / mean`; the untimed events/sec line after the timed rows
//!   reports it directly, with the accept/quarantine split.
//! * `commit_rebuild` — one pending event, one commit on a pipeline
//!   with `delta_enabled: false`: full snapshot recompilation under
//!   `catch_unwind`, the 4-source batch-engine cross-check, and the
//!   epoch swap. The PR 7 baseline cost per published epoch.
//! * `commit_delta` — the same single-fault epoch on a delta-enabled
//!   pipeline: the `DeltaBuilder` patches the published snapshot
//!   (detached-subtree reattach / decrease wave, untouched rows shared
//!   copy-on-write), gated by the identical cross-check. The
//!   `commit_long_trace_*` rows replay a bursty multi-fault trace and
//!   its inverse (repairs ↔ arrivals, reversed) so every iteration
//!   lands back on the initial state — long patch-of-patch chains, one
//!   commit per event.
//! * `injection_convergence` — the end-to-end harness cycle on a
//!   smaller grid: perturb a valid trace, ingest every delivered frame,
//!   commit, and verify full convergence (published snapshot equal to a
//!   fresh engine run on the accepted fault state, every cell).
//! * `recover_genesis` vs `recover_checkpoint` — restart cost from a
//!   durable journal byte stream: the genesis stream re-validates every
//!   accepted event of a long trace, the compacted stream folds one
//!   checkpoint frame and replays only the short tail. Both land on the
//!   identical state (asserted untimed after the rows); the gap is what
//!   `ChurnPipeline::checkpoint`/`compact` buy a long deployment at
//!   restart.
//! * `scrub_tick_clean` — one budgeted audit tick of the background
//!   integrity scrubber on a clean snapshot (the steady-state overhead:
//!   a `dijkstra_batch` over `rows_per_tick` sources, zero publishes).
//!   An untimed `serve_scrub_off` / `serve_scrub_on` pair then reports
//!   reader p50/p99 query latency with a scrubber thread hammering
//!   audits concurrently — the contention cost of continuous scrubbing.
//!
//! After the timed rows the bench prints the delta-vs-rebuild commit
//! split from `ChurnHealth` (delta commits, fallbacks, last fallback
//! reason), so a silently degraded delta arm is visible in the log.
//!
//! Append results to the repo's `BENCH_<n>.json` trajectory with:
//!
//! ```sh
//! CRITERION_JSON_PATH="$PWD/BENCH_9.json" \
//!   cargo bench -p rsp_bench --bench oracle_churn
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::{ExactScheme, RandomGridAtw};
use rsp_graph::{generators, FaultEvent, FaultSet, Graph};
use rsp_oracle::churn::inject::{
    random_trace, random_trace_with, verify_converged, InjectionPlan, StreamInjector, TraceOptions,
};
use rsp_oracle::churn::{ChurnConfig, ChurnPipeline};
use rsp_oracle::scrub::{ScrubConfig, Scrubber};
use rsp_oracle::Oracle;

/// Events in the hostile ingestion batch (before drops/duplicates).
const TRACE_LEN: usize = 512;

/// Events in the long-trace commit chains (each iteration replays the
/// trace plus its inverse: `2 × LONG_TRACE` single-event commits).
const LONG_TRACE: usize = 32;

fn rebuild_config() -> ChurnConfig {
    ChurnConfig { delta_enabled: false, ..ChurnConfig::default() }
}

/// The inverse of a valid trace: reversed, arrivals and repairs
/// swapped. Replaying `trace` then `inverse(trace)` returns the fault
/// state to where it started — the trick that lets a long-trace bench
/// iterate without unbounded state drift.
fn inverse(trace: &[FaultEvent]) -> Vec<FaultEvent> {
    trace
        .iter()
        .rev()
        .map(|ev| match *ev {
            FaultEvent::Arrive(e) => FaultEvent::Repair(e),
            FaultEvent::Repair(e) => FaultEvent::Arrive(e),
        })
        .collect()
}

/// The single-fault epoch loop shared by the `commit_rebuild` /
/// `commit_delta` rows: toggle edge 0, commit, return the epoch.
fn toggle_commit(pipeline: &mut ChurnPipeline<u128>, expect_delta: bool) -> u64 {
    let ev = if pipeline.fault_state().faults().contains(0) {
        FaultEvent::Repair(0)
    } else {
        FaultEvent::Arrive(0)
    };
    pipeline.ingest(ev).expect("toggle event is always admissible");
    let report = pipeline.commit().expect("healthy commit publishes");
    assert_eq!(report.delta, expect_delta, "wrong build arm served this epoch");
    report.epoch
}

/// One commit per event over `trace` then its inverse; asserts the
/// delta arm actually served (fallbacks are allowed, silent wholesale
/// degradation is not — checked by the caller via `ChurnHealth`).
fn replay_long_trace(
    pipeline: &mut ChurnPipeline<u128>,
    trace: &[FaultEvent],
    back: &[FaultEvent],
) {
    for &ev in trace.iter().chain(back) {
        pipeline.ingest(ev).expect("long trace events are admissible in order");
        pipeline.commit().expect("healthy commit publishes");
    }
}

fn commit_rows(c: &mut Criterion, group_name: &str, g: &Graph, scheme: &ExactScheme<u128>) {
    let mut rebuild = ChurnPipeline::with_config(scheme, rebuild_config()).expect("initial build");
    let mut delta = ChurnPipeline::new(scheme).expect("initial build");
    rebuild.set_sleeper(|_| {});
    delta.set_sleeper(|_| {});

    let long = random_trace_with(
        g,
        LONG_TRACE,
        0x1076_0001,
        TraceOptions { burst: 0.25, max_faults: Some(4), ..TraceOptions::default() },
    );
    let back = inverse(&long);

    let mut group = c.benchmark_group(group_name);
    group.bench_function("commit_rebuild", |b| b.iter(|| toggle_commit(&mut rebuild, false)));
    group.bench_function("commit_delta", |b| b.iter(|| toggle_commit(&mut delta, true)));
    group.bench_function("commit_long_trace_rebuild", |b| {
        b.iter(|| replay_long_trace(&mut rebuild, &long, &back))
    });
    group.bench_function("commit_long_trace_delta", |b| {
        b.iter(|| replay_long_trace(&mut delta, &long, &back))
    });
    group.finish();

    // The delta-vs-rebuild split: proof in the log that the delta arm
    // served deltas instead of silently falling back to rebuilds.
    let dh = delta.health();
    let rh = rebuild.health();
    println!(
        "{group_name} build arms: delta pipeline {} delta of {} commits ({} fallbacks, last: {}); \
         rebuild pipeline {} delta of {} commits",
        dh.delta_commits,
        dh.commits,
        dh.delta_fallbacks,
        dh.last_delta_fallback.as_deref().unwrap_or("none"),
        rh.delta_commits,
        rh.commits,
    );
    assert_eq!(rh.delta_commits, 0, "rebuild-only arm must never delta");
    assert!(
        dh.delta_commits * 10 >= dh.commits * 9,
        "delta arm degraded to rebuilds: {} of {} ({:?})",
        dh.delta_commits,
        dh.commits,
        dh.last_delta_fallback
    );
}

fn bench_ingest(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let mut pipeline = ChurnPipeline::new(&scheme).expect("fault-free build succeeds");
    pipeline.set_sleeper(|_| {}); // benches never sleep through backoff

    let trace = random_trace(&g, TRACE_LEN, 0x1057);
    let frames = StreamInjector::new(InjectionPlan::hostile(0x1057)).perturb(&trace);
    println!(
        "oracle_churn/u128_grid16x16 hostile batch: {} events -> {} delivered frames",
        TRACE_LEN,
        frames.len()
    );

    let mut group = c.benchmark_group("oracle_churn/u128_grid16x16");
    group.bench_function("ingest_events_hostile", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for frame in &frames {
                accepted += usize::from(pipeline.ingest_wire(frame).is_ok());
            }
            accepted
        })
    });
    group.finish();

    // Untimed events/sec measurement on a fresh pipeline (warm caches,
    // no accumulated quarantine): the operational throughput number.
    let mut fresh = ChurnPipeline::new(&scheme).expect("fault-free build succeeds");
    fresh.set_sleeper(|_| {});
    let t0 = Instant::now();
    for frame in &frames {
        let _ = fresh.ingest_wire(frame);
    }
    let secs = t0.elapsed().as_secs_f64();
    let health = fresh.health();
    println!(
        "oracle_churn/u128_grid16x16 ingest: {:.0} events/sec \
         ({} accepted, {} quarantined of {} frames)",
        frames.len() as f64 / secs,
        health.accepted_seq,
        health.quarantined_total,
        frames.len()
    );
}

fn bench_commit_grid(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    commit_rows(c, "oracle_churn/u128_grid16x16", &g, &scheme);
}

fn bench_commit_gnm(c: &mut Criterion) {
    // Dense G(n, m): 256 vertices, 2048 edges (mean degree 16) — swap
    // candidates everywhere, the delta builder's worst friend.
    let g = generators::connected_gnm(256, 2048, 0xd5e1);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    commit_rows(c, "oracle_churn/u128_gnm256x2048", &g, &scheme);
}

fn bench_injection_convergence(c: &mut Criterion) {
    let g = generators::grid(8, 8);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let mut pipeline = ChurnPipeline::new(&scheme).expect("fault-free build succeeds");
    pipeline.set_sleeper(|_| {});
    let trace = random_trace(&g, 96, 0xc0ff_ee00);
    let mut injector = StreamInjector::new(InjectionPlan::hostile(0xc0ff_ee00));

    let mut group = c.benchmark_group("oracle_churn/u128_grid8x8");
    group.bench_function("injection_convergence", |b| {
        b.iter(|| {
            for frame in injector.perturb(&trace) {
                let _ = pipeline.ingest_wire(&frame);
            }
            pipeline.commit().expect("hostile wire input never stalls a healthy builder");
            verify_converged(&pipeline).expect("published snapshot matches the engines");
        })
    });
    group.finish();

    let health = pipeline.health();
    println!(
        "oracle_churn/u128_grid8x8 injection-convergence: {} commits ({} delta, {} fallbacks), \
         {} events accepted, {} quarantined, {} full rebuilds, converged=yes",
        health.commits,
        health.delta_commits,
        health.delta_fallbacks,
        health.accepted_seq,
        health.quarantined_total,
        health.full_rebuilds
    );
}

/// Accepted events in the long recovery trace (the compacted prefix).
/// Sized so genesis replay cost dominates the one-time snapshot build
/// a recovery ends with — the regime a long-lived deployment restarts
/// in, and the gap checkpointed compaction exists to close.
const RECOVERY_TRACE: usize = 262_144;
/// Events accepted after the checkpoint (the journal tail).
const RECOVERY_TAIL: usize = 64;

fn bench_recovery(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let trace = random_trace_with(
        &g,
        RECOVERY_TRACE + RECOVERY_TAIL,
        0x1090_0001,
        TraceOptions { burst: 0.25, max_faults: Some(8), ..TraceOptions::default() },
    );

    // Two pipelines accept the identical history; one checkpoints and
    // compacts before the tail, the other keeps genesis event frames.
    // The admission cap is raised past the trace: this bench measures
    // restart cost of a long *accepted* history, not live shedding.
    let cfg = ChurnConfig {
        max_pending_events: RECOVERY_TRACE + RECOVERY_TAIL,
        ..ChurnConfig::default()
    };
    let mut genesis =
        ChurnPipeline::with_config(&scheme, cfg.clone()).expect("fault-free build succeeds");
    let mut compacted =
        ChurnPipeline::with_config(&scheme, cfg).expect("fault-free build succeeds");
    genesis.set_sleeper(|_| {});
    compacted.set_sleeper(|_| {});
    for (i, &ev) in trace.iter().enumerate() {
        genesis.ingest(ev).expect("valid trace events are admissible");
        compacted.ingest(ev).expect("valid trace events are admissible");
        if i + 1 == RECOVERY_TRACE {
            compacted.checkpoint();
            compacted.compact();
        }
    }
    genesis.commit().expect("healthy commit publishes");
    compacted.commit().expect("healthy commit publishes");
    let genesis_bytes = genesis.export_journal();
    let checkpoint_bytes = compacted.export_journal();

    let mut group = c.benchmark_group("oracle_churn/u128_grid16x16");
    group.bench_function("recover_genesis", |b| {
        b.iter(|| {
            let (p, _) = ChurnPipeline::recover(&scheme, &genesis_bytes, ChurnConfig::default())
                .expect("a pristine genesis journal recovers");
            p.accepted_seq()
        })
    });
    group.bench_function("recover_checkpoint", |b| {
        b.iter(|| {
            let (p, _) = ChurnPipeline::recover(&scheme, &checkpoint_bytes, ChurnConfig::default())
                .expect("a pristine checkpoint journal recovers");
            p.accepted_seq()
        })
    });
    group.finish();

    // Untimed equivalence proof: both streams recover the same state.
    let (a, ra) = ChurnPipeline::recover(&scheme, &genesis_bytes, ChurnConfig::default())
        .expect("a pristine genesis journal recovers");
    let (b, rb) = ChurnPipeline::recover(&scheme, &checkpoint_bytes, ChurnConfig::default())
        .expect("a pristine checkpoint journal recovers");
    assert_eq!(a.fault_state(), b.fault_state(), "recovery paths must agree");
    assert_eq!(a.accepted_seq(), b.accepted_seq(), "recovery paths must agree");
    println!(
        "oracle_churn/u128_grid16x16 recovery: genesis {} bytes / {} events vs \
         checkpoint {} bytes (checkpoint seq {}, {} tail events), states identical",
        genesis_bytes.len(),
        ra.events,
        checkpoint_bytes.len(),
        rb.checkpoint_seq,
        rb.events,
    );
}

/// Reader queries in each untimed scrub-overhead measurement.
const SCRUB_QUERIES: usize = 20_000;

fn bench_scrub(c: &mut Criterion) {
    let g = generators::grid(16, 16);
    let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    let oracle = Oracle::build(&scheme);

    let mut scrubber = Scrubber::new(oracle.clone(), ScrubConfig::default());
    let mut group = c.benchmark_group("oracle_churn/u128_grid16x16");
    group.bench_function("scrub_tick_clean", |b| b.iter(|| scrubber.tick().rows_audited));
    group.finish();

    let faults = FaultSet::empty();
    let measure = |oracle: &Oracle<u128>| -> Vec<u64> {
        let mut reader = oracle.reader();
        let mut lat = Vec::with_capacity(SCRUB_QUERIES);
        for i in 0..SCRUB_QUERIES {
            let s = i % g.n();
            let t = (s * 97 + 13) % g.n();
            let t0 = Instant::now();
            let d = reader.dist(s, t, &faults);
            lat.push(t0.elapsed().as_nanos() as u64);
            assert!(s == t || d.is_some(), "grid queries always reach");
        }
        lat.sort_unstable();
        lat
    };
    let pick = |lat: &[u64], p: f64| lat[((lat.len() - 1) as f64 * p) as usize];

    let off = measure(&oracle);
    println!(
        "oracle_churn/u128_grid16x16 serve_scrub_off: p50={}ns p99={}ns ({} queries)",
        pick(&off, 0.50),
        pick(&off, 0.99),
        SCRUB_QUERIES,
    );

    // Same measurement with a scrubber thread auditing continuously —
    // the reader pays only CPU contention, never a lock (clean ticks
    // publish nothing).
    let stop = AtomicBool::new(false);
    let stop_ref = &stop;
    let bg = oracle.clone();
    let (on, audited) = std::thread::scope(|scope| {
        let ticker = scope.spawn(move || {
            let mut scrubber = Scrubber::new(bg, ScrubConfig::default());
            while !stop_ref.load(Ordering::Relaxed) {
                scrubber.tick();
            }
            scrubber.health()
        });
        let on = measure(&oracle);
        stop_ref.store(true, Ordering::Relaxed);
        let health = ticker.join().expect("scrub thread never panics");
        assert_eq!(health.corruptions_found, 0, "a clean snapshot audits clean");
        (on, health.rows_audited)
    });
    println!(
        "oracle_churn/u128_grid16x16 serve_scrub_on: p50={}ns p99={}ns \
         ({} queries, {} rows audited concurrently)",
        pick(&on, 0.50),
        pick(&on, 0.99),
        SCRUB_QUERIES,
        audited,
    );
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ingest, bench_commit_grid, bench_commit_gnm, bench_injection_convergence,
        bench_recovery, bench_scrub
}
criterion_main!(benches);
