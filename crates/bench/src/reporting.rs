//! Plain-text table rendering and scaling-law fits for the experiment
//! reports.

/// A fixed-column text table, printed with aligned columns.
///
/// # Examples
///
/// ```
/// use rsp_bench::reporting::Table;
///
/// let mut t = Table::new("demo", &["n", "edges"]);
/// t.row(&["10".into(), "45".into()]);
/// let s = t.render();
/// assert!(s.contains("demo") && s.contains("45"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$}  ", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Least-squares slope of `log y` against `log x`: the growth exponent of
/// a power-law series. All inputs must be positive.
///
/// # Panics
///
/// Panics if fewer than two points or any non-positive value.
///
/// # Examples
///
/// ```
/// use rsp_bench::reporting::loglog_slope;
/// let xs = [10.0, 100.0, 1000.0];
/// let ys = [5.0, 50.0, 500.0]; // exponent 1
/// assert!((loglog_slope(&xs, &ys) - 1.0).abs() < 1e-9);
/// ```
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need >= 2 paired points");
    assert!(xs.iter().chain(ys).all(|&v| v > 0.0), "log-log fits need positive values");
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    cov / var
}

/// Formats a float with three significant-ish decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Milliseconds elapsed by `f`, plus its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("x", &["a", "bbbb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## x"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn slope_of_quadratic() {
        let xs = [2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        assert!((loglog_slope(&xs, &ys) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn timing_returns_result() {
        let (v, ms) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }
}
