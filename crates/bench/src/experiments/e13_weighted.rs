//! **E13 / Theorem 11 + Section 4.3** — the weighted restoration lemma,
//! weighted replacement paths, and the single-fault distance sensitivity
//! oracle.

use rsp_graph::{bfs, EdgeWeights, FaultSet};
use rsp_replacement::{verify_weighted_restoration_lemma, weighted_single_pair, SingleFaultOracle};

use crate::reporting::{f3, timed, Table};
use crate::workloads::sparse_sweep;

/// Runs E13 and prints the tables.
pub fn run(quick: bool) {
    // Part 1: Theorem 11 verified instance-by-instance.
    let mut t1 = Table::new(
        "E13a (Theorem 11): weighted restoration lemma, instance checks",
        &["graph", "n", "max weight", "instances", "witnessed", "ok"],
    );
    let sizes: &[usize] = if quick { &[16] } else { &[16, 24, 32] };
    for w in sparse_sweep(sizes, 71) {
        let g = &w.graph;
        let weights = EdgeWeights::random(g, 12, 5);
        let pairs: Vec<(usize, usize)> = vec![(0, g.n() - 1), (1, g.n() / 2), (2, g.n() - 3)];
        let stats = verify_weighted_restoration_lemma(g, &weights, &pairs, 9);
        assert_eq!(stats.witnessed, stats.instances, "Theorem 11 must hold");
        t1.row(&[
            w.name.clone(),
            g.n().to_string(),
            weights.max().to_string(),
            stats.instances.to_string(),
            stats.witnessed.to_string(),
            "yes".to_string(),
        ]);
    }
    t1.print();

    // Part 2: weighted single-pair replacement path distances, spot
    // validated against weighted Dijkstra recompute.
    let mut t2 = Table::new(
        "E13b: weighted single-pair replacement paths",
        &["graph", "n", "path edges", "ms", "validated"],
    );
    for w in sparse_sweep(if quick { &[40] } else { &[40, 80, 160] }, 73) {
        let g = &w.graph;
        let weights = EdgeWeights::random(g, 20, 7);
        let ((), ms) = {
            let (r, ms) = timed(|| weighted_single_pair(g, &weights, 0, g.n() - 1, 3));
            let r = r.expect("connected");
            for entry in r.entries().iter().take(6) {
                let truth = rsp_graph::weighted_sssp(g, &weights, 0, &FaultSet::single(entry.edge));
                assert_eq!(entry.dist, truth.cost(g.n() - 1).copied());
            }
            t2.row(&[
                w.name.clone(),
                g.n().to_string(),
                r.entries().len().to_string(),
                f3(ms),
                "yes".to_string(),
            ]);
            ((), ms)
        };
        let _ = ms;
    }
    t2.print();

    // Part 3: the distance sensitivity oracle built from Algorithm 1.
    let mut t3 = Table::new(
        "E13c (Sec 4.3): single-fault distance sensitivity oracle",
        &["graph", "n", "build ms", "entries", "pairs", "probe ok"],
    );
    for w in sparse_sweep(if quick { &[24] } else { &[24, 48, 96] }, 79) {
        let g = &w.graph;
        let (oracle, ms) = timed(|| SingleFaultOracle::build(g, 13));
        // Probe random queries against BFS truth.
        let mut ok = true;
        for (e, _, _) in g.edges().take(12) {
            let truth = bfs(g, 0, &FaultSet::single(e));
            for t in [g.n() / 2, g.n() - 1] {
                ok &= oracle.query(0, t, e) == truth.dist(t);
            }
        }
        assert!(ok, "oracle answers must match BFS");
        t3.row(&[
            w.name.clone(),
            g.n().to_string(),
            f3(ms),
            oracle.entry_count().to_string(),
            oracle.pair_count().to_string(),
            "yes".to_string(),
        ]);
    }
    t3.print();
    println!(
        "shape check: Theorem 11 witnessed on every instance; weighted\n\
         replacement distances exact; the oracle serves all pairs with\n\
         one entry per selected path edge.\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_runs_quick() {
        super::run(true);
    }
}
