//! Bit-packing substrate: labels are *bitstrings*, and the paper's size
//! bounds are stated in bits, so the encoder packs fields at bit
//! granularity rather than rounding every field to bytes.

/// An append-only bit buffer.
///
/// # Examples
///
/// ```
/// use rsp_labeling::{BitWriter, BitReader};
///
/// let mut w = BitWriter::new();
/// w.write_bits(5, 3);
/// w.write_bits(1023, 10);
/// assert_eq!(w.bit_len(), 13);
/// let mut r = BitReader::new(w.as_bytes());
/// assert_eq!(r.read_bits(3), Some(5));
/// assert_eq!(r.read_bits(10), Some(1023));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` has bits above `width`.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} too large");
        assert!(width == 64 || value < (1u64 << width), "value {value} does not fit {width} bits");
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[byte_idx] |= 1 << (7 - (self.bit_len % 8));
            }
            self.bit_len += 1;
        }
    }

    /// Number of bits written.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// The underlying bytes (the last byte may be partially used).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning bytes and exact bit length.
    pub fn into_parts(self) -> (Vec<u8>, usize) {
        (self.bytes, self.bit_len)
    }
}

/// A sequential bit reader over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading from the first bit of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits (most significant first); `None` if the buffer
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64, "width {width} too large");
        if self.pos + width as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos += 1;
        }
        Some(out)
    }

    /// Bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Bits needed to address values in `0..n` (at least 1).
pub fn width_for(n: usize) -> u32 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let fields = [(0u64, 1u32), (1, 1), (7, 3), (255, 8), (12345, 14), (u64::MAX, 64)];
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            w.write_bits(v, width);
        }
        let mut r = BitReader::new(w.as_bytes());
        for &(v, width) in &fields {
            assert_eq!(r.read_bits(width), Some(v));
        }
    }

    #[test]
    fn exact_bit_accounting() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 7);
        assert_eq!(w.as_bytes().len(), 1);
        w.write_bits(1, 1);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 9);
        assert_eq!(w.as_bytes().len(), 2);
    }

    #[test]
    fn reader_exhaustion() {
        let mut w = BitWriter::new();
        w.write_bits(5, 3);
        let (bytes, _) = w.into_parts();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1010_0000));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_rejected() {
        BitWriter::new().write_bits(4, 2);
    }

    #[test]
    fn width_for_ranges() {
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(256), 8);
        assert_eq!(width_for(257), 9);
    }

    #[test]
    fn position_tracking() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let (bytes, _) = w.into_parts();
        let mut r = BitReader::new(&bytes);
        let _ = r.read_bits(2);
        assert_eq!(r.position(), 2);
    }
}
