//! E4/E11 timing: Algorithm 1 against its baselines (Theorems 3 and 28).

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_graph::generators;
use rsp_replacement::{
    naive_single_pair, per_pair_subset_rp, single_pair_replacement_paths, subset_replacement_paths,
};

fn bench_subset_rp(c: &mut Criterion) {
    // Dense regime: the tree-union trick pays off (Theorem 3).
    let n = 150;
    let g = generators::connected_gnm(n, n * (n - 1) / 8, 3);
    let sources = [0, 30, 60, 90, 120, 149];
    c.bench_function("subset_rp/algorithm1_dense_n150_s6", |b| {
        b.iter(|| subset_replacement_paths(&g, &sources, 1))
    });
    c.bench_function("subset_rp/per_pair_dense_n150_s6", |b| {
        b.iter(|| per_pair_subset_rp(&g, &sources, 1))
    });
}

fn bench_single_pair(c: &mut Criterion) {
    // Long-path regime: naive pays one BFS per path edge (Theorem 28).
    let g = generators::grid(8, 64);
    let (s, t) = (0, g.n() - 1);
    c.bench_function("single_pair/fast_grid8x64", |b| {
        b.iter(|| single_pair_replacement_paths(&g, s, t, 3).expect("connected"))
    });
    let path = single_pair_replacement_paths(&g, s, t, 3).expect("connected").path().clone();
    c.bench_function("single_pair/naive_grid8x64", |b| {
        b.iter(|| naive_single_pair(&g, s, t, path.clone()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_subset_rp, bench_single_pair
}
criterion_main!(benches);
