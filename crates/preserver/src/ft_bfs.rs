//! Preserver construction by replacement-path overlay (Theorems 26 and 31).
//!
//! The `O(n^f)` stability-driven fault-set enumeration behind
//! [`ft_bfs_structure`] runs either sequentially (one explicit stack) or
//! on the work-stealing frontier executor
//! ([`rsp_graph::parallel_frontier`]): enumeration items are
//! `(source, fault set)` pairs, newly discovered fault sets are
//! deduplicated through a sharded concurrent visited set
//! ([`rsp_graph::ShardedSet`]) and pushed onto the shared frontier, and
//! each worker runs its tree queries against a private
//! [`rsp_core::RptsScratch`]. Results are identical for every worker
//! count; [`EnumerationStats`] reports the enumerated / deduplicated /
//! stolen counts. See `docs/ARCHITECTURE.md` (repo root) for the
//! pipeline-level story.

use std::collections::HashSet;
use std::fmt;
use std::ops::ControlFlow;

use rsp_core::{Rpts, RptsScratch};
use rsp_graph::{parallel_frontier, EdgeId, FaultSet, Graph, ShardedSet, Vertex};

/// A preserver: a subset of `G`'s edges, plus build statistics.
///
/// The subgraph view is materialized on demand by [`Preserver::subgraph`];
/// edge ids refer to the *original* graph throughout.
#[derive(Clone, Debug)]
pub struct Preserver {
    n: usize,
    edges: Vec<EdgeId>,
    trees_computed: usize,
}

impl Preserver {
    fn new(n: usize, edges: HashSet<EdgeId>, trees_computed: usize) -> Self {
        let mut edges: Vec<EdgeId> = edges.into_iter().collect();
        edges.sort_unstable();
        Preserver { n, edges, trees_computed }
    }

    /// Number of edges in the preserver — the size objective all of
    /// Section 4.1's bounds are about.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The preserver's edge ids (in the original graph), sorted.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Returns `true` iff edge `e` of the original graph is kept.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Materializes the preserver as a standalone graph over the same
    /// vertex set (edge ids are renumbered; use [`Preserver::edges`] for
    /// original ids).
    pub fn subgraph(&self, g: &Graph) -> Graph {
        assert_eq!(g.n(), self.n, "preserver belongs to a different graph");
        g.edge_subgraph(self.edges.iter().copied())
    }

    /// Number of shortest-path trees computed during the build (a proxy
    /// for construction cost; the fault-set enumeration is exponential in
    /// `f`, as the paper notes the naive runtime is `n^{O(f)}`).
    pub fn trees_computed(&self) -> usize {
        self.trees_computed
    }
}

/// Overlays the selected replacement paths `π(s, t | F)` for an explicit
/// collection of `(source, fault set)` queries, keeping every tree edge.
///
/// This is the raw primitive behind all preserver constructions; it is
/// public because the lower-bound experiment needs overlay over a
/// *specific* fault-set family rather than all `|F| ≤ f`.
///
/// For each `(s, F)` pair the full selected tree is overlaid (every tree
/// edge lies on `π(s, v | F)` for some `v`, and conversely).
///
/// Queries are grouped by source and issued through the batched
/// [`Rpts::for_each_tree`] engine, so fault sets sharing a source also
/// share the settled search prefix — resumed from mid-run checkpoints
/// where the batch engine captured them (the overlay is a set union —
/// query order cannot affect the result).
pub fn overlay_paths<S: Rpts>(
    scheme: &S,
    queries: impl IntoIterator<Item = (Vertex, FaultSet)>,
) -> Preserver {
    let mut edges = HashSet::new();
    let mut trees = 0;
    let mut scratch = scheme.new_scratch();
    // Group by source, preserving first-appearance order of sources.
    let mut order: Vec<Vertex> = Vec::new();
    let mut by_source: Vec<Vec<FaultSet>> = Vec::new();
    for (s, faults) in queries {
        match order.iter().position(|&v| v == s) {
            Some(i) => by_source[i].push(faults),
            None => {
                order.push(s);
                by_source.push(vec![faults]);
            }
        }
    }
    for (i, &s) in order.iter().enumerate() {
        scheme.for_each_tree(&[s], &by_source[i], &mut scratch, &mut |_, _, tree| {
            trees += 1;
            edges.extend(tree.tree_edges());
            ControlFlow::Continue(())
        });
    }
    Preserver::new(scheme.graph().n(), edges, trees)
}

/// Execution counters from one frontier-driven enumeration
/// ([`ft_bfs_structure_frontier`] / [`ft_sv_preserver_frontier`]).
///
/// The defining invariant — each relevant fault set is visited **exactly
/// once** — is observable as `enumerated == deduped`: every item admitted
/// past the visited set was expanded, and nothing was expanded twice (the
/// property suite in `tests/frontier_properties.rs` asserts this under
/// deliberately contended worker counts).
///
/// # Examples
///
/// ```
/// use rsp_core::RandomGridAtw;
/// use rsp_preserver::ft_bfs_structure_frontier;
/// use rsp_graph::generators;
///
/// let g = generators::petersen();
/// let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
/// let (p, stats) = ft_bfs_structure_frontier(&scheme, 0, 2, 4);
/// assert_eq!(stats.enumerated, stats.deduped, "each fault set visited once");
/// assert_eq!(stats.enumerated, p.trees_computed());
/// assert!(stats.duplicates > 0, "{{e, e'}} is discovered in both edge orders");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// `(source, fault set)` items expanded (trees computed).
    pub enumerated: usize,
    /// Items admitted by the concurrent visited set (first discovery).
    pub deduped: usize,
    /// Discoveries rejected as already visited or in flight — the same
    /// fault set reached along a different tree-edge path.
    pub duplicates: usize,
    /// Items a worker claimed from another worker's deque
    /// (work-stealing events; 0 on the single-worker inline path).
    pub stolen: usize,
}

impl fmt::Display for EnumerationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault sets enumerated ({} admitted, {} duplicate discoveries), {} stolen",
            self.enumerated, self.deduped, self.duplicates, self.stolen
        )
    }
}

/// Per-worker accumulator for the frontier-driven builds: one scheme
/// scratch (never crosses threads), the worker's share of the overlay,
/// and its execution counters.
struct OverlayWorker {
    scratch: RptsScratch,
    edges: HashSet<EdgeId>,
    trees: usize,
    duplicates: usize,
}

impl OverlayWorker {
    fn new<S: Rpts + ?Sized>(scheme: &S) -> Self {
        OverlayWorker {
            scratch: scheme.new_scratch(),
            edges: HashSet::new(),
            trees: 0,
            duplicates: 0,
        }
    }
}

/// The shared frontier engine: expands every seed `(s, F)` — and, below
/// depth `f`, every `(s, F ∪ {e})` for tree edges `e` of the selected
/// tree, deduplicated through `visited` — across `workers` work-stealing
/// workers, overlaying every computed tree.
///
/// The result is a pure function of the *set* of items expanded (a union
/// of tree edges plus commutative counters), and the expanded set is the
/// closure of the seeds under a deterministic growth rule, so the outcome
/// is identical for every worker count and schedule.
fn overlay_frontier<S: Rpts + Sync>(
    scheme: &S,
    seeds: Vec<(Vertex, FaultSet)>,
    f: usize,
    workers: usize,
) -> (Preserver, EnumerationStats) {
    let visited: ShardedSet<(Vertex, FaultSet)> = ShardedSet::new(workers);
    let mut seed_duplicates = 0usize;
    let seeds: Vec<(Vertex, FaultSet)> = seeds
        .into_iter()
        .filter(|(s, faults)| {
            let fresh = visited.insert((*s, faults.clone()));
            seed_duplicates += usize::from(!fresh);
            fresh
        })
        .collect();
    let (folds, fstats) = parallel_frontier(
        seeds,
        workers,
        |_| OverlayWorker::new(scheme),
        |worker, (s, faults), push| {
            let tree = scheme.tree_from_with(s, &faults, &mut worker.scratch);
            worker.trees += 1;
            let expand = faults.len() < f;
            for e in tree.tree_edges() {
                worker.edges.insert(e);
                if expand {
                    let child = faults.with(e);
                    if visited.insert((s, child.clone())) {
                        push((s, child));
                    } else {
                        worker.duplicates += 1;
                    }
                }
            }
        },
        |worker| (worker.edges, worker.trees, worker.duplicates),
    );
    let mut edges = HashSet::new();
    let mut trees = 0usize;
    let mut duplicates = seed_duplicates;
    for (worker_edges, worker_trees, worker_duplicates) in folds {
        edges.extend(worker_edges);
        trees += worker_trees;
        duplicates += worker_duplicates;
    }
    let stats = EnumerationStats {
        enumerated: trees,
        deduped: visited.len(),
        duplicates,
        stolen: fstats.stolen,
    };
    (Preserver::new(scheme.graph().n(), edges, trees), stats)
}

/// [`overlay_paths`] with queries fanned out over the work-stealing
/// worker pool (one scheme scratch per worker, dynamic claiming — tree
/// query costs vary with the fault set's distance from the source).
///
/// The overlay is a set union, so the result is identical to the
/// sequential form for every worker count.
///
/// # Examples
///
/// ```
/// use rsp_core::RandomGridAtw;
/// use rsp_preserver::{overlay_paths, overlay_paths_par};
/// use rsp_graph::{generators, FaultSet};
///
/// let g = generators::grid(3, 3);
/// let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
/// let queries: Vec<_> = (0..g.m()).map(|e| (0, FaultSet::single(e))).collect();
/// let par = overlay_paths_par(&scheme, queries.iter().cloned(), 4);
/// let seq = overlay_paths(&scheme, queries);
/// assert_eq!(par.edges(), seq.edges());
/// ```
pub fn overlay_paths_par<S: Rpts + Sync>(
    scheme: &S,
    queries: impl IntoIterator<Item = (Vertex, FaultSet)>,
    workers: usize,
) -> Preserver {
    let queries: Vec<(Vertex, FaultSet)> = queries.into_iter().collect();
    let (folds, _) = parallel_frontier(
        queries,
        workers,
        |_| OverlayWorker::new(scheme),
        |worker, (s, faults), _push| {
            // A fixed query list — an overlay counts every query's tree
            // (duplicates included, matching `overlay_paths`), so there
            // is no dedup and the frontier never grows.
            worker
                .edges
                .extend(scheme.tree_from_with(s, &faults, &mut worker.scratch).tree_edges());
            worker.trees += 1;
        },
        |worker| (worker.edges, worker.trees),
    );
    let mut edges = HashSet::new();
    let mut trees = 0usize;
    for (worker_edges, worker_trees) in folds {
        edges.extend(worker_edges);
        trees += worker_trees;
    }
    Preserver::new(scheme.graph().n(), edges, trees)
}

/// The `f`-FT `{s} × V` preserver (FT-BFS structure) by overlay of all
/// replacement paths under `≤ f` faults (Theorem 26 with `|S| = 1`).
///
/// Relevant fault sets are enumerated via stability: starting from `∅`,
/// a fault set only ever grows by an edge of the *current* selected tree.
/// Any `π(s, v | F)` with arbitrary `|F| ≤ f` equals `π(s, v | R)` for
/// some enumerated `R ⊆ F` (repeatedly discard faults off the selected
/// path), so the overlay is a true preserver — `O(n^f)` trees in the
/// worst case, as the paper notes.
pub fn ft_bfs_structure<S: Rpts>(scheme: &S, s: Vertex, f: usize) -> Preserver {
    ft_bfs_structure_with(scheme, s, f, &mut scheme.new_scratch())
}

/// [`ft_bfs_structure`] reusing scheme search state across its `O(n^f)`
/// tree queries (and across calls — [`ft_sv_preserver`] passes one scratch
/// through every source).
pub fn ft_bfs_structure_with<S: Rpts>(
    scheme: &S,
    s: Vertex,
    f: usize,
    scratch: &mut rsp_core::RptsScratch,
) -> Preserver {
    let mut edges = HashSet::new();
    let mut visited: HashSet<FaultSet> = HashSet::new();
    let mut stack = vec![FaultSet::empty()];
    let mut trees = 0;
    while let Some(faults) = stack.pop() {
        if !visited.insert(faults.clone()) {
            continue;
        }
        let tree = scheme.tree_from_with(s, &faults, scratch);
        trees += 1;
        let tree_edges: Vec<EdgeId> = tree.tree_edges().collect();
        edges.extend(tree_edges.iter().copied());
        if faults.len() < f {
            for &e in &tree_edges {
                stack.push(faults.with(e));
            }
        }
    }
    Preserver::new(scheme.graph().n(), edges, trees)
}

/// [`ft_bfs_structure`] with the fault-set enumeration itself run on the
/// work-stealing frontier ([`rsp_graph::parallel_frontier`]) — the
/// parallel axis *inside* one source, where the sequential build spends
/// `O(n^f)` tree queries.
///
/// Newly discovered fault sets are admitted through a sharded concurrent
/// visited set and pushed onto the shared frontier; idle workers steal
/// them and run tree queries against private scheme scratches. The set of
/// fault sets expanded is the closure of `{∅}` under "grow by an edge of
/// the current selected tree", which is worker-count- and
/// schedule-independent, so the preserver (and its tree count) is
/// identical to the sequential build's. Returns the preserver plus
/// [`EnumerationStats`] (`enumerated == deduped` certifies exactly-once
/// expansion).
pub fn ft_bfs_structure_frontier<S: Rpts + Sync>(
    scheme: &S,
    s: Vertex,
    f: usize,
    workers: usize,
) -> (Preserver, EnumerationStats) {
    overlay_frontier(scheme, vec![(s, FaultSet::empty())], f, workers)
}

/// The `f`-FT `S × V` preserver of Theorem 26: the union of per-source
/// FT-BFS structures. Size `O(n^{2−1/2^f} |S|^{1/2^f})` when the scheme is
/// consistent and stable.
pub fn ft_sv_preserver<S: Rpts>(scheme: &S, sources: &[Vertex], f: usize) -> Preserver {
    let mut edges = HashSet::new();
    let mut trees = 0;
    let mut scratch = scheme.new_scratch();
    for &s in sources {
        let p = ft_bfs_structure_with(scheme, s, f, &mut scratch);
        trees += p.trees_computed();
        edges.extend(p.edges().iter().copied());
    }
    Preserver::new(scheme.graph().n(), edges, trees)
}

/// [`ft_sv_preserver`] on the work-stealing frontier, composing **both**
/// parallel axes of Theorem 26 under one worker budget: the seed items
/// `(s, ∅)` fan the enumeration out over sources, and every fault set a
/// tree discovers joins the same shared frontier — so a lone
/// heavy-enumeration source (tree counts differ by orders of magnitude
/// between sources) is carved up by work stealing instead of serializing
/// the tail, and `|S| < workers` no longer idles the surplus workers.
///
/// The preserver is a set union over a worker-count-independent item
/// closure, so the result is identical to the sequential form for every
/// worker count. Returns the enumeration stats alongside.
///
/// One deliberate divergence from [`ft_sv_preserver`]: **duplicate
/// sources collapse**. The seed dedup admits each distinct `(s, ∅)`
/// once, so a repeated source contributes its trees once, where the
/// sequential loop re-enumerates it per occurrence (a fresh visited set
/// per call). The edge set is unaffected — only
/// [`Preserver::trees_computed`] (and the stats) differ, and only on
/// degenerate inputs with repeated sources.
pub fn ft_sv_preserver_frontier<S: Rpts + Sync>(
    scheme: &S,
    sources: &[Vertex],
    f: usize,
    workers: usize,
) -> (Preserver, EnumerationStats) {
    let seeds = sources.iter().map(|&s| (s, FaultSet::empty())).collect();
    overlay_frontier(scheme, seeds, f, workers)
}

/// [`ft_sv_preserver`] with the FT-BFS builds fanned out over a worker
/// pool — [`ft_sv_preserver_frontier`] minus the stats return.
///
/// Both the per-source axis and the fault-set enumeration *inside* each
/// source run on the shared work-stealing frontier (before PR 5 only
/// sources were parallel; a single-source `f ≥ 2` build serialized). The
/// preserver is identical to the sequential form for every worker count
/// — with distinct sources, tree counts included; repeated sources
/// collapse to one enumeration each (see
/// [`ft_sv_preserver_frontier`]), which the sequential build instead
/// re-enumerates, so only `trees_computed` can differ and only on that
/// degenerate input.
///
/// # Examples
///
/// ```
/// use rsp_core::RandomGridAtw;
/// use rsp_preserver::{ft_sv_preserver, ft_sv_preserver_par};
/// use rsp_graph::generators;
///
/// let g = generators::grid(3, 4);
/// let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
/// let par = ft_sv_preserver_par(&scheme, &[0, 11], 1, 4);
/// let seq = ft_sv_preserver(&scheme, &[0, 11], 1);
/// assert_eq!(par.edges(), seq.edges());
/// assert_eq!(par.trees_computed(), seq.trees_computed());
/// ```
pub fn ft_sv_preserver_par<S: Rpts + Sync>(
    scheme: &S,
    sources: &[Vertex],
    f: usize,
    workers: usize,
) -> Preserver {
    ft_sv_preserver_frontier(scheme, sources, f, workers).0
}

/// The `f_total`-FT `S × S` preserver of Theorem 31, built as an
/// `(f_total − 1)`-FT `S × V` preserver under a restorable scheme.
///
/// Restorability supplies the extra fault: for `|F| ≤ f_total` there are
/// `x` and `F′ ⊊ F` with `π(s, x | F′) ∪ π(t, x | F′)` a replacement
/// path, and both halves are already overlaid (|F′| ≤ f_total − 1).
///
/// # Panics
///
/// Panics if `f_total == 0` (a 0-FT preserver is just the union of SPTs;
/// use [`ft_sv_preserver`] with `f = 0`).
pub fn ft_subset_preserver<S: Rpts>(scheme: &S, sources: &[Vertex], f_total: usize) -> Preserver {
    assert!(f_total >= 1, "subset preservers tolerate at least one fault");
    ft_sv_preserver(scheme, sources, f_total - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_preserver, PairSet};
    use rsp_core::{verify::all_fault_sets, RandomGridAtw};
    use rsp_graph::generators;

    #[test]
    fn zero_fault_structure_is_a_tree() {
        let g = generators::connected_gnm(20, 45, 1);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 0);
        assert_eq!(p.edge_count(), g.n() - 1, "one SPT = spanning tree");
        assert_eq!(p.trees_computed(), 1);
    }

    #[test]
    fn one_fault_structure_preserves_sv_distances() {
        let g = generators::connected_gnm(16, 34, 2);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 1);
        let singles = all_fault_sets(g.m(), 1);
        verify_preserver(&g, &p, &PairSet::sourcewise(vec![0], g.n()), &singles).unwrap();
    }

    #[test]
    fn two_fault_structure_preserves_sv_distances() {
        let g = generators::connected_gnm(12, 22, 3);
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 2);
        let doubles = all_fault_sets(g.m(), 2);
        verify_preserver(&g, &p, &PairSet::sourcewise(vec![0], g.n()), &doubles).unwrap();
    }

    #[test]
    fn subset_preserver_one_fault_is_union_of_trees() {
        let g = generators::connected_gnm(25, 60, 4);
        let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
        let sources = vec![0, 5, 10];
        let p = ft_subset_preserver(&scheme, &sources, 1);
        assert!(p.edge_count() <= sources.len() * (g.n() - 1), "|S| SPTs");
        let singles = all_fault_sets(g.m(), 1);
        verify_preserver(&g, &p, &PairSet::subset(sources), &singles).unwrap();
    }

    #[test]
    fn subset_preserver_two_faults() {
        // Theorem 31 with f_total = 2: overlay of 1-FT {s}×V preservers
        // must preserve S×S distances under any TWO faults.
        let g = generators::connected_gnm(12, 24, 5);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let sources = vec![0, 4, 8];
        let p = ft_subset_preserver(&scheme, &sources, 2);
        let doubles = all_fault_sets(g.m(), 2);
        verify_preserver(&g, &p, &PairSet::subset(sources), &doubles).unwrap();
    }

    #[test]
    fn overlay_paths_counts_trees() {
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        let p = overlay_paths(
            &scheme,
            [(0, FaultSet::empty()), (0, FaultSet::single(0)), (3, FaultSet::empty())],
        );
        assert_eq!(p.trees_computed(), 3);
        assert!(p.edge_count() >= g.n() - 1);
    }

    #[test]
    fn parallel_preserver_matches_sequential() {
        let g = generators::connected_gnm(18, 40, 6);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        let sources = vec![0, 4, 9, 13, 17];
        let seq = ft_sv_preserver(&scheme, &sources, 1);
        for workers in [1, 2, 8] {
            let par = ft_sv_preserver_par(&scheme, &sources, 1, workers);
            assert_eq!(par.edges(), seq.edges(), "workers={workers}");
            assert_eq!(par.trees_computed(), seq.trees_computed(), "workers={workers}");
        }
    }

    #[test]
    fn frontier_single_source_matches_sequential_up_to_f2() {
        let g = generators::connected_gnm(14, 30, 11);
        let scheme = RandomGridAtw::theorem20(&g, 11).into_scheme();
        for f in [0usize, 1, 2] {
            let seq = ft_bfs_structure(&scheme, 3, f);
            for workers in [1, 2, 8] {
                let (par, stats) = ft_bfs_structure_frontier(&scheme, 3, f, workers);
                assert_eq!(par.edges(), seq.edges(), "f={f} workers={workers}");
                assert_eq!(par.trees_computed(), seq.trees_computed(), "f={f} workers={workers}");
                assert_eq!(stats.enumerated, stats.deduped, "f={f} workers={workers}: once each");
                assert_eq!(stats.enumerated, seq.trees_computed(), "f={f} workers={workers}");
            }
        }
    }

    #[test]
    fn frontier_stats_account_for_every_discovery() {
        // f = 2 on a dense-ish graph: plenty of duplicate discoveries
        // (the same {e1, e2} is reached via both orders), so the stats
        // must reconcile: admissions + rejections = total discoveries,
        // and every admission is expanded exactly once.
        let g = generators::connected_gnm(12, 26, 13);
        let scheme = RandomGridAtw::theorem20(&g, 13).into_scheme();
        let (p, stats) = ft_bfs_structure_frontier(&scheme, 0, 2, 4);
        assert_eq!(stats.enumerated, stats.deduped);
        assert_eq!(stats.enumerated, p.trees_computed());
        assert!(stats.duplicates > 0, "two-fault sets are discovered in both edge orders");
        assert!(!format!("{stats}").is_empty());
    }

    #[test]
    fn frontier_multi_source_shares_one_budget() {
        let g = generators::connected_gnm(16, 34, 15);
        let scheme = RandomGridAtw::theorem20(&g, 15).into_scheme();
        let sources = vec![0, 7, 15];
        let seq = ft_sv_preserver(&scheme, &sources, 2);
        for workers in [1, 2, 8] {
            let (par, stats) = ft_sv_preserver_frontier(&scheme, &sources, 2, workers);
            assert_eq!(par.edges(), seq.edges(), "workers={workers}");
            assert_eq!(par.trees_computed(), seq.trees_computed(), "workers={workers}");
            assert_eq!(stats.enumerated, stats.deduped, "workers={workers}");
        }
        // Duplicate sources collapse: the seed dedup admits each once.
        let (dup, dup_stats) = ft_sv_preserver_frontier(&scheme, &[0, 0, 7], 1, 2);
        let (uniq, uniq_stats) = ft_sv_preserver_frontier(&scheme, &[0, 7], 1, 2);
        assert_eq!(dup.edges(), uniq.edges());
        assert_eq!(dup_stats.enumerated, uniq_stats.enumerated);
        assert_eq!(dup_stats.duplicates, uniq_stats.duplicates + 1);
    }

    #[test]
    fn parallel_overlay_matches_sequential() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let queries: Vec<(Vertex, FaultSet)> = (0..g.n())
            .flat_map(|s| (0..4).map(move |e| (s, FaultSet::single(e))))
            .chain([(0, FaultSet::empty()), (3, FaultSet::from_edges([1, 8]))])
            .collect();
        let seq = overlay_paths(&scheme, queries.iter().cloned());
        for workers in [1, 2, 8] {
            let par = overlay_paths_par(&scheme, queries.iter().cloned(), workers);
            assert_eq!(par.edges(), seq.edges(), "workers={workers}");
            assert_eq!(par.trees_computed(), seq.trees_computed(), "workers={workers}");
        }
    }

    #[test]
    fn preserver_edges_are_sorted_and_queryable() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 8).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 1);
        let edges = p.edges();
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        for &e in edges {
            assert!(p.contains(e));
        }
        assert!(p.edge_count() < g.m(), "preserver should be sparser than G");
    }

    #[test]
    fn subgraph_roundtrip() {
        let g = generators::grid(3, 4);
        let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 1);
        let h = p.subgraph(&g);
        assert_eq!(h.n(), g.n());
        assert_eq!(h.m(), p.edge_count());
    }

    #[test]
    fn deeper_f_means_more_edges() {
        let g = generators::connected_gnm(14, 40, 7);
        let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
        let p0 = ft_bfs_structure(&scheme, 0, 0).edge_count();
        let p1 = ft_bfs_structure(&scheme, 0, 1).edge_count();
        let p2 = ft_bfs_structure(&scheme, 0, 2).edge_count();
        assert!(p0 <= p1 && p1 <= p2);
        assert!(p1 > p0, "one fault must add replacement paths on this graph");
    }
}
