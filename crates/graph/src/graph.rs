//! The core undirected, unweighted graph type in CSR form.

use crate::builder::{GraphBuilder, GraphError};

/// A vertex identifier: an index in `0..n`.
///
/// The *API* type is `usize` (indexing-friendly, zero-cost to produce from
/// the stored ids); the *storage* type is `u32` — see [`Graph`] and
/// [`MAX_VERTICES`].
pub type Vertex = usize;

/// An edge identifier: an index in `0..m`, stable across the graph's life.
///
/// Fault sets ([`crate::FaultSet`]) and tiebreaking weight functions are both
/// keyed by `EdgeId`, so that "the weight of edge `e`" and "edge `e` failed"
/// refer to the same object. Like [`Vertex`], the API type is `usize` while
/// the stored width is `u32` (see [`MAX_EDGES`]).
pub type EdgeId = usize;

/// Maximum number of vertices a [`Graph`] can hold: `u32::MAX - 1`.
///
/// Vertex ids are stored as `u32` throughout the hot path (CSR targets,
/// parent pointers, heap entries), and `u32::MAX` is reserved as the
/// universal "no vertex / settled / unreached" sentinel (the search
/// scratch's settled marker, the oracle snapshot's empty-cell marker, …),
/// so the largest usable id is `u32::MAX - 1` and the largest vertex count
/// is `u32::MAX - 1` ids `0..=u32::MAX-2`... i.e. `n <= u32::MAX - 1`.
/// [`GraphBuilder::try_new`] rejects larger `n` with a typed
/// [`GraphError::TooManyVertices`] instead of truncating.
pub const MAX_VERTICES: usize = (u32::MAX - 1) as usize;

/// Maximum number of edges a [`Graph`] can hold: `(u32::MAX - 1) / 2`.
///
/// Each edge occupies two CSR adjacency slots and the CSR offsets are
/// stored as `u32`, so `2m` must fit in a `u32`; edge ids additionally
/// reserve `u32::MAX` as a sentinel (the batch engine's "never examined"
/// marker). [`GraphBuilder::add_edge`] rejects further edges with a typed
/// [`GraphError::TooManyEdges`].
pub const MAX_EDGES: usize = ((u32::MAX - 1) / 2) as usize;

/// A compact undirected, unweighted simple graph.
///
/// Stored in CSR (compressed sparse row) form as flat struct-of-arrays
/// with **`u32` ids**: for each vertex a contiguous slice of
/// (neighbor, incident edge id) pairs, sorted by neighbor. Edge endpoints
/// are canonicalized as `(u, v)` with `u < v`; an [`EdgeId`] is an index
/// into the canonical edge list. The narrow id width halves the memory
/// bandwidth of every adjacency scan relative to `usize` storage — on a
/// million-vertex graph the difference between an in-cache and an
/// out-of-cache traversal — while the public API keeps `usize` ids
/// (zero-extension is free). `n` is capped at [`MAX_VERTICES`] and `m` at
/// [`MAX_EDGES`]; construction reports overflow as typed [`GraphError`]s.
///
/// The graph is immutable after construction (via [`GraphBuilder`] or
/// [`Graph::from_edges`]); edge *faults* are expressed as views through
/// [`crate::FaultSet`] arguments to the traversal routines rather than by
/// mutating the graph, matching the paper's `G \ F` notation.
///
/// # Examples
///
/// ```
/// use rsp_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.edge_between(0, 2).is_none());
/// # Ok::<(), rsp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// Canonical endpoints, `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(u32, u32)>,
    /// CSR offsets, length `n + 1`; `2m` fits in `u32` by [`MAX_EDGES`].
    offsets: Vec<u32>,
    /// CSR neighbor targets, length `2m`, sorted within each vertex slice.
    targets: Vec<u32>,
    /// Edge id of each adjacency slot, parallel to `targets`.
    incident: Vec<u32>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge iterator.
    ///
    /// Endpoints may appear in either order; they are canonicalized.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops,
    /// duplicate edges, or a vertex/edge count beyond [`MAX_VERTICES`] /
    /// [`MAX_EDGES`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::Graph;
    /// let g = Graph::from_edges(3, [(2, 0), (0, 1)])?;
    /// assert_eq!(g.endpoints(0), (0, 2)); // canonicalized, ids in input order
    /// # Ok::<(), rsp_graph::GraphError>(())
    /// ```
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (Vertex, Vertex)>,
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::try_new(n)?;
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Internal constructor used by [`GraphBuilder::build`]; inputs must be
    /// pre-validated (canonical, deduplicated, in-range, within the
    /// [`MAX_VERTICES`] / [`MAX_EDGES`] caps).
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        let m = edges.len();
        debug_assert!(n <= MAX_VERTICES && m <= MAX_EDGES);
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in &edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; 2 * m];
        let mut incident = vec![0u32; 2 * m];
        for (e, &(u, v)) in edges.iter().enumerate() {
            let e = e as u32;
            targets[cursor[u as usize] as usize] = v;
            incident[cursor[u as usize] as usize] = e;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            incident[cursor[v as usize] as usize] = e;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency slice by neighbor for binary-searchable lookups.
        for u in 0..n {
            let lo = offsets[u] as usize;
            let hi = offsets[u + 1] as usize;
            let mut pairs: Vec<(u32, u32)> =
                targets[lo..hi].iter().copied().zip(incident[lo..hi].iter().copied()).collect();
            pairs.sort_unstable();
            for (i, (t, e)) in pairs.into_iter().enumerate() {
                targets[lo + i] = t;
                incident[lo + i] = e;
            }
        }
        Graph { n, edges, offsets, targets, incident }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Bytes of heap memory held by the CSR arrays (offsets, targets,
    /// incident edge ids, and the canonical edge list) — the number the
    /// `u32` migration halves relative to `usize` storage.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.targets.as_slice())
            + std::mem::size_of_val(self.incident.as_slice())
            + std::mem::size_of_val(self.edges.as_slice())
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn degree(&self, u: Vertex) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.m()`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (Vertex, Vertex) {
        let (u, v) = self.edges[e];
        (u as usize, v as usize)
    }

    /// Given edge `e` and one endpoint `u`, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `u` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, u: Vertex) -> Vertex {
        let (a, b) = self.endpoints(e);
        if u == a {
            b
        } else {
            assert_eq!(u, b, "vertex {u} is not an endpoint of edge {e}");
            a
        }
    }

    /// Iterates over `(neighbor, edge id)` pairs of `u`, sorted by neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::Graph;
    /// let g = Graph::from_edges(3, [(0, 1), (0, 2)])?;
    /// let nbrs: Vec<_> = g.neighbors(0).map(|(v, _)| v).collect();
    /// assert_eq!(nbrs, vec![1, 2]);
    /// # Ok::<(), rsp_graph::GraphError>(())
    /// ```
    #[inline]
    pub fn neighbors(&self, u: Vertex) -> impl Iterator<Item = (Vertex, EdgeId)> + '_ {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(self.incident[lo..hi].iter())
            .map(|(&v, &e)| (v as usize, e as usize))
    }

    /// The raw `u32` CSR adjacency slices of `u`: `(targets, edge ids)`,
    /// parallel, sorted by target.
    ///
    /// This is the zero-conversion view for consumers that already work in
    /// stored-width ids (the oracle snapshot's flat `u32` rows); everything
    /// else should use [`Graph::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn neighbors_raw(&self, u: Vertex) -> (&[u32], &[u32]) {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        (&self.targets[lo..hi], &self.incident[lo..hi])
    }

    /// Looks up the edge between `u` and `v`, if present.
    ///
    /// Runs in `O(log deg(u))`.
    pub fn edge_between(&self, u: Vertex, v: Vertex) -> Option<EdgeId> {
        if u >= self.n || v >= self.n || u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let lo = self.offsets[a] as usize;
        let hi = self.offsets[a + 1] as usize;
        let slice = &self.targets[lo..hi];
        slice.binary_search(&(b as u32)).ok().map(|i| self.incident[lo + i] as usize)
    }

    /// Returns `true` iff an edge between `u` and `v` exists.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Iterates over all edges as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Vertex, Vertex)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u as usize, v as usize))
    }

    /// Iterates over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.n
    }

    /// Returns the union of this graph's edge set with another edge-id set,
    /// as a new graph over the same vertex set.
    ///
    /// Used to materialize preserver subgraphs: `H ⊆ G` given by edge ids.
    ///
    /// # Panics
    ///
    /// Panics if any edge id is out of range.
    pub fn edge_subgraph(&self, keep: impl IntoIterator<Item = EdgeId>) -> Graph {
        let mut seen = vec![false; self.m()];
        let mut edges = Vec::new();
        for e in keep {
            if !seen[e] {
                seen[e] = true;
                edges.push(self.edges[e]);
            }
        }
        edges.sort_unstable();
        Graph::from_canonical_edges(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn canonicalizes_endpoints() {
        let g = Graph::from_edges(3, [(2, 1)]).unwrap();
        assert_eq!(g.endpoints(0), (1, 2));
    }

    #[test]
    fn edge_between_present_and_absent() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_between(1, 0), Some(0));
        assert_eq!(g.edge_between(2, 1), Some(1));
        assert_eq!(g.edge_between(0, 2), None);
        assert_eq!(g.edge_between(0, 0), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let nbrs: Vec<_> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![0, 1, 3, 4]);
    }

    #[test]
    fn neighbors_raw_matches_neighbors() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (0, 1)]).unwrap();
        for u in g.vertices() {
            let (targets, incident) = g.neighbors_raw(u);
            let pairs: Vec<(Vertex, EdgeId)> = targets
                .iter()
                .zip(incident.iter())
                .map(|(&v, &e)| (v as usize, e as usize))
                .collect();
            let api: Vec<(Vertex, EdgeId)> = g.neighbors(u).collect();
            assert_eq!(pairs, api, "vertex {u}");
        }
    }

    #[test]
    fn other_endpoint() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        assert_eq!(g.other_endpoint(0, 0), 2);
        assert_eq!(g.other_endpoint(0, 2), 0);
    }

    #[test]
    #[should_panic]
    fn other_endpoint_wrong_vertex_panics() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        let _ = g.other_endpoint(0, 1);
    }

    #[test]
    fn edge_subgraph_dedupes() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = g.edge_subgraph([1, 1, 2]);
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(1, 2) && h.has_edge(2, 3) && !h.has_edge(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4).count(), 0);
    }

    #[test]
    fn memory_bytes_counts_u32_arrays() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // offsets: 5 u32, targets + incident: 6 u32 each, edges: 3×(u32,u32).
        assert_eq!(g.memory_bytes(), (5 + 6 + 6) * 4 + 3 * 8);
    }
}
