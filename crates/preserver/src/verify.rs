//! Ground-truth verification of preservers (Definition 4).

use std::error::Error;
use std::fmt;

use rsp_graph::{bfs, FaultSet, Graph, Vertex};

use crate::ft_bfs::Preserver;

/// The pair family a preserver must serve.
#[derive(Clone, Debug)]
pub enum PairSet {
    /// `S × V`: every source against every vertex (FT-BFS / sourcewise).
    Sourcewise {
        /// The sources `S`.
        sources: Vec<Vertex>,
        /// `|V|` of the host graph.
        n: usize,
    },
    /// `S × S`: all pairs within the subset.
    Subset {
        /// The subset `S`.
        sources: Vec<Vertex>,
    },
    /// An explicit list of ordered pairs.
    Pairs(Vec<(Vertex, Vertex)>),
}

impl PairSet {
    /// `S × V` pairs.
    pub fn sourcewise(sources: Vec<Vertex>, n: usize) -> Self {
        PairSet::Sourcewise { sources, n }
    }

    /// `S × S` pairs.
    pub fn subset(sources: Vec<Vertex>) -> Self {
        PairSet::Subset { sources }
    }

    fn sources(&self) -> Vec<Vertex> {
        match self {
            PairSet::Sourcewise { sources, .. } | PairSet::Subset { sources } => sources.clone(),
            PairSet::Pairs(pairs) => {
                let mut s: Vec<Vertex> = pairs.iter().map(|&(a, _)| a).collect();
                s.sort_unstable();
                s.dedup();
                s
            }
        }
    }

    fn targets_for(&self, s: Vertex) -> Vec<Vertex> {
        match self {
            PairSet::Sourcewise { n, .. } => (0..*n).collect(),
            PairSet::Subset { sources } => sources.clone(),
            PairSet::Pairs(pairs) => {
                pairs.iter().filter(|&&(a, _)| a == s).map(|&(_, b)| b).collect()
            }
        }
    }
}

/// A distance the preserver failed to preserve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreserverViolation {
    /// The source of the violated pair.
    pub s: Vertex,
    /// The target of the violated pair.
    pub t: Vertex,
    /// The fault set under which distances diverge.
    pub faults: FaultSet,
    /// `dist_{G\F}(s, t)`.
    pub expected: Option<u32>,
    /// `dist_{H\F}(s, t)`.
    pub got: Option<u32>,
}

impl fmt::Display for PreserverViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "preserver violates pair ({}, {}) under faults {}: expected {:?}, got {:?}",
            self.s, self.t, self.faults, self.expected, self.got
        )
    }
}

impl Error for PreserverViolation {}

/// Checks `dist_{H\F}(s, t) = dist_{G\F}(s, t)` for every pair of `pairs`
/// and every fault set in `fault_sets` (given as edge ids of `G`).
///
/// # Errors
///
/// Returns the first [`PreserverViolation`] found.
pub fn verify_preserver(
    g: &Graph,
    preserver: &Preserver,
    pairs: &PairSet,
    fault_sets: &[FaultSet],
) -> Result<(), PreserverViolation> {
    let h = preserver.subgraph(g);
    for faults in fault_sets {
        // Translate fault edge ids from G to H (absent edges are no-ops).
        let h_faults: FaultSet = faults
            .iter()
            .filter_map(|e| {
                let (u, v) = g.endpoints(e);
                h.edge_between(u, v)
            })
            .collect();
        for s in pairs.sources() {
            let truth = bfs(g, s, faults);
            let ours = bfs(&h, s, &h_faults);
            for t in pairs.targets_for(s) {
                if truth.dist(t) != ours.dist(t) {
                    return Err(PreserverViolation {
                        s,
                        t,
                        faults: faults.clone(),
                        expected: truth.dist(t),
                        got: ours.dist(t),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Convenience: verifies and returns the number of `(pair, fault set)`
/// combinations checked.
pub fn verify_preserver_counting(
    g: &Graph,
    preserver: &Preserver,
    pairs: &PairSet,
    fault_sets: &[FaultSet],
) -> Result<usize, PreserverViolation> {
    verify_preserver(g, preserver, pairs, fault_sets)?;
    let pair_count: usize = pairs.sources().iter().map(|&s| pairs.targets_for(s).len()).sum();
    Ok(pair_count * fault_sets.len())
}

/// Translates an edge-id set of `G` into the matching [`FaultSet`] of a
/// subgraph `h` (edges not present in `h` are dropped).
pub fn translate_faults(g: &Graph, h: &Graph, faults: &FaultSet) -> FaultSet {
    faults
        .iter()
        .filter_map(|e| {
            let (u, v) = g.endpoints(e);
            h.edge_between(u, v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft_bfs::{ft_bfs_structure, overlay_paths};
    use rsp_core::RandomGridAtw;
    use rsp_graph::generators;

    #[test]
    fn detects_a_bad_preserver() {
        // A single SPT is NOT a 1-FT preserver on a cycle: failing a tree
        // edge must be caught.
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let p = overlay_paths(&scheme, [(0, FaultSet::empty())]);
        let singles: Vec<FaultSet> = g.edges().map(|(e, _, _)| FaultSet::single(e)).collect();
        let err =
            verify_preserver(&g, &p, &PairSet::sourcewise(vec![0], g.n()), &singles).unwrap_err();
        assert_eq!(err.faults.len(), 1);
        assert!(err.expected.is_some());
        let msg = err.to_string();
        assert!(msg.contains("preserver violates"));
    }

    #[test]
    fn accepts_a_good_preserver() {
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 1);
        let singles: Vec<FaultSet> = g.edges().map(|(e, _, _)| FaultSet::single(e)).collect();
        let checked =
            verify_preserver_counting(&g, &p, &PairSet::sourcewise(vec![0], g.n()), &singles)
                .unwrap();
        assert_eq!(checked, 6 * 6);
    }

    #[test]
    fn pairs_variant() {
        let g = generators::grid(3, 3);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let p = ft_bfs_structure(&scheme, 0, 1);
        let singles: Vec<FaultSet> = g.edges().map(|(e, _, _)| FaultSet::single(e)).collect();
        verify_preserver(&g, &p, &PairSet::Pairs(vec![(0, 8), (0, 4)]), &singles).unwrap();
    }

    #[test]
    fn translate_faults_drops_absent_edges() {
        let g = generators::cycle(5);
        let h = g.edge_subgraph([0, 1]);
        let f = translate_faults(&g, &h, &FaultSet::from_edges([0, 4]));
        assert_eq!(f.len(), 1, "edge 4 is not in the subgraph");
    }
}
