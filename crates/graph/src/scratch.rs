//! Reusable search state: the zero-allocation query engine.
//!
//! Every experiment in the paper's evaluation is a loop over thousands of
//! `(source, fault set)` shortest-path queries, and the cost of allocating
//! (and zero-initializing) fresh `O(n)` state per query dominates once the
//! per-query work is small. [`SearchScratch`] amortizes that away:
//!
//! * **generation stamping** — every per-vertex slot carries the epoch of
//!   the query that last wrote it, so "resetting" the scratch between
//!   queries is a single counter bump, not an `O(n)` clear;
//! * **a dirty list** — the vertices a query actually touched, letting
//!   result extraction ([`SearchScratch::tree_edges`],
//!   [`SearchScratch::to_bfs_tree`]) skip the unreached part of the graph;
//! * **a cost-specialized heap policy** ([`rsp_arith::PathCost::HEAP`]) —
//!   register-copy costs (`u32`/`u64`/`u128`) run on a flat lazy binary
//!   heap (`std`'s [`BinaryHeap`]) whose entries are `(cost, vertex)`
//!   pairs stored inline: no per-vertex heap-position bookkeeping, no
//!   indirection on comparisons, candidates held in registers end to end
//!   ([`EdgeCostSource::compute`]). Heavyweight costs
//!   ([`rsp_arith::BigInt`]) run on an indexed 4-ary heap with
//!   decrease-key that stores vertex ids only and compares through the
//!   cost array, so an exact cost is stored exactly once per vertex and
//!   never cloned into stale heap entries. Both policies settle vertices
//!   in the same `(cost, vertex id)` order and detect the same ties, so
//!   results are byte-identical;
//! * **in-place cost arithmetic** — relaxations go through
//!   [`PathCost::add_into`], which for [`rsp_arith::BigInt`] reuses limb
//!   buffers instead of allocating per relaxed edge.
//!
//! The entry points are [`bfs_into`] and [`dijkstra_into`]; the classic
//! [`crate::bfs`] / [`crate::dijkstra`] are thin wrappers that allocate one
//! scratch, run the `_into` variant, and materialize an owned tree. Hot
//! loops hold one scratch per concurrent tree and read results straight
//! from it.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::{dijkstra_into, generators, FaultSet, SearchScratch};
//!
//! let g = generators::grid(4, 4);
//! let mut scratch = SearchScratch::<u64>::with_capacity(g.n());
//! for e in 0..g.m() {
//!     // One query per single-edge fault; no per-query allocation.
//!     dijkstra_into(&g, 0, &FaultSet::single(e), |_, _, _| 1u64, &mut scratch);
//!     assert!(scratch.cost(15).is_some(), "grid minus one edge stays connected");
//! }
//! ```

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};
use std::mem;

use rsp_arith::{HeapKind, PathCost};

use crate::bfs::BfsTree;
use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};
use crate::path::Path;
use crate::spt::WeightedSpt;

/// Heap-position sentinel: the vertex is settled (or was never enqueued).
///
/// Under the inline-key policy no heap positions exist; `heap_pos` then
/// carries only this settled/open distinction (written once per vertex at
/// discovery and during batch prefix copies), which the batch engine's
/// replay needs to skip fully-resolved prefix-internal edges.
pub(crate) const SETTLED: u32 = u32::MAX;

/// `heap_pos` marker for "discovered but not settled" where no real heap
/// position exists: everywhere under the inline-key engine (positions are
/// not tracked), and transiently in the batch engine's checkpoint restore
/// before open vertices re-enter the indexed heap. Any value other than
/// [`SETTLED`] works.
pub(crate) const OPEN: u32 = 0;

/// Heap arity. Four keeps the tree shallow (fewer comparisons per
/// decrease-key, the dominant operation) while sift-down still touches one
/// cache line of children.
const ARITY: usize = 4;

/// Supplies directed edge costs to [`dijkstra_into`] by *accumulating*
/// `base + w(e, from → to)` into a caller-provided output buffer.
///
/// The accumulate form (rather than "return the edge cost") exists so that
/// implementations holding costs by reference — like the tiebreaking
/// schemes' per-direction cost tables — never clone an exact cost to hand
/// it to the search: they forward straight to [`PathCost::add_into`].
///
/// Any `FnMut(EdgeId, Vertex, Vertex) -> C` closure is an `EdgeCostSource`
/// via the blanket impl, which keeps the classic [`crate::dijkstra`]
/// signature working unchanged.
pub trait EdgeCostSource<C: PathCost> {
    /// Writes `base + w(e, from → to)` into `out`, reusing `out`'s storage.
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C);

    /// Returns `base + w(e, from → to)` by value — the inline-key
    /// engine's relaxation path, which keeps register-copy candidates out
    /// of memory entirely (the accumulate form forces a store/load round
    /// trip through the scratch's candidate buffer on every edge).
    ///
    /// The default builds on [`EdgeCostSource::accumulate`] via a fresh
    /// [`PathCost::zero`]; implementations serving `Copy` costs should
    /// override it with pure value arithmetic. Only the inline-key engine
    /// calls this, so heavyweight costs keep their buffer-reusing
    /// accumulate path.
    #[inline]
    fn compute(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex) -> C {
        let mut out = C::zero();
        self.accumulate(base, e, from, to, &mut out);
        out
    }
}

impl<C: PathCost, F: FnMut(EdgeId, Vertex, Vertex) -> C> EdgeCostSource<C> for F {
    #[inline]
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C) {
        let w = self(e, from, to);
        base.add_into(&w, out);
    }

    #[inline]
    fn compute(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex) -> C {
        base.plus(&self(e, from, to))
    }
}

/// Per-direction edge costs held as two parallel slices, indexed by
/// [`EdgeId`]: `fwd[e]` is the cost of traversing `e` from its canonical
/// lower endpoint to the higher, `bwd[e]` the reverse.
///
/// This is the zero-clone [`EdgeCostSource`] used by the exact tiebreaking
/// schemes: relaxations borrow the stored cost and accumulate in place.
///
/// # Examples
///
/// ```
/// use rsp_graph::{dijkstra_into, generators, DirectedCosts, FaultSet, SearchScratch};
///
/// let g = generators::cycle(4);
/// let fwd = vec![10u64; g.m()];
/// let bwd = vec![10u64; g.m()];
/// let mut scratch = SearchScratch::new();
/// dijkstra_into(&g, 0, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
/// assert_eq!(scratch.cost(2), Some(&20));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DirectedCosts<'a, C> {
    fwd: &'a [C],
    bwd: &'a [C],
}

impl<'a, C: PathCost> DirectedCosts<'a, C> {
    /// Wraps per-direction cost slices (one entry per edge).
    pub fn new(fwd: &'a [C], bwd: &'a [C]) -> Self {
        assert_eq!(fwd.len(), bwd.len(), "one forward and one backward cost per edge");
        DirectedCosts { fwd, bwd }
    }
}

impl<C: PathCost> EdgeCostSource<C> for DirectedCosts<'_, C> {
    #[inline]
    fn accumulate(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex, out: &mut C) {
        // Endpoints are canonicalized `u < v`, so the traversal direction is
        // recoverable from the endpoint order alone.
        let w = if from < to { &self.fwd[e] } else { &self.bwd[e] };
        base.add_into(w, out);
    }

    #[inline]
    fn compute(&mut self, base: &C, e: EdgeId, from: Vertex, to: Vertex) -> C {
        base.plus(if from < to { &self.fwd[e] } else { &self.bwd[e] })
    }
}

/// Reusable single-source search state for [`bfs_into`] and
/// [`dijkstra_into`].
///
/// One scratch holds the complete result of its most recent query — costs,
/// hop counts, parent pointers, tie flag — readable through the accessor
/// methods without materializing an owned tree. Reusing the scratch across
/// queries skips all `O(n)` allocation and clearing: only the vertices the
/// previous query touched are ever rewritten.
///
/// The cost type parameter defaults to `u32` for unweighted (BFS-only) use.
///
/// # Examples
///
/// ```
/// use rsp_graph::{bfs_into, generators, FaultSet, SearchScratch};
///
/// let g = generators::cycle(6);
/// let mut scratch = SearchScratch::<u32>::new();
/// bfs_into(&g, 0, &FaultSet::empty(), &mut scratch);
/// assert_eq!(scratch.dist(3), Some(3));
///
/// // Back-to-back reuse: earlier results are invisible to the new query.
/// let cut = g.edge_between(0, 1).unwrap();
/// bfs_into(&g, 0, &FaultSet::single(cut), &mut scratch);
/// assert_eq!(scratch.dist(1), Some(5), "re-routed the long way around");
/// ```
#[derive(Clone, Debug)]
pub struct SearchScratch<C = u32> {
    /// Query generation; a per-vertex slot is valid iff `stamp[v] == epoch`.
    pub(crate) epoch: u32,
    /// Vertex count of the most recent query's graph.
    pub(crate) n: usize,
    pub(crate) source: Vertex,
    /// Whether the most recent query was weighted (`dijkstra_into`).
    pub(crate) weighted: bool,
    pub(crate) ties: bool,
    pub(crate) stamp: Vec<u32>,
    /// Tentative/final exact cost per vertex (weighted queries only).
    pub(crate) key: Vec<C>,
    /// Parent `(vertex, edge)` in stored-width `u32` ids; valid iff stamped
    /// and not the source. Half the bytes of the old `(usize, usize)`
    /// layout — parent writes are on every relaxation's hot path.
    pub(crate) parent: Vec<(u32, u32)>,
    pub(crate) hops: Vec<u32>,
    /// Indexed d-ary min-heap of open vertex ids, ordered by `(key, id)`
    /// ([`HeapKind::Indexed`] policy only).
    pub(crate) heap: Vec<u32>,
    /// Position of each vertex in `heap`, or [`SETTLED`]. Under the
    /// inline-key policy this degrades to a settled/open marker (see
    /// [`SETTLED`]).
    pub(crate) heap_pos: Vec<u32>,
    /// Flat lazy min-heap of inline `(cost, vertex)` entries
    /// ([`HeapKind::InlineKey`] policy only), vertex ids stored as `u32`
    /// so a `(u32, u32)` entry is a single 8-byte word (the old
    /// `(C, usize)` form padded every u32-cost entry to 16 bytes).
    /// Improved keys are pushed as fresh entries; stale entries are
    /// skipped at pop. This is `std`'s binary heap on purpose: its unsafe
    /// hole-based sifts beat anything expressible under this crate's
    /// `#![forbid(unsafe_code)]` by ~40% on out-of-cache graphs (measured
    /// against a safe 4-ary heap).
    pub(crate) lazy: BinaryHeap<Reverse<(C, u32)>>,
    /// The heap engine serving the current query (fixed at
    /// [`SearchScratch::begin`]; see [`SearchScratch::set_heap_kind`]).
    pub(crate) active: HeapKind,
    /// Forced heap engine, overriding the automatic choice.
    heap_override: Option<HeapKind>,
    /// BFS frontier ring buffer (stored-width ids).
    pub(crate) queue: VecDeque<u32>,
    /// Dirty list: vertices reached by the current query, in reach order
    /// (stored-width ids).
    pub(crate) touched: Vec<u32>,
    /// Relaxation buffer: the candidate cost under evaluation.
    pub(crate) cand: C,
}

impl<C: PathCost> SearchScratch<C> {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A scratch pre-sized for graphs with up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = SearchScratch {
            epoch: 0,
            n: 0,
            source: 0,
            weighted: false,
            ties: false,
            stamp: Vec::new(),
            key: Vec::new(),
            parent: Vec::new(),
            hops: Vec::new(),
            // Pre-size only the heap the policy will use; a forced
            // override of the other engine just grows it amortized.
            heap: Vec::with_capacity(if C::HEAP == HeapKind::Indexed { n } else { 0 }),
            heap_pos: Vec::new(),
            lazy: BinaryHeap::with_capacity(if C::HEAP == HeapKind::InlineKey { n } else { 0 }),
            active: C::HEAP,
            heap_override: None,
            queue: VecDeque::with_capacity(n),
            touched: Vec::with_capacity(n),
            cand: C::zero(),
        };
        s.grow(n);
        s
    }

    fn grow(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.key.resize_with(n, C::zero);
            self.parent.resize(n, (0, 0));
            self.hops.resize(n, 0);
            self.heap_pos.resize(n, SETTLED);
        }
    }

    /// Opens a new query generation. All previous per-vertex state becomes
    /// invisible in `O(1)` (amortized: a full clear happens only when the
    /// 32-bit epoch wraps, once per ~4 billion queries).
    pub(crate) fn begin(&mut self, n: usize, source: Vertex, weighted: bool) {
        assert!(n < SETTLED as usize, "graph too large for scratch heap indices");
        self.grow(n);
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.n = n;
        self.source = source;
        self.weighted = weighted;
        self.ties = false;
        self.touched.clear();
        self.heap.clear();
        self.lazy.clear();
        self.queue.clear();
        // Fix the heap engine for this query: the cost type's policy,
        // unless explicitly overridden.
        self.active = self.heap_override.unwrap_or(C::HEAP);
    }

    /// Forces the heap engine for subsequent queries, or restores the
    /// cost type's [`PathCost::HEAP`] policy with `None`.
    ///
    /// Both engines produce byte-identical results, so this is a
    /// performance knob — used by the benches to measure the policies
    /// against each other and by the property suite to pin them to each
    /// other.
    pub fn set_heap_kind(&mut self, kind: Option<HeapKind>) {
        self.heap_override = kind;
    }

    /// Builder-style companion of [`SearchScratch::set_heap_kind`].
    pub fn with_heap_kind(mut self, kind: HeapKind) -> Self {
        self.heap_override = Some(kind);
        self
    }

    /// The most recent query's source vertex.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// `true` iff the most recent query reached `v`.
    #[inline]
    pub fn reached(&self, v: Vertex) -> bool {
        v < self.n && self.stamp[v] == self.epoch
    }

    /// Exact cost of the selected source-to-`v` path, or `None` if `v` is
    /// unreachable. Meaningful after [`dijkstra_into`] only; BFS queries
    /// report `None` for every vertex.
    #[inline]
    pub fn cost(&self, v: Vertex) -> Option<&C> {
        if self.weighted && self.reached(v) {
            Some(&self.key[v])
        } else {
            None
        }
    }

    /// Hop count of the selected source-to-`v` path, or `None` if
    /// unreachable. For BFS queries this is the unweighted distance.
    #[inline]
    pub fn hops(&self, v: Vertex) -> Option<u32> {
        if self.reached(v) {
            Some(self.hops[v])
        } else {
            None
        }
    }

    /// Unweighted distance alias for [`SearchScratch::hops`] (the natural
    /// name after a [`bfs_into`] query).
    #[inline]
    pub fn dist(&self, v: Vertex) -> Option<u32> {
        self.hops(v)
    }

    /// Parent of `v` in the selected tree as `(vertex, edge id)`, or `None`
    /// for the source and unreachable vertices.
    #[inline]
    pub fn parent(&self, v: Vertex) -> Option<(Vertex, EdgeId)> {
        if v != self.source && self.reached(v) {
            let (p, e) = self.parent[v];
            Some((p as usize, e as usize))
        } else {
            None
        }
    }

    /// `true` iff the most recent weighted query saw two equal-cost ways to
    /// reach some vertex (the runtime witness that a tiebreaking weight
    /// function failed to be tie-free).
    pub fn ties_detected(&self) -> bool {
        self.ties
    }

    /// Number of vertices the most recent query reached (incl. the source).
    pub fn reachable_count(&self) -> usize {
        self.touched.len()
    }

    /// The selected source-to-`v` path, or `None` if unreachable.
    pub fn path_to(&self, v: Vertex) -> Option<Path> {
        if !self.reached(v) {
            return None;
        }
        let mut verts = vec![v];
        let mut cur = v;
        while cur != self.source {
            let (p, _) = self.parent[cur];
            verts.push(p as usize);
            cur = p as usize;
        }
        verts.reverse();
        Some(Path::new(verts))
    }

    /// Tree edge ids of the most recent query (one per reached non-source
    /// vertex), in reach order. Iterates the dirty list, not all of `0..n`.
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let source = self.source as u32;
        self.touched
            .iter()
            .filter(move |&&v| v != source)
            .map(|&v| self.parent[v as usize].1 as usize)
    }

    /// Materializes the most recent query as an owned [`BfsTree`].
    ///
    /// # Panics
    ///
    /// Panics if no query has been run into this scratch.
    pub fn to_bfs_tree(&self) -> BfsTree {
        assert!(self.epoch > 0, "no search has been run into this scratch");
        let mut dist = vec![None; self.n];
        let mut parent = vec![None; self.n];
        for &v in &self.touched {
            let v = v as usize;
            dist[v] = Some(self.hops[v]);
            if v != self.source {
                let (p, e) = self.parent[v];
                parent[v] = Some((p as usize, e as usize));
            }
        }
        BfsTree::from_parts(self.source, dist, parent)
    }

    /// Materializes the most recent weighted query as an owned
    /// [`WeightedSpt`], cloning each reached vertex's cost once.
    ///
    /// # Panics
    ///
    /// Panics if the most recent query was not a [`dijkstra_into`] run.
    pub fn to_weighted_spt(&self) -> WeightedSpt<C> {
        assert!(self.weighted, "to_weighted_spt needs a dijkstra_into query");
        let mut cost = vec![None; self.n];
        let mut parent = vec![None; self.n];
        let mut hops = vec![0u32; self.n];
        for &v in &self.touched {
            let v = v as usize;
            cost[v] = Some(self.key[v].clone());
            hops[v] = self.hops[v];
            if v != self.source {
                let (p, e) = self.parent[v];
                parent[v] = Some((p as usize, e as usize));
            }
        }
        WeightedSpt::new(self.source, parent, cost, hops, self.ties)
    }
}

impl<C: PathCost> Default for SearchScratch<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Hooks into the search loops, called as the traversal progresses.
///
/// The batch engine ([`crate::batch`]) records settle order and per-step
/// progress through this trait to decide how much of a fault-free baseline
/// run a faulted query can reuse. The no-op [`NoObserver`] compiles away,
/// keeping the plain [`bfs_into`] / [`dijkstra_into`] hot paths unchanged.
pub(crate) trait SearchObserver {
    /// A vertex left the frontier and its final distance/cost is fixed
    /// (BFS dequeue; Dijkstra heap pop). Called *before* its edges relax.
    #[inline]
    fn popped(&mut self, _v: Vertex) {}

    /// All edges of the popped vertex have been relaxed. `reached` is the
    /// number of vertices discovered so far; `ties` the cumulative tie flag.
    #[inline]
    fn relaxed(&mut self, _reached: usize, _ties: bool) {}
}

/// The do-nothing observer behind the public single-query entry points.
pub(crate) struct NoObserver;

impl SearchObserver for NoObserver {}

/// Runs BFS from `source` in `g \ faults` into `scratch`, allocation-free
/// once the scratch is warm.
///
/// Identical traversal (and therefore identical trees) to [`crate::bfs`]:
/// neighbors are visited in increasing vertex id, ties broken by first
/// discovery. Results are read from the scratch.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn bfs_into<C: PathCost>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    scratch: &mut SearchScratch<C>,
) {
    bfs_observed(g, source, faults, scratch, &mut NoObserver);
}

/// [`bfs_into`] with an observer hook (the batch engine's entry point).
pub(crate) fn bfs_observed<C: PathCost, O: SearchObserver>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) {
    assert!(source < g.n(), "bfs source {source} out of range");
    scratch.begin(g.n(), source, false);
    scratch.stamp[source] = scratch.epoch;
    scratch.hops[source] = 0;
    scratch.touched.push(source as u32);
    scratch.queue.push_back(source as u32);
    bfs_run(g, faults, scratch, obs);
}

/// The BFS main loop over whatever frontier `scratch.queue` currently
/// holds; also the continuation step of a batch resume.
pub(crate) fn bfs_run<C: PathCost, O: SearchObserver>(
    g: &Graph,
    faults: &FaultSet,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) {
    let epoch = scratch.epoch;
    while let Some(u) = scratch.queue.pop_front() {
        let u = u as usize;
        obs.popped(u);
        let du = scratch.hops[u];
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) || scratch.stamp[v] == epoch {
                continue;
            }
            scratch.stamp[v] = epoch;
            scratch.hops[v] = du + 1;
            scratch.parent[v] = (u as u32, e as u32);
            scratch.touched.push(v as u32);
            scratch.queue.push_back(v as u32);
        }
        obs.relaxed(scratch.touched.len(), false);
    }
}

/// Runs exact-cost Dijkstra from `source` in `g \ faults` into `scratch`,
/// on the heap policy selected by the cost type ([`PathCost::HEAP`]).
///
/// Semantics match [`crate::dijkstra`] exactly — same trees, costs, hop
/// counts, and tie detection — under *either* policy. Vertices settle in
/// `(cost, vertex id)` order, the same total order the lazy-deletion binary
/// heap realized, so even on inputs with genuine ties the selected tree is
/// identical.
///
/// Costs must be non-negative. Under [`HeapKind::Indexed`] each vertex's
/// exact cost lives only in the scratch's cost array; the heap holds vertex
/// ids, compares through that array, and decrease-keys in place, so no cost
/// is ever cloned into the heap. Under [`HeapKind::InlineKey`] the heap
/// holds flat `(cost, vertex)` entries (improved keys are re-pushed, stale
/// entries skipped at pop) — cheaper for register-copy costs because no
/// heap positions are maintained. Relaxed candidates are accumulated in
/// place via [`PathCost::add_into`] either way.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn dijkstra_into<C, F>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    costs: F,
    scratch: &mut SearchScratch<C>,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
{
    dijkstra_observed(g, source, faults, costs, scratch, &mut NoObserver);
}

/// [`dijkstra_into`] with an observer hook (the batch engine's entry point).
pub(crate) fn dijkstra_observed<C, F, O>(
    g: &Graph,
    source: Vertex,
    faults: &FaultSet,
    costs: F,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    O: SearchObserver,
{
    dijkstra_seed(g, source, scratch);
    dijkstra_run(g, faults, costs, scratch, obs, usize::MAX);
}

/// Opens a weighted query generation and enqueues the source, leaving the
/// scratch ready for [`dijkstra_run`]. Split out so the batch engine can
/// interleave bounded run segments with checkpoint captures.
pub(crate) fn dijkstra_seed<C: PathCost>(
    g: &Graph,
    source: Vertex,
    scratch: &mut SearchScratch<C>,
) {
    assert!(source < g.n(), "dijkstra source {source} out of range");
    scratch.begin(g.n(), source, true);
    scratch.stamp[source] = scratch.epoch;
    scratch.key[source].set_zero();
    scratch.hops[source] = 0;
    scratch.touched.push(source as u32);
    match scratch.active {
        HeapKind::InlineKey => {
            scratch.heap_pos[source] = OPEN;
            scratch.lazy.push(Reverse((scratch.key[source].clone(), source as u32)));
        }
        HeapKind::Indexed => {
            scratch.heap_pos[source] = 0;
            scratch.heap.push(source as u32);
        }
    }
}

/// Relaxes the single candidate route `u —e→ v` against `v`'s current
/// state under the [`HeapKind::Indexed`] policy. `cand` must already hold
/// the candidate cost `key[u] + w(e)`.
///
/// Shared verbatim between the main loop and the batch engine's prefix
/// replay — the decision structure (and therefore parent selection and tie
/// detection) must be identical in both.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn relax<C: PathCost>(
    u: Vertex,
    v: Vertex,
    e: EdgeId,
    epoch: u32,
    cand: &mut C,
    stamp: &mut [u32],
    key: &mut [C],
    parent: &mut [(u32, u32)],
    hops: &mut [u32],
    heap: &mut Vec<u32>,
    heap_pos: &mut [u32],
    touched: &mut Vec<u32>,
    ties: &mut bool,
) {
    if stamp[v] != epoch {
        // First route into v: adopt the candidate by swap, keeping
        // both buffers warm.
        stamp[v] = epoch;
        mem::swap(&mut key[v], cand);
        parent[v] = (u as u32, e as u32);
        hops[v] = hops[u] + 1;
        touched.push(v as u32);
        let end = heap.len();
        heap_pos[v] = end as u32;
        heap.push(v as u32);
        sift_up(heap, heap_pos, key, end);
    } else if heap_pos[v] != SETTLED {
        match (*cand).cmp(&key[v]) {
            Ordering::Less => {
                mem::swap(&mut key[v], cand);
                parent[v] = (u as u32, e as u32);
                hops[v] = hops[u] + 1;
                let pos = heap_pos[v] as usize;
                sift_up(heap, heap_pos, key, pos);
            }
            // Two distinct minimum-cost routes to v: a genuine tie.
            Ordering::Equal => *ties = true,
            Ordering::Greater => {}
        }
    } else if *cand == key[v] {
        // Equal-cost route into an already-settled vertex is a tie
        // too (matches the lazy-deletion engine's detection).
        *ties = true;
    }
}

/// Relaxes the single candidate route `u —e→ v` against `v`'s current
/// state under the [`HeapKind::InlineKey`] policy. `cand` is the
/// candidate cost `key[u] + w(e)`, passed *by value*: inline-eligible
/// costs are register copies, and keeping the candidate out of memory is
/// half the point of this engine (the indexed engine's
/// [`EdgeCostSource::accumulate`] path round-trips every candidate
/// through the scratch's buffer instead).
///
/// Reaches the exact same verdicts as [`relax`]: a strictly better route
/// pushes a fresh `(cost, vertex)` entry (the old entry goes stale and is
/// skipped at pop), an equal-cost route flags a tie whether `v` is open or
/// settled, and a worse route is ignored. A strictly better route into a
/// *settled* vertex cannot occur with non-negative costs, which is what
/// lets this variant skip the open/settled distinction entirely — except
/// for the one-time [`OPEN`] marker at discovery, kept so the batch
/// engine's prefix replay can tell copied-settled vertices apart.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn relax_inline<C: PathCost>(
    u: Vertex,
    v: Vertex,
    e: EdgeId,
    epoch: u32,
    cand: C,
    stamp: &mut [u32],
    key: &mut [C],
    parent: &mut [(u32, u32)],
    hops: &mut [u32],
    lazy: &mut BinaryHeap<Reverse<(C, u32)>>,
    heap_pos: &mut [u32],
    touched: &mut Vec<u32>,
    ties: &mut bool,
) {
    if stamp[v] != epoch {
        stamp[v] = epoch;
        key[v] = cand.clone();
        parent[v] = (u as u32, e as u32);
        hops[v] = hops[u] + 1;
        heap_pos[v] = OPEN;
        touched.push(v as u32);
        lazy.push(Reverse((cand, v as u32)));
    } else {
        match cand.cmp(&key[v]) {
            Ordering::Less => {
                key[v] = cand.clone();
                parent[v] = (u as u32, e as u32);
                hops[v] = hops[u] + 1;
                lazy.push(Reverse((cand, v as u32)));
            }
            // Equal-cost routes are ties, whether v is open or settled —
            // the same two cases the indexed engine flags.
            Ordering::Equal => *ties = true,
            Ordering::Greater => {}
        }
    }
}

/// The Dijkstra main loop over whatever open set the policy-selected heap
/// currently holds; also the continuation step of a batch resume.
///
/// Settles at most `limit` vertices, leaving the scratch consistent and
/// resumable when the budget runs out (how the batch engine pauses the
/// baseline run to capture checkpoints). Pass `usize::MAX` to drain.
pub(crate) fn dijkstra_run<C, F, O>(
    g: &Graph,
    faults: &FaultSet,
    costs: F,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
    limit: usize,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    O: SearchObserver,
{
    match scratch.active {
        HeapKind::InlineKey => dijkstra_run_inline(g, faults, costs, scratch, obs, limit),
        HeapKind::Indexed => dijkstra_run_indexed(g, faults, costs, scratch, obs, limit),
    }
}

/// [`dijkstra_run`] under the indexed decrease-key policy.
fn dijkstra_run_indexed<C, F, O>(
    g: &Graph,
    faults: &FaultSet,
    mut costs: F,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
    limit: usize,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    O: SearchObserver,
{
    let SearchScratch {
        epoch, stamp, key, parent, hops, heap, heap_pos, touched, cand, ties, ..
    } = scratch;
    let epoch = *epoch;

    let mut budget = limit;
    while budget > 0 && !heap.is_empty() {
        let u = pop_min(heap, heap_pos, key) as usize;
        budget -= 1;
        obs.popped(u);
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) {
                continue;
            }
            costs.accumulate(&key[u], e, u, v, cand);
            relax(u, v, e, epoch, cand, stamp, key, parent, hops, heap, heap_pos, touched, ties);
        }
        obs.relaxed(touched.len(), *ties);
    }
}

/// [`dijkstra_run`] under the inline-key lazy policy.
fn dijkstra_run_inline<C, F, O>(
    g: &Graph,
    faults: &FaultSet,
    mut costs: F,
    scratch: &mut SearchScratch<C>,
    obs: &mut O,
    limit: usize,
) where
    C: PathCost,
    F: EdgeCostSource<C>,
    O: SearchObserver,
{
    let SearchScratch { epoch, stamp, key, parent, hops, lazy, heap_pos, touched, ties, .. } =
        scratch;
    let epoch = *epoch;

    let mut budget = limit;
    while budget > 0 {
        let Some(Reverse((c, u))) = lazy.pop() else { break };
        let u = u as usize;
        if key[u] != c {
            // Stale entry: u was re-pushed with a better key (and that
            // entry either settled u already or still precedes this one).
            continue;
        }
        // No heap position to retire, but the settled/open marker keeps
        // the batch engine's frontier filters policy-agnostic.
        heap_pos[u] = SETTLED;
        budget -= 1;
        obs.popped(u);
        for (v, e) in g.neighbors(u) {
            if faults.contains(e) {
                continue;
            }
            let cand = costs.compute(&c, e, u, v);
            relax_inline(
                u, v, e, epoch, cand, stamp, key, parent, hops, lazy, heap_pos, touched, ties,
            );
        }
        obs.relaxed(touched.len(), *ties);
    }
}

/// `(key, id)`-lexicographic heap order; the id component never decides
/// path selection, it only makes the order total (and reproduces the lazy
/// binary heap's settle order on tied costs).
#[inline]
fn heap_less<C: Ord>(key: &[C], a: u32, b: u32) -> bool {
    match key[a as usize].cmp(&key[b as usize]) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a < b,
    }
}

pub(crate) fn sift_up<C: Ord>(heap: &mut [u32], pos: &mut [u32], key: &[C], mut i: usize) {
    while i > 0 {
        let p = (i - 1) / ARITY;
        if heap_less(key, heap[i], heap[p]) {
            heap.swap(i, p);
            pos[heap[i] as usize] = i as u32;
            pos[heap[p] as usize] = p as u32;
            i = p;
        } else {
            break;
        }
    }
}

fn sift_down<C: Ord>(heap: &mut [u32], pos: &mut [u32], key: &[C], mut i: usize) {
    loop {
        let first = i * ARITY + 1;
        if first >= heap.len() {
            break;
        }
        let last = (first + ARITY).min(heap.len());
        let mut best = i;
        for c in first..last {
            if heap_less(key, heap[c], heap[best]) {
                best = c;
            }
        }
        if best == i {
            break;
        }
        heap.swap(i, best);
        pos[heap[i] as usize] = i as u32;
        pos[heap[best] as usize] = best as u32;
        i = best;
    }
}

fn pop_min<C: Ord>(heap: &mut Vec<u32>, pos: &mut [u32], key: &[C]) -> u32 {
    let root = heap[0];
    pos[root as usize] = SETTLED;
    let last = heap.pop().expect("pop_min on an empty heap");
    if !heap.is_empty() {
        heap[0] = last;
        pos[last as usize] = 0;
        sift_down(heap, pos, key, 0);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::dijkstra::dijkstra;
    use crate::generators;

    fn assert_same_bfs(g: &Graph, s: Vertex, faults: &FaultSet, scratch: &mut SearchScratch<u32>) {
        let fresh = bfs(g, s, faults);
        bfs_into(g, s, faults, scratch);
        for v in g.vertices() {
            assert_eq!(scratch.dist(v), fresh.dist(v), "dist({v})");
            assert_eq!(scratch.parent(v), fresh.parent(v), "parent({v})");
        }
        assert_eq!(scratch.to_bfs_tree().reachable_count(), fresh.reachable_count());
    }

    #[test]
    fn bfs_into_matches_bfs_under_reuse() {
        let mut scratch = SearchScratch::new();
        let g = generators::grid(4, 5);
        for s in [0, 7, 19] {
            for e in [None, Some(0), Some(5)] {
                let faults = e.map(FaultSet::single).unwrap_or_default();
                assert_same_bfs(&g, s, &faults, &mut scratch);
            }
        }
        // Switch to a different (smaller) graph with the same scratch.
        let h = generators::cycle(5);
        assert_same_bfs(&h, 3, &FaultSet::empty(), &mut scratch);
    }

    #[test]
    fn dijkstra_into_matches_dijkstra_under_reuse() {
        let g = generators::grid(4, 4);
        let mut scratch = SearchScratch::<u64>::new();
        for s in [0, 5, 15] {
            for e in 0..3 {
                let faults = FaultSet::single(e);
                let fresh = dijkstra(&g, s, &faults, |e, _, _| 100 + e as u64);
                dijkstra_into(&g, s, &faults, |e, _, _| 100 + e as u64, &mut scratch);
                for v in g.vertices() {
                    assert_eq!(scratch.cost(v), fresh.cost(v));
                    assert_eq!(scratch.hops(v), fresh.hops(v));
                    assert_eq!(scratch.parent(v), fresh.parent(v));
                }
                assert_eq!(scratch.ties_detected(), fresh.ties_detected());
            }
        }
    }

    #[test]
    fn decrease_key_reroutes_through_cheaper_parent() {
        // Diamond where the first discovery of vertex 3 is later improved:
        // 0-1 (1), 0-2 (10), 1-3 (100), 2-3 (1) ⇒ best is 0→1→3 at 101
        // versus 0→2→3 at 11; the engine must decrease 3's key after
        // settling 2.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = |e: EdgeId| [1u64, 10, 100, 1][e];
        let mut scratch = SearchScratch::<u64>::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), |e, _, _| w(e), &mut scratch);
        assert_eq!(scratch.cost(3), Some(&11));
        assert_eq!(scratch.path_to(3).unwrap().vertices(), &[0, 2, 3]);
        assert_eq!(scratch.hops(3), Some(2));
    }

    #[test]
    fn directed_costs_orientation() {
        // Path 0-1-2 with cheap canonical (low→high) traversal and
        // expensive reverse traversal: walking away from 0 uses fwd,
        // walking toward 0 uses bwd.
        let g = generators::path_graph(3);
        let fwd = vec![10u64; g.m()];
        let bwd = vec![1000u64; g.m()];
        let mut scratch = SearchScratch::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
        assert_eq!(scratch.cost(2), Some(&20), "two forward hops");
        dijkstra_into(&g, 2, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
        assert_eq!(scratch.cost(0), Some(&2000), "two backward hops");
    }

    #[test]
    fn stale_state_is_invisible_across_queries() {
        let g = generators::path_graph(6);
        let mut scratch = SearchScratch::<u64>::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), |_, _, _| 1u64, &mut scratch);
        assert_eq!(scratch.cost(5), Some(&5));
        // Cut the path: the unreachable side must read as unreached even
        // though its slots still hold the previous query's values.
        let cut = g.edge_between(2, 3).unwrap();
        dijkstra_into(&g, 0, &FaultSet::single(cut), |_, _, _| 1u64, &mut scratch);
        assert_eq!(scratch.cost(5), None);
        assert_eq!(scratch.hops(4), None);
        assert!(scratch.path_to(3).is_none());
        assert_eq!(scratch.reachable_count(), 3);
    }

    #[test]
    fn accessors_before_any_query_are_empty() {
        let scratch = SearchScratch::<u64>::new();
        assert!(!scratch.reached(0));
        assert_eq!(scratch.cost(0), None);
        assert_eq!(scratch.dist(0), None);
        assert!(scratch.path_to(0).is_none());
        assert_eq!(scratch.reachable_count(), 0);
        assert_eq!(scratch.tree_edges().count(), 0);
    }

    #[test]
    fn tree_edges_come_from_dirty_list() {
        let g = generators::complete(6);
        let mut scratch = SearchScratch::<u32>::new();
        bfs_into(&g, 2, &FaultSet::empty(), &mut scratch);
        let edges: Vec<EdgeId> = scratch.tree_edges().collect();
        assert_eq!(edges.len(), 5);
        let tree = scratch.to_bfs_tree();
        let mut expected: Vec<EdgeId> = tree.tree_edges().collect();
        let mut got = edges;
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn inline_and_indexed_engines_are_byte_identical() {
        // Tie-rich near-uniform costs on a grid: settle order, parents,
        // and tie flags must agree between the two heap engines on every
        // query, including under scratch reuse.
        let g = generators::grid(5, 6);
        let mut inline = SearchScratch::<u64>::new().with_heap_kind(HeapKind::InlineKey);
        let mut indexed = SearchScratch::<u64>::new().with_heap_kind(HeapKind::Indexed);
        for s in [0, 13, 29] {
            for e in [None, Some(0), Some(17)] {
                let faults = e.map(FaultSet::single).unwrap_or_default();
                let cost =
                    |e: EdgeId, u: Vertex, v: Vertex| 100 + (e as u64 % 3) + u64::from(u < v);
                dijkstra_into(&g, s, &faults, cost, &mut inline);
                dijkstra_into(&g, s, &faults, cost, &mut indexed);
                assert_eq!(inline.active, HeapKind::InlineKey);
                assert_eq!(indexed.active, HeapKind::Indexed);
                for v in g.vertices() {
                    assert_eq!(inline.cost(v), indexed.cost(v), "cost({v})");
                    assert_eq!(inline.hops(v), indexed.hops(v), "hops({v})");
                    assert_eq!(inline.parent(v), indexed.parent(v), "parent({v})");
                }
                assert_eq!(inline.ties_detected(), indexed.ties_detected(), "ties s{s}");
                assert_eq!(inline.reachable_count(), indexed.reachable_count());
            }
        }
    }

    #[test]
    fn heap_engine_follows_policy_and_override() {
        // Register-copy costs run the inline-key heap by policy; the
        // override forces either engine and `None` restores the policy.
        let g = generators::grid(4, 4);
        let mut s = SearchScratch::<u64>::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), |_, _, _| 1u64, &mut s);
        assert_eq!(s.active, HeapKind::InlineKey, "u64 policy: inline");
        s.set_heap_kind(Some(HeapKind::Indexed));
        dijkstra_into(&g, 0, &FaultSet::empty(), |_, _, _| 1u64, &mut s);
        assert_eq!(s.active, HeapKind::Indexed, "override wins");
        s.set_heap_kind(None);
        dijkstra_into(&g, 0, &FaultSet::empty(), |_, _, _| 1u64, &mut s);
        assert_eq!(s.active, HeapKind::InlineKey, "None restores the policy");

        // BigInt keeps the indexed decrease-key heap by policy.
        use rsp_arith::BigInt;
        let mut b = SearchScratch::<BigInt>::new();
        dijkstra_into(&g, 0, &FaultSet::empty(), |_, _, _| BigInt::one(), &mut b);
        assert_eq!(b.active, HeapKind::Indexed);
    }

    #[test]
    fn inline_engine_stale_entries_are_skipped() {
        // The diamond forces a re-push: vertex 3 is first discovered at
        // cost 101 via 1, then improved to 11 via 2; the stale entry must
        // be ignored and the final tree must reflect the improvement.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = |e: EdgeId| [1u64, 10, 100, 1][e];
        let mut scratch = SearchScratch::<u64>::new().with_heap_kind(HeapKind::InlineKey);
        dijkstra_into(&g, 0, &FaultSet::empty(), |e, _, _| w(e), &mut scratch);
        assert_eq!(scratch.cost(3), Some(&11));
        assert_eq!(scratch.path_to(3).unwrap().vertices(), &[0, 2, 3]);
        assert!(!scratch.ties_detected());
    }

    #[test]
    fn bigint_costs_accumulate_in_place() {
        use rsp_arith::BigInt;
        let g = generators::grid(3, 3);
        let mut scratch = SearchScratch::<BigInt>::new();
        let fwd: Vec<BigInt> =
            (0..g.m()).map(|e| BigInt::pow2(80) + BigInt::from(e as i64)).collect();
        let bwd: Vec<BigInt> =
            fwd.iter().map(|f| (BigInt::pow2(81) + BigInt::pow2(81)) - f.clone()).collect();
        for s in g.vertices() {
            dijkstra_into(&g, s, &FaultSet::empty(), DirectedCosts::new(&fwd, &bwd), &mut scratch);
            let fresh = dijkstra(&g, s, &FaultSet::empty(), |e, from, to| {
                if from < to {
                    fwd[e].clone()
                } else {
                    bwd[e].clone()
                }
            });
            for v in g.vertices() {
                assert_eq!(scratch.cost(v), fresh.cost(v), "source {s} vertex {v}");
            }
        }
    }
}
