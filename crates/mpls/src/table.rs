//! The dual routing tables of the paper's MPLS deployment sketch.

use rsp_core::Rpts;
use rsp_graph::{FaultSet, Graph, NextHopTable, Path, Vertex};

/// The two routing tables of the restorable MPLS deployment.
///
/// `forward` encodes `π`: entry `(s, t)` is the first hop of `π(s, t)`.
/// `reverse` encodes `π̄(·, t)`: entry `(u, t)` is `u`'s parent in the
/// selected tree rooted at `t`, so following it walks `u ⇝ t` along
/// `reverse(π(t, u))`. Consistency of the scheme (Definition 14) is what
/// makes both tables loop-free.
#[derive(Clone, Debug)]
pub struct DualTables {
    forward: NextHopTable,
    reverse: NextHopTable,
}

impl DualTables {
    /// Builds both tables from a scheme by computing the selected tree of
    /// every source (`O(n)` tree computations).
    pub fn build<S: Rpts>(scheme: &S) -> Self {
        let g = scheme.graph();
        let n = g.n();
        let empty = FaultSet::empty();
        let mut forward = NextHopTable::new(n);
        let mut reverse = NextHopTable::new(n);
        for root in g.vertices() {
            let tree = scheme.tree_from(root, &empty);
            for v in g.vertices() {
                if let Some((parent, _)) = tree.parent(v) {
                    // π(root, v)'s last hop is parent→v; the *reverse*
                    // path v ⇝ root therefore starts by going to parent.
                    reverse.set(v, root, parent);
                }
            }
            // Forward entries: first hop of π(root, v) for every v; walk
            // the tree once, propagating the first hop downward.
            let mut first_hop: Vec<Option<Vertex>> = vec![None; n];
            let mut order: Vec<Vertex> = g.vertices().filter(|&v| tree.dist(v).is_some()).collect();
            order.sort_by_key(|&v| tree.dist(v).expect("filtered reachable"));
            for &v in &order {
                if v == root {
                    continue;
                }
                let (p, _) = tree.parent(v).expect("reachable non-root");
                first_hop[v] = if p == root { Some(v) } else { first_hop[p] };
                forward.set(root, v, first_hop[v].expect("propagated"));
            }
        }
        DualTables { forward, reverse }
    }

    /// The forward table (`π`).
    pub fn forward(&self) -> &NextHopTable {
        &self.forward
    }

    /// The reverse table (`π̄`).
    pub fn reverse(&self) -> &NextHopTable {
        &self.reverse
    }

    /// Routes `s ⇝ x` along the forward table, i.e. along `π(s, x)`.
    pub fn route_forward(&self, g: &Graph, s: Vertex, x: Vertex) -> Option<Path> {
        self.forward.route(g, s, x)
    }

    /// Routes `x ⇝ t` along the reverse table, i.e. along
    /// `reverse(π(t, x))`.
    pub fn route_reverse(&self, g: &Graph, x: Vertex, t: Vertex) -> Option<Path> {
        self.reverse.route(g, x, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_core::RandomGridAtw;
    use rsp_graph::generators;

    #[test]
    fn forward_routes_are_selected_paths() {
        let g = generators::grid(3, 4);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let tables = DualTables::build(&scheme);
        let empty = FaultSet::empty();
        for s in g.vertices() {
            for t in g.vertices() {
                let expected = scheme.path(s, t, &empty).expect("connected");
                let routed = tables.route_forward(&g, s, t).expect("routed");
                assert_eq!(routed, expected, "pair ({s},{t})");
            }
        }
    }

    #[test]
    fn reverse_routes_are_reversed_selected_paths() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let tables = DualTables::build(&scheme);
        let empty = FaultSet::empty();
        for x in g.vertices() {
            for t in g.vertices() {
                let expected = scheme.path(t, x, &empty).expect("connected").reversed();
                let routed = tables.route_reverse(&g, x, t).expect("routed");
                assert_eq!(routed, expected, "pair ({x},{t})");
            }
        }
    }

    #[test]
    fn forward_and_reverse_may_differ() {
        // Asymmetry in action: π(s, t) and reverse(π(t, s)) are
        // independent selections and differ somewhere on a tie-rich graph.
        let g = generators::grid(4, 4);
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        let tables = DualTables::build(&scheme);
        let mut differs = false;
        for s in g.vertices() {
            for t in g.vertices() {
                let f = tables.route_forward(&g, s, t).expect("routed");
                let r = tables.route_reverse(&g, s, t).expect("routed");
                assert_eq!(f.hops(), r.hops(), "both are shortest");
                if f != r {
                    differs = true;
                }
            }
        }
        assert!(differs, "expected at least one asymmetric selection");
    }
}
