//! Distributed-vs-centralized equivalence: the CONGEST constructions must
//! compute exactly the objects their centralized counterparts do.

use restorable_tiebreaking::congest::{
    distributed_1ft_subset_preserver, distributed_ft_spanner, distributed_spt, scheduled_multi_spt,
};
use restorable_tiebreaking::core::RandomGridAtw;
use restorable_tiebreaking::graph::{bfs, diameter, generators, FaultSet};

#[test]
fn distributed_spt_equals_centralized_everywhere() {
    for seed in 0..3 {
        let g = generators::connected_gnm(35, 90, seed);
        let scheme = RandomGridAtw::theorem20(&g, seed + 5).into_scheme();
        for source in [0, 17, 34] {
            let dist = distributed_spt(&g, &scheme, source).unwrap();
            let cent = scheme.spt(source, &FaultSet::empty());
            for v in g.vertices() {
                assert_eq!(dist.dist[v].as_ref(), cent.cost(v));
                if v != source {
                    assert_eq!(dist.parent[v], cent.parent(v).map(|(p, _)| p));
                }
            }
        }
    }
}

#[test]
fn scheduled_instances_survive_congestion() {
    // Heavy congestion: many sources on a small graph. Queueing delays
    // skew the waves; the distance-vector corrections must still converge
    // to the exact centralized trees.
    let g = generators::grid(5, 5);
    let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
    let sources: Vec<usize> = (0..12).map(|i| i * 2).collect();
    let result = scheduled_multi_spt(&g, &scheme, &sources, 31).unwrap();
    for (i, &s) in sources.iter().enumerate() {
        let cent = scheme.spt(s, &FaultSet::empty());
        for v in g.vertices() {
            assert_eq!(result.parents[i][v], cent.parent(v).map(|(p, _)| p));
        }
    }
}

#[test]
fn distributed_preserver_equals_centralized_union_of_trees() {
    let g = generators::connected_gnm(30, 75, 4);
    let sources = [0, 10, 20];
    let seed = 17;
    let dist = distributed_1ft_subset_preserver(&g, &sources, seed).unwrap();
    // The centralized 1-FT S×S preserver under the same weights is the
    // union of the same SPTs.
    let scheme = RandomGridAtw::theorem20(&g, seed).into_scheme();
    let mut central: Vec<usize> = sources
        .iter()
        .flat_map(|&s| scheme.spt(s, &FaultSet::empty()).tree_edges().collect::<Vec<_>>())
        .collect();
    central.sort_unstable();
    central.dedup();
    assert_eq!(dist.edges, central, "identical edge sets, bit for bit");
}

#[test]
fn distributed_spanner_stretch_and_rounds() {
    let g = generators::torus(5, 6);
    let sp = distributed_ft_spanner(&g, 6, 3).unwrap();
    let d = diameter(&g) as usize;
    assert!(sp.stats.rounds <= 20 * (d + 6), "round sanity");
    let h = g.edge_subgraph(sp.edges.iter().copied());
    for (e, u, v) in g.edges() {
        let gf = FaultSet::single(e);
        let hf: FaultSet = h.edge_between(u, v).into_iter().collect();
        for s in g.vertices() {
            let truth = bfs(&g, s, &gf);
            let ours = bfs(&h, s, &hf);
            for t in g.vertices() {
                match (truth.dist(t), ours.dist(t)) {
                    (Some(a), Some(b)) => assert!(b <= a + 4),
                    (None, None) => {}
                    other => panic!("connectivity mismatch {other:?}"),
                }
            }
        }
    }
}
