//! Property-based cross-checks on random graphs: the paper's guarantees
//! must hold for *every* seed, graph, and fault, not just the unit-test
//! instances.

use proptest::prelude::*;
use restorable_tiebreaking::core::{restore_by_concatenation, GeometricAtw, RandomGridAtw, Rpts};
use restorable_tiebreaking::graph::{bfs, connected_pair, generators, FaultSet};
use restorable_tiebreaking::labeling::build_labeling;
use restorable_tiebreaking::replacement::subset_replacement_paths;

/// Strategy: a connected random graph with 6..=18 vertices and a density
/// knob, plus a scheme seed.
fn graph_params() -> impl Strategy<Value = (usize, usize, u64, u64)> {
    (6usize..=18, 0usize..=3, any::<u64>(), any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2 as a property: every (s, t, e) with a surviving path is
    /// restorable by concatenation under the ATW scheme.
    #[test]
    fn atw_scheme_is_1_restorable((n, density, gseed, wseed) in graph_params()) {
        let m = (n - 1) + density * n / 2;
        let g = generators::connected_gnm(n, m.min(n * (n - 1) / 2), gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        for (e, _, _) in g.edges() {
            let faults = FaultSet::single(e);
            for s in g.vertices() {
                for t in g.vertices() {
                    if !connected_pair(&g, s, t, &faults) {
                        continue;
                    }
                    let p = restore_by_concatenation(&scheme, s, t, &faults)
                        .expect("Theorem 2 restoration");
                    prop_assert_eq!(
                        p.hops() as u32,
                        bfs(&g, s, &faults).dist(t).expect("connected"),
                        "replacement must be shortest"
                    );
                }
            }
        }
    }

    /// Perturbed trees are BFS trees: hop distances survive perturbation
    /// under every single fault (the Definition 18 requirement).
    #[test]
    fn perturbed_distances_are_exact((n, density, gseed, wseed) in graph_params()) {
        let m = (n - 1) + density * n / 2;
        let g = generators::connected_gnm(n, m.min(n * (n - 1) / 2), gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let mut fault_sets = vec![FaultSet::empty()];
        fault_sets.extend(g.edges().map(|(e, _, _)| FaultSet::single(e)));
        for fs in &fault_sets {
            for s in g.vertices() {
                let tree = scheme.tree_from(s, fs);
                let truth = bfs(&g, s, fs);
                for v in g.vertices() {
                    prop_assert_eq!(tree.dist(v), truth.dist(v));
                }
            }
        }
    }

    /// Algorithm 1 equals BFS recomputation on every reported entry.
    #[test]
    fn subset_rp_matches_truth((n, density, gseed, wseed) in graph_params()) {
        let m = (n - 1) + density * n / 2;
        let g = generators::connected_gnm(n, m.min(n * (n - 1) / 2), gseed);
        let sources: Vec<usize> = vec![0, n / 2, n - 1];
        let result = subset_replacement_paths(&g, &sources, wseed);
        for p in result.iter() {
            let (s, t) = p.pair();
            prop_assert_eq!(
                p.base_dist(),
                bfs(&g, s, &FaultSet::empty()).dist(t).expect("connected")
            );
            for entry in p.entries() {
                let truth = bfs(&g, s, &FaultSet::single(entry.edge)).dist(t);
                prop_assert_eq!(entry.dist, truth);
            }
        }
    }

    /// Labels recover exact distances for every single fault.
    #[test]
    fn labels_are_exact((n, density, gseed, wseed) in graph_params()) {
        let m = (n - 1) + density * n / 2;
        let g = generators::connected_gnm(n, m.min(n * (n - 1) / 2), gseed);
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let labeling = build_labeling(&scheme, 0);
        let (s, t) = (0, n - 1);
        for (e, u, v) in g.edges() {
            prop_assert_eq!(
                labeling.query(s, t, &[(u, v)]),
                bfs(&g, s, &FaultSet::single(e)).dist(t)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The deterministic geometric scheme agrees with ground truth too
    /// (fewer cases: BigInt Dijkstra on every fault is pricier).
    #[test]
    fn geometric_scheme_is_exact((n, gseed) in (5usize..=10, any::<u64>())) {
        let g = generators::connected_gnm(n, (n - 1) + n / 2, gseed);
        let scheme = GeometricAtw::new(&g).into_scheme();
        for (e, _, _) in g.edges() {
            let fs = FaultSet::single(e);
            let tree = scheme.tree_from(0, &fs);
            let truth = bfs(&g, 0, &fs);
            for v in g.vertices() {
                prop_assert_eq!(tree.dist(v), truth.dist(v));
            }
            prop_assert!(!scheme.spt(0, &fs).ties_detected(), "determinism: no ties ever");
        }
    }
}
