//! Sanity properties for the Internet-shaped generators in
//! [`rsp_graph::gen`]: seeded determinism, exact `n`/`m` accounting,
//! connectivity where the docs promise it, and the scale-free signature —
//! preferential attachment grows hubs that a degree-balanced `G(n, m)` at
//! identical size never produces.

use proptest::prelude::*;
use rsp_graph::{gen, generators, is_connected, Graph};

fn max_degree(g: &Graph) -> usize {
    g.vertices().map(|v| g.degree(v)).max().unwrap_or(0)
}

proptest! {
    /// Same arguments, same graph — byte for byte; a different seed moves
    /// at least one edge (overwhelmingly likely at these sizes, and
    /// deterministic given the fixed strategies).
    #[test]
    fn preferential_attachment_is_seed_deterministic(
        n in 10usize..=120,
        m_per in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let a = gen::preferential_attachment(n, m_per, seed);
        let b = gen::preferential_attachment(n, m_per, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.n(), n);
        prop_assert_eq!(a.m(), (n - m_per) * m_per, "exact accounting");
        prop_assert!(is_connected(&a), "grown from a connected seed");
    }

    /// Watts–Strogatz: exact `m = n·k/2` at every rewiring probability,
    /// determinism per seed, and the promised connectivity at `p = 0`.
    #[test]
    fn watts_strogatz_accounting_and_determinism(
        n in 12usize..=100,
        half_k in 1usize..=3,
        p_pct in 0u32..=100,
        seed in any::<u64>(),
    ) {
        let k = 2 * half_k;
        let p = f64::from(p_pct) / 100.0;
        let a = gen::watts_strogatz(n, k, p, seed);
        prop_assert_eq!(&a, &gen::watts_strogatz(n, k, p, seed));
        prop_assert_eq!(a.n(), n);
        prop_assert_eq!(a.m(), n * k / 2, "rewiring preserves the edge count");
        prop_assert!(is_connected(&gen::watts_strogatz(n, k, 0.0, seed)), "p=0 ring lattice");
    }

    /// ISP hierarchy: exact accounting, determinism, connectivity, and
    /// every access router dual-homed into the core.
    #[test]
    fn isp_hierarchy_shape(
        core_n in 5usize..=30,
        edge_n in 1usize..=60,
        seed in any::<u64>(),
    ) {
        let g = gen::isp_hierarchy(core_n, edge_n, seed);
        prop_assert_eq!(&g, &gen::isp_hierarchy(core_n, edge_n, seed));
        prop_assert_eq!(g.n(), core_n + edge_n);
        prop_assert_eq!(g.m(), 2 * core_n + 2 * edge_n, "exact accounting");
        prop_assert!(is_connected(&g), "core is connected and every uplink lands in it");
        for a in core_n..g.n() {
            prop_assert_eq!(g.degree(a), 2, "access router {} is dual-homed", a);
        }
    }
}

/// The scale-free signature: at equal `n` and `m`, the preferential-
/// attachment hub dwarfs the maximum degree of a degree-balanced
/// `G(n, m)`. Fixed seeds keep this deterministic; the 2× margin is far
/// below the typical gap (power-law hubs sit an order of magnitude above
/// the `G(n, m)` maximum at this size).
#[test]
fn preferential_attachment_grows_hubs_gnm_does_not() {
    for seed in [3u64, 17, 86] {
        let pa = gen::preferential_attachment(600, 3, seed);
        let gnm = generators::connected_gnm(600, pa.m(), seed);
        assert_eq!(pa.m(), gnm.m(), "same size, different shape");
        let (pa_max, gnm_max) = (max_degree(&pa), max_degree(&gnm));
        assert!(
            pa_max >= 2 * gnm_max,
            "seed {seed}: expected a hub, got PA max {pa_max} vs G(n,m) max {gnm_max}"
        );
    }
}

/// A different seed actually moves edges (the `assert_ne` half of
/// determinism, pinned on fixed seeds so it can never flake).
#[test]
fn different_seeds_differ() {
    assert_ne!(gen::preferential_attachment(80, 2, 1), gen::preferential_attachment(80, 2, 2));
    assert_ne!(gen::watts_strogatz(60, 4, 0.5, 1), gen::watts_strogatz(60, 4, 0.5, 2));
    assert_ne!(gen::isp_hierarchy(10, 40, 1), gen::isp_hierarchy(10, 40, 2));
}
