//! Serving-layer CSR differential suite: oracle snapshots built over the
//! CSR core — directly, and through churn-pipeline commits folding a
//! fault-event trace — must answer every query cell-identically to the
//! pre-migration Vec-of-Vec reference engine reading the scheme's weight
//! tables, on the Internet-shaped generator families. This closes the
//! differential loop through every layer above the graph crate.

use proptest::prelude::*;
use rsp_core::RandomGridAtw;
use rsp_graph::reference::{ref_dijkstra, RefGraph, RefTree};
use rsp_graph::{gen, generators, EdgeCostSource, FaultSet, Graph, SearchScratch};
use rsp_oracle::churn::inject::{random_trace, verify_converged};
use rsp_oracle::churn::ChurnPipeline;
use rsp_oracle::OracleSnapshot;

type Scheme = rsp_core::ExactScheme<u128>;

/// One graph per Internet-shaped family, plus the `G(n, m)` control.
fn family_graph() -> impl Strategy<Value = Graph> {
    (0u8..4, 10usize..=20, any::<u64>()).prop_map(|(fam, n, seed)| match fam {
        0 => generators::connected_gnm(n, (2 * n - 1).min(n * (n - 1) / 2), seed),
        1 => gen::preferential_attachment(n, 2, seed),
        2 => gen::watts_strogatz(n, 4, 0.2, seed),
        _ => gen::isp_hierarchy(5 + n / 4, n, seed),
    })
}

/// The reference answer for `(source, faults)` under the scheme's own
/// directed cost tables.
fn reference_tree(scheme: &Scheme, r: &RefGraph, s: usize, faults: &FaultSet) -> RefTree<u128> {
    let mut dc = scheme.directed_costs();
    ref_dijkstra(r, s, faults, |e, from, to| dc.compute(&0u128, e, from, to))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Direct snapshot queries — fast path and engine path alike — equal
    /// the reference engine on every gen-family graph.
    #[test]
    fn snapshot_query_equals_reference(
        g in family_graph(),
        wseed in any::<u64>(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..5),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let snap = OracleSnapshot::builder(&scheme).build();
        let r = RefGraph::from_graph(&g);
        let mut scratch = SearchScratch::with_capacity(g.n());
        for (i, pick) in fault_picks.iter().enumerate() {
            let e = pick.index(g.m());
            let faults = match i % 3 {
                0 => FaultSet::empty(),
                1 => FaultSet::single(e),
                _ => FaultSet::from_edges([e, (e + g.m() / 2) % g.m()]),
            };
            for spick in &source_picks {
                let s = spick.index(g.n());
                let view = snap.query(s, &faults, &mut scratch);
                let spec = reference_tree(&scheme, &r, s, &faults);
                for v in g.vertices() {
                    prop_assert_eq!(
                        view.dist(v),
                        spec.reached(v).then_some(spec.hops[v]),
                        "dist s{} v{}", s, v
                    );
                    prop_assert_eq!(view.parent(v), spec.parent[v], "parent s{} v{}", s, v);
                    prop_assert_eq!(view.cost(v), spec.cost[v].as_ref(), "cost s{} v{}", s, v);
                }
            }
        }
    }

    /// A committed churn trace: the published snapshot's base fault state
    /// folds the accepted events, and every query against it — with and
    /// without an extra query-time fault — equals the reference engine on
    /// the combined fault set.
    #[test]
    fn churn_commit_equals_reference(
        g in family_graph(),
        wseed in any::<u64>(),
        trace_seed in any::<u64>(),
        extra_pick in any::<prop::sample::Index>(),
    ) {
        let scheme = RandomGridAtw::theorem20(&g, wseed).into_scheme();
        let mut pipeline = ChurnPipeline::new(&scheme).unwrap();
        let mut reader = pipeline.reader();
        for ev in random_trace(&g, 24, trace_seed) {
            let _ = pipeline.ingest(ev); // invalid transitions quarantine; that's fine
        }
        let report = pipeline.commit().unwrap();
        prop_assert!(report.published || pipeline.journal().is_empty());
        verify_converged(&pipeline).unwrap();
        prop_assert!(reader.refresh() || pipeline.journal().is_empty());

        let base = pipeline.published_snapshot().base_faults().clone();
        let r = RefGraph::from_graph(&g);
        let extra = extra_pick.index(g.m());
        for faults in [FaultSet::empty(), FaultSet::single(extra)] {
            let mut combined = base.clone();
            for e in faults.iter() {
                combined.insert(e);
            }
            for s in g.vertices() {
                let view = reader.query(s, &faults);
                let spec = reference_tree(&scheme, &r, s, &combined);
                for v in g.vertices() {
                    prop_assert_eq!(
                        view.dist(v),
                        spec.reached(v).then_some(spec.hops[v]),
                        "dist s{} v{}", s, v
                    );
                    prop_assert_eq!(view.parent(v), spec.parent[v], "parent s{} v{}", s, v);
                }
            }
        }
    }
}
