//! The deterministic geometric tiebreaking weight function of Theorem 23.
//!
//! Edges are numbered `i ∈ {1, …, |E|}` and edge `i = (u, v)` receives
//! weight `r(u, v) = sign(u − v) · C^{−i} / (2n)` for a constant `C ≥ 4`.
//! Because the weights decay geometrically, the smallest-indexed edge in
//! the symmetric difference of two paths dominates every later
//! contribution, so no two distinct paths can tie — deterministically, for
//! every fault set, i.e. the function is `f`-tiebreaking for every `f`.
//!
//! The price is bit complexity: weights need `O(|E|)` bits (the paper's
//! Theorem 23), so the scheme runs on exact [`BigInt`] arithmetic. After
//! clearing denominators (multiplying by `2n·C^{|E|}`) the scaled cost of
//! traversing edge `i` in its positive direction is the integer
//! `2n·C^{|E|} + C^{|E|−i}`. We fix `C = 4` so that all powers are powers
//! of two and the dominance condition `C ≥ 4` (needed for
//! `C^{−i} > 2·Σ_{j>i} C^{−j}`) holds with room to spare.

use rsp_arith::BigInt;
use rsp_graph::Graph;

use crate::scheme::ExactScheme;

/// The deterministic geometric ATW function (Theorem 23).
///
/// # Examples
///
/// ```
/// use rsp_core::GeometricAtw;
/// use rsp_graph::{generators, FaultSet};
///
/// let g = generators::cycle(4);
/// let scheme = GeometricAtw::new(&g).into_scheme();
/// assert!(scheme.is_antisymmetric());
/// // Even cycles are all ties; the geometric weights break every one,
/// // with no randomness involved.
/// for s in 0..4 {
///     assert!(!scheme.spt(s, &FaultSet::empty()).ties_detected());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct GeometricAtw {
    graph: Graph,
}

/// The geometric base `C`; must be `≥ 4` for the dominance argument, and a
/// power of two so that scaled weights are cheap shifts.
const BASE_LOG2: u32 = 2; // C = 4

impl GeometricAtw {
    /// Creates the deterministic weight function for `g`.
    ///
    /// Edge `i` (1-based, in edge-id order) gets `r = sign(u−v)·4^{−i}/(2n)`.
    pub fn new(g: &Graph) -> Self {
        GeometricAtw { graph: g.clone() }
    }

    /// Bits needed per scaled weight: `Θ(|E|)` (here exactly
    /// `2|E| + ⌈log₂ 2n⌉ + O(1)`).
    pub fn bits_per_weight(&self) -> usize {
        let m = self.graph.m() as u32;
        let n_bits = usize::BITS - self.graph.n().leading_zeros();
        (2 * m + 1) as usize + n_bits as usize + 1
    }

    /// Materializes the induced scheme on exact big-integer costs.
    ///
    /// The scaled unit weight is `2n·4^m`; edge `i`'s perturbation is
    /// `±4^{m−i}` with sign `sign(u − v)` on the canonical `u → v`
    /// direction (negative, since canonical edges have `u < v`).
    pub fn into_scheme(self) -> ExactScheme<BigInt> {
        let g = self.graph;
        let n = g.n().max(1) as u64;
        let m = g.m() as u32;
        let unit = BigInt::pow2(2 * m + 1) * n; // 2n·4^m
        let mut fwd = Vec::with_capacity(g.m());
        let mut bwd = Vec::with_capacity(g.m());
        for (idx, _, _) in g.edges() {
            let i = idx as u32 + 1; // 1-based edge numbering per the paper

            // perturb = 4^{m−i}; the canonical orientation u → v has
            // u < v, so sign(u − v) = −1 on the forward direction.
            let perturb = BigInt::pow2(BASE_LOG2 * (m - i));
            fwd.push(&unit + &(-perturb.clone()));
            bwd.push(&unit + &perturb);
        }
        let bits = 2 * m as usize + 1 + (64 - n.leading_zeros() as usize) + 1;
        ExactScheme::from_costs(g, fwd, bwd, unit, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Rpts;
    use rsp_graph::{bfs, generators, FaultSet};

    #[test]
    fn antisymmetric() {
        let g = generators::grid(3, 3);
        assert!(GeometricAtw::new(&g).into_scheme().is_antisymmetric());
    }

    #[test]
    fn deterministic_no_ties_everywhere() {
        // Unlike the random scheme there is no failure probability at all:
        // check every source and every single-edge fault on a tie-heavy
        // graph.
        let g = generators::grid(3, 4);
        let s = GeometricAtw::new(&g).into_scheme();
        let mut fault_sets = vec![FaultSet::empty()];
        fault_sets.extend(g.edges().map(|(e, _, _)| FaultSet::single(e)));
        for faults in &fault_sets {
            for src in g.vertices() {
                assert!(!s.spt(src, faults).ties_detected());
            }
        }
    }

    #[test]
    fn hop_counts_match_bfs() {
        let g = generators::hypercube(3);
        let s = GeometricAtw::new(&g).into_scheme();
        for src in g.vertices() {
            let tree = s.tree_from(src, &FaultSet::empty());
            let truth = bfs(&g, src, &FaultSet::empty());
            for t in g.vertices() {
                assert_eq!(tree.dist(t), truth.dist(t));
            }
        }
    }

    #[test]
    fn reproducible_without_seed() {
        let g = generators::petersen();
        let a = GeometricAtw::new(&g).into_scheme();
        let b = GeometricAtw::new(&g).into_scheme();
        let fa = a.path(0, 7, &FaultSet::empty());
        let fb = b.path(0, 7, &FaultSet::empty());
        assert_eq!(fa, fb);
    }

    #[test]
    fn bits_grow_linearly_in_m() {
        let small = GeometricAtw::new(&generators::cycle(4)).bits_per_weight();
        let large = GeometricAtw::new(&generators::cycle(40)).bits_per_weight();
        assert!(large > 10 * small / 2, "expected Θ(m) growth: {small} vs {large}");
    }
}
