//! The MPLS data plane: hop-by-hop packet forwarding with TTL and
//! failure detection.
//!
//! The control plane (`failover`) computes and installs paths; the data
//! plane walks them one next-hop lookup at a time, the way a
//! label-switched router actually moves traffic. Forwarding a packet
//! over a failed link is detected *at the hop*, which is what triggers
//! restoration in an operational network.

use rsp_graph::{FaultSet, Graph, Path, Vertex};

use crate::table::DualTables;

/// Outcome of forwarding one packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardOutcome {
    /// The packet arrived; the walk taken is recorded.
    Delivered {
        /// The hop-by-hop route the packet took.
        route: Path,
    },
    /// A hop's link was down; the packet was dropped at `at` trying to
    /// reach `next`.
    LinkDown {
        /// Where the packet was when forwarding failed.
        at: Vertex,
        /// The dead next hop.
        next: Vertex,
        /// Hops taken before the drop.
        hops_taken: usize,
    },
    /// No table entry for the destination at some hop.
    NoRoute {
        /// Where the lookup failed.
        at: Vertex,
    },
    /// The TTL expired (routing loop or path longer than the budget).
    TtlExpired,
}

/// Forwards one packet from `s` to `t` along the **forward** table,
/// honoring failed links, with a TTL of `2n`.
///
/// This is the data-plane view of the same tables the control plane
/// splices: a packet sent after a failure but *before* restoration is
/// dropped exactly at the dead link.
pub fn forward_packet(
    g: &Graph,
    tables: &DualTables,
    failed: &FaultSet,
    s: Vertex,
    t: Vertex,
) -> ForwardOutcome {
    let ttl = 2 * g.n();
    let mut verts = vec![s];
    let mut cur = s;
    for _ in 0..ttl {
        if cur == t {
            return ForwardOutcome::Delivered { route: Path::new(verts) };
        }
        let Some(next) = tables.forward().next_hop(cur, t) else {
            return ForwardOutcome::NoRoute { at: cur };
        };
        match g.edge_between(cur, next) {
            Some(e) if !failed.contains(e) => {
                verts.push(next);
                cur = next;
            }
            _ => return ForwardOutcome::LinkDown { at: cur, next, hops_taken: verts.len() - 1 },
        }
    }
    ForwardOutcome::TtlExpired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failover::MplsNetwork;
    use rsp_core::{RandomGridAtw, Rpts};
    use rsp_graph::{bfs, generators};

    #[test]
    fn delivery_follows_selected_path() {
        let g = generators::grid(3, 4);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let net = MplsNetwork::new(&scheme);
        for t in g.vertices() {
            match forward_packet(&g, net.tables(), &FaultSet::empty(), 0, t) {
                ForwardOutcome::Delivered { route } => {
                    assert_eq!(route, scheme.path(0, t, &FaultSet::empty()).unwrap());
                }
                other => panic!("expected delivery, got {other:?}"),
            }
        }
    }

    #[test]
    fn packet_dropped_at_the_dead_link() {
        let g = generators::cycle(6);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        let net = MplsNetwork::new(&scheme);
        let path = scheme.path(0, 3, &FaultSet::empty()).unwrap();
        let (u, v) = path.steps().nth(1).unwrap(); // second hop
        let failed = FaultSet::single(g.edge_between(u, v).unwrap());
        match forward_packet(&g, net.tables(), &failed, 0, 3) {
            ForwardOutcome::LinkDown { at, next, hops_taken } => {
                assert_eq!((at, next), (u, v));
                assert_eq!(hops_taken, 1);
            }
            other => panic!("expected a drop, got {other:?}"),
        }
    }

    #[test]
    fn restored_lsp_delivers_again() {
        // Full incident lifecycle: forward OK → link dies → drop →
        // control plane splices → forward along the restored path.
        let g = generators::torus(4, 5);
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        let mut net = MplsNetwork::new(&scheme);
        let lsp = net.establish(0, 13).unwrap();
        let first_hop = net.lsp(lsp).unwrap().path().vertices()[1];
        let dead = g.edge_between(0, first_hop).unwrap();
        net.fail_edge(dead);

        // Data plane drops the packet at the dead first hop.
        assert!(matches!(
            forward_packet(&g, net.tables(), net.failed_edges(), 0, 13),
            ForwardOutcome::LinkDown { at: 0, .. }
        ));

        // Control plane splices a replacement from stored tables.
        let report = net.restore(lsp).unwrap();
        assert!(report.restored_path.avoids(&g, net.failed_edges()));

        // Walking the restored path hop-by-hop delivers (manual walk:
        // the restored path is a splice, not a single-table route).
        for (a, b) in report.restored_path.steps() {
            let e = g.edge_between(a, b).unwrap();
            assert!(!net.failed_edges().contains(e));
        }
        assert_eq!(
            report.restored_path.hops() as u32,
            bfs(&g, 0, net.failed_edges()).dist(13).unwrap()
        );
    }

    #[test]
    fn no_route_for_unpopulated_table() {
        let g = generators::path_graph(3);
        let tables = DualTables::build(&RandomGridAtw::theorem20(&g, 4).into_scheme());
        // Deliveries work; now ask a foreign graph with a vertex the
        // table cannot route to: simulate by querying an isolated pair.
        let g2 = rsp_graph::Graph::from_edges(3, [(0, 1)]).unwrap();
        let scheme2 = RandomGridAtw::theorem20(&g2, 5).into_scheme();
        let t2 = DualTables::build(&scheme2);
        assert!(matches!(
            forward_packet(&g2, &t2, &FaultSet::empty(), 0, 2),
            ForwardOutcome::NoRoute { at: 0 }
        ));
        let _ = tables;
    }
}
