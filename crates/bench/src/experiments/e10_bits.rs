//! **E10 / Corollary 22 vs Theorem 23** — bit complexity of the three
//! ATW constructions and the isolation-lemma tie probability.

use rsp_core::{GeometricAtw, RandomGridAtw};
use rsp_graph::{generators, FaultSet};

use crate::reporting::{f3, Table};

/// Runs E10 and prints the tables.
pub fn run(quick: bool) {
    let mut table = Table::new(
        "E10 (Cor 22 / Thm 23): bits per edge weight",
        &[
            "graph",
            "n",
            "m",
            "thm20 bits",
            "cor22 f=1",
            "cor22 f=3",
            "thm23 bits",
            "cor22 tie prob",
        ],
    );
    let graphs = [
        ("grid-5x5", generators::grid(5, 5)),
        ("gnm-60-180", generators::connected_gnm(60, 180, 1)),
        ("gnm-200-600", generators::connected_gnm(200, 600, 2)),
    ];
    let graphs = if quick { &graphs[..2] } else { &graphs[..] };
    for (name, g) in graphs {
        let t20 = RandomGridAtw::theorem20(g, 1);
        let c22_1 = RandomGridAtw::corollary22(g, 1, 1, 1);
        let c22_3 = RandomGridAtw::corollary22(g, 3, 1, 1);
        let t23 = GeometricAtw::new(g);
        assert!(c22_1.bits_per_weight() <= c22_3.bits_per_weight());
        assert!(
            t23.bits_per_weight() > c22_3.bits_per_weight(),
            "the deterministic scheme pays Θ(m) bits"
        );
        table.row(&[
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            t20.bits_per_weight().to_string(),
            c22_1.bits_per_weight().to_string(),
            c22_3.bits_per_weight().to_string(),
            t23.bits_per_weight().to_string(),
            format!("{:.2e}", c22_1.tie_probability_bound()),
        ]);
    }
    table.print();

    // Empirical tie check: run every single-fault SPT on a tie-rich graph
    // under the *coarsest* grid and count observed ties.
    let g = generators::grid(4, 4);
    let mut t2 = Table::new(
        "E10b: observed ties across all single-fault SPTs on grid-4x4",
        &["grid half-width K", "ties observed", "bound m/K"],
    );
    let widths: &[u128] = if quick { &[4, 1 << 20] } else { &[2, 4, 16, 256, 1 << 20, 1 << 40] };
    for &k in widths {
        let scheme = RandomGridAtw::with_half_width(&g, k, 3).into_scheme();
        let mut ties = 0usize;
        let mut runs = 0usize;
        let mut fault_sets = vec![FaultSet::empty()];
        fault_sets.extend(g.edges().map(|(e, _, _)| FaultSet::single(e)));
        for fs in &fault_sets {
            for s in g.vertices() {
                runs += 1;
                if scheme.spt(s, fs).ties_detected() {
                    ties += 1;
                }
            }
        }
        t2.row(&[k.to_string(), format!("{ties}/{runs}"), f3(g.m() as f64 / k as f64)]);
    }
    t2.print();
    println!(
        "shape check: Cor 22 bits grow with f like O(f log n); Thm 23 pays\n\
         Θ(m) bits but is deterministic; observed ties vanish as K grows,\n\
         tracking the isolation-lemma bound.\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_runs_quick() {
        super::run(true);
    }
}
