//! One module per experiment; see DESIGN.md's experiment index.
//!
//! Every experiment has a `run(quick: bool)` entry point that prints its
//! table(s) to stdout. `quick` shrinks the sweeps for CI-speed runs; the
//! full mode is what EXPERIMENTS.md records.

pub mod e01_sensitivity;
pub mod e02_restorability;
pub mod e03_c4;
pub mod e04_subset_rp;
pub mod e05_preserver;
pub mod e06_lower_bound;
pub mod e07_spanner;
pub mod e08_labels;
pub mod e09_congest;
pub mod e10_bits;
pub mod e11_single_pair;
pub mod e12_dag;
pub mod e13_weighted;

/// All experiment ids, in run order.
pub const ALL: &[&str] =
    &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"];

/// Dispatches one experiment by id (`"e1"`, …). Returns `false` for an
/// unknown id.
pub fn run(id: &str, quick: bool) -> bool {
    match id {
        "e1" => e01_sensitivity::run(quick),
        "e2" => e02_restorability::run(quick),
        "e3" => e03_c4::run(quick),
        "e4" => e04_subset_rp::run(quick),
        "e5" => e05_preserver::run(quick),
        "e6" => e06_lower_bound::run(quick),
        "e7" => e07_spanner::run(quick),
        "e8" => e08_labels::run(quick),
        "e9" => e09_congest::run(quick),
        "e10" => e10_bits::run(quick),
        "e11" => e11_single_pair::run(quick),
        "e12" => e12_dag::run(quick),
        "e13" => e13_weighted::run(quick),
        _ => return false,
    }
    true
}
