//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build image has no network access to crates.io, so the workspace
//! vendors a minimal benchmark harness covering exactly the API the
//! `crates/bench` bench targets call: [`Criterion::bench_function`],
//! [`Criterion::sample_size`], [`Bencher::iter`], [`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the positional and the
//! `name/config/targets` forms).
//!
//! There is no statistical analysis beyond order statistics, no warm-up
//! tuning, and no HTML report: each benchmark runs `sample_size` timed
//! iterations after one warm-up iteration and reports **mean, min, and
//! median** wall-clock per iteration (min and median are robust against
//! scheduler noise, which a bare mean is not). That is enough to (a) keep
//! every bench target compiling in CI, (b) give order-of-magnitude timings
//! locally, and (c) feed the repo's `BENCH_*.json` perf trajectory.
//! Swapping the real `criterion` back in is a one-line change in the
//! workspace manifest.
//!
//! Two environment variables integrate the stub with CI:
//!
//! * `CRITERION_SAMPLE_SIZE` — overrides every benchmark's sample count
//!   (e.g. `3` for a smoke run);
//! * `CRITERION_JSON_PATH` — write one machine-readable JSON line per
//!   benchmark (`{"benchmark":…,"mean_ns":…,"min_ns":…,"median_ns":…,
//!   "samples":…}`) to the given file, in addition to the human-readable
//!   stdout report. The file is truncated at the first benchmark of each
//!   process, so re-running a bench target replaces the report; give each
//!   bench target its own path if several must coexist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stub times one routine call per batch regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time `f` under the name `id` and print the mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_size, id, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }
}

/// A named set of related benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Time `f` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.sample_size, &format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Set how many timed iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// End the group. (The stub reports per benchmark; nothing to flush.)
    pub fn finish(self) {}
}

/// Sample-count override from `CRITERION_SAMPLE_SIZE`, if set and valid.
fn env_sample_size() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE").ok()?.parse().ok().filter(|&n| n > 0)
}

/// Per-iteration summary of one benchmark run.
struct Report {
    mean_ns: u128,
    min_ns: u128,
    median_ns: u128,
    samples: usize,
}

fn summarize(samples: &mut [u128]) -> Report {
    assert!(!samples.is_empty(), "benchmarks collect at least one sample");
    samples.sort_unstable();
    let n = samples.len();
    let mean_ns = samples.iter().sum::<u128>() / n as u128;
    let median_ns =
        if n % 2 == 1 { samples[n / 2] } else { (samples[n / 2 - 1] + samples[n / 2]) / 2 };
    Report { mean_ns, min_ns: samples[0], median_ns, samples: n }
}

fn run_one<F>(sample_size: usize, id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let iters = env_sample_size().unwrap_or(sample_size) as u64;
    let mut b = Bencher { iters, samples: Vec::with_capacity(iters as usize) };
    f(&mut b);
    let r = summarize(&mut b.samples);
    println!(
        "bench: {id:<48} mean {:>10} ns  min {:>10} ns  median {:>10} ns  (stub, n={})",
        r.mean_ns, r.min_ns, r.median_ns, r.samples
    );
    if let Ok(path) = std::env::var("CRITERION_JSON_PATH") {
        let line = format!(
            "{{\"benchmark\":\"{id}\",\"mean_ns\":{},\"min_ns\":{},\"median_ns\":{},\"samples\":{}}}\n",
            r.mean_ns, r.min_ns, r.median_ns, r.samples
        );
        // Truncate once per process so re-running a bench *replaces* the
        // report instead of appending stale duplicate lines after it.
        static JSON_TRUNCATE: std::sync::Once = std::sync::Once::new();
        JSON_TRUNCATE.call_once(|| {
            if let Err(e) = std::fs::write(&path, "") {
                eprintln!("criterion stub: cannot create {path}: {e}");
            }
        });
        use std::io::Write;
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&path);
        match file.and_then(|mut f| f.write_all(line.as_bytes())) {
            Ok(()) => {}
            Err(e) => eprintln!("criterion stub: cannot append to {path}: {e}"),
        }
    }
}

/// Times a routine for [`Criterion::bench_function`].
#[derive(Clone, Debug)]
pub struct Bencher {
    iters: u64,
    /// Wall-clock nanoseconds per timed iteration.
    samples: Vec<u128>,
}

impl Bencher {
    /// Time `routine`, called once per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine()); // warm-up, untimed
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        self.samples.clear();
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

/// Bundle benchmark functions into a named group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("stub/iter", |b| b.iter(|| 2 + 2));
        c.bench_function("stub/iter_batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = group_config_form;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    criterion_group!(group_positional_form, target);

    #[test]
    fn groups_run() {
        group_config_form();
        group_positional_form();
    }

    #[test]
    fn summarize_order_statistics() {
        let mut odd = vec![5u128, 1, 9];
        let r = summarize(&mut odd);
        assert_eq!((r.mean_ns, r.min_ns, r.median_ns, r.samples), (5, 1, 5, 3));
        let mut even = vec![8u128, 2, 4, 6];
        let r = summarize(&mut even);
        assert_eq!((r.mean_ns, r.min_ns, r.median_ns, r.samples), (5, 2, 5, 4));
    }
}
