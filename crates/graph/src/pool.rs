//! A minimal scoped worker pool for embarrassingly parallel fan-out.
//!
//! The per-source work in this workspace — one shortest-path tree (or one
//! whole FT-BFS enumeration) per source — is independent across sources
//! once each worker owns its own scratch state. [`parallel_indexed`] is the
//! shared fan-out primitive: it runs an indexed job list over
//! `std::thread::scope` workers, gives each worker its own caller-built
//! state (a `SearchScratch`, an `RptsScratch`, a `ReplacementScratch`, …),
//! and returns results **in index order**, so output is deterministic and
//! independent of the worker count and of scheduling.
//!
//! Work is distributed dynamically (an atomic next-index counter), which
//! balances heavily skewed per-item costs — e.g. FT-BFS enumerations whose
//! tree counts vary by orders of magnitude between sources.
//!
//! `workers == 1` (or a single item) runs inline on the calling thread with
//! no thread spawned at all, which is also the sequential reference
//! implementation the equivalence tests compare against.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::parallel_indexed;
//!
//! // Square 0..8 on 3 workers; each worker counts its jobs in its state.
//! let squares = parallel_indexed(8, 3, |_worker| 0usize, |count, i| {
//!     *count += 1;
//!     i * i
//! });
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// A sensible default worker count: the machine's available parallelism.
///
/// Falls back to 1 when the parallelism cannot be determined (e.g. in
/// restricted sandboxes).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `run(state, i)` for every `i in 0..count` across up to `workers`
/// scoped threads and returns the results in index order.
///
/// `make_state` is called once per worker (with the worker id) to build
/// that worker's private mutable state; `run` executes one job against it.
/// Items are claimed dynamically from a shared counter, so slow items do
/// not serialize behind fast ones. With `workers <= 1` — or fewer than two
/// items — everything runs inline on the calling thread.
///
/// The output is `[run(_, 0), run(_, 1), …]` regardless of which worker
/// executed which item; a caller that needs determinism only has to make
/// `run` itself deterministic per index.
///
/// # Panics
///
/// Propagates the first panic raised by any job.
pub fn parallel_indexed<R, S, FS, F>(count: usize, workers: usize, make_state: FS, run: F) -> Vec<R>
where
    R: Send,
    FS: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let workers = workers.clamp(1, count.max(1));
    if workers <= 1 || count <= 1 {
        let mut state = make_state(0);
        return (0..count).map(|i| run(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                let make_state = &make_state;
                let run = &run;
                scope.spawn(move || {
                    let mut state = make_state(w);
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        produced.push((i, run(&mut state, i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every index is claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        for workers in [1, 2, 3, 8, 64] {
            let out = parallel_indexed(20, workers, |_| (), |(), i| i * 2);
            assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker's state counts its jobs; the total must be `count`.
        let counts = parallel_indexed(
            50,
            4,
            |_| 0usize,
            |c, _| {
                *c += 1;
                *c
            },
        );
        // Per-item result is that worker's running job count: always ≥ 1.
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(counts.len(), 50);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<usize> = parallel_indexed(0, 8, |_| (), |(), i| i);
        assert!(none.is_empty());
        let one = parallel_indexed(1, 8, |_| (), |(), i| i + 7);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn propagates_job_panics() {
        parallel_indexed(
            8,
            2,
            |_| (),
            |(), i| {
                if i == 3 {
                    panic!("job 3 exploded");
                }
                i
            },
        );
    }
}
