//! Failure-injection tests: adversarial fault patterns — bridges,
//! cut-heavy topologies, repeated faults, and disconnection cascades —
//! against every layer.

use restorable_tiebreaking::core::{restore_by_concatenation, RandomGridAtw, Rpts};
use restorable_tiebreaking::graph::{bfs, components, generators, is_connected_avoiding, FaultSet};
use restorable_tiebreaking::labeling::build_labeling;
use restorable_tiebreaking::preserver::{ft_subset_preserver, verify_preserver, PairSet};
use restorable_tiebreaking::replacement::subset_replacement_paths;

/// Barbells: every bridge edge is a cut edge; fault handling must report
/// disconnection, never a wrong distance.
#[test]
fn barbell_bridge_cascade() {
    let g = generators::barbell(5, 3);
    let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    let bridge_edges: Vec<_> = g
        .edges()
        .filter(|&(e, _, _)| !is_connected_avoiding(&g, &FaultSet::single(e)))
        .map(|(e, _, _)| e)
        .collect();
    assert_eq!(bridge_edges.len(), 3, "barbell(5, 3) has exactly 3 bridge edges");
    for &e in &bridge_edges {
        let faults = FaultSet::single(e);
        // Restoration across the cut must return None; within a side it
        // must succeed.
        assert!(restore_by_concatenation(&scheme, 0, g.n() - 1, &faults).is_none());
        let comp = components(&g, &faults);
        for s in g.vertices() {
            for t in g.vertices() {
                let restored = restore_by_concatenation(&scheme, s, t, &faults);
                assert_eq!(restored.is_some(), comp[s] == comp[t], "({s},{t}) e={e}");
            }
        }
    }
}

/// Failing every edge incident to one vertex isolates it; all layers must
/// agree on the resulting distances.
#[test]
fn vertex_isolation() {
    let g = generators::petersen();
    let victim = 0;
    let faults: FaultSet = g.neighbors(victim).map(|(_, e)| e).collect();
    assert_eq!(faults.len(), 3);
    let truth = bfs(&g, 5, &faults);
    assert_eq!(truth.dist(victim), None, "victim is isolated");

    // Subset-rp over the surviving part still answers exactly.
    let rp = subset_replacement_paths(&g, &[5, 7, 9], 3);
    for p in rp.iter() {
        let (s, t) = p.pair();
        for entry in p.entries() {
            assert_eq!(entry.dist, bfs(&g, s, &FaultSet::single(entry.edge)).dist(t));
        }
    }
}

/// Repeatedly failing edges of a cycle until it becomes a path: the
/// 2-fault preserver built in advance keeps answering for its pairs.
#[test]
fn progressive_cycle_degradation() {
    let g = generators::cycle(10);
    let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    let sources = vec![0, 5];
    let preserver = ft_subset_preserver(&scheme, &sources, 2);
    // All 2-subsets of cycle edges.
    let all_pairs = rsp_core::verify::all_fault_sets(g.m(), 2);
    verify_preserver(&g, &preserver, &PairSet::subset(sources), &all_pairs).unwrap();
}

/// Labels queried with fault descriptions that include edges absent from
/// both preservers (decoding must not choke on unknown endpoints).
#[test]
fn labels_with_irrelevant_faults() {
    let g = generators::connected_gnm(18, 40, 9);
    let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
    let labeling = build_labeling(&scheme, 0);
    for (e, u, v) in g.edges() {
        let truth = bfs(&g, 0, &FaultSet::single(e));
        for t in g.vertices() {
            // The fault is passed as endpoints; whether those endpoints
            // appear in the decoded union is the decoder's problem.
            assert_eq!(labeling.query(0, t, &[(u, v)]), truth.dist(t));
            // Reversed orientation must behave identically.
            assert_eq!(labeling.query(0, t, &[(v, u)]), truth.dist(t));
        }
    }
}

/// Stars: failing a spoke isolates exactly one leaf; everything else is
/// unaffected.
#[test]
fn star_spoke_failures() {
    let g = generators::star(12);
    let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
    for (e, _, v) in g.edges() {
        let faults = FaultSet::single(e);
        for t in 1..g.n() {
            let r = restore_by_concatenation(&scheme, 0, t, &faults);
            if t == v {
                assert!(r.is_none(), "leaf {v} must be isolated");
            } else {
                assert_eq!(r.unwrap().hops(), 1);
            }
        }
    }
}

/// The empty fault set is always legal and yields original distances.
#[test]
fn empty_fault_set_everywhere() {
    let g = generators::grid(3, 4);
    let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
    let truth = bfs(&g, 0, &FaultSet::empty());
    for t in g.vertices() {
        let p = restore_by_concatenation(&scheme, 0, t, &FaultSet::empty()).unwrap();
        assert_eq!(p.hops() as u32, truth.dist(t).unwrap());
        assert_eq!(
            scheme.path(0, t, &FaultSet::empty()).unwrap().hops() as u32,
            truth.dist(t).unwrap()
        );
    }
}
