//! Positive integer edge weights, for the weighted restoration lemma
//! (Theorem 11) and its applications.
//!
//! The main results of the paper are for unweighted graphs, but the
//! weighted restoration lemma holds for undirected graphs with positive
//! weights, and the single-pair replacement path machinery extends to
//! them. Weights live *beside* the graph (a parallel vector keyed by
//! [`EdgeId`]) so the unweighted substrate stays untouched.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{EdgeId, Graph, Vertex};
use crate::{dijkstra, FaultSet, WeightedSpt};

/// Positive integer weights for every edge of a graph.
///
/// # Examples
///
/// ```
/// use rsp_graph::{generators, EdgeWeights};
///
/// let g = generators::cycle(4);
/// let w = EdgeWeights::uniform(&g, 5);
/// assert_eq!(w.get(0), 5);
/// assert_eq!(w.total(), 20);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeWeights {
    w: Vec<u64>,
}

impl EdgeWeights {
    /// Wraps explicit weights; one per edge, all positive.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `g.m()` or any weight is zero.
    pub fn new(g: &Graph, w: Vec<u64>) -> Self {
        assert_eq!(w.len(), g.m(), "one weight per edge");
        assert!(w.iter().all(|&x| x > 0), "weights must be positive");
        EdgeWeights { w }
    }

    /// Every edge gets weight `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`.
    pub fn uniform(g: &Graph, value: u64) -> Self {
        assert!(value > 0, "weights must be positive");
        EdgeWeights { w: vec![value; g.m()] }
    }

    /// Uniform random weights in `1..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn random(g: &Graph, max: u64, seed: u64) -> Self {
        assert!(max > 0, "weights must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        EdgeWeights { w: (0..g.m()).map(|_| rng.random_range(1..=max)).collect() }
    }

    /// The weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn get(&self, e: EdgeId) -> u64 {
        self.w[e]
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// `true` iff the graph had no edges.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.w.iter().sum()
    }

    /// The largest weight.
    pub fn max(&self) -> u64 {
        self.w.iter().copied().max().unwrap_or(0)
    }

    /// The weighted length of a path, or `None` if invalid in `g`.
    pub fn path_weight(&self, g: &Graph, p: &crate::Path) -> Option<u64> {
        let mut total = 0u64;
        for (u, v) in p.steps() {
            total += self.get(g.edge_between(u, v)?);
        }
        Some(total)
    }
}

/// Weighted single-source shortest paths in `g \ faults` (plain Dijkstra;
/// ties possible — use this for ground-truth *distances*, and the
/// perturbed machinery when canonical unique paths are needed).
pub fn weighted_sssp(
    g: &Graph,
    weights: &EdgeWeights,
    source: Vertex,
    faults: &FaultSet,
) -> WeightedSpt<u64> {
    dijkstra(g, source, faults, |e, _, _| weights.get(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_weights_scale_bfs() {
        let g = generators::grid(3, 3);
        let w = EdgeWeights::uniform(&g, 7);
        let spt = weighted_sssp(&g, &w, 0, &FaultSet::empty());
        let bfs = crate::bfs(&g, 0, &FaultSet::empty());
        for v in g.vertices() {
            assert_eq!(spt.cost(v).copied(), bfs.dist(v).map(|d| 7 * d as u64));
        }
    }

    #[test]
    fn weighted_route_prefers_light_detour() {
        // Triangle with a heavy direct edge: the 2-hop detour wins.
        let g = Graph::from_edges(3, [(0, 2), (0, 1), (1, 2)]).unwrap();
        let heavy = g.edge_between(0, 2).unwrap();
        let mut w = vec![1u64; 3];
        w[heavy] = 10;
        let w = EdgeWeights::new(&g, w);
        let spt = weighted_sssp(&g, &w, 0, &FaultSet::empty());
        assert_eq!(spt.cost(2), Some(&2));
        assert_eq!(spt.path_to(2).unwrap().vertices(), &[0, 1, 2]);
    }

    #[test]
    fn faults_respected() {
        let g = generators::cycle(4);
        let w = EdgeWeights::random(&g, 9, 3);
        let e = g.edge_between(0, 1).unwrap();
        let spt = weighted_sssp(&g, &w, 0, &FaultSet::single(e));
        let detour = w.get(g.edge_between(0, 3).unwrap())
            + w.get(g.edge_between(2, 3).unwrap())
            + w.get(g.edge_between(1, 2).unwrap());
        assert_eq!(spt.cost(1), Some(&detour));
    }

    #[test]
    fn path_weight_accumulates() {
        let g = generators::path_graph(4);
        let w = EdgeWeights::new(&g, vec![2, 3, 4]);
        let p = crate::Path::new(vec![0, 1, 2, 3]);
        assert_eq!(w.path_weight(&g, &p), Some(9));
        assert_eq!(w.path_weight(&g, &crate::Path::new(vec![0, 2])), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let g = generators::cycle(3);
        let _ = EdgeWeights::new(&g, vec![1, 0, 1]);
    }

    #[test]
    fn determinism_by_seed() {
        let g = generators::complete(6);
        assert_eq!(EdgeWeights::random(&g, 100, 5), EdgeWeights::random(&g, 100, 5));
        assert_ne!(EdgeWeights::random(&g, 100, 5), EdgeWeights::random(&g, 100, 6));
    }
}
