//! Canonical unique shortest paths on DAGs by random perturbation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::digraph::{ArcFaults, ArcId, Digraph};

/// A tiebreaking scheme for a DAG: one canonical shortest path per
/// ordered (reachable) pair, selected by exact perturbed arc costs.
///
/// In a DAG each arc has a single orientation, so the antisymmetry that
/// Theorem 2 needs in the undirected case is vacuous here; what remains
/// is the Theorem 20 recipe — scaled random integer perturbations with
/// exact comparison, giving unique shortest paths with overwhelming
/// probability.
#[derive(Clone, Debug)]
pub struct DagScheme {
    dag: Digraph,
    /// Scaled cost per arc: `unit + r`, `r ∈ [−K, K]`, `unit = 2nK`.
    costs: Vec<u128>,
}

impl DagScheme {
    /// Samples the perturbation and builds the scheme.
    ///
    /// # Panics
    ///
    /// Panics if the digraph is cyclic (the extension experiments are
    /// about DAGs) or empty.
    pub fn new(dag: &Digraph, seed: u64) -> Self {
        assert!(dag.n() > 0, "DAG must be nonempty");
        assert!(dag.is_dag(), "DagScheme requires an acyclic digraph");
        let k: i64 = 1 << 40;
        let unit = 2 * dag.n() as u128 * k as u128;
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = (0..dag.m())
            .map(|_| (unit as i128 + rng.random_range(-k..=k) as i128) as u128)
            .collect();
        DagScheme { dag: dag.clone(), costs }
    }

    /// The underlying DAG.
    pub fn dag(&self) -> &Digraph {
        &self.dag
    }

    /// Exact cost of arc `a`.
    pub fn cost(&self, a: ArcId) -> u128 {
        self.costs[a]
    }

    /// Canonical shortest-path data from `s` in `dag \ faults`:
    /// per-vertex `(exact cost, hops, parent arc)`.
    pub fn sssp(&self, s: usize, faults: &ArcFaults) -> DagSssp {
        let n = self.dag.n();
        let mut best: Vec<Option<u128>> = vec![None; n];
        let mut hops = vec![0u32; n];
        let mut parent: Vec<Option<(usize, ArcId)>> = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        best[s] = Some(0);
        heap.push(Reverse((0u128, s)));
        while let Some(Reverse((c, u))) = heap.pop() {
            if settled[u] || best[u] != Some(c) {
                continue;
            }
            settled[u] = true;
            for (v, a) in self.dag.out_neighbors(u) {
                if faults.contains(a) {
                    continue;
                }
                let cand = c + self.costs[a];
                if best[v].is_none() || cand < best[v].expect("checked") {
                    best[v] = Some(cand);
                    parent[v] = Some((u, a));
                    hops[v] = hops[u] + 1;
                    heap.push(Reverse((cand, v)));
                }
            }
        }
        DagSssp { source: s, best, hops, parent }
    }

    /// The canonical path `π(s, t | F)` as a vertex sequence, or `None`
    /// if unreachable.
    pub fn path(&self, s: usize, t: usize, faults: &ArcFaults) -> Option<Vec<usize>> {
        self.sssp(s, faults).path_to(t)
    }
}

/// Canonical single-source shortest-path data on a DAG.
#[derive(Clone, Debug)]
pub struct DagSssp {
    source: usize,
    best: Vec<Option<u128>>,
    hops: Vec<u32>,
    parent: Vec<Option<(usize, ArcId)>>,
}

impl DagSssp {
    /// Hop count of the canonical path to `v` (equals the unweighted
    /// directed distance).
    pub fn hops(&self, v: usize) -> Option<u32> {
        self.best[v].map(|_| self.hops[v])
    }

    /// Exact perturbed cost to `v`.
    pub fn cost(&self, v: usize) -> Option<u128> {
        self.best[v]
    }

    /// The canonical source-to-`v` path (vertex sequence).
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        self.best[v]?;
        let mut verts = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur] {
            verts.push(p);
            cur = p;
        }
        verts.reverse();
        debug_assert_eq!(verts[0], self.source);
        Some(verts)
    }

    /// The arc ids along the canonical path to `v`.
    pub fn arcs_to(&self, v: usize) -> Option<Vec<ArcId>> {
        self.best[v]?;
        let mut arcs = Vec::new();
        let mut cur = v;
        while let Some((p, a)) = self.parent[cur] {
            arcs.push(a);
            cur = p;
        }
        arcs.reverse();
        Some(arcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DirectedBfs;
    use crate::generators;

    #[test]
    fn canonical_paths_are_shortest() {
        let d = generators::grid_dag(4, 4);
        let scheme = DagScheme::new(&d, 1);
        let faults = ArcFaults::empty();
        let sssp = scheme.sssp(0, &faults);
        let truth = DirectedBfs::run(&d, 0, &faults);
        for v in d.vertices() {
            assert_eq!(sssp.hops(v), truth.dist(v));
        }
    }

    #[test]
    fn canonical_paths_are_unique_per_seed() {
        let d = generators::grid_dag(3, 5);
        let a = DagScheme::new(&d, 7);
        let b = DagScheme::new(&d, 7);
        for v in d.vertices() {
            assert_eq!(
                a.sssp(0, &ArcFaults::empty()).path_to(v),
                b.sssp(0, &ArcFaults::empty()).path_to(v)
            );
        }
    }

    #[test]
    fn faults_respected() {
        let d = generators::grid_dag(2, 3);
        let scheme = DagScheme::new(&d, 3);
        // Kill the arc 0→1: path to 1 must go down-right-up? It can't
        // (arcs only point right/down) — 1 only reachable via 0→1.
        let a01 = d.all_arcs().find(|&(_, u, v)| u == 0 && v == 1).unwrap().0;
        assert_eq!(scheme.path(0, 1, &ArcFaults::single(a01)), None);
        // 5 = bottom-right stays reachable.
        assert!(scheme.path(0, 5, &ArcFaults::single(a01)).is_some());
    }

    #[test]
    fn arcs_to_matches_path() {
        let d = generators::random_dag(12, 15, 5);
        let scheme = DagScheme::new(&d, 9);
        let root = d
            .vertices()
            .find(|&s| {
                let b = DirectedBfs::run(&d, s, &ArcFaults::empty());
                d.vertices().all(|v| b.dist(v).is_some())
            })
            .expect("backbone root");
        let sssp = scheme.sssp(root, &ArcFaults::empty());
        for v in d.vertices() {
            let path = sssp.path_to(v).unwrap();
            let arcs = sssp.arcs_to(v).unwrap();
            assert_eq!(arcs.len(), path.len() - 1);
            for (i, &a) in arcs.iter().enumerate() {
                assert_eq!(d.arc(a), (path[i], path[i + 1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_digraph_rejected() {
        let d = Digraph::from_arcs(2, [(0, 1), (1, 0)]).unwrap();
        let _ = DagScheme::new(&d, 0);
    }
}
