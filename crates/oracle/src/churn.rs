//! The churn-hardened control plane: fault-event ingestion, validated
//! folding, panic-isolated recompilation, and degraded serving.
//!
//! A [`ChurnPipeline`] consumes the `fault arrives / fault repairs`
//! stream of a live network and keeps an [`Oracle`] serving through it.
//! The robustness contract — what this module exists for — is:
//!
//! * **Validation & quarantine.** Every event is validated against the
//!   graph and the stream's own state ([`rsp_graph::FaultState`]):
//!   out-of-range ids, duplicate arrivals, repairs of never-faulted
//!   edges, and undecodable wire frames are **quarantined with a typed
//!   reason** ([`QuarantineReason`]) — never applied, never a panic.
//! * **Panic-isolated publish.** Snapshot recompilation runs under
//!   [`std::panic::catch_unwind`]; a build that panics, fails
//!   validation, or is **rejected by the cross-check** (sampled sources
//!   compared against [`rsp_graph::dijkstra_batch`] ground truth) never
//!   reaches readers.
//! * **Last-good-snapshot degraded serving.** While builds fail,
//!   readers keep answering from the last good snapshot; staleness is
//!   *exposed*, not hidden — [`ChurnHealth`] reports the pending-event
//!   count and the published epoch/sequence lag.
//! * **Delta-first commits.** With [`ChurnConfig::delta_enabled`] the
//!   first build attempt patches the published snapshot through
//!   [`crate::delta::DeltaBuilder`] — per-epoch work proportional to
//!   the detached subtree, untouched rows shared copy-on-write — and
//!   still passes the same cross-check gate; any delta refusal or
//!   failure falls back to the full rebuild with the reason recorded in
//!   [`ChurnHealth::last_delta_fallback`].
//! * **Retry, backoff, escalation.** Failed builds retry with
//!   exponential backoff up to [`ChurnConfig::retry_budget`], then
//!   escalate to a from-scratch full rebuild that re-derives the fault
//!   state from the journal.
//! * **Deterministic recovery.** The accepted-event journal is
//!   append-only; [`ChurnPipeline::replay`] reconstructs an identical
//!   pipeline from it after a crash.
//! * **Durable, bounded journal state.** Journal streams serialize
//!   through the CRC-framed codec in [`rsp_graph::journal`]
//!   ([`ChurnPipeline::export_journal`]); [`ChurnPipeline::checkpoint`]
//!   folds the accepted prefix into a [`rsp_graph::journal::JournalCheckpoint`]
//!   frame and [`ChurnPipeline::compact`] truncates the in-memory tail
//!   behind it, so journal memory stays proportional to the events
//!   since the last checkpoint, not the stream's lifetime.
//!   [`ChurnPipeline::recover`] rebuilds a pipeline from serialized
//!   bytes — [`ChurnPipeline::replay_from`] from the last checkpoint
//!   when one is present, genesis [`ChurnPipeline::replay`] otherwise —
//!   tolerating a torn final frame (truncated mid-append = clean
//!   recovery point) and refusing interior corruption with a typed
//!   [`rsp_graph::journal::JournalDecodeError`], never a panic.
//! * **Admission control.** [`ChurnConfig::max_pending_events`] caps
//!   journaled-but-uncommitted events: past it, ingestion sheds with a
//!   typed [`Backpressure`] error instead of growing state without
//!   bound behind a stalled builder ([`ChurnHealth::shed_events`]
//!   counts the sheds; replayed/recovered journals are never shed).
//!
//! The seeded fault-injection harness in [`inject`] drives all of this
//! in `crates/oracle/tests/churn_robustness.rs`: dropped, duplicated,
//! reordered, and corrupted wire streams plus builder panics at chosen
//! steps, asserting the oracle never serves an answer inconsistent with
//! its published snapshot and always converges once injection stops.
//! `crates/oracle/tests/journal_recovery.rs` drives the durability
//! layer the same way: bit-flipped and truncated journal streams,
//! recovery-equivalence proptests at every compaction point, and the
//! bounded-memory soak. See the "Durability, compaction & scrubbing"
//! chapter of `docs/ARCHITECTURE.md` for the frame format and the
//! checkpoint lifecycle.
//!
//! # Examples
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_graph::{generators, FaultEvent, FaultSet};
//! use rsp_oracle::churn::ChurnPipeline;
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//! let mut pipeline = ChurnPipeline::new(&scheme).unwrap();
//! let mut reader = pipeline.reader();
//!
//! // An edge fails on the wire: validate, fold, recompile, publish.
//! let e = g.edge_between(0, 1).unwrap();
//! pipeline.ingest(FaultEvent::Arrive(e)).unwrap();
//! let report = pipeline.commit().unwrap();
//! assert!(report.published);
//!
//! // Readers need no new API: a fault-free wire query now routes
//! // around the failed edge baked into the published snapshot.
//! assert_eq!(reader.query(0, &FaultSet::empty()).dist(1), Some(3));
//!
//! // A duplicate arrival is quarantined, not applied and not a panic.
//! assert!(pipeline.ingest(FaultEvent::Arrive(e)).is_err());
//! assert_eq!(pipeline.quarantined().len(), 1);
//! assert_eq!(pipeline.health().pending_events, 0);
//! ```

use std::any::Any;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use rsp_arith::PathCost;
use rsp_core::{ExactScheme, Rpts};
use rsp_graph::journal::{
    decode_journal, JournalCheckpoint, JournalDecodeError, JournalFrame, JournalTail,
};
use rsp_graph::{
    dijkstra_batch, BatchScratch, FaultEvent, FaultEventError, FaultSet, FaultState, Vertex,
    WireEventError,
};

use crate::delta::{DeltaBuilder, DeltaError, DeltaUnsupported};
use crate::serve::{Oracle, OracleReader};
use crate::snapshot::{BuildError, OracleSnapshot};

#[path = "inject.rs"]
pub mod inject;

/// Tuning knobs for a [`ChurnPipeline`].
///
/// The defaults suit tests and small deployments; production control
/// planes will want a larger backoff base and more cross-check sources.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Incremental build attempts per [`ChurnPipeline::commit`] before
    /// escalating to a from-scratch full rebuild (default 3).
    pub retry_budget: u32,
    /// Backoff before retry `k` is `backoff_base × 2^k` (default 5ms).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay (default 500ms).
    pub backoff_cap: Duration,
    /// Number of sources sampled for the batch-engine cross-check of
    /// every built snapshot; `0` disables the gate (default 4).
    pub cross_check_sources: usize,
    /// Seed for the deterministic cross-check source sample (mixed with
    /// the target sequence number, so every build checks fresh rows).
    pub cross_check_seed: u64,
    /// Attempt a [`crate::delta::DeltaBuilder`] patch of the published
    /// snapshot before falling back to a full rebuild (default `true`).
    /// Disable to force every commit through the from-scratch builder —
    /// the rebuild-only arm of the differential test battery and the
    /// `commit_rebuild` bench rows run this way.
    pub delta_enabled: bool,
    /// Admission-control cap on journaled-but-uncommitted events
    /// (default 65 536). When [`ChurnPipeline::pending_events`] reaches
    /// this cap, further events are **shed** with a typed
    /// [`IngestError::Backpressure`] — not journaled, not quarantined —
    /// so a stalled builder cannot grow pipeline state without bound.
    pub max_pending_events: usize,
    /// Upper bound on the retained quarantine log (default 1 024).
    /// Older [`QuarantinedEvent`]s are dropped once the log is full;
    /// [`ChurnHealth::quarantined_total`] keeps counting every
    /// quarantine regardless.
    pub max_quarantine_log: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            retry_budget: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            cross_check_sources: 4,
            cross_check_seed: 0x5eed_cafe,
            delta_enabled: true,
            max_pending_events: 65_536,
            max_quarantine_log: 1_024,
        }
    }
}

impl ChurnConfig {
    /// The exponential-backoff delay before retrying after failed
    /// attempt `attempt` (0-based): `backoff_base × 2^attempt`, capped
    /// at [`ChurnConfig::backoff_cap`].
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::Duration;
    /// use rsp_oracle::churn::ChurnConfig;
    ///
    /// let cfg = ChurnConfig {
    ///     backoff_base: Duration::from_millis(10),
    ///     backoff_cap: Duration::from_millis(35),
    ///     ..ChurnConfig::default()
    /// };
    /// assert_eq!(cfg.backoff(0), Duration::from_millis(10));
    /// assert_eq!(cfg.backoff(1), Duration::from_millis(20));
    /// assert_eq!(cfg.backoff(2), Duration::from_millis(35)); // capped
    /// ```
    pub fn backoff(&self, attempt: u32) -> Duration {
        let mult = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base.checked_mul(mult).map_or(self.backoff_cap, |d| d.min(self.backoff_cap))
    }
}

/// Why an offered event was quarantined instead of applied.
///
/// [`QuarantineReason::code`] gives the stable short form for
/// operational counters and logs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The wire frame failed to decode at all.
    Wire(WireEventError),
    /// The decoded event failed graph/state validation.
    Event(FaultEventError),
}

impl QuarantineReason {
    /// A stable short reason code (`"bad-length"`, `"bad-tag"`,
    /// `"edge-overflow"`, `"edge-out-of-range"`, `"duplicate-arrival"`,
    /// `"repair-without-fault"`).
    pub fn code(&self) -> &'static str {
        match self {
            QuarantineReason::Wire(WireEventError::BadLength { .. }) => "bad-length",
            QuarantineReason::Wire(WireEventError::BadTag { .. }) => "bad-tag",
            QuarantineReason::Wire(WireEventError::EdgeOverflow { .. }) => "edge-overflow",
            QuarantineReason::Event(FaultEventError::EdgeOutOfRange { .. }) => "edge-out-of-range",
            QuarantineReason::Event(FaultEventError::AlreadyFaulted { .. }) => "duplicate-arrival",
            QuarantineReason::Event(FaultEventError::NotFaulted { .. }) => "repair-without-fault",
        }
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Wire(e) => write!(f, "quarantined ({}): {e}", self.code()),
            QuarantineReason::Event(e) => write!(f, "quarantined ({}): {e}", self.code()),
        }
    }
}

impl std::error::Error for QuarantineReason {}

/// Admission-control shedding: the pipeline's pending-event cap
/// ([`ChurnConfig::max_pending_events`]) is reached, so the offered
/// event was refused outright — not journaled, not quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// Journaled-but-uncommitted events at the time of the refusal.
    pub pending: u64,
    /// The configured cap that was hit.
    pub cap: usize,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "backpressure: {} pending events at cap {}", self.pending, self.cap)
    }
}

impl std::error::Error for Backpressure {}

/// Why [`ChurnPipeline::ingest`] / [`ChurnPipeline::ingest_wire`]
/// refused an offered event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The event failed decode or validation and was quarantined with a
    /// typed reason.
    Quarantined(QuarantineReason),
    /// The pending-event cap was hit; the event was shed (see
    /// [`Backpressure`]).
    Backpressure(Backpressure),
}

impl IngestError {
    /// A stable short reason code: the quarantine code
    /// ([`QuarantineReason::code`]) or `"backpressure"`.
    pub fn code(&self) -> &'static str {
        match self {
            IngestError::Quarantined(reason) => reason.code(),
            IngestError::Backpressure(_) => "backpressure",
        }
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Quarantined(reason) => reason.fmt(f),
            IngestError::Backpressure(bp) => bp.fmt(f),
        }
    }
}

impl std::error::Error for IngestError {}

/// One quarantined event: what arrived, where in the offered stream,
/// and why it was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantinedEvent {
    /// 0-based position in the *offered* stream (accepted + quarantined).
    pub index: u64,
    /// The decoded event, or `None` when the frame never decoded.
    pub event: Option<FaultEvent>,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
}

/// Why one snapshot build attempt failed.
#[derive(Clone, Debug)]
pub enum BuildFailure {
    /// The builder panicked; the payload message is preserved.
    Panicked(String),
    /// The builder rejected the configuration.
    Rejected(BuildError),
    /// The built snapshot disagreed with the batch engine on a sampled
    /// cell — it was discarded before publication.
    CrossCheckMismatch {
        /// The sampled source whose tree row disagreed.
        source: Vertex,
        /// The vertex at which the disagreement was detected.
        target: Vertex,
    },
    /// Replaying the journal during a full rebuild rejected an event —
    /// the journal itself is corrupt (this indicates an internal bug or
    /// external tampering, and is surfaced rather than panicking).
    JournalCorrupt(FaultEventError),
}

impl std::fmt::Display for BuildFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildFailure::Panicked(msg) => write!(f, "builder panicked: {msg}"),
            BuildFailure::Rejected(e) => write!(f, "builder rejected configuration: {e}"),
            BuildFailure::CrossCheckMismatch { source, target } => {
                write!(f, "cross-check mismatch at source {source}, target {target}")
            }
            BuildFailure::JournalCorrupt(e) => write!(f, "journal replay rejected event: {e}"),
        }
    }
}

impl std::error::Error for BuildFailure {}

/// A [`ChurnPipeline::commit`] call that exhausted its retry budget
/// *and* the full-rebuild escalation. The oracle keeps serving the last
/// good snapshot; the next `commit` starts a fresh attempt cycle.
#[derive(Clone, Debug)]
pub struct ChurnStalled {
    /// Build attempts made by this commit call (incremental + full).
    pub attempts: u32,
    /// The failure that ended the last attempt.
    pub last_failure: BuildFailure,
}

impl std::fmt::Display for ChurnStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "churn commit stalled after {} attempts (serving last good snapshot): {}",
            self.attempts, self.last_failure
        )
    }
}

impl std::error::Error for ChurnStalled {}

/// What a successful [`ChurnPipeline::commit`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitReport {
    /// The oracle epoch now serving.
    pub epoch: u64,
    /// The journal sequence the published snapshot folds in.
    pub seq: u64,
    /// Build attempts made (0 when the pipeline was already current).
    pub attempts: u32,
    /// `true` iff the publish came from the full-rebuild escalation.
    pub full_rebuild: bool,
    /// `true` iff the published snapshot was produced by the delta
    /// builder patching the predecessor (rather than a from-scratch
    /// rebuild).
    pub delta: bool,
    /// `false` iff the commit was a no-op (nothing pending, not
    /// degraded), in which case no new epoch was published.
    pub published: bool,
}

/// A point-in-time health report: how fresh the serving snapshot is and
/// how the control plane has been behaving.
///
/// `degraded == true` means the last build cycle failed and readers are
/// on the **last good snapshot**; `pending_events` is the staleness —
/// how many accepted events the served snapshot does not yet fold in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnHealth {
    /// The oracle epoch readers currently refresh onto.
    pub published_epoch: u64,
    /// Journal sequence folded into the published snapshot.
    pub published_seq: u64,
    /// Journal sequence of the last accepted event.
    pub accepted_seq: u64,
    /// Journal sequence of the last event compacted out of memory (0
    /// before any [`ChurnPipeline::compact`]).
    pub compacted_seq: u64,
    /// Events currently held in the in-memory journal tail — the
    /// bounded-memory number the compaction loop keeps small.
    pub journal_tail_len: usize,
    /// `accepted_seq - published_seq`: the served snapshot's staleness
    /// in events.
    pub pending_events: u64,
    /// Events shed by admission control
    /// ([`ChurnConfig::max_pending_events`]) since construction.
    pub shed_events: u64,
    /// `true` iff the pipeline is serving a stale last-good snapshot
    /// because builds are failing.
    pub degraded: bool,
    /// Build failures since the last successful publish.
    pub consecutive_failures: u32,
    /// Total events quarantined since construction.
    pub quarantined_total: u64,
    /// Successful publishes since construction (excluding the initial).
    pub commits: u64,
    /// Full-rebuild escalations attempted since construction.
    pub full_rebuilds: u64,
    /// Publishes served by a delta patch of the predecessor snapshot.
    pub delta_commits: u64,
    /// Delta attempts that fell back to the from-scratch builder
    /// (unsupported shape, tie refusal, panic, or cross-check reject).
    pub delta_fallbacks: u64,
    /// Why the most recent delta fallback happened. **Sticky**: kept
    /// across later successful commits so operators can see why deltas
    /// degrade to rebuilds even after the pipeline recovers.
    pub last_delta_fallback: Option<String>,
    /// Human-readable description of the most recent build failure, if
    /// the pipeline is degraded.
    pub last_failure: Option<String>,
}

/// The injection point a [`ChurnPipeline`] probe observes: which build
/// attempt is about to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildContext {
    /// 0-based attempt number within the current commit call.
    pub attempt: u32,
    /// `true` for the full-rebuild escalation attempt.
    pub full_rebuild: bool,
    /// `true` when this attempt will try the delta builder first (see
    /// [`ChurnConfig::delta_enabled`]; only attempt 0 tries deltas).
    pub delta: bool,
    /// The journal sequence the build is trying to fold in.
    pub target_seq: u64,
}

/// What an injection probe does to a build attempt (see
/// [`ChurnPipeline::set_build_probe`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildFault {
    /// Let the build run normally.
    None,
    /// Panic inside the (isolated) build step.
    Panic,
    /// Let the build succeed, then corrupt one tree cell so the
    /// cross-check **must** reject the snapshot — this is how the test
    /// harness proves the cross-check gate actually gates.
    Corrupt,
}

/// A boxed fault-injection probe consulted before each build attempt
/// (see [`ChurnPipeline::set_build_probe`] and [`inject::flaky_builder`]).
pub type BuildProbe = Box<dyn FnMut(&BuildContext) -> BuildFault + Send>;

/// The churn-hardened control plane around an [`Oracle`]: ingests fault
/// events, quarantines invalid ones, recompiles snapshots
/// panic-isolated, and publishes through the epoch swap — falling back
/// to last-good-snapshot serving when builds fail.
///
/// See the [module docs](self) for the robustness contract and an
/// end-to-end example.
pub struct ChurnPipeline<C: PathCost + 'static> {
    oracle: Oracle<C>,
    scheme: ExactScheme<C>,
    state: FaultState,
    /// The in-memory journal **tail**: accepted events *after* the last
    /// compaction point. `journal[k]` has sequence `base_seq + k + 1`.
    journal: Vec<FaultEvent>,
    /// Sequence of the last event folded into `base_state` (0 before
    /// any compaction: the tail is the whole journal).
    base_seq: u64,
    /// The fold of the compacted prefix `1..=base_seq` — what a full
    /// rebuild re-derives the fault state from, together with the tail.
    base_state: FaultState,
    /// Oracle epoch recorded by the compaction checkpoint (exported in
    /// [`ChurnPipeline::export_journal`]'s checkpoint frame).
    base_epoch: u64,
    /// The most recent [`ChurnPipeline::checkpoint`], if any — the
    /// point [`ChurnPipeline::compact`] truncates to.
    last_checkpoint: Option<JournalCheckpoint>,
    quarantine: Vec<QuarantinedEvent>,
    quarantined_total: u64,
    shed: u64,
    offered: u64,
    published_seq: u64,
    consecutive_failures: u32,
    commits: u64,
    full_rebuilds: u64,
    delta_commits: u64,
    delta_fallbacks: u64,
    last_delta_fallback: Option<String>,
    last_failure: Option<BuildFailure>,
    config: ChurnConfig,
    sleeper: Box<dyn FnMut(Duration) + Send>,
    probe: Option<BuildProbe>,
}

impl<C: PathCost + 'static> std::fmt::Debug for ChurnPipeline<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChurnPipeline")
            .field("state", &self.state)
            .field("journal_len", &self.journal.len())
            .field("base_seq", &self.base_seq)
            .field("quarantined", &self.quarantine.len())
            .field("published_seq", &self.published_seq)
            .field("consecutive_failures", &self.consecutive_failures)
            .finish_non_exhaustive()
    }
}

impl<C: PathCost + 'static> ChurnPipeline<C> {
    /// Builds the initial (fault-free) snapshot from `scheme`,
    /// publishes it as epoch 1, and returns the pipeline, with the
    /// default [`ChurnConfig`].
    pub fn new(scheme: &ExactScheme<C>) -> Result<Self, BuildError> {
        Self::with_config(scheme, ChurnConfig::default())
    }

    /// [`ChurnPipeline::new`] with an explicit configuration.
    pub fn with_config(scheme: &ExactScheme<C>, config: ChurnConfig) -> Result<Self, BuildError> {
        let snapshot = OracleSnapshot::builder(scheme).version(0).try_build()?;
        let oracle = Oracle::new(snapshot);
        Ok(ChurnPipeline {
            oracle,
            scheme: scheme.clone(),
            state: FaultState::new(scheme.graph().m()),
            journal: Vec::new(),
            base_seq: 0,
            base_state: FaultState::new(scheme.graph().m()),
            base_epoch: 0,
            last_checkpoint: None,
            quarantine: Vec::new(),
            quarantined_total: 0,
            shed: 0,
            offered: 0,
            published_seq: 0,
            consecutive_failures: 0,
            commits: 0,
            full_rebuilds: 0,
            delta_commits: 0,
            delta_fallbacks: 0,
            last_delta_fallback: None,
            last_failure: None,
            config,
            sleeper: Box::new(std::thread::sleep),
            probe: None,
        })
    }

    /// Reconstructs a pipeline from an accepted-event journal — the
    /// deterministic crash-recovery path. Every journal event is
    /// re-validated and re-applied in order, then a single snapshot
    /// folding the full journal is built and published; the result is
    /// state-identical to the pipeline that wrote the journal (same
    /// fault state, same published sequence, same snapshot cells).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultEvent};
    /// use rsp_oracle::churn::{ChurnConfig, ChurnPipeline};
    ///
    /// let g = generators::grid(4, 4);
    /// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    /// let mut a = ChurnPipeline::new(&scheme).unwrap();
    /// a.ingest(FaultEvent::Arrive(0)).unwrap();
    /// a.ingest(FaultEvent::Arrive(5)).unwrap();
    /// a.ingest(FaultEvent::Repair(0)).unwrap();
    /// a.commit().unwrap();
    ///
    /// // Crash. Recover from the journal alone:
    /// let b = ChurnPipeline::replay(&scheme, a.journal(), ChurnConfig::default()).unwrap();
    /// assert_eq!(b.fault_state(), a.fault_state());
    /// assert_eq!(b.health().published_seq, a.health().published_seq);
    /// ```
    pub fn replay(
        scheme: &ExactScheme<C>,
        journal: &[FaultEvent],
        config: ChurnConfig,
    ) -> Result<Self, ReplayError> {
        let mut pipeline = Self::with_config(scheme, config).map_err(ReplayError::Build)?;
        for (i, &ev) in journal.iter().enumerate() {
            // Recovery replays bypass admission control: re-validating
            // an accepted journal must never be shed by the live cap.
            pipeline
                .ingest_validated(ev)
                .map_err(|reason| ReplayError::Rejected { seq: i as u64 + 1, reason })?;
        }
        pipeline.commit().map_err(ReplayError::Stalled)?;
        Ok(pipeline)
    }

    /// Reconstructs a pipeline from a compaction checkpoint plus the
    /// journal tail recorded after it — recovery that skips replaying
    /// the compacted prefix event by event. The result is
    /// **state-identical to genesis replay** of the full journal (same
    /// fault state, same accepted sequence, same snapshot cells); the
    /// recovery-equivalence proptests pin this at every compaction
    /// point.
    ///
    /// The checkpoint is validated against the scheme's graph before
    /// anything is applied: a wrong edge count or an impossible
    /// `seq == 0` non-empty state is a typed [`ReplayError`], never a
    /// panic.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultEvent};
    /// use rsp_oracle::churn::{ChurnConfig, ChurnPipeline};
    ///
    /// let g = generators::grid(4, 4);
    /// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    /// let mut a = ChurnPipeline::new(&scheme).unwrap();
    /// a.ingest(FaultEvent::Arrive(0)).unwrap();
    /// a.commit().unwrap();
    ///
    /// // Checkpoint, compact, keep churning: memory holds only the tail.
    /// let ckpt = a.checkpoint();
    /// a.compact();
    /// a.ingest(FaultEvent::Arrive(5)).unwrap();
    /// a.commit().unwrap();
    /// assert_eq!(a.journal().len(), 1, "the compacted prefix left memory");
    ///
    /// // Crash. Recover from the checkpoint + tail alone:
    /// let b = ChurnPipeline::replay_from(&scheme, &ckpt, a.journal(), ChurnConfig::default())
    ///     .unwrap();
    /// assert_eq!(b.fault_state(), a.fault_state());
    /// assert_eq!(b.accepted_seq(), a.accepted_seq());
    /// ```
    pub fn replay_from(
        scheme: &ExactScheme<C>,
        checkpoint: &JournalCheckpoint,
        tail: &[FaultEvent],
        config: ChurnConfig,
    ) -> Result<Self, ReplayError> {
        let graph_m = scheme.graph().m();
        if checkpoint.state.edge_count() != graph_m {
            return Err(ReplayError::CheckpointMismatch {
                checkpoint_m: checkpoint.state.edge_count(),
                graph_m,
            });
        }
        if checkpoint.seq == 0 && !checkpoint.state.is_empty() {
            return Err(ReplayError::CheckpointInconsistent { faults: checkpoint.state.len() });
        }
        let mut pipeline = Self::with_config(scheme, config).map_err(ReplayError::Build)?;
        pipeline.state = checkpoint.state.clone();
        pipeline.base_state = checkpoint.state.clone();
        pipeline.base_seq = checkpoint.seq;
        pipeline.base_epoch = checkpoint.epoch;
        for (i, &ev) in tail.iter().enumerate() {
            pipeline.ingest_validated(ev).map_err(|reason| ReplayError::Rejected {
                seq: checkpoint.seq + i as u64 + 1,
                reason,
            })?;
        }
        pipeline.commit().map_err(ReplayError::Stalled)?;
        Ok(pipeline)
    }

    /// Recovers a pipeline from a durable journal **byte stream** (the
    /// [`ChurnPipeline::export_journal`] format): decode every CRC-framed
    /// entry, fold from the *last* checkpoint frame (genesis when there
    /// is none), and replay the events after it.
    ///
    /// A **torn tail** — the stream's final frame cut short by a crash
    /// mid-write — is tolerated as a clean recovery point and reported
    /// in [`RecoveryReport::torn_tail_at`]. Interior corruption (a
    /// checksum-failing, unknown-kind, or undecodable frame with more
    /// frames after it) is a typed [`RecoverError`], never a panic and
    /// never a silently wrong state.
    pub fn recover(
        scheme: &ExactScheme<C>,
        bytes: &[u8],
        config: ChurnConfig,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let decoded = decode_journal(bytes).map_err(RecoverError::Decode)?;
        let torn_tail_at = match decoded.tail {
            JournalTail::Torn { offset } => Some(offset),
            JournalTail::Clean => None,
        };
        let frames = decoded.frames.len();
        let mut checkpoint: Option<JournalCheckpoint> = None;
        let mut tail: Vec<FaultEvent> = Vec::new();
        for frame in decoded.frames {
            match frame {
                JournalFrame::Checkpoint(c) => {
                    checkpoint = Some(c);
                    tail.clear();
                }
                JournalFrame::Event(ev) => tail.push(ev),
            }
        }
        let report = RecoveryReport {
            frames,
            events: tail.len(),
            checkpoint_seq: checkpoint.as_ref().map_or(0, |c| c.seq),
            torn_tail_at,
        };
        let pipeline = match &checkpoint {
            Some(c) => Self::replay_from(scheme, c, &tail, config),
            None => Self::replay(scheme, &tail, config),
        }
        .map_err(RecoverError::Replay)?;
        Ok((pipeline, report))
    }

    /// Records a compaction checkpoint: the fold of every accepted
    /// event so far, at the current accepted sequence and serving
    /// epoch. The checkpoint is retained as the pipeline's latest (the
    /// point [`ChurnPipeline::compact`] truncates to) and returned for
    /// durable storage.
    ///
    /// Checkpointing captures the **accepted** state, which may be
    /// ahead of the published snapshot; recovery replays through its
    /// own commit, so the distinction cannot leak into serving.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultEvent};
    /// use rsp_oracle::churn::ChurnPipeline;
    ///
    /// let g = generators::grid(4, 4);
    /// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    /// let mut pipeline = ChurnPipeline::new(&scheme).unwrap();
    /// pipeline.ingest(FaultEvent::Arrive(3)).unwrap();
    /// pipeline.commit().unwrap();
    ///
    /// let ckpt = pipeline.checkpoint();
    /// assert_eq!(ckpt.seq, 1);
    /// assert_eq!(ckpt.state.faults().as_slice(), &[3]);
    ///
    /// // Compaction drops the checkpointed prefix from memory.
    /// assert_eq!(pipeline.compact(), 1);
    /// assert!(pipeline.journal().is_empty());
    /// assert_eq!(pipeline.journal_base_seq(), 1);
    /// ```
    pub fn checkpoint(&mut self) -> JournalCheckpoint {
        let ckpt = JournalCheckpoint {
            seq: self.accepted_seq(),
            epoch: self.oracle.epoch(),
            state: self.state.clone(),
        };
        self.last_checkpoint = Some(ckpt.clone());
        ckpt
    }

    /// Truncates the in-memory journal prefix covered by the latest
    /// [`ChurnPipeline::checkpoint`], re-basing the tail on the
    /// checkpoint's folded state. Returns the number of events dropped
    /// from memory (0 when no checkpoint is newer than the last
    /// compaction).
    ///
    /// This is what keeps journal memory `O(events since checkpoint)`
    /// under unbounded churn: a `checkpoint(); compact();` loop bounds
    /// the tail at the checkpoint cadence, and
    /// [`ChurnHealth::journal_tail_len`] exposes the bound holding.
    pub fn compact(&mut self) -> u64 {
        let Some(ckpt) = self.last_checkpoint.clone() else { return 0 };
        if ckpt.seq <= self.base_seq {
            return 0;
        }
        let dropped = (ckpt.seq - self.base_seq) as usize;
        self.journal.drain(..dropped);
        self.base_seq = ckpt.seq;
        self.base_state = ckpt.state;
        self.base_epoch = ckpt.epoch;
        dropped as u64
    }

    /// Serializes the journal as a durable CRC-framed byte stream: a
    /// checkpoint frame for the compacted prefix (when one exists),
    /// then one event frame per tail event. Feed the bytes to
    /// [`ChurnPipeline::recover`] after a crash; a stream torn mid-write
    /// still recovers everything before the tear.
    pub fn export_journal(&self) -> Vec<u8> {
        let mut out = Vec::new();
        if self.base_seq > 0 {
            JournalFrame::Checkpoint(JournalCheckpoint {
                seq: self.base_seq,
                epoch: self.base_epoch,
                state: self.base_state.clone(),
            })
            .encode_into(&mut out);
        }
        for &ev in &self.journal {
            JournalFrame::Event(ev).encode_into(&mut out);
        }
        out
    }

    /// The serving handle. Clone it for control-plane sharing; call
    /// [`Oracle::reader`] (or [`ChurnPipeline::reader`]) per data-plane
    /// thread.
    pub fn oracle(&self) -> &Oracle<C> {
        &self.oracle
    }

    /// A new per-thread data-plane reader on the pipeline's oracle.
    pub fn reader(&self) -> OracleReader<C> {
        self.oracle.reader()
    }

    /// The compiled scheme snapshots are built from.
    pub fn scheme(&self) -> &ExactScheme<C> {
        &self.scheme
    }

    /// The current accepted fault state (may be ahead of what the
    /// published snapshot folds in — see [`ChurnHealth::pending_events`]).
    pub fn fault_state(&self) -> &FaultState {
        &self.state
    }

    /// The in-memory accepted-event journal **tail**: events after the
    /// last compaction point. `journal()[k]` is the event with sequence
    /// number [`ChurnPipeline::journal_base_seq`]` + k + 1`. Before any
    /// [`ChurnPipeline::compact`] the tail is the whole journal and can
    /// be fed to [`ChurnPipeline::replay`]; after one, recover with
    /// [`ChurnPipeline::replay_from`] or the byte-stream
    /// [`ChurnPipeline::recover`].
    pub fn journal(&self) -> &[FaultEvent] {
        &self.journal
    }

    /// Sequence of the last event compacted out of the in-memory
    /// journal (0 before any compaction).
    pub fn journal_base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Sequence of the last accepted event (compacted prefix + tail).
    pub fn accepted_seq(&self) -> u64 {
        self.base_seq + self.journal.len() as u64
    }

    /// The retained quarantine log, in offered order — the most recent
    /// [`ChurnConfig::max_quarantine_log`] entries
    /// ([`ChurnHealth::quarantined_total`] counts every quarantine,
    /// including dropped ones).
    pub fn quarantined(&self) -> &[QuarantinedEvent] {
        &self.quarantine
    }

    /// An owned handle to the currently published (last good) snapshot.
    pub fn published_snapshot(&self) -> Arc<OracleSnapshot<C>> {
        self.oracle.snapshot()
    }

    /// Accepted events not yet folded into the published snapshot.
    pub fn pending_events(&self) -> u64 {
        self.accepted_seq() - self.published_seq
    }

    /// Offers one event to the pipeline. Valid events are journaled and
    /// folded into the pending fault state (returning their journal
    /// sequence number); invalid ones are quarantined with a reason and
    /// change nothing; events past the pending cap are shed with
    /// [`IngestError::Backpressure`]. **Never panics**, whatever the
    /// event.
    ///
    /// Ingestion does not rebuild; call [`ChurnPipeline::commit`] to
    /// publish the pending state (batching many events per commit is
    /// the intended usage under heavy churn).
    pub fn ingest(&mut self, ev: FaultEvent) -> Result<u64, IngestError> {
        self.admit().map_err(IngestError::Backpressure)?;
        self.ingest_validated(ev).map_err(IngestError::Quarantined)
    }

    /// [`ChurnPipeline::ingest`] from a raw wire frame
    /// ([`FaultEvent::decode`]): undecodable bytes are quarantined with
    /// a [`QuarantineReason::Wire`] reason, and the backpressure check
    /// runs *before* the decode so a stalled pipeline does no per-frame
    /// work. **Never panics**, whatever the bytes — the robustness
    /// suite feeds this arbitrary garbage.
    pub fn ingest_wire(&mut self, frame: &[u8]) -> Result<u64, IngestError> {
        self.admit().map_err(IngestError::Backpressure)?;
        match FaultEvent::decode(frame) {
            Ok(ev) => self.ingest_validated(ev).map_err(IngestError::Quarantined),
            Err(e) => {
                let index = self.offered;
                self.offered += 1;
                let reason = QuarantineReason::Wire(e);
                self.push_quarantined(QuarantinedEvent { index, event: None, reason });
                Err(IngestError::Quarantined(reason))
            }
        }
    }

    /// The admission-control gate: sheds the offered event when the
    /// pending-event cap is reached.
    fn admit(&mut self) -> Result<(), Backpressure> {
        let pending = self.pending_events();
        if pending >= self.config.max_pending_events as u64 {
            self.offered += 1;
            self.shed += 1;
            return Err(Backpressure { pending, cap: self.config.max_pending_events });
        }
        Ok(())
    }

    /// Validation + journal/quarantine, with admission control already
    /// passed (recovery replay enters here: re-validating a journal must
    /// never be shed by the live-traffic cap).
    fn ingest_validated(&mut self, ev: FaultEvent) -> Result<u64, QuarantineReason> {
        let index = self.offered;
        self.offered += 1;
        match self.state.apply(ev) {
            Ok(()) => {
                self.journal.push(ev);
                Ok(self.accepted_seq())
            }
            Err(e) => {
                let reason = QuarantineReason::Event(e);
                self.push_quarantined(QuarantinedEvent { index, event: Some(ev), reason });
                Err(reason)
            }
        }
    }

    /// Appends to the bounded quarantine log, dropping the oldest entry
    /// once [`ChurnConfig::max_quarantine_log`] is reached. The total
    /// counter keeps every quarantine.
    fn push_quarantined(&mut self, q: QuarantinedEvent) {
        self.quarantined_total += 1;
        if self.config.max_quarantine_log == 0 {
            return;
        }
        while self.quarantine.len() >= self.config.max_quarantine_log {
            self.quarantine.remove(0);
        }
        self.quarantine.push(q);
    }

    /// Recompiles a snapshot folding every accepted event and publishes
    /// it through the epoch swap. No-op when already current.
    ///
    /// The first attempt patches the published snapshot with the
    /// **delta builder** when [`ChurnConfig::delta_enabled`]: a
    /// structural delta refusal runs the from-scratch builder
    /// immediately in the same attempt, a hard delta failure burns the
    /// attempt like any build failure, and either reason lands in
    /// [`ChurnHealth::last_delta_fallback`]. Rebuild-only behavior is
    /// one config flag away and cell-for-cell equivalent.
    /// Each build attempt is **panic-isolated** and **cross-checked**
    /// against the batch engine on sampled sources; a failed attempt
    /// leaves the last good snapshot serving, backs off exponentially
    /// ([`ChurnConfig::backoff`]), and retries. After
    /// [`ChurnConfig::retry_budget`] incremental failures the pipeline
    /// escalates to a from-scratch **full rebuild** (fault state
    /// re-derived from the journal). If that also fails, `commit`
    /// returns [`ChurnStalled`] — readers are still serving the last
    /// good snapshot, [`ChurnPipeline::health`] reports the staleness,
    /// and the next `commit` starts a fresh cycle.
    pub fn commit(&mut self) -> Result<CommitReport, ChurnStalled> {
        let target_seq = self.accepted_seq();
        if target_seq == self.published_seq && self.consecutive_failures == 0 {
            return Ok(CommitReport {
                epoch: self.oracle.epoch(),
                seq: target_seq,
                attempts: 0,
                full_rebuild: false,
                delta: false,
                published: false,
            });
        }

        let mut attempts = 0;
        for attempt in 0..self.config.retry_budget {
            attempts += 1;
            match self.attempt(attempt, false, target_seq) {
                Ok((snapshot, delta)) => {
                    return Ok(self.publish_built(snapshot, target_seq, attempts, false, delta))
                }
                Err(failure) => {
                    self.note_failure(failure);
                    let delay = self.config.backoff(attempt);
                    (self.sleeper)(delay);
                }
            }
        }

        // Escalation: re-derive the fault state from the journal and
        // build from scratch.
        attempts += 1;
        self.full_rebuilds += 1;
        match self.attempt(self.config.retry_budget, true, target_seq) {
            Ok((snapshot, _)) => {
                Ok(self.publish_built(snapshot, target_seq, attempts, true, false))
            }
            Err(failure) => {
                self.note_failure(failure.clone());
                Err(ChurnStalled { attempts, last_failure: failure })
            }
        }
    }

    /// How fresh the serving snapshot is and how the control plane has
    /// been behaving. Cheap; call it from monitoring loops.
    pub fn health(&self) -> ChurnHealth {
        let accepted_seq = self.accepted_seq();
        ChurnHealth {
            published_epoch: self.oracle.epoch(),
            published_seq: self.published_seq,
            accepted_seq,
            compacted_seq: self.base_seq,
            journal_tail_len: self.journal.len(),
            pending_events: accepted_seq - self.published_seq,
            shed_events: self.shed,
            degraded: self.consecutive_failures > 0,
            consecutive_failures: self.consecutive_failures,
            quarantined_total: self.quarantined_total,
            commits: self.commits,
            full_rebuilds: self.full_rebuilds,
            delta_commits: self.delta_commits,
            delta_fallbacks: self.delta_fallbacks,
            last_delta_fallback: self.last_delta_fallback.clone(),
            last_failure: self.last_failure.as_ref().map(|f| f.to_string()),
        }
    }

    /// Replaces the between-retry sleeper (default:
    /// [`std::thread::sleep`]). The deterministic test harness installs
    /// a recording no-op so backoff schedules are asserted, not waited
    /// for.
    pub fn set_sleeper(&mut self, sleeper: impl FnMut(Duration) + Send + 'static) {
        self.sleeper = Box::new(sleeper);
    }

    /// Installs a fault-injection probe consulted before every build
    /// attempt (see [`BuildFault`]); `None` clears it. This is the
    /// harness seam [`inject`] uses to panic the builder at chosen
    /// steps and to prove the cross-check rejects corrupted snapshots.
    pub fn set_build_probe(&mut self, probe: Option<BuildProbe>) {
        self.probe = probe;
    }

    /// One panic-isolated build + cross-check attempt. Returns the
    /// built snapshot and whether the delta builder produced it.
    ///
    /// The fallback ladder: attempt 0 (with [`ChurnConfig::delta_enabled`])
    /// tries a delta patch of the published snapshot first. A
    /// **structural refusal** ([`crate::delta::DeltaUnsupported`]) runs
    /// the from-scratch builder immediately, in the same attempt — no
    /// backoff is owed for a configuration deltas were never going to
    /// handle. A **hard delta failure** (panic, rejected configuration,
    /// cross-check mismatch) fails the attempt like any build failure:
    /// backoff, then retry — and every later attempt is a full build.
    /// Either way the reason lands in [`ChurnHealth::last_delta_fallback`].
    fn attempt(
        &mut self,
        attempt: u32,
        full_rebuild: bool,
        target_seq: u64,
    ) -> Result<(OracleSnapshot<C>, bool), BuildFailure> {
        let try_delta = attempt == 0 && !full_rebuild && self.config.delta_enabled;
        let ctx = BuildContext { attempt, full_rebuild, delta: try_delta, target_seq };
        let fault = self.probe.as_mut().map_or(BuildFault::None, |p| p(&ctx));

        let faults: FaultSet = if full_rebuild {
            // From scratch: trust nothing but the journal — the
            // compacted prefix's fold plus the in-memory tail.
            let mut st = self.base_state.clone();
            for &ev in &self.journal {
                st.apply(ev).map_err(BuildFailure::JournalCorrupt)?;
            }
            st.faults().clone()
        } else {
            self.state.faults().clone()
        };

        if try_delta {
            let prev = self.oracle.snapshot();
            match delta_build_and_check(
                &prev,
                &self.scheme,
                faults.clone(),
                target_seq,
                fault,
                &self.config,
            ) {
                Ok(snapshot) => return Ok((snapshot, true)),
                Err(DeltaAttemptError::Unsupported(u)) => {
                    self.delta_fallbacks += 1;
                    self.last_delta_fallback = Some(format!("delta unsupported: {u}"));
                }
                Err(DeltaAttemptError::Failed(failure)) => {
                    self.delta_fallbacks += 1;
                    self.last_delta_fallback = Some(failure.to_string());
                    return Err(failure);
                }
            }
        }

        build_and_check(&self.scheme, faults, target_seq, fault, &self.config).map(|s| (s, false))
    }

    fn publish_built(
        &mut self,
        snapshot: OracleSnapshot<C>,
        target_seq: u64,
        attempts: u32,
        full_rebuild: bool,
        delta: bool,
    ) -> CommitReport {
        let epoch = self.oracle.publish(snapshot);
        self.published_seq = target_seq;
        self.consecutive_failures = 0;
        self.last_failure = None;
        self.commits += 1;
        if delta {
            self.delta_commits += 1;
        }
        CommitReport { epoch, seq: target_seq, attempts, full_rebuild, delta, published: true }
    }

    fn note_failure(&mut self, failure: BuildFailure) {
        self.consecutive_failures += 1;
        self.last_failure = Some(failure);
    }
}

/// Errors from [`ChurnPipeline::replay`] / [`ChurnPipeline::replay_from`].
#[derive(Clone, Debug)]
pub enum ReplayError {
    /// The initial snapshot build failed.
    Build(BuildError),
    /// A journal event failed validation — the journal is not an
    /// accepted-event journal of this scheme's graph.
    Rejected {
        /// 1-based sequence of the rejected event.
        seq: u64,
        /// Why it was rejected.
        reason: QuarantineReason,
    },
    /// The checkpoint was folded over a different graph: its edge count
    /// disagrees with the scheme's.
    CheckpointMismatch {
        /// The checkpoint state's edge count.
        checkpoint_m: usize,
        /// The scheme graph's edge count.
        graph_m: usize,
    },
    /// The checkpoint claims a non-empty fault state at sequence 0 — no
    /// accepted-event journal can produce that.
    CheckpointInconsistent {
        /// The impossible fault count.
        faults: usize,
    },
    /// The recovery commit stalled (the pipeline is returned to a
    /// serving state only on success, so this aborts recovery).
    Stalled(ChurnStalled),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Build(e) => write!(f, "replay: initial build failed: {e}"),
            ReplayError::Rejected { seq, reason } => {
                write!(f, "replay: journal event {seq} rejected: {reason}")
            }
            ReplayError::CheckpointMismatch { checkpoint_m, graph_m } => {
                write!(
                    f,
                    "replay: checkpoint folded over {checkpoint_m} edges, graph has {graph_m}"
                )
            }
            ReplayError::CheckpointInconsistent { faults } => {
                write!(f, "replay: checkpoint claims {faults} faults at sequence 0")
            }
            ReplayError::Stalled(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Errors from [`ChurnPipeline::recover`].
#[derive(Clone, Debug)]
pub enum RecoverError {
    /// The byte stream has interior corruption (a fully-present frame
    /// that fails its checksum or does not decode).
    Decode(JournalDecodeError),
    /// The decoded frames did not replay into a serving pipeline.
    Replay(ReplayError),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Decode(e) => write!(f, "recover: {e}"),
            RecoverError::Replay(e) => write!(f, "recover: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// What [`ChurnPipeline::recover`] found in the byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames decoded cleanly (checkpoints + events).
    pub frames: usize,
    /// Events replayed after the effective checkpoint.
    pub events: usize,
    /// Sequence of the checkpoint recovery started from (0 = genesis).
    pub checkpoint_seq: u64,
    /// Byte offset of a torn final frame, when the stream was cut
    /// mid-write (`None` for a clean tail).
    pub torn_tail_at: Option<usize>,
}

/// The panic-isolated build-validate-cross-check step shared by
/// incremental and full-rebuild attempts.
fn build_and_check<C: PathCost + 'static>(
    scheme: &ExactScheme<C>,
    faults: FaultSet,
    version: u64,
    injected: BuildFault,
    config: &ChurnConfig,
) -> Result<OracleSnapshot<C>, BuildFailure> {
    // AssertUnwindSafe: the closure only reads `scheme` and constructs
    // owned data (builder clones the scheme; the batch scratch is local
    // to the closure), so a panic at any point leaves nothing observable
    // half-mutated.
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<OracleSnapshot<C>, BuildFailure> {
        if injected == BuildFault::Panic {
            panic!("injected builder panic (target seq {version})");
        }
        let mut snapshot = OracleSnapshot::builder(scheme)
            .base_faults(faults)
            .version(version)
            .try_build()
            .map_err(BuildFailure::Rejected)?;
        let samples = cross_check_sample(scheme.graph().n(), config, version);
        if injected == BuildFault::Corrupt {
            // Corrupt a row the cross-check will visit, so the gate is
            // exercised, not bypassed.
            let s = samples.first().copied().unwrap_or(0);
            snapshot.corrupt_row_for_injection(s);
        }
        cross_check(&snapshot, scheme, &samples)?;
        Ok(snapshot)
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => Err(BuildFailure::Panicked(panic_message(payload.as_ref()))),
    }
}

/// How a delta attempt failed: a structural refusal (run the full
/// builder now, same attempt) vs. a hard failure (fail the attempt,
/// back off, retry with full builds).
enum DeltaAttemptError {
    Unsupported(DeltaUnsupported),
    Failed(BuildFailure),
}

/// The panic-isolated delta-patch + cross-check step: the delta twin of
/// [`build_and_check`], gated by the **same** sampled batch-engine
/// cross-check, so a wrong patch can never out-publish a rebuild.
fn delta_build_and_check<C: PathCost + 'static>(
    prev: &OracleSnapshot<C>,
    scheme: &ExactScheme<C>,
    faults: FaultSet,
    version: u64,
    injected: BuildFault,
    config: &ChurnConfig,
) -> Result<OracleSnapshot<C>, DeltaAttemptError> {
    // AssertUnwindSafe: reads `prev`/`scheme`, constructs owned data.
    let result =
        catch_unwind(AssertUnwindSafe(|| -> Result<OracleSnapshot<C>, DeltaAttemptError> {
            if injected == BuildFault::Panic {
                panic!("injected delta builder panic (target seq {version})");
            }
            let mut snapshot = match DeltaBuilder::new(prev).version(version).build(&faults) {
                Ok((snapshot, _stats)) => snapshot,
                Err(DeltaError::Unsupported(u)) => return Err(DeltaAttemptError::Unsupported(u)),
                Err(DeltaError::Build(e)) => {
                    return Err(DeltaAttemptError::Failed(BuildFailure::Rejected(e)))
                }
            };
            let samples = cross_check_sample(scheme.graph().n(), config, version);
            if injected == BuildFault::Corrupt {
                let s = samples.first().copied().unwrap_or(0);
                snapshot.corrupt_row_for_injection(s);
            }
            cross_check(&snapshot, scheme, &samples).map_err(DeltaAttemptError::Failed)?;
            Ok(snapshot)
        }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => Err(DeltaAttemptError::Failed(BuildFailure::Panicked(format!(
            "delta: {}",
            panic_message(payload.as_ref())
        )))),
    }
}

/// The deterministic cross-check source sample for a build targeting
/// `version`: distinct vertices drawn from a seeded generator, fresh
/// per version so successive builds audit different rows.
fn cross_check_sample(n: usize, config: &ChurnConfig, version: u64) -> Vec<Vertex> {
    let k = config.cross_check_sources.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(
        config.cross_check_seed ^ version.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut picked: Vec<Vertex> = Vec::with_capacity(k);
    while picked.len() < k {
        let v = rng.random_range(0..n);
        if !picked.contains(&v) {
            picked.push(v);
        }
    }
    picked
}

/// Compares the snapshot's precomputed rows for `samples` against a
/// fresh `dijkstra_batch` run on the same base fault state, cell by
/// cell (hops, parents, exact costs).
fn cross_check<C: PathCost + 'static>(
    snapshot: &OracleSnapshot<C>,
    scheme: &ExactScheme<C>,
    samples: &[Vertex],
) -> Result<(), BuildFailure> {
    if samples.is_empty() {
        return Ok(());
    }
    let g = scheme.graph();
    let fault_sets = [snapshot.base_faults().clone()];
    let mut batch = BatchScratch::<C>::new();
    let mut mismatch = None;
    dijkstra_batch(g, samples, &fault_sets, scheme.directed_costs(), &mut batch, |si, _fi, run| {
        let s = samples[si];
        let row = snapshot.baseline(s).expect("default snapshots serve every vertex");
        for v in g.vertices() {
            if row.dist(v) != run.hops(v)
                || row.parent(v) != run.parent(v)
                || row.cost(v) != run.cost(v)
            {
                mismatch = Some((s, v));
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    match mismatch {
        Some((source, target)) => Err(BuildFailure::CrossCheckMismatch { source, target }),
        None => Ok(()),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
