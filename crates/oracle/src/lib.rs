//! # `rsp_oracle` — the lock-free routing-oracle serving layer
//!
//! Every other crate in this workspace is a *compiler*: it turns a graph
//! into tiebreaking schemes ([`rsp_core`]), preservers
//! ([`rsp_preserver`]), or fault labels ([`rsp_labeling`]). This crate
//! is the *server*: it freezes those outputs into an immutable
//! [`OracleSnapshot`] and answers `(s, t, F)` queries from any number of
//! threads with **zero locks and zero allocation on the hot path**,
//! while a control-plane writer publishes new snapshot epochs under
//! load without ever blocking a reader.
//!
//! The design is the classic router split (RIB/FIB):
//!
//! * **Control plane** — [`SnapshotBuilder`] compiles a
//!   [`rsp_core::ExactScheme`] (plus optional Theorem 26 preserver and
//!   Theorem 30 fault labels) into flat struct-of-arrays canonical
//!   trees. Expensive, allocating, single-threaded — and entirely off
//!   the read path.
//! * **Publication** — [`Oracle::publish`] swaps the current snapshot
//!   `Arc` and bumps an epoch counter; in-flight readers keep the old
//!   epoch alive until they next refresh, then it drops.
//! * **Data plane** — each serving thread holds an [`OracleReader`]:
//!   per-query cost is one atomic epoch load, an `O(|F|)` check whether
//!   the faults touch the precomputed tree, and either a flat-array
//!   lookup (fast path) or an exact engine run in the reader's own warm
//!   scratch (slow path). Both are byte-identical to
//!   [`rsp_core::Rpts::tree_from_with`], proptest-pinned.
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_graph::{generators, FaultSet};
//! use rsp_oracle::Oracle;
//!
//! let g = generators::grid(4, 4);
//! let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
//!
//! // Control plane: compile + publish. Data plane: per-thread readers.
//! let oracle = Oracle::build(&scheme);
//! let mut reader = oracle.reader();
//! assert_eq!(reader.dist(0, 15, &FaultSet::single(0)), Some(6));
//! ```
//!
//! Under *churn* — live fault arrive/repair streams — the [`churn`]
//! module hardens this loop: [`churn::ChurnPipeline`] validates and
//! quarantines hostile events, recompiles snapshots panic-isolated and
//! cross-checked, retries with backoff, and keeps readers on the last
//! good snapshot when builds fail (staleness exposed via
//! [`churn::ChurnHealth`], never hidden). A seeded injection harness
//! ([`churn::inject`]) drives drops, duplicates, reorders, corruptions,
//! and builder panics deterministically in the robustness suite.
//!
//! Long-lived deployments get *durability and self-audit* on top:
//! journal streams serialize through the CRC-framed codec in
//! [`rsp_graph::journal`], [`churn::ChurnPipeline::checkpoint`] /
//! [`churn::ChurnPipeline::compact`] bound journal memory,
//! [`churn::ChurnPipeline::recover`] restarts from bytes (tolerating a
//! torn tail, refusing interior corruption with a typed error), and the
//! background [`scrub::Scrubber`] continuously re-verifies published
//! rows cell-by-cell against the exact engine — quarantining corrupt
//! rows (served correctly through the engine fallback) and healing them
//! through a targeted-repair → full-rebuild ladder
//! ([`scrub::ScrubHealth`]).
//!
//! See the "Serving layer", "Churn pipeline & degraded modes", and
//! "Durability, compaction & scrubbing" chapters of
//! `docs/ARCHITECTURE.md` for the control/data-plane diagram, the
//! snapshot lifecycle (build → publish → retire), the event-ingestion
//! state machine, the journal frame format and checkpoint lifecycle,
//! the quarantine/repair ladder, and guidance on `Oracle` vs the raw
//! engines.
//!
//! ## Paper cross-reference
//!
//! | Construct | Paper (Bodwin–Parter, PODC 2021) |
//! |---|---|
//! | Canonical tree rows in [`OracleSnapshot`] | the scheme's selected SPTs `π(s, ·)` |
//! | Fast path "faults miss the tree" | restoration: surviving selected paths stay selected |
//! | [`SnapshotBuilder::preserver`] | Theorem 26 `S × V` preserver |
//! | [`SnapshotBuilder::fault_labels`] | Theorem 30 distance labeling |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod churn;
pub mod delta;
pub mod scrub;
mod serve;
mod snapshot;

pub use serve::{Oracle, OracleReader};
pub use snapshot::{BuildError, OracleSnapshot, QueryError, SnapshotBuilder, TreeView};
