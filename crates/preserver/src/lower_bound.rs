//! The lower-bound family of Theorem 27 (Appendix B, Figures 2–3).
//!
//! Consistency and stability alone do **not** yield optimal preservers:
//! there are graphs and consistent-stable-symmetric schemes whose overlaid
//! preservers have `Ω(n^{2−1/2^f} σ^{1/2^f})` edges. The witness:
//!
//! * `G_f(d)` — a recursive tree: a spine path `u^f_1 … u^f_d`, with each
//!   `u^f_j` hanging a length-`(d−j+1)` path `Q^f_j` down to (for `f = 1`)
//!   a terminal leaf `z_j`, or (for `f ≥ 2`) the root of a disjoint copy
//!   of `G_{f−1}(√d)`. All root-to-leaf distances are equal, and each leaf
//!   `z` carries a fault set `Label_f(z)` of `≤ f` spine edges whose
//!   removal kills the root paths of exactly the leaves to its right;
//! * `G*_f(V, E, W)` — `G_f(d)` plus a vertex set `X` joined to every leaf
//!   by a complete bipartite graph `B`, with a *bad* weight function `W`
//!   that prices the `(z_j, x)` edges in strictly decreasing order of `j`.
//!   Under fault set `Label(z_j)` every `x ∈ X` is forced to route through
//!   `z_j` (the cheapest surviving leaf), so the `{s} × V` preserver must
//!   contain essentially all of `B` — `Ω(n^{2−1/2^f})` edges.
//!
//! The counterpart measurement (the paper's Section 4.1 remark): replace
//! `W` by a *random perturbation* scheme on the same graph and the forced
//! bipartite edges collapse to `O(|X| log λ)`-ish — random tiebreaking
//! escapes this lower bound. Experiment E6 plots both.

use rsp_core::{ExactScheme, RandomGridAtw, Rpts};
use rsp_graph::{EdgeId, FaultSet, Graph, GraphBuilder, Vertex};

use crate::ft_bfs::{overlay_paths, Preserver};

/// The recursive tree `G_f(d)` plus bookkeeping.
#[derive(Clone, Debug)]
struct GfParts {
    root: Vertex,
    /// Spine vertices `u^f_1 … u^f_d` of the outermost level.
    spine: Vec<Vertex>,
    /// Terminal leaves, left to right.
    leaves: Vec<Vertex>,
    /// Per leaf, `Label_f(z)` as vertex pairs (translated to edge ids once
    /// the full graph is built).
    labels: Vec<Vec<(Vertex, Vertex)>>,
}

fn gf_rec(f: usize, d: usize, next_id: &mut usize, edges: &mut Vec<(Vertex, Vertex)>) -> GfParts {
    assert!(f >= 1 && d >= 2, "G_f(d) needs f >= 1, d >= 2");
    // Spine u_1 … u_d.
    let spine: Vec<Vertex> = (0..d).map(|i| *next_id + i).collect();
    *next_id += d;
    for w in spine.windows(2) {
        edges.push((w[0], w[1]));
    }
    let mut leaves = Vec::new();
    let mut labels = Vec::new();
    for j0 in 0..d {
        // Q_j: path of d − j edges (paper's d − j + 1 with 1-based j)
        // hanging from u_j.
        let q_len = d - j0;
        let mut prev = spine[j0];
        for _ in 0..q_len.saturating_sub(1) {
            let v = *next_id;
            *next_id += 1;
            edges.push((prev, v));
            prev = v;
        }
        let attach = prev;
        // The spine edge this column's label contributes (none for the
        // last column).
        let spine_edge = (j0 + 1 < d).then(|| (spine[j0], spine[j0 + 1]));
        if f == 1 {
            let z = *next_id;
            *next_id += 1;
            edges.push((attach, z));
            leaves.push(z);
            labels.push(spine_edge.into_iter().collect());
        } else {
            let sub_d = (d as f64).sqrt().floor() as usize;
            let sub = gf_rec(f - 1, sub_d.max(2), next_id, edges);
            edges.push((attach, sub.root));
            for (leaf, sub_label) in sub.leaves.iter().zip(&sub.labels) {
                leaves.push(*leaf);
                let mut label: Vec<(Vertex, Vertex)> = spine_edge.into_iter().collect();
                label.extend(sub_label.iter().copied());
                labels.push(label);
            }
        }
    }
    GfParts { root: spine[0], spine, leaves, labels }
}

/// The assembled lower-bound graph `G*_f(V, E, W)` with its query family.
#[derive(Clone, Debug)]
pub struct LowerBoundGraph {
    /// The full graph: `G_f(d)` + `X` + the complete bipartite `B`.
    pub graph: Graph,
    /// The single source `s = u^f_1`.
    pub source: Vertex,
    /// Terminal leaves `z_1 … z_λ`, left to right.
    pub leaves: Vec<Vertex>,
    /// `Label_f(z_j)` per leaf, as edge ids (size `≤ f`).
    pub labels: Vec<FaultSet>,
    /// The `X` side of the bipartite gadget.
    pub xs: Vec<Vertex>,
    /// Edge ids of the bipartite graph `B` (the edges the bad scheme is
    /// forced to include).
    pub bipartite: Vec<EdgeId>,
    /// The fault parameter `f`.
    pub f: usize,
    /// The spine length `d`.
    pub d: usize,
}

/// Builds `G*_f(V, E, W)`'s graph with spine length `d` and `|X| =
/// x_count` (the paper sizes `X` to make `|V| = n`; parameterizing
/// directly is more convenient for sweeps).
///
/// # Panics
///
/// Panics if `f == 0`, `d < 2`, or `x_count == 0`.
pub fn build_lower_bound_graph(f: usize, d: usize, x_count: usize) -> LowerBoundGraph {
    assert!(f >= 1, "the construction starts at one fault");
    assert!(d >= 2 && x_count > 0, "need a spine and a nonempty X");
    let mut next_id = 0;
    let mut edges = Vec::new();
    let parts = gf_rec(f, d, &mut next_id, &mut edges);
    let last_spine = *parts.spine.last().expect("nonempty spine");
    let xs: Vec<Vertex> = (0..x_count).map(|i| next_id + i).collect();
    next_id += x_count;
    // u^f_d is connected to all of X (keeps X at distance d−1+1 in the
    // fault-free graph, strictly closer than any leaf route).
    for &x in &xs {
        edges.push((last_spine, x));
    }
    // The complete bipartite graph B between leaves and X. Edge ids of B
    // are recorded for the forced-edge count.
    let bipartite_start = edges.len();
    for &z in &parts.leaves {
        for &x in &xs {
            edges.push((z, x));
        }
    }
    let bipartite: Vec<EdgeId> = (bipartite_start..edges.len()).collect();

    let mut b = GraphBuilder::new(next_id);
    for (u, v) in &edges {
        b.add_edge(*u, *v).expect("construction yields a simple graph");
    }
    let graph = b.build();
    let labels = parts
        .labels
        .iter()
        .map(|pairs| {
            pairs
                .iter()
                .map(|&(u, v)| graph.edge_between(u, v).expect("label edges exist"))
                .collect()
        })
        .collect();
    LowerBoundGraph { graph, source: parts.root, leaves: parts.leaves, labels, xs, bipartite, f, d }
}

impl LowerBoundGraph {
    /// The "bad" consistent-stable-symmetric scheme of Theorem 27: unit
    /// weights everywhere except the bipartite edges, whose weights
    /// strictly decrease with the leaf index (`W(z_j, x) = 1 + (λ−j)/n⁴`
    /// in the paper; here scaled to exact integers).
    pub fn bad_scheme(&self) -> ExactScheme<u128> {
        let g = &self.graph;
        let lambda = self.leaves.len() as u128;
        // Scale chosen so the summed perturbations along any simple path
        // stay below one hop: n · λ < scale.
        let scale = (g.n() as u128) * (lambda + 1) + 1;
        let mut leaf_index = vec![None; g.n()];
        for (j, &z) in self.leaves.iter().enumerate() {
            leaf_index[z] = Some(j as u128);
        }
        let mut fwd = vec![scale; g.m()];
        for &e in &self.bipartite {
            let (a, b) = g.endpoints(e);
            let j = leaf_index[a].or(leaf_index[b]).expect("bipartite edge touches a leaf");
            fwd[e] = scale + (lambda - j); // decreasing in the leaf index
        }
        let bwd = fwd.clone(); // symmetric — the point of Theorem 27
        let bits = (128 - lambda.leading_zeros()) as usize;
        ExactScheme::from_costs(g.clone(), fwd, bwd, scale, bits)
    }

    /// The fault-set family of the experiment: `∅` plus every leaf label.
    pub fn fault_family(&self) -> Vec<FaultSet> {
        let mut fam = vec![FaultSet::empty()];
        fam.extend(self.labels.iter().cloned());
        fam
    }

    /// Counts how many bipartite edges a preserver was forced to include.
    pub fn bipartite_edges_in(&self, p: &Preserver) -> usize {
        self.bipartite.iter().filter(|&&e| p.contains(e)).count()
    }
}

/// Outcome of one lower-bound run (one row of the Figure 2/3 experiment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LowerBoundOutcome {
    /// Vertices of `G*_f`.
    pub n: usize,
    /// Edges of `G*_f`.
    pub m: usize,
    /// Edges of the resulting `{s} × V` preserver.
    pub preserver_edges: usize,
    /// Bipartite edges of `B` forced into the preserver.
    pub bipartite_forced: usize,
}

/// Runs the **bad scheme** over the label fault family and overlays the
/// selected trees: the preserver is forced to contain `Ω(λ · |X|)`
/// bipartite edges (Theorem 27).
pub fn run_bad_scheme(lb: &LowerBoundGraph) -> LowerBoundOutcome {
    let scheme = lb.bad_scheme();
    run_with(lb, &scheme)
}

/// Runs a **random-perturbation scheme** (the restorable kind) over the
/// same fault family: the forced bipartite edges collapse to roughly
/// `O(|X| log λ)` — the paper's remark that perturbation tiebreaking
/// escapes the lower bound.
pub fn run_perturbed_scheme(lb: &LowerBoundGraph, seed: u64) -> LowerBoundOutcome {
    let scheme = RandomGridAtw::theorem20(&lb.graph, seed).into_scheme();
    run_with(lb, &scheme)
}

fn run_with<S: Rpts>(lb: &LowerBoundGraph, scheme: &S) -> LowerBoundOutcome {
    let queries = lb.fault_family().into_iter().map(|f| (lb.source, f));
    let p = overlay_paths(scheme, queries);
    LowerBoundOutcome {
        n: lb.graph.n(),
        m: lb.graph.m(),
        preserver_edges: p.edge_count(),
        bipartite_forced: lb.bipartite_edges_in(&p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::{bfs, is_connected};

    #[test]
    fn g1_shape() {
        // G_1(3): spine 3, Q lengths 3,2,1 → 9 vertices, 8 edges (a tree),
        // all leaves at distance 3 from the root.
        let lb = build_lower_bound_graph(1, 3, 4);
        assert_eq!(lb.leaves.len(), 3);
        assert_eq!(lb.labels.len(), 3);
        assert!(is_connected(&lb.graph));
        let tree = bfs(&lb.graph, lb.source, &FaultSet::empty());
        for &z in &lb.leaves {
            assert_eq!(tree.dist(z), Some(3), "all leaves equidistant");
        }
        // X sits strictly closer via the spine shortcut.
        for &x in &lb.xs {
            assert_eq!(tree.dist(x), Some(3), "d−1 spine hops + 1");
        }
    }

    #[test]
    fn labels_kill_right_leaves_in_the_tree_part() {
        // Remove the bipartite rescue edges: under Label(z_j) exactly the
        // leaves strictly right of j lose their root path.
        let lb = build_lower_bound_graph(1, 4, 1);
        let tree_only = lb.graph.edge_subgraph(lb.graph.edges().map(|(e, _, _)| e).filter(|e| {
            !lb.bipartite.contains(e) && {
                // also drop the spine→X shortcut edges
                let (u, v) = lb.graph.endpoints(*e);
                !lb.xs.contains(&u) && !lb.xs.contains(&v)
            }
        }));
        for (j, label) in lb.labels.iter().enumerate() {
            if label.is_empty() {
                continue;
            }
            let faults: FaultSet = label
                .iter()
                .map(|e| {
                    let (u, v) = lb.graph.endpoints(e);
                    tree_only.edge_between(u, v).expect("tree edges survive")
                })
                .collect();
            let t = bfs(&tree_only, lb.source, &faults);
            for (k, &z) in lb.leaves.iter().enumerate() {
                if k <= j {
                    assert!(t.dist(z).is_some(), "leaf {k} should survive label {j}");
                } else {
                    assert!(t.dist(z).is_none(), "leaf {k} should die under label {j}");
                }
            }
        }
    }

    #[test]
    fn bad_scheme_forces_the_bipartite_graph() {
        let lb = build_lower_bound_graph(1, 5, 6);
        let out = run_bad_scheme(&lb);
        // Each of the d−1 labeled leaves must capture all |X| bipartite
        // edges (plus whatever the rescue paths add).
        let floor = (lb.d - 1) * lb.xs.len();
        assert!(out.bipartite_forced >= floor, "forced {} < floor {floor}", out.bipartite_forced);
    }

    #[test]
    fn perturbed_scheme_is_sparser() {
        let lb = build_lower_bound_graph(1, 8, 24);
        let bad = run_bad_scheme(&lb);
        let good = run_perturbed_scheme(&lb, 3);
        assert!(
            good.bipartite_forced < bad.bipartite_forced,
            "perturbation should beat the bad scheme: {good:?} vs {bad:?}"
        );
    }

    #[test]
    fn f2_construction_builds_and_runs() {
        let lb = build_lower_bound_graph(2, 4, 4);
        assert!(is_connected(&lb.graph));
        assert_eq!(lb.leaves.len(), 4 * 2, "d copies × √d leaves each");
        for label in &lb.labels {
            assert!(label.len() <= 2, "labels carry at most f edges");
        }
        let out = run_bad_scheme(&lb);
        assert!(out.bipartite_forced > 0);
    }

    #[test]
    fn all_leaves_equidistant_f2() {
        let lb = build_lower_bound_graph(2, 6, 2);
        let tree = bfs(&lb.graph, lb.source, &FaultSet::empty());
        let dists: Vec<_> = lb.leaves.iter().map(|&z| tree.dist(z).unwrap()).collect();
        assert!(dists.windows(2).all(|w| w[0] == w[1]), "Lemma 38(4): {dists:?}");
    }

    #[test]
    fn bad_scheme_is_antisymmetric_trivially() {
        // Symmetric weights: fwd = bwd, so fwd + bwd = 2·unit fails unless
        // the perturbation is zero — bipartite edges break it, which is
        // fine: the bad scheme is *symmetric*, not antisymmetric. Spot
        // check that the two differ.
        let lb = build_lower_bound_graph(1, 3, 2);
        let bad = lb.bad_scheme();
        assert!(!bad.is_antisymmetric(), "Theorem 27's scheme is symmetric, not ATW");
    }
}
