//! Experiment harness for the Bodwin–Parter reproduction.
//!
//! Each experiment in [`experiments`] regenerates one figure or headline
//! claim of the paper (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for recorded outcomes). The binary
//! `experiments` runs them from the command line:
//!
//! ```text
//! cargo run -p rsp_bench --release --bin experiments -- all
//! cargo run -p rsp_bench --release --bin experiments -- e1 e6
//! ```
//!
//! The Criterion benches under `benches/` time the individual algorithms
//! on fixed workloads; the experiment binary is about *shapes* (who wins,
//! by what factor, with what exponent), the benches about wall-clock.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / bench | Paper (PAPER.md) |
//! |---|---|
//! | [`experiments`] | one module per figure/claim (E1 = Figure 1, E2 = Theorem 19's properties, …; see DESIGN.md) |
//! | [`workloads`], [`reporting`] | shared graph workloads and the text/CSV report sink |
//! | `benches/atw`, `benches/restorability` | Theorems 19–23 construction and verification cost |
//! | `benches/subset_rp` | Algorithm 1 (Theorem 29) vs the per-pair baseline |
//! | `benches/preserver`, `benches/lower_bound` | Theorems 26/27/31 build sizes and times |
//! | `benches/spanner`, `benches/labeling`, `benches/congest` | Sections 4.3–4.5 constructions |
//! | `benches/query_engine` | the scratch/decrease-key engine (`BENCH_2.json` trajectory) |
//! | `benches/query_batch` | the batch/parallel engine (`BENCH_3.json` trajectory) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod reporting;
pub mod workloads;
