//! The synchronous message-passing engine with CONGEST bandwidth
//! accounting.
//!
//! One [`Program`] instance per vertex; each round every *active* node
//! (nonempty inbox or self-declared pending work) takes a step, reading
//! the messages delivered this round and emitting messages to neighbors.
//! Messages sent in round `r` are delivered in round `r + 1`. The engine
//! enforces the CONGEST quota — at most one message per edge per
//! direction per round — and records rounds, message counts, per-edge
//! congestion, and maximum message width in bits.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rsp_graph::{Graph, Vertex};

/// Sizing of messages in bits, for bandwidth accounting.
///
/// The CONGEST model allows `O(log n)` bits per message; implementations
/// report their actual content width and the engine tracks the maximum.
pub trait MsgSize {
    /// Width of this message's content in bits.
    fn bits(&self) -> usize;
}

/// Per-node state machine: the "processor on each vertex" of the model.
pub trait Program<M> {
    /// One synchronous round: consume `inbox` (messages delivered this
    /// round, tagged with the sending neighbor) and emit messages.
    fn step(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, M)], out: &mut Outbox<M>);

    /// Whether this node may act spontaneously at `round` **or later**
    /// without receiving a message (e.g. a delayed broadcast start or a
    /// nonempty internal send queue). Nodes whose only trigger is an
    /// incoming message return `false`; the engine halts when no inboxes
    /// are nonempty and no node is pending.
    fn pending(&self, round: usize) -> bool {
        let _ = round;
        false
    }
}

/// Read-only per-node context handed to [`Program::step`].
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's vertex id.
    pub id: Vertex,
    /// The current round number (0-based).
    pub round: usize,
    /// Neighbor vertex ids, sorted.
    pub neighbors: &'a [Vertex],
}

/// Collector for a node's outgoing messages in one round.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(Vertex, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queues a message to neighbor `to` (validated by the engine).
    pub fn send(&mut self, to: Vertex, msg: M) {
        self.msgs.push((to, msg));
    }
}

/// Aggregate statistics of a completed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rounds executed until quiescence.
    pub rounds: usize,
    /// Total messages delivered.
    pub total_messages: usize,
    /// Maximum messages carried by any single edge (both directions,
    /// whole run) — Lemma 34 promises `O(1)` for one SPT.
    pub max_messages_per_edge: usize,
    /// Maximum content width of any message, in bits — the model allows
    /// `O(log n)`.
    pub max_message_bits: usize,
}

/// A CONGEST bandwidth violation: two messages on the same directed edge
/// in the same round, or a message to a non-neighbor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CongestionError {
    /// Two messages crossed the same directed edge in one round.
    EdgeOverload {
        /// The round of the violation.
        round: usize,
        /// Sender.
        from: Vertex,
        /// Receiver.
        to: Vertex,
    },
    /// A node addressed a message to a vertex it has no edge to.
    NotANeighbor {
        /// The round of the violation.
        round: usize,
        /// Sender.
        from: Vertex,
        /// Intended receiver.
        to: Vertex,
    },
}

impl fmt::Display for CongestionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestionError::EdgeOverload { round, from, to } => {
                write!(f, "round {round}: edge ({from}, {to}) carried more than one message")
            }
            CongestionError::NotANeighbor { round, from, to } => {
                write!(f, "round {round}: {from} sent to non-neighbor {to}")
            }
        }
    }
}

impl Error for CongestionError {}

/// The simulated network: a graph plus one program per vertex.
///
/// `P` is the per-node program type — CONGEST algorithms here are
/// homogeneous (every vertex runs the same code), which keeps node state
/// extractable after the run without downcasting.
pub struct Network<'g, M, P> {
    graph: &'g Graph,
    programs: Vec<P>,
    neighbor_lists: Vec<Vec<Vertex>>,
    _msg: std::marker::PhantomData<M>,
}

impl<'g, M: Clone + MsgSize, P: Program<M>> Network<'g, M, P> {
    /// Builds a network from one program per vertex.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != g.n()`.
    pub fn new(g: &'g Graph, programs: Vec<P>) -> Self {
        assert_eq!(programs.len(), g.n(), "one program per vertex");
        let neighbor_lists =
            g.vertices().map(|u| g.neighbors(u).map(|(v, _)| v).collect()).collect();
        Network { graph: g, programs, neighbor_lists, _msg: std::marker::PhantomData }
    }

    /// Runs synchronous rounds until quiescence (no messages in flight
    /// and no node pending) or `max_rounds`.
    ///
    /// # Errors
    ///
    /// Returns a [`CongestionError`] if any round violates the one
    /// message per edge per direction quota.
    pub fn run(&mut self, max_rounds: usize) -> Result<RunStats, CongestionError> {
        let n = self.graph.n();
        let mut inboxes: Vec<Vec<(Vertex, M)>> = vec![Vec::new(); n];
        let mut stats = RunStats::default();
        let mut edge_load: Vec<usize> = vec![0; self.graph.m()];

        for round in 0..max_rounds {
            let anyone_active =
                (0..n).any(|u| !inboxes[u].is_empty() || self.programs[u].pending(round));
            if !anyone_active {
                stats.rounds = round;
                stats.max_messages_per_edge = edge_load.iter().copied().max().unwrap_or(0);
                return Ok(stats);
            }

            // Step all active nodes against this round's inboxes.
            let mut next_inboxes: Vec<Vec<(Vertex, M)>> = vec![Vec::new(); n];
            let mut sent_this_round: HashMap<(Vertex, Vertex), ()> = HashMap::new();
            // Node ids index inboxes, programs, and neighbor lists alike:
            // an enumerate over one of them would only obscure that.
            #[allow(clippy::needless_range_loop)]
            for u in 0..n {
                if inboxes[u].is_empty() && !self.programs[u].pending(round) {
                    continue;
                }
                let inbox = std::mem::take(&mut inboxes[u]);
                let ctx = NodeCtx { id: u, round, neighbors: &self.neighbor_lists[u] };
                let mut out = Outbox::new();
                self.programs[u].step(&ctx, &inbox, &mut out);
                for (to, msg) in out.msgs {
                    let Some(e) = self.graph.edge_between(u, to) else {
                        return Err(CongestionError::NotANeighbor { round, from: u, to });
                    };
                    if sent_this_round.insert((u, to), ()).is_some() {
                        return Err(CongestionError::EdgeOverload { round, from: u, to });
                    }
                    edge_load[e] += 1;
                    stats.total_messages += 1;
                    stats.max_message_bits = stats.max_message_bits.max(msg.bits());
                    next_inboxes[to].push((u, msg));
                }
            }
            inboxes = next_inboxes;
        }
        stats.rounds = max_rounds;
        stats.max_messages_per_edge = edge_load.iter().copied().max().unwrap_or(0);
        Ok(stats)
    }

    /// Consumes the network, returning the programs for state extraction.
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    /// Read access to a node's program.
    pub fn program(&self, v: Vertex) -> &P {
        &self.programs[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::generators;

    impl MsgSize for u32 {
        fn bits(&self) -> usize {
            32 - self.leading_zeros() as usize
        }
    }

    /// Flood: source sends its id; everyone forwards the max seen once.
    struct Flood {
        is_source: bool,
        best: u32,
        announced: bool,
    }

    impl Program<u32> for Flood {
        fn step(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u32)], out: &mut Outbox<u32>) {
            for &(_, v) in inbox {
                self.best = self.best.max(v);
            }
            if (self.is_source || !inbox.is_empty()) && !self.announced {
                self.announced = true;
                for &nb in ctx.neighbors {
                    out.send(nb, self.best);
                }
            }
        }

        fn pending(&self, _round: usize) -> bool {
            self.is_source && !self.announced
        }
    }

    fn flood_net(g: &Graph, source: Vertex) -> Vec<Flood> {
        g.vertices().map(|v| Flood { is_source: v == source, best: 0, announced: false }).collect()
    }

    use rsp_graph::Graph;

    #[test]
    fn flood_terminates_in_diameter_rounds() {
        let g = generators::path_graph(6);
        let mut net = Network::new(&g, flood_net(&g, 0));
        let stats = net.run(100).unwrap();
        // 5 hops + the final quiet round.
        assert!(stats.rounds <= 7, "rounds = {}", stats.rounds);
        assert!(stats.total_messages > 0);
        assert!(stats.max_messages_per_edge <= 2);
    }

    #[test]
    fn quiescence_on_empty_network() {
        let g = generators::cycle(4);
        let progs: Vec<Flood> =
            g.vertices().map(|_| Flood { is_source: false, best: 0, announced: false }).collect();
        let mut net = Network::new(&g, progs);
        let stats = net.run(10).unwrap();
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.total_messages, 0);
    }

    /// A rogue program that sends two messages on one edge in one round.
    struct Rogue;
    impl Program<u32> for Rogue {
        fn step(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Vertex, u32)], out: &mut Outbox<u32>) {
            if ctx.id == 0 && ctx.round == 0 {
                out.send(ctx.neighbors[0], 1);
                out.send(ctx.neighbors[0], 2);
            }
        }
        fn pending(&self, round: usize) -> bool {
            round == 0
        }
    }

    #[test]
    fn quota_violation_detected() {
        let g = generators::cycle(3);
        let progs: Vec<Rogue> = g.vertices().map(|_| Rogue).collect();
        let mut net = Network::new(&g, progs);
        let err = net.run(10).unwrap_err();
        assert!(matches!(err, CongestionError::EdgeOverload { round: 0, from: 0, .. }));
        assert!(err.to_string().contains("more than one message"));
    }

    /// A program that addresses a non-neighbor.
    struct Misaddressed;
    impl Program<u32> for Misaddressed {
        fn step(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Vertex, u32)], out: &mut Outbox<u32>) {
            if ctx.id == 0 && ctx.round == 0 {
                out.send(2, 7); // 0 and 2 are opposite corners of P4
            }
        }
        fn pending(&self, round: usize) -> bool {
            round == 0
        }
    }

    #[test]
    fn non_neighbor_detected() {
        let g = generators::path_graph(4);
        let progs: Vec<Misaddressed> = g.vertices().map(|_| Misaddressed).collect();
        let mut net = Network::new(&g, progs);
        let err = net.run(10).unwrap_err();
        assert_eq!(err, CongestionError::NotANeighbor { round: 0, from: 0, to: 2 });
    }

    #[test]
    fn max_rounds_cap_respected() {
        /// Ping-pong forever between 0 and 1.
        struct PingPong;
        impl Program<u32> for PingPong {
            fn step(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u32)], out: &mut Outbox<u32>) {
                if ctx.id == 0 && ctx.round == 0 {
                    out.send(1, 1);
                }
                for &(from, v) in inbox {
                    out.send(from, v + 1);
                }
            }
            fn pending(&self, round: usize) -> bool {
                round == 0
            }
        }
        let g = generators::path_graph(2);
        let progs: Vec<PingPong> = g.vertices().map(|_| PingPong).collect();
        let mut net = Network::new(&g, progs);
        let stats = net.run(25).unwrap();
        assert_eq!(stats.rounds, 25, "capped, not quiescent");
    }
}
