//! E10 timing: ATW construction and exact-weight shortest-path trees for
//! the three weight constructions.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::{GeometricAtw, RandomGridAtw};
use rsp_graph::{generators, FaultSet};

fn bench_construction(c: &mut Criterion) {
    let g = generators::connected_gnm(500, 1500, 1);
    c.bench_function("atw/build_theorem20_n500", |b| {
        b.iter(|| RandomGridAtw::theorem20(&g, 7).into_scheme())
    });
    c.bench_function("atw/build_corollary22_n500", |b| {
        b.iter(|| RandomGridAtw::corollary22(&g, 1, 1, 7).into_scheme())
    });
    let small = generators::grid(5, 5);
    c.bench_function("atw/build_geometric_grid5x5", |b| {
        b.iter(|| GeometricAtw::new(&small).into_scheme())
    });
}

fn bench_spt(c: &mut Criterion) {
    let g = generators::connected_gnm(500, 1500, 1);
    let empty = FaultSet::empty();
    let grid_scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    c.bench_function("atw/spt_u128_n500", |b| b.iter(|| grid_scheme.spt(0, &empty)));

    // BigInt costs are the price of determinism (Theorem 23).
    let small = generators::grid(5, 5);
    let geo = GeometricAtw::new(&small).into_scheme();
    c.bench_function("atw/spt_bigint_grid5x5", |b| b.iter(|| geo.spt(0, &empty)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_construction, bench_spt
}
criterion_main!(benches);
