//! E8 timing: fault-tolerant distance label construction and queries
//! (Theorem 30).

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::RandomGridAtw;
use rsp_graph::generators;
use rsp_labeling::build_labeling;

fn bench_labeling(c: &mut Criterion) {
    let g = generators::connected_gnm(80, 240, 3);
    let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();

    c.bench_function("labeling/build_f0_n80", |b| b.iter(|| build_labeling(&scheme, 0)));

    let labeling = build_labeling(&scheme, 0);
    let (u, v) = g.endpoints(0);
    c.bench_function("labeling/query_one_fault_n80", |b| {
        b.iter(|| labeling.query(0, g.n() - 1, &[(u, v)]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_labeling
}
criterion_main!(benches);
