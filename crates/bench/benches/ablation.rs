//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * exact `u128` grid costs vs exact `BigInt` geometric costs (the price
//!   of determinism);
//! * restoration's proper-subset scan as the fault budget grows
//!   (`2^f − 1` subsets, the `n^{O(f)}` the paper flags);
//! * tree-union subset-rp vs full-graph per-pair (the Algorithm 1 trick
//!   in isolation);
//! * the per-call overhead of fresh perturbation sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use rsp_core::{restore_by_concatenation, GeometricAtw, RandomGridAtw};
use rsp_graph::{generators, FaultSet};

fn ablation_cost_type(c: &mut Criterion) {
    // Same graph, same algorithm, two exact cost representations.
    let g = generators::grid(6, 6);
    let grid = RandomGridAtw::theorem20(&g, 1).into_scheme();
    let geo = GeometricAtw::new(&g).into_scheme();
    let empty = FaultSet::empty();
    let mut group = c.benchmark_group("ablation/cost_type_spt_grid6x6");
    group.bench_function("u128_grid_weights", |b| b.iter(|| grid.spt(0, &empty)));
    group.bench_function("bigint_geometric_weights", |b| b.iter(|| geo.spt(0, &empty)));
    group.finish();
}

fn ablation_fault_budget(c: &mut Criterion) {
    // Restoration cost vs |F|: the subset scan doubles per extra fault
    // and each subset pays two tree computations.
    let g = generators::torus(5, 5);
    let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
    let edges: Vec<usize> = vec![0, 7, 19];
    let mut group = c.benchmark_group("ablation/restore_vs_fault_budget");
    for f in 1..=3usize {
        let faults = FaultSet::from_edges(edges[..f].iter().copied());
        group.bench_function(format!("f{f}"), |b| {
            b.iter(|| restore_by_concatenation(&scheme, 0, 12, &faults))
        });
    }
    group.finish();
}

fn ablation_scheme_sampling(c: &mut Criterion) {
    // How much of Algorithm 1's per-pair cost is perturbation sampling?
    let g = generators::connected_gnm(200, 600, 3);
    let mut group = c.benchmark_group("ablation/sampling_overhead_n200");
    group.bench_function("sample_and_build_scheme", |b| {
        b.iter(|| RandomGridAtw::theorem20(&g, 9).into_scheme())
    });
    let scheme = RandomGridAtw::theorem20(&g, 9).into_scheme();
    group.bench_function("one_spt_after_build", |b| b.iter(|| scheme.spt(0, &FaultSet::empty())));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_cost_type, ablation_fault_budget, ablation_scheme_sampling
}
criterion_main!(benches);
