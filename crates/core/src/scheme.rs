//! Replacement-path tiebreaking schemes (Definition 15) and the
//! weight-induced scheme of Theorem 19.

use std::any::Any;
use std::fmt;
use std::ops::ControlFlow;

use rsp_arith::PathCost;
use rsp_graph::{
    BatchScratch, BfsTree, DirectedCosts, EdgeId, FaultSet, Graph, Path, SearchScratch, Vertex,
    WeightedSpt,
};

/// The scratch payload of the exact (weight-induced) schemes: one
/// single-query scratch for the `_with` methods plus one batch scratch for
/// [`Rpts::for_each_tree`].
struct ExactPayload<C> {
    single: SearchScratch<C>,
    batch: BatchScratch<C>,
}

/// Opaque reusable search state for repeated scheme queries.
///
/// Obtained from [`Rpts::new_scratch`] and threaded through the `_with`
/// query methods ([`Rpts::tree_from_with`], [`Rpts::dist_with`],
/// [`Rpts::path_with`]); hot loops allocate one and reuse it across
/// thousands of `(source, fault set)` queries. The payload is
/// scheme-specific (the exact schemes store a
/// [`rsp_graph::SearchScratch`] over their cost type), hence the type
/// erasure: callers generic over [`Rpts`] need not know the cost type.
///
/// A scratch from one scheme may be handed to another; a payload type
/// mismatch is not an error — the query simply falls back to the
/// allocating path.
pub struct RptsScratch {
    payload: Option<Box<dyn Any>>,
    /// Unweighted ground-truth BFS state, shared by every consumer
    /// (restoration needs `dist_{G\F}` alongside the scheme's own trees).
    bfs: rsp_graph::SearchScratch<u32>,
}

impl RptsScratch {
    /// A scratch for schemes without buffer reuse (the trait default).
    pub fn unsupported() -> Self {
        RptsScratch { payload: None, bfs: rsp_graph::SearchScratch::new() }
    }

    /// Wraps a concrete scratch payload.
    pub fn from_value<T: Any>(value: T) -> Self {
        RptsScratch { payload: Some(Box::new(value)), bfs: rsp_graph::SearchScratch::new() }
    }

    /// The payload, if it has type `T`.
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.payload.as_mut()?.downcast_mut()
    }

    /// Reusable state for ground-truth (unweighted) BFS queries issued
    /// next to the scheme's own trees — e.g. the `dist_{G\F}(s, t)` target
    /// every restoration attempt starts from.
    pub fn bfs_scratch(&mut self) -> &mut rsp_graph::SearchScratch<u32> {
        &mut self.bfs
    }
}

impl fmt::Debug for RptsScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            Some(_) => write!(f, "RptsScratch(..)"),
            None => write!(f, "RptsScratch(unsupported)"),
        }
    }
}

/// An `f`-replacement-path tiebreaking scheme (Definition 15): a function
/// `π(s, t | F)` selecting one shortest `s ⇝ t` path in `G \ F` per ordered
/// pair and fault set.
///
/// Implementations in this workspace are all *tree-structured*: for a fixed
/// source and fault set the selected paths to all targets form a tree, so
/// the primary operation is [`Rpts::tree_from`] and `π(s, t | F)` is the
/// tree path. (This holds automatically for weight-induced schemes, whose
/// selected paths are unique shortest paths in `G* \ F`, and for the
/// BFS-order baseline.)
///
/// Note that `π(s, · | F)` and `π(t, · | F)` are **independent selections**
/// — the asymmetry that Theorem 2 shows is essential for restorability.
pub trait Rpts {
    /// The underlying fault-free graph `G`.
    fn graph(&self) -> &Graph;

    /// The selected shortest-path tree `π(s, · | F)` in `G \ F`.
    fn tree_from(&self, s: Vertex, faults: &FaultSet) -> BfsTree;

    /// The selected path `π(s, t | F)`, or `None` if `t` is unreachable
    /// in `G \ F`.
    ///
    /// The default computes a full tree; callers iterating over many targets
    /// for one `(s, F)` should call [`Rpts::tree_from`] once instead.
    fn path(&self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<Path> {
        self.tree_from(s, faults).path_to(t)
    }

    /// Unweighted distance of the selected path (equals `dist_{G\F}(s, t)`
    /// for a valid scheme).
    fn dist(&self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<u32> {
        self.tree_from(s, faults).dist(t)
    }

    /// Allocates reusable search state for this scheme's `_with` queries.
    ///
    /// The default supports no reuse; schemes backed by the scratch-based
    /// query engine override it. One scratch serves any number of
    /// consecutive queries against the same scheme.
    fn new_scratch(&self) -> RptsScratch {
        RptsScratch::unsupported()
    }

    /// [`Rpts::tree_from`], reusing `scratch`'s buffers across calls.
    ///
    /// Behavior is identical to `tree_from`; only the allocation profile
    /// differs. The default ignores the scratch.
    fn tree_from_with(&self, s: Vertex, faults: &FaultSet, scratch: &mut RptsScratch) -> BfsTree {
        let _ = scratch;
        self.tree_from(s, faults)
    }

    /// [`Rpts::dist`], reusing `scratch`'s buffers across calls.
    fn dist_with(
        &self,
        s: Vertex,
        t: Vertex,
        faults: &FaultSet,
        scratch: &mut RptsScratch,
    ) -> Option<u32> {
        self.tree_from_with(s, faults, scratch).dist(t)
    }

    /// [`Rpts::path`], reusing `scratch`'s buffers across calls.
    fn path_with(
        &self,
        s: Vertex,
        t: Vertex,
        faults: &FaultSet,
        scratch: &mut RptsScratch,
    ) -> Option<Path> {
        self.tree_from_with(s, faults, scratch).path_to(t)
    }

    /// Computes the selected tree for every query in `sources ×
    /// fault_sets`, invoking `visitor` once per query in source-major
    /// order (`(0, 0), (0, 1), …, (1, 0), …`). A visitor returning
    /// [`ControlFlow::Break`] stops the sweep immediately; remaining
    /// queries are never computed (how the verifiers and restoration
    /// searches exit early).
    ///
    /// The batched entry point behind the verifiers, restoration sweeps,
    /// and preserver builds. The default loops over
    /// [`Rpts::tree_from_with`]; schemes backed by the batch query engine
    /// override it to share the settled search prefix between fault sets
    /// that agree on the early frontier, resuming from mid-run baseline
    /// checkpoints where the engine captured them (see
    /// [`rsp_graph::dijkstra_batch`] and [`rsp_graph::CheckpointMode`]).
    /// Either way the trees visited are identical to per-query
    /// [`Rpts::tree_from`] calls.
    fn for_each_tree(
        &self,
        sources: &[Vertex],
        fault_sets: &[FaultSet],
        scratch: &mut RptsScratch,
        visitor: &mut dyn FnMut(usize, usize, BfsTree) -> ControlFlow<()>,
    ) {
        for (si, &s) in sources.iter().enumerate() {
            for (fi, faults) in fault_sets.iter().enumerate() {
                let tree = self.tree_from_with(s, faults, scratch);
                if visitor(si, fi, tree).is_break() {
                    return;
                }
            }
        }
    }
}

/// The scheme induced by exact per-direction edge costs in `G*` — the
/// weight-generated RPTS of Theorem 19.
///
/// Holds the graph plus, for every edge `e = (u, v)` (canonical `u < v`),
/// the exact scaled costs of traversing `u → v` (`fwd`) and `v → u`
/// (`bwd`). For an antisymmetric tiebreaking weight function these satisfy
/// `fwd[e] + bwd[e] = 2·unit` where `unit` is the scaled weight of an
/// unperturbed edge.
///
/// Constructed by [`crate::RandomGridAtw`] and [`crate::GeometricAtw`], or
/// directly via [`ExactScheme::from_costs`] (used by the lower-bound
/// machinery, which needs a specific *bad* weight function).
#[derive(Clone, Debug)]
pub struct ExactScheme<C> {
    graph: Graph,
    fwd: Vec<C>,
    bwd: Vec<C>,
    unit: C,
    bits_per_weight: usize,
}

impl<C: PathCost + 'static> ExactScheme<C> {
    /// Builds a scheme from explicit per-direction edge costs.
    ///
    /// `unit` is the scaled cost of an unperturbed unit edge and
    /// `bits_per_weight` the storage the perturbations need (reported by
    /// experiment E10).
    ///
    /// # Panics
    ///
    /// Panics if the cost vectors are not of length `g.m()`.
    pub fn from_costs(
        graph: Graph,
        fwd: Vec<C>,
        bwd: Vec<C>,
        unit: C,
        bits_per_weight: usize,
    ) -> Self {
        assert_eq!(fwd.len(), graph.m(), "one forward cost per edge");
        assert_eq!(bwd.len(), graph.m(), "one backward cost per edge");
        ExactScheme { graph, fwd, bwd, unit, bits_per_weight }
    }

    /// The exact cost of traversing edge `e` from `from` to its other
    /// endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of `e`.
    pub fn edge_cost(&self, e: EdgeId, from: Vertex, to: Vertex) -> C {
        let (u, v) = self.graph.endpoints(e);
        if (from, to) == (u, v) {
            self.fwd[e].clone()
        } else {
            assert_eq!((from, to), (v, u), "({from}, {to}) does not match edge {e}");
            self.bwd[e].clone()
        }
    }

    /// The scaled cost of one unperturbed unit edge.
    pub fn unit(&self) -> &C {
        &self.unit
    }

    /// Bits needed to store one perturbation value (experiment E10).
    pub fn bits_per_weight(&self) -> usize {
        self.bits_per_weight
    }

    /// Checks the antisymmetry invariant `fwd[e] + bwd[e] = 2·unit` on
    /// every edge.
    pub fn is_antisymmetric(&self) -> bool {
        let two_units = self.unit.plus(&self.unit);
        (0..self.graph.m()).all(|e| self.fwd[e].plus(&self.bwd[e]) == two_units)
    }

    /// The full weighted shortest-path tree from `s` in `G* \ F`.
    ///
    /// For a valid tiebreaking weight function
    /// [`WeightedSpt::ties_detected`] is `false` and the tree's paths are
    /// the unique minimum-cost — hence canonical — shortest paths.
    ///
    /// Allocates a fresh scratch per call; loops should use
    /// [`ExactScheme::spt_into`].
    pub fn spt(&self, s: Vertex, faults: &FaultSet) -> WeightedSpt<C> {
        let mut scratch = SearchScratch::with_capacity(self.graph.n());
        self.spt_into(s, faults, &mut scratch);
        scratch.to_weighted_spt()
    }

    /// Runs the SPT query from `s` in `G* \ F` into a reusable scratch.
    ///
    /// The clone-free hot path: stored per-direction costs are borrowed
    /// straight into the relaxation (no [`ExactScheme::edge_cost`] clone),
    /// and results — costs, hops, parents, paths, tree edges — are read
    /// directly from the scratch without materializing a tree. The search
    /// runs on the heap engine the cost type's
    /// [`rsp_arith::PathCost::HEAP`] policy selects (indexed decrease-key
    /// for `BigInt`, inline-key for the integer schemes).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::{GeometricAtw, Rpts};
    /// use rsp_graph::{generators, FaultSet, SearchScratch};
    /// use rsp_arith::BigInt;
    ///
    /// let g = generators::grid(3, 3);
    /// let scheme = GeometricAtw::new(&g).into_scheme();
    /// let mut scratch = SearchScratch::<BigInt>::with_capacity(g.n());
    /// for e in 0..g.m() {
    ///     scheme.spt_into(0, &FaultSet::single(e), &mut scratch);
    ///     assert!(!scratch.ties_detected(), "Theorem 23 weights are tie-free");
    /// }
    /// ```
    pub fn spt_into(&self, s: Vertex, faults: &FaultSet, scratch: &mut SearchScratch<C>) {
        rsp_graph::dijkstra_into(&self.graph, s, faults, self.directed_costs(), scratch);
    }

    /// The scheme's stored per-direction costs as a borrowing
    /// [`rsp_graph::EdgeCostSource`], ready to hand to the raw query
    /// engine ([`rsp_graph::dijkstra_into`], [`rsp_graph::dijkstra_batch`],
    /// [`rsp_graph::dijkstra_batch_par`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::{RandomGridAtw, Rpts};
    /// use rsp_graph::{dijkstra_batch_par, generators, FaultSet};
    ///
    /// let g = generators::grid(3, 3);
    /// let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    /// let sources: Vec<usize> = g.vertices().collect();
    /// let faults: Vec<FaultSet> = (0..g.m()).map(FaultSet::single).collect();
    /// // One selected tree per (source, fault) query, four workers.
    /// let hops = dijkstra_batch_par(
    ///     scheme.graph(),
    ///     &sources,
    ///     &faults,
    ///     || scheme.directed_costs(),
    ///     4,
    ///     |_s, _f, result| result.hops(8),
    /// );
    /// assert!(hops.iter().flatten().all(|h| h.is_some()), "grid survives one fault");
    /// ```
    pub fn directed_costs(&self) -> DirectedCosts<'_, C> {
        DirectedCosts::new(&self.fwd, &self.bwd)
    }

    /// The exact cost of an explicit path under this scheme's weights.
    ///
    /// Returns `None` if the path is not valid in the graph.
    pub fn cost_of_path(&self, p: &Path) -> Option<C> {
        let mut total = C::zero();
        for (u, v) in p.steps() {
            let e = self.graph.edge_between(u, v)?;
            total = total.plus(&self.edge_cost(e, u, v));
        }
        Some(total)
    }

    /// The reverse-table path `π̄(s, t | F) := reverse(π(t, s | F))`.
    ///
    /// The MPLS deployment sketched in Section 1 carries two routing
    /// tables: one for `π` and one for its reverse. This accessor is the
    /// second table.
    pub fn reverse_path(&self, s: Vertex, t: Vertex, faults: &FaultSet) -> Option<Path> {
        self.path(t, s, faults).map(|p| p.reversed())
    }
}

impl<C: PathCost + 'static> Rpts for ExactScheme<C> {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn tree_from(&self, s: Vertex, faults: &FaultSet) -> BfsTree {
        let mut scratch = SearchScratch::with_capacity(self.graph.n());
        self.spt_into(s, faults, &mut scratch);
        scratch.to_bfs_tree()
    }

    fn new_scratch(&self) -> RptsScratch {
        RptsScratch::from_value(ExactPayload {
            single: SearchScratch::<C>::with_capacity(self.graph.n()),
            batch: BatchScratch::<C>::with_capacity(self.graph.n()),
        })
    }

    fn tree_from_with(&self, s: Vertex, faults: &FaultSet, scratch: &mut RptsScratch) -> BfsTree {
        match scratch.downcast_mut::<ExactPayload<C>>() {
            Some(p) => {
                self.spt_into(s, faults, &mut p.single);
                p.single.to_bfs_tree()
            }
            None => self.tree_from(s, faults),
        }
    }

    fn dist_with(
        &self,
        s: Vertex,
        t: Vertex,
        faults: &FaultSet,
        scratch: &mut RptsScratch,
    ) -> Option<u32> {
        match scratch.downcast_mut::<ExactPayload<C>>() {
            Some(p) => {
                self.spt_into(s, faults, &mut p.single);
                p.single.hops(t)
            }
            None => self.dist(s, t, faults),
        }
    }

    fn path_with(
        &self,
        s: Vertex,
        t: Vertex,
        faults: &FaultSet,
        scratch: &mut RptsScratch,
    ) -> Option<Path> {
        match scratch.downcast_mut::<ExactPayload<C>>() {
            Some(p) => {
                self.spt_into(s, faults, &mut p.single);
                p.single.path_to(t)
            }
            None => self.path(s, t, faults),
        }
    }

    fn for_each_tree(
        &self,
        sources: &[Vertex],
        fault_sets: &[FaultSet],
        scratch: &mut RptsScratch,
        visitor: &mut dyn FnMut(usize, usize, BfsTree) -> ControlFlow<()>,
    ) {
        match scratch.downcast_mut::<ExactPayload<C>>() {
            Some(p) => rsp_graph::dijkstra_batch(
                &self.graph,
                sources,
                fault_sets,
                DirectedCosts::new(&self.fwd, &self.bwd),
                &mut p.batch,
                |si, fi, result| visitor(si, fi, result.to_bfs_tree()),
            ),
            None => {
                for (si, &s) in sources.iter().enumerate() {
                    for (fi, faults) in fault_sets.iter().enumerate() {
                        let tree = self.tree_from_with(s, faults, scratch);
                        if visitor(si, fi, tree).is_break() {
                            return;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::generators;

    /// A hand-built antisymmetric scheme on the 4-cycle: unit 1000, scaled
    /// perturbations +1/-1 alternating so paths are unique.
    fn tiny_scheme() -> ExactScheme<u128> {
        let g = generators::cycle(4);
        let m = g.m();
        let fwd: Vec<u128> = (0..m).map(|e| 1000 + (e as u128 % 3) + 1).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 2000 - f).collect();
        ExactScheme::from_costs(g, fwd, bwd, 1000, 2)
    }

    #[test]
    fn antisymmetry_invariant() {
        assert!(tiny_scheme().is_antisymmetric());
    }

    #[test]
    fn antisymmetry_violation_detected() {
        let g = generators::cycle(3);
        let s = ExactScheme::from_costs(g, vec![10u64, 10, 10], vec![10u64, 10, 11], 10u64, 1);
        assert!(!s.is_antisymmetric());
    }

    #[test]
    fn edge_cost_orientation() {
        let s = tiny_scheme();
        let (u, v) = s.graph().endpoints(0);
        let f = s.edge_cost(0, u, v);
        let b = s.edge_cost(0, v, u);
        assert_eq!(f + b, 2000);
    }

    #[test]
    fn cost_of_path_matches_spt() {
        let s = tiny_scheme();
        let spt = s.spt(0, &FaultSet::empty());
        for t in s.graph().vertices() {
            let p = spt.path_to(t).unwrap();
            assert_eq!(s.cost_of_path(&p).as_ref(), spt.cost(t));
        }
    }

    #[test]
    fn cost_of_invalid_path_is_none() {
        let s = tiny_scheme();
        assert!(s.cost_of_path(&Path::new(vec![0, 2])).is_none());
    }

    #[test]
    fn reverse_path_reverses() {
        let s = tiny_scheme();
        let p = s.path(0, 2, &FaultSet::empty()).unwrap();
        let q = s.reverse_path(2, 0, &FaultSet::empty()).unwrap();
        assert_eq!(p.reversed(), q);
    }

    #[test]
    fn scratch_queries_match_allocating_queries() {
        let s = tiny_scheme();
        let g = s.graph().clone();
        let mut scratch = s.new_scratch();
        let fault_sets = [FaultSet::empty(), FaultSet::single(0), FaultSet::from_edges([1, 2])];
        for faults in &fault_sets {
            for src in g.vertices() {
                let with = s.tree_from_with(src, faults, &mut scratch);
                let plain = s.tree_from(src, faults);
                for t in g.vertices() {
                    assert_eq!(with.dist(t), plain.dist(t));
                    assert_eq!(with.parent(t), plain.parent(t));
                    assert_eq!(s.dist_with(src, t, faults, &mut scratch), s.dist(src, t, faults));
                    assert_eq!(s.path_with(src, t, faults, &mut scratch), s.path(src, t, faults));
                }
            }
        }
    }

    #[test]
    fn spt_into_matches_spt() {
        let s = tiny_scheme();
        let mut scratch = rsp_graph::SearchScratch::<u128>::new();
        for src in s.graph().vertices() {
            s.spt_into(src, &FaultSet::single(1), &mut scratch);
            let fresh = s.spt(src, &FaultSet::single(1));
            for t in s.graph().vertices() {
                assert_eq!(scratch.cost(t), fresh.cost(t));
                assert_eq!(scratch.hops(t), fresh.hops(t));
            }
            assert_eq!(scratch.ties_detected(), fresh.ties_detected());
        }
    }

    #[test]
    fn for_each_tree_matches_per_query_trees() {
        let s = tiny_scheme();
        let g = s.graph().clone();
        let sources: Vec<Vertex> = g.vertices().collect();
        let fault_sets: Vec<FaultSet> = std::iter::once(FaultSet::empty())
            .chain((0..g.m()).map(FaultSet::single))
            .chain([FaultSet::from_edges([0, 2])])
            .collect();
        let mut scratch = s.new_scratch();
        let mut visited = 0usize;
        s.for_each_tree(&sources, &fault_sets, &mut scratch, &mut |si, fi, tree| {
            visited += 1;
            let plain = s.tree_from(sources[si], &fault_sets[fi]);
            for t in g.vertices() {
                assert_eq!(tree.dist(t), plain.dist(t), "s{si} f{fi} dist({t})");
                assert_eq!(tree.parent(t), plain.parent(t), "s{si} f{fi} parent({t})");
            }
            ControlFlow::Continue(())
        });
        assert_eq!(visited, sources.len() * fault_sets.len());

        // The unsupported-scratch fallback visits the same trees.
        let mut none = RptsScratch::unsupported();
        let mut fallback = 0usize;
        s.for_each_tree(&sources, &fault_sets, &mut none, &mut |si, fi, tree| {
            fallback += 1;
            assert_eq!(tree.dist(sources[si]), Some(0), "f{fi} roots at its source");
            ControlFlow::Continue(())
        });
        assert_eq!(fallback, visited);
    }

    #[test]
    fn foreign_scratch_falls_back_to_allocating_path() {
        let s = tiny_scheme();
        // A payload of the wrong type: queries must still answer correctly.
        let mut wrong = RptsScratch::from_value(42u8);
        assert_eq!(
            s.dist_with(0, 2, &FaultSet::empty(), &mut wrong),
            s.dist(0, 2, &FaultSet::empty())
        );
        let mut none = RptsScratch::unsupported();
        let tree = s.tree_from_with(0, &FaultSet::empty(), &mut none);
        assert_eq!(tree.dist(2), s.dist(0, 2, &FaultSet::empty()));
    }

    #[test]
    fn tree_from_is_bfs_consistent() {
        let s = tiny_scheme();
        let tree = s.tree_from(1, &FaultSet::empty());
        for t in s.graph().vertices() {
            assert_eq!(
                tree.dist(t),
                rsp_graph::bfs(s.graph(), 1, &FaultSet::empty()).dist(t),
                "perturbed shortest paths must stay shortest"
            );
        }
    }
}
