//! Graph generators: structured families for tests and the paper's
//! experiments, plus random workloads for the benches.
//!
//! The 4-cycle ([`cycle`]`(4)`) is the paper's Theorem 37 counterexample;
//! even cycles and grids are rich in shortest-path ties and therefore good
//! stress tests for tiebreaking; [`connected_gnm`] is the standard workload
//! for scaling experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Graph, Vertex};

/// The path graph `P_n`: `0 − 1 − ⋯ − (n−1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path_graph(n: usize) -> Graph {
    assert!(n > 0, "path graph needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1).expect("valid path edge");
    }
    b.build()
}

/// The cycle `C_n`.
///
/// `cycle(4)` is the graph of Theorem 37: no symmetric tiebreaking scheme on
/// it is 1-restorable.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n).expect("valid cycle edge");
    }
    b.build()
}

/// The complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one vertex");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("valid complete edge");
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}` with sides `0..a` and `a..a+b`.
///
/// # Panics
///
/// Panics if `a == 0` or `b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(a > 0 && b > 0, "bipartite sides must be nonempty");
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("valid bipartite edge");
        }
    }
    builder.build()
}

/// The star `K_{1,n−1}` with center `0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("valid star edge");
    }
    b.build()
}

/// The `rows × cols` grid; vertex `(r, c)` is `r * cols + c`.
///
/// Grids have exponentially many tied shortest paths, making them the
/// canonical stress test for tiebreaking schemes.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("valid grid edge");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols).expect("valid grid edge");
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound).
///
/// # Panics
///
/// Panics if either dimension is `< 3` (smaller wraps create parallel edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be at least 3");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            b.add_edge(v, right).expect("valid torus edge");
            b.add_edge(v, down).expect("valid torus edge");
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 20`.
pub fn hypercube(d: u32) -> Graph {
    assert!(d > 0 && d <= 20, "hypercube dimension must be in 1..=20");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u).expect("valid hypercube edge");
            }
        }
    }
    b.build()
}

/// The Petersen graph (10 vertices, 15 edges, girth 5).
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    // Outer 5-cycle 0..4, inner 5-star 5..9, spokes i — i+5.
    for i in 0..5 {
        b.add_edge(i, (i + 1) % 5).expect("outer");
        b.add_edge(5 + i, 5 + (i + 2) % 5).expect("inner");
        b.add_edge(i, 5 + i).expect("spoke");
    }
    b.build()
}

/// Two cliques `K_k` joined by a path of `bridge_len` edges.
///
/// A classic worst case for fault tolerance: every bridge edge is critical.
///
/// # Panics
///
/// Panics if `k < 2` or `bridge_len == 0`.
pub fn barbell(k: usize, bridge_len: usize) -> Graph {
    assert!(k >= 2 && bridge_len >= 1, "barbell needs k >= 2 and a bridge");
    let n = 2 * k + bridge_len - 1;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v).expect("left clique");
        }
    }
    let right0 = k + bridge_len - 1;
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(right0 + u, right0 + v).expect("right clique");
        }
    }
    // Bridge from vertex k-1 through k, k+1, … to right0.
    let mut prev = k - 1;
    for i in 0..bridge_len {
        let next = k + i;
        b.add_edge(prev, next).expect("bridge");
        prev = next;
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each possible edge present independently with
/// probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(u, v).expect("valid gnp edge");
            }
        }
    }
    b.build()
}

/// A uniformly random spanning tree on `n` vertices (random attachment).
///
/// Each vertex `v ≥ 1` attaches to a uniform earlier vertex after a random
/// relabeling — not the uniform spanning tree distribution, but an
/// unbiased-enough workload tree with varied degree profiles.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "tree needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut label: Vec<Vertex> = (0..n).collect();
    label.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.add_edge(label[i], label[j]).expect("valid tree edge");
    }
    b.build()
}

/// A connected random graph with exactly `m` edges: a random spanning tree
/// plus `m − (n−1)` uniform random non-tree edges.
///
/// This is the standard workload for the scaling experiments (E4, E5, E7).
///
/// # Panics
///
/// Panics if `m < n − 1` or `m` exceeds the simple-graph maximum.
pub fn connected_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one vertex");
    assert!(m + 1 >= n, "need at least n-1 edges to connect {n} vertices");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "{m} edges exceed simple-graph maximum {max_m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut label: Vec<Vertex> = (0..n).collect();
    label.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let j = rng.random_range(0..i);
        b.add_edge(label[i], label[j]).expect("valid tree edge");
    }
    while b.m() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            let _ = b.add_edge_dedup(u, v).expect("in-range edge");
        }
    }
    b.build()
}

/// An (approximately) random `d`-regular connected graph: a Hamiltonian
/// cycle plus random perfect-matching-style chords until average degree `d`.
///
/// # Panics
///
/// Panics if `d < 2` or `d >= n`.
pub fn near_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d >= 2 && d < n, "degree must be in 2..n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<Vertex> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let _ = b.add_edge_dedup(order[i], order[(i + 1) % n]).expect("in-range");
    }
    let target = n * d / 2;
    let mut attempts = 0;
    while b.m() < target && attempts < 50 * target {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            let _ = b.add_edge_dedup(u, v).expect("in-range");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn family_sizes() {
        assert_eq!(path_graph(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(complete(5).m(), 10);
        assert_eq!(complete_bipartite(2, 3).m(), 6);
        assert_eq!(star(6).m(), 5);
        assert_eq!(grid(3, 4).m(), 17);
        assert_eq!(torus(3, 3).m(), 18);
        assert_eq!(hypercube(3).m(), 12);
        assert_eq!(petersen().m(), 15);
    }

    #[test]
    fn petersen_is_three_regular() {
        let g = petersen();
        for v in g.vertices() {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(3, 2);
        // 3+3 clique vertices, 1 interior bridge vertex.
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 3 + 3 + 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(6, 0.0, 1).m(), 0);
        assert_eq!(gnp(6, 1.0, 1).m(), 15);
    }

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(20, seed);
            assert_eq!(g.m(), 19);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn connected_gnm_exact_m_and_connected() {
        for seed in 0..5 {
            let g = connected_gnm(30, 60, seed);
            assert_eq!(g.n(), 30);
            assert_eq!(g.m(), 60);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn connected_gnm_tree_case() {
        let g = connected_gnm(10, 9, 7);
        assert_eq!(g.m(), 9);
        assert!(is_connected(&g));
    }

    #[test]
    fn near_regular_connected() {
        let g = near_regular(40, 4, 3);
        assert!(is_connected(&g));
        assert!(g.m() >= 40); // at least the Hamiltonian cycle
    }

    #[test]
    fn determinism_by_seed() {
        assert_eq!(connected_gnm(25, 50, 42), connected_gnm(25, 50, 42));
        assert_ne!(connected_gnm(25, 50, 42), connected_gnm(25, 50, 43));
    }

    #[test]
    fn grid_coordinates() {
        let g = grid(2, 3);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 3) && !g.has_edge(0, 4));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }
}
