//! The core undirected, unweighted graph type in CSR form.

use crate::builder::{GraphBuilder, GraphError};

/// A vertex identifier: an index in `0..n`.
pub type Vertex = usize;

/// An edge identifier: an index in `0..m`, stable across the graph's life.
///
/// Fault sets ([`crate::FaultSet`]) and tiebreaking weight functions are both
/// keyed by `EdgeId`, so that "the weight of edge `e`" and "edge `e` failed"
/// refer to the same object.
pub type EdgeId = usize;

/// A compact undirected, unweighted simple graph.
///
/// Stored in CSR (compressed sparse row) form: for each vertex a contiguous
/// slice of (neighbor, incident edge id) pairs, sorted by neighbor. Edge
/// endpoints are canonicalized as `(u, v)` with `u < v`; an [`EdgeId`] is an
/// index into the canonical edge list.
///
/// The graph is immutable after construction (via [`GraphBuilder`] or
/// [`Graph::from_edges`]); edge *faults* are expressed as views through
/// [`crate::FaultSet`] arguments to the traversal routines rather than by
/// mutating the graph, matching the paper's `G \ F` notation.
///
/// # Examples
///
/// ```
/// use rsp_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.edge_between(0, 2).is_none());
/// # Ok::<(), rsp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// Canonical endpoints, `edges[e] = (u, v)` with `u < v`.
    edges: Vec<(Vertex, Vertex)>,
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// CSR neighbor targets, length `2m`, sorted within each vertex slice.
    targets: Vec<Vertex>,
    /// Edge id of each adjacency slot, parallel to `targets`.
    incident: Vec<EdgeId>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge iterator.
    ///
    /// Endpoints may appear in either order; they are canonicalized.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops, or
    /// duplicate edges.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::Graph;
    /// let g = Graph::from_edges(3, [(2, 0), (0, 1)])?;
    /// assert_eq!(g.endpoints(0), (0, 2)); // canonicalized, ids in input order
    /// # Ok::<(), rsp_graph::GraphError>(())
    /// ```
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (Vertex, Vertex)>,
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Internal constructor used by [`GraphBuilder::build`]; inputs must be
    /// pre-validated (canonical, deduplicated, in-range).
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<(Vertex, Vertex)>) -> Self {
        let m = edges.len();
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0; 2 * m];
        let mut incident = vec![0; 2 * m];
        for (e, &(u, v)) in edges.iter().enumerate() {
            targets[cursor[u]] = v;
            incident[cursor[u]] = e;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            incident[cursor[v]] = e;
            cursor[v] += 1;
        }
        // Sort each adjacency slice by neighbor for binary-searchable lookups.
        for u in 0..n {
            let lo = offsets[u];
            let hi = offsets[u + 1];
            let mut pairs: Vec<(Vertex, EdgeId)> =
                targets[lo..hi].iter().copied().zip(incident[lo..hi].iter().copied()).collect();
            pairs.sort_unstable();
            for (i, (t, e)) in pairs.into_iter().enumerate() {
                targets[lo + i] = t;
                incident[lo + i] = e;
            }
        }
        Graph { n, edges, offsets, targets, incident }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn degree(&self, u: Vertex) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= self.m()`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (Vertex, Vertex) {
        self.edges[e]
    }

    /// Given edge `e` and one endpoint `u`, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `u` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, u: Vertex) -> Vertex {
        let (a, b) = self.edges[e];
        if u == a {
            b
        } else {
            assert_eq!(u, b, "vertex {u} is not an endpoint of edge {e}");
            a
        }
    }

    /// Iterates over `(neighbor, edge id)` pairs of `u`, sorted by neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::Graph;
    /// let g = Graph::from_edges(3, [(0, 1), (0, 2)])?;
    /// let nbrs: Vec<_> = g.neighbors(0).map(|(v, _)| v).collect();
    /// assert_eq!(nbrs, vec![1, 2]);
    /// # Ok::<(), rsp_graph::GraphError>(())
    /// ```
    #[inline]
    pub fn neighbors(&self, u: Vertex) -> impl Iterator<Item = (Vertex, EdgeId)> + '_ {
        let lo = self.offsets[u];
        let hi = self.offsets[u + 1];
        self.targets[lo..hi].iter().copied().zip(self.incident[lo..hi].iter().copied())
    }

    /// Looks up the edge between `u` and `v`, if present.
    ///
    /// Runs in `O(log deg(u))`.
    pub fn edge_between(&self, u: Vertex, v: Vertex) -> Option<EdgeId> {
        if u >= self.n || v >= self.n || u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let lo = self.offsets[a];
        let hi = self.offsets[a + 1];
        let slice = &self.targets[lo..hi];
        slice.binary_search(&b).ok().map(|i| self.incident[lo + i])
    }

    /// Returns `true` iff an edge between `u` and `v` exists.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Iterates over all edges as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Vertex, Vertex)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// Iterates over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.n
    }

    /// Returns the union of this graph's edge set with another edge-id set,
    /// as a new graph over the same vertex set.
    ///
    /// Used to materialize preserver subgraphs: `H ⊆ G` given by edge ids.
    ///
    /// # Panics
    ///
    /// Panics if any edge id is out of range.
    pub fn edge_subgraph(&self, keep: impl IntoIterator<Item = EdgeId>) -> Graph {
        let mut seen = vec![false; self.m()];
        let mut edges = Vec::new();
        for e in keep {
            if !seen[e] {
                seen[e] = true;
                edges.push(self.edges[e]);
            }
        }
        edges.sort_unstable();
        Graph::from_canonical_edges(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn canonicalizes_endpoints() {
        let g = Graph::from_edges(3, [(2, 1)]).unwrap();
        assert_eq!(g.endpoints(0), (1, 2));
    }

    #[test]
    fn edge_between_present_and_absent() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_between(1, 0), Some(0));
        assert_eq!(g.edge_between(2, 1), Some(1));
        assert_eq!(g.edge_between(0, 2), None);
        assert_eq!(g.edge_between(0, 0), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let nbrs: Vec<_> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(nbrs, vec![0, 1, 3, 4]);
    }

    #[test]
    fn other_endpoint() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        assert_eq!(g.other_endpoint(0, 0), 2);
        assert_eq!(g.other_endpoint(0, 2), 0);
    }

    #[test]
    #[should_panic]
    fn other_endpoint_wrong_vertex_panics() {
        let g = Graph::from_edges(3, [(0, 2)]).unwrap();
        let _ = g.other_endpoint(0, 1);
    }

    #[test]
    fn edge_subgraph_dedupes() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let h = g.edge_subgraph([1, 1, 2]);
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(1, 2) && h.has_edge(2, 3) && !h.has_edge(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4).count(), 0);
    }
}
