//! Experiment harness for the Bodwin–Parter reproduction.
//!
//! Each experiment in [`experiments`] regenerates one figure or headline
//! claim of the paper (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for recorded outcomes). The binary
//! `experiments` runs them from the command line:
//!
//! ```text
//! cargo run -p rsp_bench --release --bin experiments -- all
//! cargo run -p rsp_bench --release --bin experiments -- e1 e6
//! ```
//!
//! The Criterion benches under `benches/` time the individual algorithms
//! on fixed workloads; the experiment binary is about *shapes* (who wins,
//! by what factor, with what exponent), the benches about wall-clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod reporting;
pub mod workloads;
