//! Breadth-first search honoring fault sets.
//!
//! BFS in `G \ F` is the unweighted ground truth: every experiment that
//! verifies a preserver, spanner, label, or replacement path compares
//! against distances computed here.

use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};
use crate::path::Path;
use crate::scratch::{bfs_into, SearchScratch};

/// The result of a BFS from a single source: a shortest-path (BFS) tree.
///
/// # Examples
///
/// ```
/// use rsp_graph::{bfs, generators, FaultSet};
///
/// let g = generators::path_graph(4); // 0 - 1 - 2 - 3
/// let t = bfs(&g, 0, &FaultSet::empty());
/// assert_eq!(t.dist(3), Some(3));
/// assert_eq!(t.path_to(3).unwrap().vertices(), &[0, 1, 2, 3]);
///
/// let cut = FaultSet::single(g.edge_between(1, 2).unwrap());
/// let t = bfs(&g, 0, &cut);
/// assert_eq!(t.dist(3), None); // disconnected
/// ```
#[derive(Clone, Debug)]
pub struct BfsTree {
    source: Vertex,
    dist: Vec<Option<u32>>,
    parent: Vec<Option<(Vertex, EdgeId)>>,
}

impl BfsTree {
    /// Assembles a tree from raw parts.
    ///
    /// Used by higher layers (e.g. tiebreaking schemes) to expose weighted
    /// shortest-path trees through the unweighted tree interface. Callers
    /// must supply consistent parts: `parent[v].is_some()` exactly for
    /// reachable non-source vertices, and `dist` consistent with parents.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' lengths differ or the source has a parent.
    pub fn from_parts(
        source: Vertex,
        dist: Vec<Option<u32>>,
        parent: Vec<Option<(Vertex, EdgeId)>>,
    ) -> Self {
        assert_eq!(dist.len(), parent.len(), "mismatched tree part lengths");
        assert!(parent[source].is_none(), "the source has no parent");
        BfsTree { source, dist, parent }
    }

    /// The BFS source vertex.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Unweighted distance from the source to `v`, or `None` if unreachable.
    pub fn dist(&self, v: Vertex) -> Option<u32> {
        self.dist[v]
    }

    /// Parent of `v` in the BFS tree as `(vertex, edge id)`, or `None` for
    /// the source and unreachable vertices.
    pub fn parent(&self, v: Vertex) -> Option<(Vertex, EdgeId)> {
        self.parent[v]
    }

    /// The source-to-`v` path in the tree, or `None` if `v` is unreachable.
    pub fn path_to(&self, v: Vertex) -> Option<Path> {
        self.dist[v]?;
        let mut verts = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur] {
            verts.push(p);
            cur = p;
        }
        verts.reverse();
        debug_assert_eq!(verts[0], self.source);
        Some(Path::new(verts))
    }

    /// All tree edge ids (one per reachable non-source vertex).
    pub fn tree_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.parent.iter().filter_map(|p| p.map(|(_, e)| e))
    }

    /// Number of reachable vertices (including the source).
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_some()).count()
    }

    /// The eccentricity of the source: max distance to a reachable vertex.
    pub fn eccentricity(&self) -> u32 {
        self.dist.iter().filter_map(|d| *d).max().unwrap_or(0)
    }
}

/// Runs BFS from `source` in `g \ faults`.
///
/// Ties between equal-length paths are broken by neighbor order (lowest
/// vertex id first), which makes this a *consistent but arbitrary*
/// tiebreaking scheme — exactly the kind Figure 1 of the paper shows can
/// fail restoration-by-concatenation. The restorable schemes live in
/// `rsp-core`.
///
/// This is the allocate-once wrapper over the scratch-based engine; loops
/// issuing many BFS queries should hold a [`crate::SearchScratch`] and call
/// [`crate::bfs_into`] directly.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn bfs(g: &Graph, source: Vertex, faults: &FaultSet) -> BfsTree {
    let mut scratch = SearchScratch::<u32>::with_capacity(g.n());
    bfs_into(g, source, faults, &mut scratch);
    scratch.to_bfs_tree()
}

/// Runs BFS from every vertex, returning one tree per source.
///
/// `O(n·(n + m))`; used by verifiers and small-scale ground truth, not by
/// the algorithms under test.
pub fn bfs_all_pairs(g: &Graph, faults: &FaultSet) -> Vec<BfsTree> {
    g.vertices().map(|s| bfs(g, s, faults)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(6);
        let t = bfs(&g, 0, &FaultSet::empty());
        assert_eq!(t.dist(3), Some(3));
        assert_eq!(t.dist(5), Some(1));
        assert_eq!(t.eccentricity(), 3);
        assert_eq!(t.reachable_count(), 6);
    }

    #[test]
    fn path_reconstruction() {
        let g = generators::grid(3, 3);
        let t = bfs(&g, 0, &FaultSet::empty());
        let p = t.path_to(8).unwrap();
        assert_eq!(p.hops(), 4);
        assert!(p.is_valid_in(&g));
        assert_eq!(p.source(), 0);
        assert_eq!(p.target(), 8);
    }

    #[test]
    fn faults_reroute() {
        let g = generators::cycle(5);
        let e = g.edge_between(0, 1).unwrap();
        let t = bfs(&g, 0, &FaultSet::single(e));
        assert_eq!(t.dist(1), Some(4));
        assert!(t.path_to(1).unwrap().avoids(&g, &FaultSet::single(e)));
    }

    #[test]
    fn unreachable_after_cut() {
        let g = generators::path_graph(4);
        let e = g.edge_between(1, 2).unwrap();
        let t = bfs(&g, 0, &FaultSet::single(e));
        assert_eq!(t.dist(2), None);
        assert!(t.path_to(2).is_none());
        assert_eq!(t.reachable_count(), 2);
    }

    #[test]
    fn tree_edges_count() {
        let g = generators::complete(5);
        let t = bfs(&g, 2, &FaultSet::empty());
        assert_eq!(t.tree_edges().count(), 4);
    }

    #[test]
    fn all_pairs_symmetric() {
        let g = generators::petersen();
        let trees = bfs_all_pairs(&g, &FaultSet::empty());
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(trees[u].dist(v), trees[v].dist(u));
            }
        }
    }

    #[test]
    fn source_has_no_parent() {
        let g = generators::path_graph(3);
        let t = bfs(&g, 1, &FaultSet::empty());
        assert!(t.parent(1).is_none());
        assert_eq!(t.parent(0).map(|(p, _)| p), Some(1));
    }
}
