//! **E12 / Section 1.2 (future work)** — the DAG extension, measured.
//!
//! The paper proves restorable tiebreaking for undirected unweighted
//! graphs and conjectures a DAG analogue. This experiment measures both
//! the known-true existential DAG restoration lemma and the open
//! canonical-tiebreaking question over tie-rich and random DAGs.

use rsp_dag::{dag_restoration_stats, existential_restoration_stats, generators, DagScheme};

use crate::reporting::{f3, Table};

/// Runs E12 and prints the table.
pub fn run(quick: bool) {
    let mut table = Table::new(
        "E12 (Sec 1.2 future work): restoration on DAGs, canonical vs existential",
        &["dag", "n", "m", "instances", "canonical fails", "existential fails"],
    );
    let mut cases = vec![
        ("grid-dag-4x4", generators::grid_dag(4, 4)),
        ("grid-dag-3x6", generators::grid_dag(3, 6)),
        ("layered-5x4", generators::layered_dag(5, 4, 2, 3)),
        ("random-20", generators::random_dag(20, 34, 1)),
        ("random-24", generators::random_dag(24, 44, 2)),
    ];
    if quick {
        cases.truncate(2);
    }
    for (name, d) in cases {
        let scheme = DagScheme::new(&d, 11);
        let canonical = dag_restoration_stats(&scheme);
        let existential = existential_restoration_stats(&scheme);
        assert_eq!(existential.failed, 0, "the existential lemma is a theorem");
        table.row(&[
            name.to_string(),
            d.n().to_string(),
            d.m().to_string(),
            canonical.attempted.to_string(),
            format!("{} ({})", canonical.failed, f3(canonical.failure_rate())),
            existential.failed.to_string(),
        ]);
    }
    table.print();
    println!(
        "finding: across every DAG measured, perturbation-canonical paths\n\
         restored ALL instances — empirical support for the paper's\n\
         conjecture that the main result extends to unweighted DAGs.\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_runs_quick() {
        super::run(true);
    }
}
