//! Property verifiers for replacement-path tiebreaking schemes.
//!
//! These check, instance by instance, the three properties Theorem 19
//! guarantees for weight-induced schemes — consistency (Definition 14),
//! stability (Definition 16), and `f`-restorability (Definition 17) — plus
//! the unique-shortest-path property of the weight function itself
//! (Definition 18). They power experiment E2 and the property tests across
//! the workspace.

use std::error::Error;
use std::fmt;
use std::ops::ControlFlow;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_graph::{
    bfs_into, connected_pair, parallel_indexed, BfsTree, FaultSet, Path, SearchScratch, Vertex,
};

use crate::restore::restore_by_concatenation_with;
use crate::scheme::Rpts;

/// A witness that a scheme violates one of the paper's properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// `π(u, v | F)` is not the contiguous subpath of `π(s, t | F)`
    /// between `u` and `v` (Definition 14).
    Inconsistent {
        /// Endpoints of the outer path.
        s: Vertex,
        /// Endpoints of the outer path.
        t: Vertex,
        /// Endpoints of the inner pair.
        u: Vertex,
        /// Endpoints of the inner pair.
        v: Vertex,
        /// The fault set under which the violation occurred.
        faults: FaultSet,
    },
    /// `π(s, t | F) ≠ π(s, t | F ∪ {e})` although `e ∉ π(s, t | F)`
    /// (Definition 16).
    Unstable {
        /// Path endpoints.
        s: Vertex,
        /// Path endpoints.
        t: Vertex,
        /// The base fault set.
        faults: FaultSet,
        /// The added fault not on the selected path.
        extra: rsp_graph::EdgeId,
    },
    /// No midpoint/subset concatenation restores `(s, t)` under `F`
    /// (Definition 17).
    NotRestorable {
        /// Pair that could not be restored.
        s: Vertex,
        /// Pair that could not be restored.
        t: Vertex,
        /// The fault set.
        faults: FaultSet,
    },
    /// The selected path is not a shortest path of `G \ F`, or a tie was
    /// observed (Definition 18's requirements on the weight function).
    NotShortest {
        /// Pair whose selected path is wrong.
        s: Vertex,
        /// Pair whose selected path is wrong.
        t: Vertex,
        /// The fault set.
        faults: FaultSet,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Inconsistent { s, t, u, v, faults } => write!(
                f,
                "inconsistent: π({u}, {v} | {faults}) is not a subpath of π({s}, {t} | {faults})"
            ),
            Violation::Unstable { s, t, faults, extra } => write!(
                f,
                "unstable: π({s}, {t} | {faults}) changed when unrelated edge {extra} failed"
            ),
            Violation::NotRestorable { s, t, faults } => {
                write!(f, "not restorable: pair ({s}, {t}) under faults {faults}")
            }
            Violation::NotShortest { s, t, faults } => {
                write!(f, "selected path for ({s}, {t}) under {faults} is not shortest")
            }
        }
    }
}

impl Error for Violation {}

/// Checks symmetry (Definition 13) under one fault set: `π(s, t | F)` must
/// equal `π(t, s | F)` as an undirected path, for all pairs.
///
/// ATW-induced schemes are deliberately *asymmetric* (that is the point of
/// Theorem 2), so this returns the number of asymmetric pairs rather than
/// an error: `0` means the scheme is symmetric under `faults`.
pub fn count_asymmetric_pairs<S: Rpts>(scheme: &S, faults: &FaultSet) -> usize {
    let g = scheme.graph();
    let mut scratch = scheme.new_scratch();
    let trees = all_source_trees(scheme, faults, &mut scratch);
    let mut count = 0;
    for s in g.vertices() {
        for t in (s + 1)..g.n() {
            let fwd = trees[s].path_to(t);
            let bwd = trees[t].path_to(s).map(|p| p.reversed());
            if fwd != bwd {
                count += 1;
            }
        }
    }
    count
}

/// All selected trees `π(s, · | F)` for `s` over the whole vertex set,
/// computed through the batched [`Rpts::for_each_tree`] engine (one shared
/// prefix per source when the scheme supports it).
fn all_source_trees<S: Rpts>(
    scheme: &S,
    faults: &FaultSet,
    scratch: &mut crate::RptsScratch,
) -> Vec<BfsTree> {
    let g = scheme.graph();
    let sources: Vec<Vertex> = g.vertices().collect();
    let mut trees: Vec<Option<BfsTree>> = (0..g.n()).map(|_| None).collect();
    scheme.for_each_tree(&sources, std::slice::from_ref(faults), scratch, &mut |si, _, tree| {
        trees[si] = Some(tree);
        ControlFlow::Continue(())
    });
    trees.into_iter().map(|t| t.expect("one tree per source")).collect()
}

/// Checks that every selected path is a shortest path of `G \ F`, for each
/// given fault set.
///
/// Queries go through the batched [`Rpts::for_each_tree`] engine; trees
/// for one source are computed for all fault sets together, sharing the
/// settled search prefix where the fault sets allow (resuming from
/// mid-run checkpoints when the batch engine captured them — see
/// `rsp_graph::CheckpointMode`).
///
/// # Errors
///
/// Returns a [`Violation::NotShortest`] if any selected path is too long
/// (which one is unspecified when several exist).
pub fn verify_shortest<S: Rpts>(scheme: &S, fault_sets: &[FaultSet]) -> Result<(), Violation> {
    let g = scheme.graph();
    let mut scratch = scheme.new_scratch();
    let sources: Vec<Vertex> = g.vertices().collect();
    let mut truth = SearchScratch::<u32>::with_capacity(g.n());
    let mut violation: Option<Violation> = None;
    scheme.for_each_tree(&sources, fault_sets, &mut scratch, &mut |si, fi, tree| {
        let s = sources[si];
        let faults = &fault_sets[fi];
        bfs_into(g, s, faults, &mut truth);
        for t in g.vertices() {
            if tree.dist(t) != truth.dist(t) {
                violation = Some(Violation::NotShortest { s, t, faults: faults.clone() });
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    violation.map_or(Ok(()), Err)
}

/// [`verify_shortest`] with fault sets fanned out over a worker pool (one
/// scheme scratch per worker).
///
/// Checks the same instances; like the sequential form, *which* violation
/// is reported when several exist is unspecified.
///
/// # Errors
///
/// Returns a [`Violation::NotShortest`] if any selected path is too long.
pub fn verify_shortest_par<S: Rpts + Sync>(
    scheme: &S,
    fault_sets: &[FaultSet],
    workers: usize,
) -> Result<(), Violation> {
    let g = scheme.graph();
    let first = parallel_indexed(
        fault_sets.len(),
        workers,
        |_| (scheme.new_scratch(), SearchScratch::<u32>::with_capacity(g.n())),
        |(scratch, truth), i| {
            let faults = &fault_sets[i];
            for s in g.vertices() {
                let tree = scheme.tree_from_with(s, faults, scratch);
                bfs_into(g, s, faults, truth);
                for t in g.vertices() {
                    if tree.dist(t) != truth.dist(t) {
                        return Some(Violation::NotShortest { s, t, faults: faults.clone() });
                    }
                }
            }
            None
        },
    );
    first.into_iter().flatten().next().map_or(Ok(()), Err)
}

/// Exhaustively checks consistency (Definition 14) under one fault set:
/// for all `s, t` and all `u` preceding `v` on `π(s, t | F)`, the selected
/// `π(u, v | F)` must be the contiguous subpath.
///
/// `O(n² · len³)` — intended for the small graphs of the test suite; use
/// [`verify_consistency_sampled`] at scale.
///
/// # Errors
///
/// Returns the first [`Violation::Inconsistent`] found.
pub fn verify_consistency<S: Rpts>(scheme: &S, faults: &FaultSet) -> Result<(), Violation> {
    let g = scheme.graph();
    let mut scratch = scheme.new_scratch();
    let trees = all_source_trees(scheme, faults, &mut scratch);
    for s in g.vertices() {
        for t in g.vertices() {
            let Some(p) = trees[s].path_to(t) else { continue };
            check_path_consistency(scheme, &p, &trees, s, t, faults)?;
        }
    }
    Ok(())
}

fn check_path_consistency<S: Rpts>(
    _scheme: &S,
    p: &Path,
    trees: &[rsp_graph::BfsTree],
    s: Vertex,
    t: Vertex,
    faults: &FaultSet,
) -> Result<(), Violation> {
    let verts = p.vertices();
    for i in 0..verts.len() {
        for j in (i + 1)..verts.len() {
            let (u, v) = (verts[i], verts[j]);
            let inner = trees[u].path_to(v).expect("subpath endpoints are connected");
            if inner.vertices() != &verts[i..=j] {
                return Err(Violation::Inconsistent { s, t, u, v, faults: faults.clone() });
            }
        }
    }
    Ok(())
}

/// Randomly sampled consistency check for larger graphs.
///
/// Samples `samples` ordered pairs and checks all subpairs of each
/// selected path.
///
/// # Errors
///
/// Returns the first [`Violation::Inconsistent`] found.
pub fn verify_consistency_sampled<S: Rpts>(
    scheme: &S,
    faults: &FaultSet,
    samples: usize,
    seed: u64,
) -> Result<(), Violation> {
    let g = scheme.graph();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scratch = scheme.new_scratch();
    for _ in 0..samples {
        let s = rng.random_range(0..g.n());
        let t = rng.random_range(0..g.n());
        let Some(p) = scheme.path_with(s, t, faults, &mut scratch) else { continue };
        let verts = p.vertices().to_vec();
        // Check each subpair against its own tree (computing only the
        // trees we need).
        for i in 0..verts.len() {
            let tree_u = scheme.tree_from_with(verts[i], faults, &mut scratch);
            for j in (i + 1)..verts.len() {
                let inner = tree_u.path_to(verts[j]).expect("connected");
                if inner.vertices() != &verts[i..=j] {
                    return Err(Violation::Inconsistent {
                        s,
                        t,
                        u: verts[i],
                        v: verts[j],
                        faults: faults.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks stability (Definition 16): for each base fault set `F` with
/// `|F| ≤ f − 1` drawn from `fault_sets` and each extra edge `e ∉
/// π(s, t | F)`, the selection must not change when `e` fails.
///
/// Exhaustive over pairs; the extra edge ranges over all non-path edges.
/// Per source, the `F ∪ {e}` trees for all extra edges are computed as one
/// [`Rpts::for_each_tree`] batch — each extra-edge tree is computed once
/// and checked against every target, rather than once per `(t, e)` pair.
///
/// # Errors
///
/// Returns a [`Violation::Unstable`] if any selection changes (which one
/// is unspecified when several exist).
pub fn verify_stability<S: Rpts>(scheme: &S, fault_sets: &[FaultSet]) -> Result<(), Violation> {
    let g = scheme.graph();
    let mut scratch = scheme.new_scratch();
    for faults in fault_sets {
        let extras: Vec<rsp_graph::EdgeId> =
            g.edges().map(|(e, _, _)| e).filter(|&e| !faults.contains(e)).collect();
        let bigger: Vec<FaultSet> = extras.iter().map(|&e| faults.with(e)).collect();
        for s in g.vertices() {
            let tree = scheme.tree_from_with(s, faults, &mut scratch);
            // Base paths are shared by every extra-edge check: extract each
            // once, not once per extra edge.
            let base_paths: Vec<Option<Path>> = g.vertices().map(|t| tree.path_to(t)).collect();
            let mut violation: Option<Violation> = None;
            scheme.for_each_tree(&[s], &bigger, &mut scratch, &mut |_, fi, tree2| {
                let e = extras[fi];
                for t in g.vertices() {
                    let Some(p) = &base_paths[t] else { continue };
                    if p.uses_edge(g, e) {
                        continue;
                    }
                    if tree2.path_to(t).as_ref() != Some(p) {
                        violation =
                            Some(Violation::Unstable { s, t, faults: faults.clone(), extra: e });
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            });
            if let Some(v) = violation {
                return Err(v);
            }
        }
    }
    Ok(())
}

/// Exhaustively checks `f`-restorability (Definition 17) for all ordered
/// pairs and all fault sets of size exactly `f` drawn from `fault_sets`.
///
/// # Errors
///
/// Returns the first [`Violation::NotRestorable`] found.
pub fn verify_restorability<S: Rpts>(scheme: &S, fault_sets: &[FaultSet]) -> Result<(), Violation> {
    let g = scheme.graph();
    let mut scratch = scheme.new_scratch();
    for faults in fault_sets {
        if faults.is_empty() {
            continue;
        }
        for s in g.vertices() {
            for t in g.vertices() {
                if s == t || !connected_pair(g, s, t, faults) {
                    continue;
                }
                if restore_by_concatenation_with(scheme, s, t, faults, &mut scratch).is_none() {
                    return Err(Violation::NotRestorable { s, t, faults: faults.clone() });
                }
            }
        }
    }
    Ok(())
}

/// [`verify_restorability`] with fault sets fanned out over a worker pool
/// (one scheme scratch per worker).
///
/// Every `(s, t, F)` instance checked by the sequential form is checked
/// here; the violation reported (if any) is the sequential form's — the
/// one for the earliest fault set in `fault_sets` order.
///
/// # Errors
///
/// Returns a [`Violation::NotRestorable`] if any instance cannot be
/// restored.
pub fn verify_restorability_par<S: Rpts + Sync>(
    scheme: &S,
    fault_sets: &[FaultSet],
    workers: usize,
) -> Result<(), Violation> {
    let g = scheme.graph();
    let first = parallel_indexed(
        fault_sets.len(),
        workers,
        |_| scheme.new_scratch(),
        |scratch, i| {
            let faults = &fault_sets[i];
            if faults.is_empty() {
                return None;
            }
            for s in g.vertices() {
                for t in g.vertices() {
                    if s == t || !connected_pair(g, s, t, faults) {
                        continue;
                    }
                    if restore_by_concatenation_with(scheme, s, t, faults, scratch).is_none() {
                        return Some(Violation::NotRestorable { s, t, faults: faults.clone() });
                    }
                }
            }
            None
        },
    );
    first.into_iter().flatten().next().map_or(Ok(()), Err)
}

/// All fault sets of size exactly `k` over the graph's edges.
///
/// Combinatorial — intended for the small exhaustive experiments
/// (`k ≤ 3`, small `m`).
pub fn all_fault_sets(m: usize, k: usize) -> Vec<FaultSet> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, m: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<FaultSet>) {
        if cur.len() == k {
            out.push(FaultSet::from_edges(cur.iter().copied()));
            return;
        }
        for e in start..m {
            cur.push(e);
            rec(e + 1, m, k, cur, out);
            cur.pop();
        }
    }
    rec(0, m, k, &mut cur, &mut out);
    out
}

/// `count` random fault sets of size `k`, for sampled verification at scale.
pub fn sample_fault_sets(m: usize, k: usize, count: usize, seed: u64) -> Vec<FaultSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut edges = Vec::with_capacity(k);
            while edges.len() < k.min(m) {
                let e = rng.random_range(0..m);
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
            FaultSet::from_edges(edges)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometric_atw::GeometricAtw;
    use crate::random_atw::RandomGridAtw;
    use rsp_graph::generators;

    #[test]
    fn all_fault_sets_counts() {
        assert_eq!(all_fault_sets(5, 1).len(), 5);
        assert_eq!(all_fault_sets(5, 2).len(), 10);
        assert_eq!(all_fault_sets(5, 3).len(), 10);
        assert_eq!(all_fault_sets(3, 0), vec![FaultSet::empty()]);
    }

    #[test]
    fn sampled_fault_sets_have_right_size() {
        for f in sample_fault_sets(20, 3, 10, 1) {
            assert_eq!(f.len(), 3);
        }
    }

    #[test]
    fn atw_scheme_passes_everything_on_c4() {
        // Theorem 19 end-to-end on the Theorem 37 counterexample graph.
        let g = generators::cycle(4);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let singles = all_fault_sets(g.m(), 1);
        let mut with_empty = vec![FaultSet::empty()];
        with_empty.extend(singles.clone());

        verify_shortest(&scheme, &with_empty).unwrap();
        verify_consistency(&scheme, &FaultSet::empty()).unwrap();
        for f in &singles {
            verify_consistency(&scheme, f).unwrap();
        }
        verify_stability(&scheme, &[FaultSet::empty()]).unwrap();
        verify_restorability(&scheme, &singles).unwrap();
    }

    #[test]
    fn geometric_scheme_passes_on_grid() {
        let g = generators::grid(3, 3);
        let scheme = GeometricAtw::new(&g).into_scheme();
        verify_shortest(&scheme, &[FaultSet::empty()]).unwrap();
        verify_consistency(&scheme, &FaultSet::empty()).unwrap();
        verify_stability(&scheme, &[FaultSet::empty()]).unwrap();
        verify_restorability(&scheme, &all_fault_sets(g.m(), 1)).unwrap();
    }

    #[test]
    fn parallel_verifiers_agree_with_sequential() {
        let g = generators::grid(3, 3);
        let scheme = RandomGridAtw::theorem20(&g, 8).into_scheme();
        let singles = all_fault_sets(g.m(), 1);
        for workers in [1, 2, 8] {
            assert!(verify_shortest_par(&scheme, &singles, workers).is_ok(), "w={workers}");
            assert!(verify_restorability_par(&scheme, &singles, workers).is_ok(), "w={workers}");
        }
        // A non-restorable scheme must fail in parallel too, reporting the
        // earliest failing fault set.
        let naive = crate::naive::BfsScheme::new(&g, crate::naive::BfsOrder::Ascending);
        let seq = verify_restorability(&naive, &singles).unwrap_err();
        for workers in [1, 2, 8] {
            let par = verify_restorability_par(&naive, &singles, workers).unwrap_err();
            assert_eq!(par, seq, "w={workers}");
        }
    }

    #[test]
    fn two_fault_restorability_small() {
        let g = generators::cycle(5);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        verify_restorability(&scheme, &all_fault_sets(g.m(), 2)).unwrap();
    }

    #[test]
    fn violation_display() {
        let v = Violation::NotRestorable { s: 1, t: 2, faults: FaultSet::single(3) };
        assert_eq!(v.to_string(), "not restorable: pair (1, 2) under faults {3}");
    }

    #[test]
    fn atw_schemes_are_genuinely_asymmetric_on_tie_rich_graphs() {
        // Theorem 2's whole point: the selection uses its freedom to pick
        // different s⇝t and t⇝s paths. On a grid the perturbation almost
        // surely exercises that freedom somewhere.
        let g = rsp_graph::generators::grid(4, 4);
        let scheme = RandomGridAtw::theorem20(&g, 3).into_scheme();
        assert!(count_asymmetric_pairs(&scheme, &FaultSet::empty()) > 0);
    }

    #[test]
    fn unique_paths_graphs_are_symmetric() {
        // With unique shortest paths there is no freedom: forward and
        // backward selections coincide.
        let g = rsp_graph::generators::path_graph(6);
        let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
        assert_eq!(count_asymmetric_pairs(&scheme, &FaultSet::empty()), 0);
    }
}
