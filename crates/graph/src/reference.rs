//! The pre-migration Vec-of-Vec reference engine: the differential oracle
//! the CSR core is pinned against.
//!
//! Before the `u32` CSR migration, `Graph` adjacency was the textbook
//! `Vec<Vec<(Vertex, EdgeId)>>` and every query allocated fresh `O(n)`
//! state with a lazy-deletion `BinaryHeap<Reverse<(C, Vertex)>>`. That
//! engine is deliberately preserved here — naive, allocating, `usize` ids
//! throughout — as an executable specification: simple enough to audit by
//! eye, and byte-identical in semantics (distances, costs, parents, hop
//! counts, settle order, and tie flags) to the production engines in
//! [`crate::bfs_into`] / [`crate::dijkstra_into`] and everything layered
//! above them.
//!
//! The differential suites (`tests/csr_equivalence.rs` here, plus the
//! scheme- and oracle-level suites in `rsp_core` / `rsp_oracle`) drive the
//! CSR engine and this reference through identical query streams on every
//! generator family and assert cell-identical results. Production code
//! should never call into this module — it exists to make engine bugs
//! loudly visible, not to be fast.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::reference::{ref_dijkstra, RefGraph};
//! use rsp_graph::{dijkstra_into, generators, FaultSet, SearchScratch};
//!
//! let g = generators::grid(3, 3);
//! let r = RefGraph::from_graph(&g);
//! let faults = FaultSet::single(0);
//! let spec = ref_dijkstra(&r, 0, &faults, |e, _, _| 10u64 + e as u64);
//! let mut scratch = SearchScratch::<u64>::new();
//! dijkstra_into(&g, 0, &faults, |e, _, _| 10u64 + e as u64, &mut scratch);
//! for v in g.vertices() {
//!     assert_eq!(scratch.cost(v), spec.cost[v].as_ref());
//!     assert_eq!(scratch.parent(v), spec.parent[v]);
//! }
//! assert_eq!(scratch.ties_detected(), spec.ties);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rsp_arith::PathCost;

use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph, Vertex};

/// Vec-of-Vec adjacency: the pre-migration `Graph` representation.
///
/// Built from a CSR [`Graph`] by copying each vertex's neighbor slice in
/// its stored order, so the reference engines examine edges in exactly the
/// order the CSR engines do — a prerequisite for byte-identical parents
/// and tie flags.
#[derive(Clone, Debug)]
pub struct RefGraph {
    /// `adj[u]` lists `(neighbor, edge id)` pairs, sorted by neighbor.
    adj: Vec<Vec<(Vertex, EdgeId)>>,
}

impl RefGraph {
    /// Copies a CSR graph into Vec-of-Vec form.
    pub fn from_graph(g: &Graph) -> Self {
        RefGraph { adj: (0..g.n()).map(|u| g.neighbors(u).collect()).collect() }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// The `(neighbor, edge id)` pairs of `u`, sorted by neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    pub fn neighbors(&self, u: Vertex) -> &[(Vertex, EdgeId)] {
        &self.adj[u]
    }
}

/// An owned shortest-path-tree result from the reference engines, every
/// field freshly allocated per query (the pre-migration memory shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefTree<C> {
    /// The query's source vertex.
    pub source: Vertex,
    /// Exact cost per vertex ([`ref_dijkstra`]); all `None` after
    /// [`ref_bfs`].
    pub cost: Vec<Option<C>>,
    /// Hop count per vertex, meaningful where reached. After [`ref_bfs`]
    /// this is the unweighted distance.
    pub hops: Vec<u32>,
    /// Parent `(vertex, edge id)` per vertex; `None` for the source and
    /// unreached vertices.
    pub parent: Vec<Option<(Vertex, EdgeId)>>,
    /// Whether two equal-cost routes into any vertex were observed
    /// (always `false` after [`ref_bfs`]).
    pub ties: bool,
    /// Vertices in settle order (BFS: dequeue order; Dijkstra: pop order
    /// with stale entries skipped).
    pub settle_order: Vec<Vertex>,
}

impl<C> RefTree<C> {
    /// `true` iff the query reached `v`.
    pub fn reached(&self, v: Vertex) -> bool {
        v == self.source || self.parent.get(v).is_some_and(|p| p.is_some())
    }

    /// Number of vertices the query reached (including the source).
    pub fn reachable_count(&self) -> usize {
        self.settle_order.len()
    }
}

/// Breadth-first search on the reference adjacency: the specification for
/// [`crate::bfs`] / [`crate::bfs_into`].
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn ref_bfs(g: &RefGraph, source: Vertex, faults: &FaultSet) -> RefTree<u32> {
    let n = g.n();
    assert!(source < n, "bfs source {source} out of range");
    let mut seen = vec![false; n];
    let mut hops = vec![0u32; n];
    let mut parent: Vec<Option<(Vertex, EdgeId)>> = vec![None; n];
    let mut settle_order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        settle_order.push(u);
        for &(v, e) in g.neighbors(u) {
            if faults.contains(e) || seen[v] {
                continue;
            }
            seen[v] = true;
            hops[v] = hops[u] + 1;
            parent[v] = Some((u, e));
            queue.push_back(v);
        }
    }
    RefTree { source, cost: vec![None; n], hops, parent, ties: false, settle_order }
}

/// Lazy-deletion Dijkstra on the reference adjacency: the specification
/// for [`crate::dijkstra`] / [`crate::dijkstra_into`] under **both** heap
/// policies.
///
/// A `BinaryHeap<Reverse<(C, Vertex)>>` orders entries `(cost, vertex id)`
/// lexicographically, so vertices settle in exactly the `(cost, id)` order
/// the production engines realize; an equal-cost route into an open *or*
/// settled vertex sets the tie flag, matching their detection precisely.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
pub fn ref_dijkstra<C, F>(
    g: &RefGraph,
    source: Vertex,
    faults: &FaultSet,
    mut edge_cost: F,
) -> RefTree<C>
where
    C: PathCost,
    F: FnMut(EdgeId, Vertex, Vertex) -> C,
{
    let n = g.n();
    assert!(source < n, "dijkstra source {source} out of range");
    let mut best: Vec<Option<C>> = vec![None; n];
    let mut hops = vec![0u32; n];
    let mut parent: Vec<Option<(Vertex, EdgeId)>> = vec![None; n];
    let mut settled = vec![false; n];
    let mut settle_order = Vec::new();
    let mut ties = false;
    let mut heap: BinaryHeap<Reverse<(C, Vertex)>> = BinaryHeap::new();
    best[source] = Some(C::zero());
    heap.push(Reverse((C::zero(), source)));
    while let Some(Reverse((cost_u, u))) = heap.pop() {
        if settled[u] || best[u].as_ref() != Some(&cost_u) {
            continue; // stale entry superseded by a better key
        }
        settled[u] = true;
        settle_order.push(u);
        for &(v, e) in g.neighbors(u) {
            if faults.contains(e) {
                continue;
            }
            let cand = cost_u.plus(&edge_cost(e, u, v));
            match &best[v] {
                Some(cur) if *cur < cand => {}
                Some(cur) if *cur == cand => ties = true,
                _ => {
                    best[v] = Some(cand.clone());
                    parent[v] = Some((u, e));
                    hops[v] = hops[u] + 1;
                    heap.push(Reverse((cand, v)));
                }
            }
        }
    }
    RefTree { source, cost: best, hops, parent, ties, settle_order }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ref_bfs_on_cycle() {
        let g = generators::cycle(6);
        let r = RefGraph::from_graph(&g);
        let t = ref_bfs(&r, 0, &FaultSet::empty());
        assert_eq!(t.hops[3], 3);
        assert_eq!(t.reachable_count(), 6);
        assert!(!t.ties);
        let cut = g.edge_between(0, 1).unwrap();
        let t = ref_bfs(&r, 0, &FaultSet::single(cut));
        assert_eq!(t.hops[1], 5, "re-routed the long way");
    }

    #[test]
    fn ref_dijkstra_decrease_key_shape() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let r = RefGraph::from_graph(&g);
        let w = |e: EdgeId| [1u64, 10, 100, 1][e];
        let t = ref_dijkstra(&r, 0, &FaultSet::empty(), |e, _, _| w(e));
        assert_eq!(t.cost[3], Some(11));
        assert_eq!(t.parent[3], Some((2, 3)));
        assert_eq!(t.hops[3], 2);
        assert!(!t.ties);
    }

    #[test]
    fn ref_dijkstra_flags_ties() {
        let g = generators::grid(3, 3);
        let r = RefGraph::from_graph(&g);
        let t = ref_dijkstra(&r, 0, &FaultSet::empty(), |_, _, _| 10u64);
        assert!(t.ties, "uniform grid costs tie everywhere");
    }

    #[test]
    fn reached_accounts_source_and_unreached() {
        let g = generators::path_graph(4);
        let r = RefGraph::from_graph(&g);
        let cut = g.edge_between(1, 2).unwrap();
        let t = ref_bfs(&r, 0, &FaultSet::single(cut));
        assert!(t.reached(0) && t.reached(1));
        assert!(!t.reached(2) && !t.reached(3));
        assert_eq!(t.reachable_count(), 2);
    }
}
