//! The DAG restoration experiments: the known existential lemma, and the
//! open canonical-tiebreaking question.

use crate::digraph::{ArcFaults, DirectedBfs};
use crate::scheme::DagScheme;

/// Aggregate outcome of a DAG restoration sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DagRestorationStats {
    /// `(s, t, failing arc)` instances with a surviving replacement path.
    pub attempted: usize,
    /// Instances restorable as `π(s, x) ∘ π(x, t)`.
    pub restored: usize,
    /// Instances with no midpoint decomposition.
    pub failed: usize,
}

impl DagRestorationStats {
    /// Fraction of attempted instances that could not be restored.
    pub fn failure_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.failed as f64 / self.attempted as f64
        }
    }
}

/// The **open question** (Section 1.2), measured: for every ordered pair
/// and every failing arc on the canonical path, is there a midpoint `x`
/// such that the *selected* `π(s, x)` and `π(x, t)` (fault-free
/// canonical paths) both avoid the arc and concatenate to a replacement
/// shortest path?
///
/// Note the directed concatenation `π(s, x) ∘ π(x, t)` — no reversal, so
/// no asymmetry is even available; whatever the perturbation picked is
/// what we get.
pub fn dag_restoration_stats(scheme: &DagScheme) -> DagRestorationStats {
    let d = scheme.dag();
    let empty = ArcFaults::empty();
    let mut stats = DagRestorationStats::default();
    // Canonical fault-free trees from every source (π(s, ·)) — reused
    // across targets and faults.
    let from: Vec<_> = d.vertices().map(|s| scheme.sssp(s, &empty)).collect();
    for s in d.vertices() {
        for t in d.vertices() {
            if s == t {
                continue;
            }
            let Some(arcs) = from[s].arcs_to(t) else { continue };
            for &a in &arcs {
                let faults = ArcFaults::single(a);
                let truth = DirectedBfs::run(d, s, &faults);
                let Some(replacement) = truth.dist(t) else { continue };
                stats.attempted += 1;
                let ok = d.vertices().any(|x| {
                    let (Some(hs), Some(ht)) = (from[s].hops(x), from[x].hops(t)) else {
                        return false;
                    };
                    if hs + ht != replacement {
                        return false;
                    }
                    let ps = from[s].arcs_to(x).expect("reachable");
                    let pt = from[x].arcs_to(t).expect("reachable");
                    !ps.contains(&a) && !pt.contains(&a)
                });
                if ok {
                    stats.restored += 1;
                } else {
                    stats.failed += 1;
                }
            }
        }
    }
    stats
}

/// The **known-true existential** DAG restoration lemma ([3, 9]): for
/// every instance there exist *some* shortest paths `p(s, x)`, `p(x, t)`
/// avoiding the arc whose concatenation is a replacement shortest path.
///
/// Verified via distances only: `x` witnesses iff
/// `d_{G\a}(s,x) + d_{G\a}(x,t) = d_{G\a}(s,t)` and both legs already
/// have their fault-free lengths (`d_{G\a}(s,x) = d(s,x)`,
/// `d_{G\a}(x,t) = d(x,t)`), i.e. both legs can be realized by original
/// shortest paths avoiding the arc.
pub fn existential_restoration_stats(scheme: &DagScheme) -> DagRestorationStats {
    let d = scheme.dag();
    let empty = ArcFaults::empty();
    let base_from: Vec<_> = d.vertices().map(|s| DirectedBfs::run(d, s, &empty)).collect();
    let mut stats = DagRestorationStats::default();
    for s in d.vertices() {
        for t in d.vertices() {
            if s == t {
                continue;
            }
            let Some(arcs) = scheme.sssp(s, &empty).arcs_to(t) else { continue };
            for &a in &arcs {
                let faults = ArcFaults::single(a);
                let fault_from_s = DirectedBfs::run(d, s, &faults);
                let Some(replacement) = fault_from_s.dist(t) else { continue };
                stats.attempted += 1;
                let ok = d.vertices().any(|x| {
                    let (Some(ds_f), Some(ds)) = (fault_from_s.dist(x), base_from[s].dist(x))
                    else {
                        return false;
                    };
                    if ds_f != ds {
                        return false;
                    }
                    let fault_from_x = DirectedBfs::run(d, x, &faults);
                    let (Some(dt_f), Some(dt)) = (fault_from_x.dist(t), base_from[x].dist(t))
                    else {
                        return false;
                    };
                    dt_f == dt && ds + dt == replacement
                });
                if ok {
                    stats.restored += 1;
                } else {
                    stats.failed += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn existential_lemma_holds_on_grids() {
        let d = generators::grid_dag(3, 4);
        let scheme = DagScheme::new(&d, 1);
        let stats = existential_restoration_stats(&scheme);
        assert!(stats.attempted > 0);
        assert_eq!(stats.failed, 0, "the DAG restoration lemma is a theorem: {stats:?}");
    }

    #[test]
    fn existential_lemma_holds_on_random_dags() {
        for seed in 0..4 {
            let d = generators::random_dag(14, 20, seed);
            let scheme = DagScheme::new(&d, seed + 5);
            let stats = existential_restoration_stats(&scheme);
            assert_eq!(stats.failed, 0, "seed {seed}: {stats:?}");
        }
    }

    #[test]
    fn canonical_restoration_on_tie_rich_dags() {
        // The open question, sampled. We record the empirical finding:
        // perturbation-canonical paths have restored every instance we
        // have measured — supporting the paper's conjecture.
        for (name, d) in [
            ("grid-3x4", generators::grid_dag(3, 4)),
            ("grid-4x4", generators::grid_dag(4, 4)),
            ("layered", generators::layered_dag(4, 4, 2, 3)),
        ] {
            for seed in 0..3 {
                let scheme = DagScheme::new(&d, seed);
                let stats = dag_restoration_stats(&scheme);
                assert!(stats.attempted > 0, "{name}");
                assert_eq!(
                    stats.failed, 0,
                    "{name} seed {seed}: conjecture counterexample?! {stats:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_restoration_on_random_dags() {
        for seed in 0..6 {
            let d = generators::random_dag(16, 28, seed);
            let scheme = DagScheme::new(&d, seed + 100);
            let stats = dag_restoration_stats(&scheme);
            assert_eq!(stats.failed, 0, "seed {seed}: {stats:?}");
            assert_eq!(stats.failure_rate(), 0.0);
        }
    }
}
