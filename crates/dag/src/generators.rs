//! DAG generators for the extension experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::digraph::Digraph;

/// The directed grid: vertex `(r, c)` is `r·cols + c`, arcs point right
/// and down. The canonical tie-rich DAG (binomially many shortest paths
/// between corners).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid_dag(rows: usize, cols: usize) -> Digraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut arcs = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                arcs.push((v, v + 1));
            }
            if r + 1 < rows {
                arcs.push((v, v + cols));
            }
        }
    }
    Digraph::from_arcs(rows * cols, arcs).expect("grid arcs are valid")
}

/// A connected-ish random DAG: vertices get a random topological order; a
/// backbone path keeps everything reachable from the first vertex, plus
/// `extra` random forward arcs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_dag(n: usize, extra: usize, seed: u64) -> Digraph {
    assert!(n > 0, "DAG needs at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut seen = std::collections::HashSet::new();
    let mut arcs = Vec::new();
    for w in order.windows(2) {
        seen.insert((w[0], w[1]));
        arcs.push((w[0], w[1]));
    }
    let mut attempts = 0;
    while arcs.len() < (n - 1) + extra && attempts < 100 * (extra + 1) {
        attempts += 1;
        let i = rng.random_range(0..n - 1);
        let j = rng.random_range(i + 1..n);
        if seen.insert((order[i], order[j])) {
            arcs.push((order[i], order[j]));
        }
    }
    Digraph::from_arcs(n, arcs).expect("forward arcs are acyclic and valid")
}

/// A layered DAG: `layers` layers of `width` vertices; each vertex gets
/// arcs to `fanout` random vertices in the next layer (plus one
/// guaranteed arc to keep layers connected). Layered DAGs maximize
/// shortest-path ties at equal depth.
///
/// # Panics
///
/// Panics if any parameter is zero or `fanout > width`.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, seed: u64) -> Digraph {
    assert!(layers > 0 && width > 0 && fanout > 0, "parameters must be positive");
    assert!(fanout <= width, "fanout cannot exceed the layer width");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layers * width;
    let mut seen = std::collections::HashSet::new();
    let mut arcs = Vec::new();
    let push = |seen: &mut std::collections::HashSet<(usize, usize)>,
                arcs: &mut Vec<(usize, usize)>,
                a: (usize, usize)| {
        if seen.insert(a) {
            arcs.push(a);
        }
    };
    for l in 0..layers - 1 {
        for i in 0..width {
            let u = l * width + i;
            // Guaranteed arc straight ahead, then random fanout.
            push(&mut seen, &mut arcs, (u, (l + 1) * width + i));
            for _ in 0..fanout.saturating_sub(1) {
                let j = rng.random_range(0..width);
                push(&mut seen, &mut arcs, (u, (l + 1) * width + j));
            }
        }
    }
    Digraph::from_arcs(n, arcs).expect("layer arcs are acyclic and valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::{ArcFaults, DirectedBfs};

    #[test]
    fn grid_dag_shape() {
        let d = grid_dag(3, 4);
        assert_eq!(d.n(), 12);
        assert_eq!(d.m(), 3 * 3 + 2 * 4);
        assert!(d.is_dag());
        let bfs = DirectedBfs::run(&d, 0, &ArcFaults::empty());
        assert_eq!(bfs.dist(11), Some(5), "manhattan distance");
    }

    #[test]
    fn random_dag_is_acyclic_and_reachable() {
        for seed in 0..5 {
            let d = random_dag(20, 30, seed);
            assert!(d.is_dag());
            // The backbone makes everything reachable from its first
            // vertex — find it as the unique vertex with in-degree 0
            // reachable count n.
            let reachable_all = d.vertices().any(|s| {
                let bfs = DirectedBfs::run(&d, s, &ArcFaults::empty());
                d.vertices().all(|v| bfs.dist(v).is_some())
            });
            assert!(reachable_all, "seed {seed}");
        }
    }

    #[test]
    fn layered_dag_depth() {
        let d = layered_dag(5, 4, 2, 1);
        assert!(d.is_dag());
        assert_eq!(d.n(), 20);
        let bfs = DirectedBfs::run(&d, 0, &ArcFaults::empty());
        assert_eq!(bfs.dist(16), Some(4), "straight-ahead chain");
    }

    #[test]
    fn determinism() {
        assert_eq!(random_dag(15, 20, 3), random_dag(15, 20, 3));
        assert_eq!(layered_dag(4, 3, 2, 9), layered_dag(4, 3, 2, 9));
    }
}
