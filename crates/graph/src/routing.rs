//! Next-hop routing tables.
//!
//! Section 2 of the paper points out that *consistency* (Definition 14) is
//! exactly the property that lets selected shortest paths be encoded in a
//! routing table: a matrix whose `(s, t)` entry holds the next hop on the
//! selected `s ⇝ t` path. This module provides that matrix; the MPLS crate
//! builds its label-switched forwarding on top of it.

use crate::graph::{Graph, Vertex};
use crate::path::Path;

/// A next-hop routing table: for each ordered pair `(s, t)`, the first hop
/// on the selected `s ⇝ t` path.
///
/// Built from per-source shortest-path trees via [`NextHopTable::from_paths`]
/// or filled incrementally. Routing loops are possible if the table is
/// populated from an *inconsistent* path selection; [`NextHopTable::route`]
/// guards against them with a hop budget.
///
/// # Examples
///
/// ```
/// use rsp_graph::{generators, bfs, FaultSet, NextHopTable};
///
/// let g = generators::path_graph(4);
/// let paths = g.vertices().flat_map(|s| {
///     let t = bfs(&g, s, &FaultSet::empty());
///     g.vertices().filter_map(move |v| t.path_to(v))
/// });
/// let table = NextHopTable::from_paths(g.n(), paths);
/// let route = table.route(&g, 0, 3).unwrap();
/// assert_eq!(route.vertices(), &[0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NextHopTable {
    n: usize,
    /// Row-major `n × n`; entry `(s, t)` is the next hop from `s` toward `t`.
    next: Vec<Option<Vertex>>,
}

impl NextHopTable {
    /// Creates an empty table for `n` vertices.
    pub fn new(n: usize) -> Self {
        NextHopTable { n, next: vec![None; n * n] }
    }

    /// Builds a table from a collection of selected paths.
    ///
    /// For each path `s = v_0, v_1, …, v_k = t`, records `next(s, t) = v_1`.
    /// Only each path's *own* entry is set; callers wanting subpath entries
    /// should pass paths from a consistent scheme for all pairs (which is
    /// what [`NextHopTable::from_consistent_paths`] exploits).
    pub fn from_paths(n: usize, paths: impl IntoIterator<Item = Path>) -> Self {
        let mut table = NextHopTable::new(n);
        for p in paths {
            if p.hops() > 0 {
                table.set(p.source(), p.target(), p.vertices()[1]);
            }
        }
        table
    }

    /// Builds a table from paths selected by a *consistent* scheme,
    /// registering every suffix of every path.
    ///
    /// Consistency (Definition 14) means that if `u` precedes `v` on
    /// `π(s, t)` then `π(u, v)` is the contiguous subpath, so for each path
    /// vertex `v_i` the entry `(v_i, t)` may safely be set to `v_{i+1}`.
    /// This is how a single tree per *target* populates a full column.
    pub fn from_consistent_paths(n: usize, paths: impl IntoIterator<Item = Path>) -> Self {
        let mut table = NextHopTable::new(n);
        for p in paths {
            let verts = p.vertices();
            let t = p.target();
            for w in verts.windows(2) {
                table.set(w[0], t, w[1]);
            }
        }
        table
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sets the next hop from `s` toward `t`.
    ///
    /// # Panics
    ///
    /// Panics if any vertex is out of range.
    pub fn set(&mut self, s: Vertex, t: Vertex, hop: Vertex) {
        assert!(s < self.n && t < self.n && hop < self.n, "vertex out of range");
        self.next[s * self.n + t] = Some(hop);
    }

    /// The next hop from `s` toward `t`, if routed.
    pub fn next_hop(&self, s: Vertex, t: Vertex) -> Option<Vertex> {
        self.next[s * self.n + t]
    }

    /// Follows next hops from `s` to `t`, validating each hop against `g`.
    ///
    /// Returns `None` if some hop is missing, a hop is not an edge of `g`,
    /// or more than `n` hops are taken (a routing loop).
    pub fn route(&self, g: &Graph, s: Vertex, t: Vertex) -> Option<Path> {
        let mut verts = vec![s];
        let mut cur = s;
        while cur != t {
            let hop = self.next_hop(cur, t)?;
            if !g.has_edge(cur, hop) || verts.len() > self.n {
                return None;
            }
            verts.push(hop);
            cur = hop;
        }
        Some(Path::new(verts))
    }

    /// Number of populated entries.
    pub fn populated(&self) -> usize {
        self.next.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::generators;
    use crate::FaultSet;

    #[test]
    fn route_follows_hops() {
        let g = generators::cycle(5);
        let mut t = NextHopTable::new(5);
        t.set(0, 2, 1);
        t.set(1, 2, 2);
        let p = t.route(&g, 0, 2).unwrap();
        assert_eq!(p.vertices(), &[0, 1, 2]);
    }

    #[test]
    fn missing_entry_fails() {
        let g = generators::cycle(5);
        let t = NextHopTable::new(5);
        assert!(t.route(&g, 0, 2).is_none());
    }

    #[test]
    fn loop_detected() {
        let g = generators::cycle(4);
        let mut t = NextHopTable::new(4);
        t.set(0, 2, 1);
        t.set(1, 2, 0); // 0 → 1 → 0 → …
        assert!(t.route(&g, 0, 2).is_none());
    }

    #[test]
    fn invalid_hop_rejected() {
        let g = generators::path_graph(4);
        let mut t = NextHopTable::new(4);
        t.set(0, 3, 2); // 0-2 is not an edge
        assert!(t.route(&g, 0, 3).is_none());
    }

    #[test]
    fn from_consistent_paths_fills_suffixes() {
        let g = generators::path_graph(4);
        let tree = bfs(&g, 3, &FaultSet::empty());
        // One path 0⇝3 registers suffix entries for 1⇝3 and 2⇝3 too.
        let table =
            NextHopTable::from_consistent_paths(g.n(), [tree.path_to(0).unwrap().reversed()]);
        assert_eq!(table.route(&g, 1, 3).unwrap().vertices(), &[1, 2, 3]);
        assert_eq!(table.populated(), 3);
    }

    #[test]
    fn trivial_route() {
        let g = generators::path_graph(2);
        let t = NextHopTable::new(2);
        let p = t.route(&g, 1, 1).unwrap();
        assert_eq!(p.hops(), 0);
    }
}
