//! End-to-end pipeline: one tiebreaking scheme drives every application
//! layer — replacement paths, preservers, spanners, labels — and all
//! answers agree with BFS ground truth.

use restorable_tiebreaking::core::{verify::sample_fault_sets, RandomGridAtw, Rpts};
use restorable_tiebreaking::graph::{bfs, generators, FaultSet};
use restorable_tiebreaking::labeling::build_labeling;
use restorable_tiebreaking::preserver::{ft_subset_preserver, verify_preserver, PairSet};
use restorable_tiebreaking::replacement::subset_replacement_paths;
use restorable_tiebreaking::spanner::{ft_additive_spanner, verify_spanner_stretch};

#[test]
fn one_scheme_serves_every_layer() {
    let g = generators::connected_gnm(28, 70, 1234);
    let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    let sources = vec![0, 9, 18, 27];

    // Layer 1: subset replacement paths agree with BFS truth.
    let rp = subset_replacement_paths(&g, &sources, 9);
    for p in rp.iter() {
        let (s, t) = p.pair();
        for entry in p.entries() {
            let truth = bfs(&g, s, &FaultSet::single(entry.edge)).dist(t);
            assert_eq!(entry.dist, truth);
        }
    }

    // Layer 2: the 1-FT subset preserver preserves those same distances.
    let preserver = ft_subset_preserver(&scheme, &sources, 1);
    let singles: Vec<FaultSet> = g.edges().map(|(e, _, _)| FaultSet::single(e)).collect();
    verify_preserver(&g, &preserver, &PairSet::subset(sources.clone()), &singles).unwrap();

    // Layer 3: the spanner keeps everyone within +4.
    let spanner = ft_additive_spanner(&scheme, 5, 1, 3);
    verify_spanner_stretch(&g, &spanner, 4, &singles).unwrap();

    // Layer 4: labels answer the same queries from bitstrings alone.
    let labeling = build_labeling(&scheme, 0);
    for (e, u, v) in g.edges().take(20) {
        let fs = FaultSet::single(e);
        for &s in &sources {
            for &t in &sources {
                assert_eq!(labeling.query(s, t, &[(u, v)]), bfs(&g, s, &fs).dist(t));
            }
        }
    }
}

#[test]
fn preserver_is_sparser_but_equivalent_for_its_pairs() {
    let g = generators::connected_gnm(40, 160, 55);
    let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
    let sources = vec![0, 13, 26, 39];
    let preserver = ft_subset_preserver(&scheme, &sources, 2);
    assert!(preserver.edge_count() < g.m(), "must drop edges on a dense graph");
    let fault_sets = sample_fault_sets(g.m(), 2, 30, 77);
    verify_preserver(&g, &preserver, &PairSet::subset(sources), &fault_sets).unwrap();
}

#[test]
fn replacement_paths_live_inside_the_preserver() {
    // The structural fact behind Theorem 31: every replacement path that
    // Algorithm 1 reports can be realized inside the subset preserver.
    let g = generators::connected_gnm(24, 60, 8);
    let scheme = RandomGridAtw::theorem20(&g, 8).into_scheme();
    let sources = vec![0, 8, 16];
    let preserver = ft_subset_preserver(&scheme, &sources, 1);
    let h = preserver.subgraph(&g);
    let rp = subset_replacement_paths(&g, &sources, 21);
    for p in rp.iter() {
        let (s, t) = p.pair();
        for entry in p.entries() {
            let (u, v) = g.endpoints(entry.edge);
            let h_faults: FaultSet = h.edge_between(u, v).into_iter().collect();
            let via_h = bfs(&h, s, &h_faults).dist(t);
            assert_eq!(via_h, entry.dist, "preserver must realize dist for ({s},{t})");
        }
    }
}

#[test]
fn scheme_trees_are_bfs_trees_under_every_single_fault() {
    let g = generators::grid(4, 5);
    let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
    for (e, _, _) in g.edges() {
        let fs = FaultSet::single(e);
        for s in [0, 7, 19] {
            let tree = scheme.tree_from(s, &fs);
            let truth = bfs(&g, s, &fs);
            for v in g.vertices() {
                assert_eq!(tree.dist(v), truth.dist(v));
            }
        }
    }
}
