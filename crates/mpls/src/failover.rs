//! The failover engine: splice replacement paths from the dual tables.

use std::error::Error;
use std::fmt;

use rsp_core::Rpts;
use rsp_graph::{bfs, EdgeId, FaultSet, Graph, Path, Vertex};

use crate::table::DualTables;

/// Identifier of an established label-switched path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LspId(usize);

/// Errors of the MPLS control plane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MplsError {
    /// The endpoints are not connected (possibly after failures).
    Disconnected {
        /// Requested ingress.
        s: Vertex,
        /// Requested egress.
        t: Vertex,
    },
    /// No concatenation of stored paths avoids the failed links — the
    /// Figure 1 failure mode, impossible under a restorable scheme.
    RestorationFailed {
        /// The affected LSP's ingress.
        s: Vertex,
        /// The affected LSP's egress.
        t: Vertex,
    },
    /// Unknown LSP id.
    UnknownLsp(LspId),
}

impl fmt::Display for MplsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MplsError::Disconnected { s, t } => write!(f, "no surviving path from {s} to {t}"),
            MplsError::RestorationFailed { s, t } => {
                write!(f, "no spliced replacement path from {s} to {t} (non-restorable tables)")
            }
            MplsError::UnknownLsp(id) => write!(f, "unknown LSP {id:?}"),
        }
    }
}

impl Error for MplsError {}

/// An established label-switched path.
#[derive(Clone, Debug)]
pub struct Lsp {
    id: LspId,
    s: Vertex,
    t: Vertex,
    path: Path,
}

impl Lsp {
    /// The LSP's id.
    pub fn id(&self) -> LspId {
        self.id
    }

    /// Ingress and egress.
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        (self.s, self.t)
    }

    /// The currently installed path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Outcome of a successful restoration.
#[derive(Clone, Debug)]
pub struct RestorationReport {
    /// The midpoint `x` at which the two stored paths were spliced.
    pub midpoint: Vertex,
    /// The new installed path `π(s, x) ∘ reverse(π(t, x))`.
    pub restored_path: Path,
    /// Ground-truth replacement distance `dist_{G\F}(s, t)` (the spliced
    /// path always matches it under a restorable scheme).
    pub optimal_hops: u32,
}

/// A simulated MPLS network: graph, dual routing tables, established
/// LSPs, and the set of currently failed links.
pub struct MplsNetwork {
    graph: Graph,
    tables: DualTables,
    lsps: Vec<Lsp>,
    failed: FaultSet,
}

impl MplsNetwork {
    /// Builds the network and its dual tables from a tiebreaking scheme.
    ///
    /// Use a restorable scheme (an ATW [`rsp_core::ExactScheme`]) for
    /// guaranteed failover; an arbitrary scheme (e.g.
    /// [`rsp_core::BfsScheme`]) reproduces the failure mode.
    pub fn new<S: Rpts>(scheme: &S) -> Self {
        MplsNetwork {
            graph: scheme.graph().clone(),
            tables: DualTables::build(scheme),
            lsps: Vec::new(),
            failed: FaultSet::empty(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The dual routing tables.
    pub fn tables(&self) -> &DualTables {
        &self.tables
    }

    /// Currently failed links.
    pub fn failed_edges(&self) -> &FaultSet {
        &self.failed
    }

    /// Establishes an LSP from `s` to `t` along the forward table.
    ///
    /// # Errors
    ///
    /// Returns [`MplsError::Disconnected`] if no route exists.
    pub fn establish(&mut self, s: Vertex, t: Vertex) -> Result<LspId, MplsError> {
        let path =
            self.tables.route_forward(&self.graph, s, t).ok_or(MplsError::Disconnected { s, t })?;
        let id = LspId(self.lsps.len());
        self.lsps.push(Lsp { id, s, t, path });
        Ok(id)
    }

    /// Looks up an LSP.
    pub fn lsp(&self, id: LspId) -> Option<&Lsp> {
        self.lsps.get(id.0)
    }

    /// All LSPs whose installed path uses a currently failed link.
    pub fn affected_lsps(&self) -> Vec<LspId> {
        self.lsps
            .iter()
            .filter(|l| !l.path.avoids(&self.graph, &self.failed))
            .map(|l| l.id)
            .collect()
    }

    /// Marks a link as failed (data plane event).
    pub fn fail_edge(&mut self, e: EdgeId) {
        self.failed = self.failed.with(e);
    }

    /// Repairs a link.
    pub fn repair_edge(&mut self, e: EdgeId) {
        self.failed = self.failed.without(e);
    }

    /// Restores an LSP by **path concatenation**: scans midpoints `x`,
    /// splices the stored `π(s, x)` (forward table) with the stored
    /// `reverse(π(t, x))` (reverse table), and installs the shortest
    /// splice that avoids all failed links.
    ///
    /// No shortest-path recomputation happens: only table lookups. Under a
    /// restorable scheme the installed path provably has optimal
    /// replacement length for a single failed link.
    ///
    /// # Errors
    ///
    /// [`MplsError::UnknownLsp`] for a bad id;
    /// [`MplsError::Disconnected`] if no replacement exists at all;
    /// [`MplsError::RestorationFailed`] if concatenation cannot realize
    /// one (non-restorable tables).
    pub fn restore(&mut self, id: LspId) -> Result<RestorationReport, MplsError> {
        let lsp = self.lsps.get(id.0).ok_or(MplsError::UnknownLsp(id))?;
        let (s, t) = (lsp.s, lsp.t);
        let optimal =
            bfs(&self.graph, s, &self.failed).dist(t).ok_or(MplsError::Disconnected { s, t })?;

        let mut best: Option<(Vertex, Path)> = None;
        for x in self.graph.vertices() {
            let (Some(p1), Some(p2)) = (
                self.tables.route_forward(&self.graph, s, x),
                self.tables.route_reverse(&self.graph, x, t),
            ) else {
                continue;
            };
            if !p1.avoids(&self.graph, &self.failed) || !p2.avoids(&self.graph, &self.failed) {
                continue;
            }
            let spliced = p1.concat(&p2).expect("both meet at x");
            if best.as_ref().is_none_or(|(_, b)| spliced.hops() < b.hops()) {
                best = Some((x, spliced));
            }
        }
        let (midpoint, restored_path) = best.ok_or(MplsError::RestorationFailed { s, t })?;
        self.lsps[id.0].path = restored_path.clone();
        Ok(RestorationReport { midpoint, restored_path, optimal_hops: optimal })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_core::{BfsOrder, BfsScheme, RandomGridAtw};
    use rsp_graph::generators;

    #[test]
    fn establish_and_failover_on_cycle() {
        let g = generators::cycle(8);
        let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
        let mut net = MplsNetwork::new(&scheme);
        let lsp = net.establish(0, 4).unwrap();
        assert_eq!(net.lsp(lsp).unwrap().path().hops(), 4);
        // Fail the first hop of the installed path.
        let hop1 = net.lsp(lsp).unwrap().path().vertices()[1];
        let e = g.edge_between(0, hop1).unwrap();
        net.fail_edge(e);
        assert_eq!(net.affected_lsps(), vec![lsp]);
        let report = net.restore(lsp).unwrap();
        assert_eq!(report.restored_path.hops(), 4, "reroute the other way");
        assert_eq!(report.restored_path.hops() as u32, report.optimal_hops);
        assert!(report.restored_path.avoids(&g, net.failed_edges()));
        assert!(net.affected_lsps().is_empty(), "restored LSP is clean");
    }

    #[test]
    fn restorable_scheme_restores_every_single_failure() {
        let g = generators::grid(4, 4);
        let scheme = RandomGridAtw::theorem20(&g, 2).into_scheme();
        for (e, _, _) in g.edges() {
            let mut net = MplsNetwork::new(&scheme);
            let lsp = net.establish(0, 15).unwrap();
            net.fail_edge(e);
            let report = net.restore(lsp).expect("restorable tables never fail");
            assert_eq!(report.restored_path.hops() as u32, report.optimal_hops);
        }
    }

    #[test]
    fn naive_tables_can_fail_restoration() {
        // The operational version of Figure 1: BFS tables on a tie-rich
        // graph strand some (s, t, e) instance.
        let g = generators::grid(3, 3);
        let scheme = BfsScheme::new(&g, BfsOrder::Ascending);
        let mut failures = 0;
        for (e, _, _) in g.edges() {
            for s in g.vertices() {
                for t in g.vertices() {
                    if s == t {
                        continue;
                    }
                    let mut net = MplsNetwork::new(&scheme);
                    let Ok(lsp) = net.establish(s, t) else { continue };
                    net.fail_edge(e);
                    match net.restore(lsp) {
                        Err(MplsError::RestorationFailed { .. }) => failures += 1,
                        Ok(r) => {
                            // Any splice found must still avoid faults…
                            assert!(r.restored_path.avoids(&g, net.failed_edges()));
                        }
                        Err(MplsError::Disconnected { .. }) => {}
                        Err(e) => panic!("unexpected error {e}"),
                    }
                }
            }
        }
        assert!(failures > 0, "expected Figure 1 failures with naive tables");
    }

    #[test]
    fn suboptimal_splice_impossible_for_restorable_single_fault() {
        // Under a restorable scheme the best splice has exactly the
        // replacement distance for any single fault — Theorem 2.
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 4).into_scheme();
        for (e, _, _) in g.edges() {
            for (s, t) in [(0, 7), (2, 9), (5, 1)] {
                let mut net = MplsNetwork::new(&scheme);
                let lsp = net.establish(s, t).unwrap();
                net.fail_edge(e);
                let r = net.restore(lsp).unwrap();
                assert_eq!(r.restored_path.hops() as u32, r.optimal_hops);
            }
        }
    }

    #[test]
    fn repair_clears_failures() {
        let g = generators::cycle(5);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let mut net = MplsNetwork::new(&scheme);
        net.fail_edge(2);
        assert_eq!(net.failed_edges().len(), 1);
        net.repair_edge(2);
        assert!(net.failed_edges().is_empty());
    }

    #[test]
    fn unknown_lsp_and_disconnection_errors() {
        let g = generators::path_graph(4);
        let scheme = RandomGridAtw::theorem20(&g, 6).into_scheme();
        let mut net = MplsNetwork::new(&scheme);
        assert_eq!(net.restore(LspId(9)).unwrap_err(), MplsError::UnknownLsp(LspId(9)));
        let lsp = net.establish(0, 3).unwrap();
        net.fail_edge(g.edge_between(1, 2).unwrap());
        assert!(matches!(net.restore(lsp).unwrap_err(), MplsError::Disconnected { .. }));
    }
}
