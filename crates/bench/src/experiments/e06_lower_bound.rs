//! **E6 / Theorem 27, Figures 2–3** — the lower-bound family: a bad
//! consistent-stable-symmetric scheme is forced to keep `Ω(n^{3/2})`
//! preserver edges on `G*_1(V, E, W)`, while random perturbation
//! tiebreaking on the *same graph and fault family* stays near-linear.

use rsp_preserver::lower_bound::{build_lower_bound_graph, run_bad_scheme, run_perturbed_scheme};

use crate::reporting::{f3, loglog_slope, Table};

/// Runs E6 and prints the tables.
pub fn run(quick: bool) {
    let ds: &[usize] = if quick { &[6, 10] } else { &[6, 10, 16, 24, 34] };
    let mut table = Table::new(
        "E6 (Theorem 27, Figs 2-3): forced preserver size on G*_1(V,E,W)",
        &["d", "n", "m", "bad forced B-edges", "perturbed B-edges", "bad/n^1.5", "ratio"],
    );
    let mut ns = Vec::new();
    let mut bads = Vec::new();
    for &d in ds {
        // |X| scaled with the tree size, as in the paper (X is Θ(n)).
        let x_count = d * d;
        let lb = build_lower_bound_graph(1, d, x_count);
        let bad = run_bad_scheme(&lb);
        let good = run_perturbed_scheme(&lb, 99);
        assert!(
            bad.bipartite_forced >= (d - 1) * x_count,
            "the bad scheme must capture the full bipartite graph"
        );
        assert!(
            good.bipartite_forced < bad.bipartite_forced,
            "perturbation must escape the lower bound"
        );
        let n15 = (bad.n as f64).powf(1.5);
        ns.push(bad.n as f64);
        bads.push(bad.bipartite_forced as f64);
        table.row(&[
            d.to_string(),
            bad.n.to_string(),
            bad.m.to_string(),
            bad.bipartite_forced.to_string(),
            good.bipartite_forced.to_string(),
            f3(bad.bipartite_forced as f64 / n15),
            f3(bad.bipartite_forced as f64 / good.bipartite_forced.max(1) as f64),
        ]);
    }
    table.print();
    println!(
        "measured bad-scheme growth exponent: {} (theory: 1.5 in n);\n\
         the perturbed scheme's forced edges grow strictly slower — the\n\
         Section 4.1 remark that random perturbations escape Theorem 27.\n",
        f3(loglog_slope(&ns, &bads))
    );

    if !quick {
        // One f = 2 instance to exercise the recursive construction.
        let lb = build_lower_bound_graph(2, 9, 81);
        let bad = run_bad_scheme(&lb);
        let good = run_perturbed_scheme(&lb, 7);
        let mut t2 = Table::new(
            "E6b: one G*_2 instance (f = 2)",
            &["n", "m", "leaves", "bad forced", "perturbed"],
        );
        t2.row(&[
            bad.n.to_string(),
            bad.m.to_string(),
            lb.leaves.len().to_string(),
            bad.bipartite_forced.to_string(),
            good.bipartite_forced.to_string(),
        ]);
        t2.print();
        println!();
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_runs_quick() {
        super::run(true);
    }
}
