//! Fault churn events: the `fault arrives / fault repairs` stream.
//!
//! Production routing does not receive a fault set `F` — it receives a
//! *stream* of link-state changes: an edge goes down
//! ([`FaultEvent::Arrive`]), an edge comes back up
//! ([`FaultEvent::Repair`]). This module supplies the graph-level half
//! of that pipeline:
//!
//! * [`FaultEvent`] — one churn event, with a tiny fixed-width wire
//!   codec ([`FaultEvent::encode`] / [`FaultEvent::decode`]) so the
//!   serving boundary can consume raw frames without trusting them;
//! * [`FaultState`] — the running fault set, folding events in with
//!   **validation**: out-of-range edge ids, duplicate arrivals, and
//!   repairs of never-faulted edges are *rejected with a typed reason*
//!   ([`FaultEventError`]), never applied and never a panic.
//!
//! The serving-layer pipeline (`rsp_oracle::churn`) wraps these with
//! quarantine bookkeeping, journaling, and snapshot recompilation; see
//! the "Churn pipeline & degraded modes" chapter of
//! `docs/ARCHITECTURE.md`.
//!
//! # Examples
//!
//! ```
//! use rsp_graph::{FaultEvent, FaultEventError, FaultState};
//!
//! let mut state = FaultState::new(10); // a graph with 10 edges
//! state.apply(FaultEvent::Arrive(3)).unwrap();
//! assert!(state.faults().contains(3));
//!
//! // A duplicate arrival is rejected, not silently merged: the stream
//! // is out of sync with reality and the caller should know.
//! assert_eq!(
//!     state.apply(FaultEvent::Arrive(3)),
//!     Err(FaultEventError::AlreadyFaulted { edge: 3 }),
//! );
//!
//! state.apply(FaultEvent::Repair(3)).unwrap();
//! assert!(state.faults().is_empty());
//! ```

use crate::fault::FaultSet;
use crate::graph::{EdgeId, Graph};

/// One edge churn event: a fault arriving on an edge or an existing
/// fault being repaired.
///
/// Events carry raw edge ids exactly as a link-state feed would; all
/// validation (range, state transitions) happens when the event is
/// folded into a [`FaultState`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// Edge `e` failed: it must be added to the fault set.
    Arrive(EdgeId),
    /// Edge `e` recovered: it must be removed from the fault set.
    Repair(EdgeId),
}

/// Wire frame length of one encoded [`FaultEvent`]: 1 tag byte + 8 edge
/// id bytes.
pub const WIRE_EVENT_LEN: usize = 9;

const TAG_ARRIVE: u8 = 0x01;
const TAG_REPAIR: u8 = 0x02;

/// Why a wire frame failed to decode into a [`FaultEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireEventError {
    /// The frame is not exactly [`WIRE_EVENT_LEN`] bytes.
    BadLength {
        /// The length received.
        got: usize,
    },
    /// The tag byte is neither the arrive nor the repair tag.
    BadTag {
        /// The tag byte received.
        tag: u8,
    },
    /// The edge id does not fit in this platform's `usize`.
    EdgeOverflow {
        /// The 64-bit edge id received.
        edge: u64,
    },
}

impl std::fmt::Display for WireEventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireEventError::BadLength { got } => {
                write!(f, "wire event frame has {got} bytes, expected {WIRE_EVENT_LEN}")
            }
            WireEventError::BadTag { tag } => write!(f, "unknown wire event tag {tag:#04x}"),
            WireEventError::EdgeOverflow { edge } => {
                write!(f, "wire edge id {edge} overflows usize")
            }
        }
    }
}

impl std::error::Error for WireEventError {}

impl FaultEvent {
    /// The edge the event concerns.
    #[inline]
    pub fn edge(self) -> EdgeId {
        match self {
            FaultEvent::Arrive(e) | FaultEvent::Repair(e) => e,
        }
    }

    /// Encodes the event as a fixed [`WIRE_EVENT_LEN`]-byte frame:
    /// one tag byte followed by the edge id as a little-endian `u64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultEvent;
    /// let ev = FaultEvent::Arrive(7);
    /// assert_eq!(FaultEvent::decode(&ev.encode()), Ok(ev));
    /// ```
    pub fn encode(self) -> [u8; WIRE_EVENT_LEN] {
        let mut frame = [0u8; WIRE_EVENT_LEN];
        frame[0] = match self {
            FaultEvent::Arrive(_) => TAG_ARRIVE,
            FaultEvent::Repair(_) => TAG_REPAIR,
        };
        frame[1..].copy_from_slice(&(self.edge() as u64).to_le_bytes());
        frame
    }

    /// Decodes a wire frame, rejecting malformed input with a typed
    /// error — **never a panic**, whatever the bytes. This is the
    /// serving boundary's first validation gate; the proptest suite in
    /// `rsp_oracle` feeds it arbitrary byte garbage.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::{FaultEvent, WireEventError};
    /// assert_eq!(FaultEvent::decode(&[0xff]), Err(WireEventError::BadLength { got: 1 }));
    /// ```
    pub fn decode(frame: &[u8]) -> Result<FaultEvent, WireEventError> {
        if frame.len() != WIRE_EVENT_LEN {
            return Err(WireEventError::BadLength { got: frame.len() });
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&frame[1..]);
        let raw = u64::from_le_bytes(id);
        let edge: EdgeId =
            raw.try_into().map_err(|_| WireEventError::EdgeOverflow { edge: raw })?;
        match frame[0] {
            TAG_ARRIVE => Ok(FaultEvent::Arrive(edge)),
            TAG_REPAIR => Ok(FaultEvent::Repair(edge)),
            tag => Err(WireEventError::BadTag { tag }),
        }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::Arrive(e) => write!(f, "arrive({e})"),
            FaultEvent::Repair(e) => write!(f, "repair({e})"),
        }
    }
}

/// Why a [`FaultEvent`] was rejected by [`FaultState::apply`].
///
/// Each variant is a *stream integrity* signal: the event disagrees
/// with either the graph (range) or the state the stream itself built
/// (transitions), so applying it would corrupt the fault set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEventError {
    /// The edge id is `≥ m` for this graph.
    EdgeOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// The graph's edge count.
        m: usize,
    },
    /// An arrival for an edge that is already faulted.
    AlreadyFaulted {
        /// The offending edge id.
        edge: EdgeId,
    },
    /// A repair for an edge that is not currently faulted.
    NotFaulted {
        /// The offending edge id.
        edge: EdgeId,
    },
}

impl std::fmt::Display for FaultEventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEventError::EdgeOutOfRange { edge, m } => {
                write!(f, "edge {edge} out of range (graph has {m} edges)")
            }
            FaultEventError::AlreadyFaulted { edge } => {
                write!(f, "arrival for already-faulted edge {edge}")
            }
            FaultEventError::NotFaulted { edge } => {
                write!(f, "repair for non-faulted edge {edge}")
            }
        }
    }
}

impl std::error::Error for FaultEventError {}

/// The running fault set of a churn stream, with validated transitions.
///
/// A `FaultState` is the fold of the *accepted* prefix of an event
/// stream over a graph with `m` edges. [`FaultState::apply`] either
/// updates the set or rejects the event with a [`FaultEventError`];
/// rejected events leave the state untouched, so a consumer can
/// quarantine them and keep going.
///
/// # Examples
///
/// ```
/// use rsp_graph::{generators, FaultEvent, FaultState};
///
/// let g = generators::cycle(4);
/// let mut state = FaultState::for_graph(&g);
/// state.apply(FaultEvent::Arrive(0)).unwrap();
/// state.apply(FaultEvent::Arrive(2)).unwrap();
/// state.apply(FaultEvent::Repair(0)).unwrap();
/// assert_eq!(state.faults().as_slice(), &[2]);
/// assert!(state.apply(FaultEvent::Arrive(99)).is_err()); // out of range
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultState {
    m: usize,
    faults: FaultSet,
}

impl FaultState {
    /// An empty fault state for a graph with `m` edges.
    pub fn new(m: usize) -> Self {
        FaultState { m, faults: FaultSet::empty() }
    }

    /// An empty fault state sized for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        FaultState::new(g.m())
    }

    /// A fault state with `faults` already applied, validated against a
    /// graph with `m` edges — the checkpoint-recovery constructor (see
    /// [`crate::journal`]). Every edge must be `< m`; an out-of-range
    /// edge is rejected with [`FaultEventError::EdgeOutOfRange`] so a
    /// corrupted checkpoint can never smuggle an invalid state past the
    /// stream's validation gate.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::{FaultSet, FaultState};
    ///
    /// let st = FaultState::with_faults(10, FaultSet::from_edges([2, 7])).unwrap();
    /// assert_eq!(st.faults().as_slice(), &[2, 7]);
    /// assert!(FaultState::with_faults(10, FaultSet::single(10)).is_err());
    /// ```
    pub fn with_faults(m: usize, faults: FaultSet) -> Result<Self, FaultEventError> {
        if let Some(edge) = faults.iter().find(|&e| e >= m) {
            return Err(FaultEventError::EdgeOutOfRange { edge, m });
        }
        Ok(FaultState { m, faults })
    }

    /// Validates `ev` against the graph and the current state, and
    /// applies it if valid. On `Err` the state is unchanged.
    pub fn apply(&mut self, ev: FaultEvent) -> Result<(), FaultEventError> {
        let edge = ev.edge();
        if edge >= self.m {
            return Err(FaultEventError::EdgeOutOfRange { edge, m: self.m });
        }
        match ev {
            FaultEvent::Arrive(e) => {
                if !self.faults.insert(e) {
                    return Err(FaultEventError::AlreadyFaulted { edge: e });
                }
            }
            FaultEvent::Repair(e) => {
                if !self.faults.remove(e) {
                    return Err(FaultEventError::NotFaulted { edge: e });
                }
            }
        }
        Ok(())
    }

    /// `true` iff `ev` would be accepted by [`FaultState::apply`],
    /// without applying it.
    pub fn admits(&self, ev: FaultEvent) -> bool {
        let edge = ev.edge();
        edge < self.m
            && match ev {
                FaultEvent::Arrive(e) => !self.faults.contains(e),
                FaultEvent::Repair(e) => self.faults.contains(e),
            }
    }

    /// The current fault set (the fold of all accepted events).
    #[inline]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The edge count events are validated against.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Number of currently faulted edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` iff no edges are currently faulted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        for ev in [FaultEvent::Arrive(0), FaultEvent::Repair(0), FaultEvent::Arrive(usize::MAX)] {
            assert_eq!(FaultEvent::decode(&ev.encode()), Ok(ev));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(FaultEvent::decode(&[]), Err(WireEventError::BadLength { got: 0 }));
        assert_eq!(
            FaultEvent::decode(&[TAG_ARRIVE; 10]),
            Err(WireEventError::BadLength { got: 10 })
        );
        let mut frame = FaultEvent::Arrive(5).encode();
        frame[0] = 0x7f;
        assert_eq!(FaultEvent::decode(&frame), Err(WireEventError::BadTag { tag: 0x7f }));
    }

    #[test]
    fn state_transitions_validated() {
        let mut st = FaultState::new(4);
        assert_eq!(
            st.apply(FaultEvent::Arrive(4)),
            Err(FaultEventError::EdgeOutOfRange { edge: 4, m: 4 })
        );
        assert_eq!(st.apply(FaultEvent::Repair(1)), Err(FaultEventError::NotFaulted { edge: 1 }));
        st.apply(FaultEvent::Arrive(1)).unwrap();
        assert_eq!(
            st.apply(FaultEvent::Arrive(1)),
            Err(FaultEventError::AlreadyFaulted { edge: 1 })
        );
        assert!(st.admits(FaultEvent::Repair(1)));
        assert!(!st.admits(FaultEvent::Arrive(1)));
        st.apply(FaultEvent::Repair(1)).unwrap();
        assert!(st.is_empty());
        // Rejected events left the state untouched throughout.
        assert_eq!(st, FaultState::new(4));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(FaultEvent::Arrive(3).to_string(), "arrive(3)");
        assert_eq!(FaultEvent::Repair(9).to_string(), "repair(9)");
    }
}
