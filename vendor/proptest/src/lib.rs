//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build image has no network access to crates.io, so the workspace
//! vendors a minimal property-testing harness covering exactly the API the
//! test suites call: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`Strategy`](strategy::Strategy) with
//! `prop_map`, [`arbitrary::any`], integer-range strategies, tuple
//! strategies, [`collection::vec`], [`sample::Index`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case is not minimized; on panic the
//!   harness prints the test name, case index, and RNG seed, which
//!   deterministically reproduce the failing inputs (assertion messages
//!   carry the values themselves where the property formats them);
//! * **panic-based assertions** — `prop_assert*` forward to the `std`
//!   assertion macros;
//! * **default case count 64** (upstream: 256) to keep the offline test
//!   wall-clock small; per-block `ProptestConfig::with_cases` overrides it
//!   exactly as upstream does;
//! * runs are **deterministic**: the RNG is seeded from the test's module
//!   path and name, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Strategies: deterministic generators of test values.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree and no shrinking:
    /// a strategy simply produces one value per test case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }

            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::random_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy! {
        u8, u16, u32, u64, u128, usize,
        i8, i16, i32, i64, i128, isize,
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait behind it.
pub mod arbitrary {
    use core::marker::PhantomData;

    use rand::rngs::StdRng;
    use rand::RngCore;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The full-domain strategy for `T` (see [`any`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    raw as $t
                }
            }
        )*};
    }

    impl_arbitrary_int! {
        u8, u16, u32, u64, u128, usize,
        i8, i16, i32, i64, i128, isize,
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `sample::Index`, an index drawn before its target length is known.
pub mod sample {
    use rand::rngs::StdRng;
    use rand::RngCore;

    use crate::arbitrary::Arbitrary;

    /// A deferred uniform index: generated as raw entropy, projected onto a
    /// concrete `0..len` only when [`Index::index`] is called.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// This index projected onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Collection strategies.
pub mod collection {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` of `element`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Per-block configuration, set with `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite fast
            // while still exercising a spread of instances per property.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::sample::Index`, `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Deterministic per-test seed: FNV-1a over the fully qualified test name.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[doc(hidden)]
pub fn __new_rng(name: &str) -> StdRng {
    <StdRng as rand::SeedableRng>::seed_from_u64(__seed_for(name))
}

/// Prints reproduction context if dropped while a case is panicking.
#[doc(hidden)]
pub struct __CaseGuard<'a> {
    /// Fully qualified test name.
    pub name: &'a str,
    /// 0-based index of the running case.
    pub case: u32,
}

impl Drop for __CaseGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stub: property `{}` failed on case {} (rng seed {:#x}); \
                 the run is deterministic, so re-running reproduces it",
                self.name,
                self.case,
                __seed_for(self.name),
            );
        }
    }
}

/// Define property tests over strategy-generated inputs.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///
///     #[test]
///     fn my_property(x in 0u32..10, (a, b) in my_strategy()) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)+);
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::__new_rng(__name);
            for __case in 0..__config.cases {
                // Underscore-prefixed so the binding (which must stay alive
                // through the case body for its panic-time Drop) does not
                // trip unused-variable warnings in every expansion.
                let _guard = $crate::__CaseGuard { name: __name, case: __case };
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                // The body runs in a closure so `prop_assume!` can skip the
                // case with an early return.
                let __run = || $body;
                __run();
            }
        }
    )*};
}

/// Assert a condition inside a property (forwards to [`assert!`]).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (forwards to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (forwards to [`assert_ne!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = (u64, u64)> {
        (0u64..1000).prop_map(|x| (x, 2 * x))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..=9, y in 0i64..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!((0..5).contains(&y));
        }

        #[test]
        fn mapped_strategy((x, y) in doubled()) {
            prop_assert_eq!(y, 2 * x);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn index_and_vec(ix in any::<prop::sample::Index>(), v in prop::collection::vec(0usize..40, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(ix.index(v.len()) < v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_applies(_x in 0u8..3) {
            // Runs exactly 5 cases; nothing to assert beyond termination.
        }

        /// Exercises the `__CaseGuard` panic path: the failing case makes
        /// the guard print reproduction context to stderr on unwind.
        #[test]
        #[should_panic]
        fn failing_case_panics(x in 0u8..10) {
            prop_assert!(x > 250, "always fails: x = {}", x);
        }
    }
}
