//! **E11 / Theorem 28** — the near-linear single-pair replacement path
//! algorithm against the BFS-per-fault naive baseline.
//!
//! The naive baseline pays one BFS per failing path edge, so the regime
//! that separates the algorithms is *long* shortest paths: long-thin
//! grids with `ℓ = Θ(n)` failure points, where naive pays `Θ(n·m)` and
//! the candidate-sweep algorithm stays near-linear.

use rsp_graph::{bfs, generators, FaultSet};
use rsp_replacement::{naive_single_pair, single_pair_replacement_paths};

use crate::reporting::{f3, timed, Table};
use crate::workloads::Workload;

/// Runs E11 and prints the table.
pub fn run(quick: bool) {
    let cols: &[usize] = if quick { &[16, 64] } else { &[16, 64, 128, 256, 512] };
    let mut table = Table::new(
        "E11 (Theorem 28): single-pair replacement paths on long-thin grids",
        &["graph", "n", "m", "path len", "fast ms", "naive ms", "speedup"],
    );
    for &c in cols {
        let w = Workload { name: format!("grid-8x{c}"), graph: generators::grid(8, c) };
        let g = &w.graph;
        let (s, t) = (0, g.n() - 1); // opposite corners: ℓ ≈ 7 + c
        let (fast, fast_ms) =
            timed(|| single_pair_replacement_paths(g, s, t, 3).expect("connected"));
        let path = fast.path().clone();
        let (naive, naive_ms) = timed(|| naive_single_pair(g, s, t, path));
        // Cross-check all entries.
        for (a, b) in fast.entries().iter().zip(naive.entries()) {
            assert_eq!(a.dist, b.dist, "edge {}", a.edge);
        }
        // And one spot probe against plain BFS.
        if let Some(first) = fast.entries().first() {
            assert_eq!(first.dist, bfs(g, s, &FaultSet::single(first.edge)).dist(t));
        }
        table.row(&[
            w.name.clone(),
            g.n().to_string(),
            g.m().to_string(),
            fast.base_dist().to_string(),
            f3(fast_ms),
            f3(naive_ms),
            f3(naive_ms / fast_ms),
        ]);
    }
    table.print();
    println!(
        "shape check: naive pays one BFS per path edge (Θ(l*m) total), so its\n\
         disadvantage grows with the path length; outputs agree edge-for-edge.\n"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_runs_quick() {
        super::run(true);
    }
}
