//! Simple paths as vertex sequences, with the concatenation operations the
//! restoration lemma machinery needs.

use crate::graph::{EdgeId, Graph, Vertex};

/// A walk in a graph, stored as its vertex sequence.
///
/// A path with `k` edges has `k + 1` vertices; a zero-edge path (a single
/// vertex, arising as `π(s, s)`) is represented by a one-element sequence.
/// `Path` does not hold a graph reference; validity against a particular
/// graph is checked by [`Path::is_valid_in`].
///
/// The paper's restoration-by-concatenation builds `s ⇝ t` replacement paths
/// as `π(s, x)` followed by the *reverse* of `π(t, x)`; [`Path::join_at`]
/// implements exactly that operation.
///
/// # Examples
///
/// ```
/// use rsp_graph::{Graph, Path};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let p = Path::new(vec![0, 1, 2]);
/// assert_eq!(p.hops(), 2);
/// assert!(p.is_valid_in(&g));
///
/// let q = Path::new(vec![3, 2]); // π(t, x) with t = 3, x = 2
/// let joined = p.join_at(&q).unwrap(); // 0 → 1 → 2 → 3
/// assert_eq!(joined.vertices(), &[0, 1, 2, 3]);
/// # Ok::<(), rsp_graph::GraphError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    verts: Vec<Vertex>,
}

impl Path {
    /// Creates a path from a vertex sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty; use a single-vertex sequence for the
    /// trivial path.
    pub fn new(verts: Vec<Vertex>) -> Self {
        assert!(!verts.is_empty(), "a path has at least one vertex");
        Path { verts }
    }

    /// The trivial zero-edge path at `v`.
    pub fn trivial(v: Vertex) -> Self {
        Path { verts: vec![v] }
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[Vertex] {
        &self.verts
    }

    /// Number of edges (hops).
    pub fn hops(&self) -> usize {
        self.verts.len() - 1
    }

    /// First vertex.
    pub fn source(&self) -> Vertex {
        self.verts[0]
    }

    /// Last vertex.
    pub fn target(&self) -> Vertex {
        *self.verts.last().expect("paths are nonempty")
    }

    /// Returns the reversed path.
    pub fn reversed(&self) -> Path {
        let mut verts = self.verts.clone();
        verts.reverse();
        Path { verts }
    }

    /// Iterates over consecutive vertex pairs (the path's directed edges).
    pub fn steps(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.verts.windows(2).map(|w| (w[0], w[1]))
    }

    /// Returns `true` iff every consecutive pair is an edge of `g`.
    pub fn is_valid_in(&self, g: &Graph) -> bool {
        self.verts.iter().all(|&v| v < g.n()) && self.steps().all(|(u, v)| g.has_edge(u, v))
    }

    /// Returns `true` iff no vertex repeats.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.verts.len());
        self.verts.iter().all(|&v| seen.insert(v))
    }

    /// Resolves the path's edges to edge ids in `g`.
    ///
    /// Returns `None` if some step is not an edge of `g`.
    pub fn edge_ids(&self, g: &Graph) -> Option<Vec<EdgeId>> {
        self.steps().map(|(u, v)| g.edge_between(u, v)).collect()
    }

    /// Returns `true` iff the path uses edge `e` of `g`.
    pub fn uses_edge(&self, g: &Graph, e: EdgeId) -> bool {
        let (a, b) = g.endpoints(e);
        self.steps().any(|(u, v)| (u == a && v == b) || (u == b && v == a))
    }

    /// Returns `true` iff the path avoids every edge in `faults`.
    pub fn avoids(&self, g: &Graph, faults: &crate::FaultSet) -> bool {
        faults.iter().all(|e| !self.uses_edge(g, e))
    }

    /// Returns `true` iff the path contains vertex `v`.
    pub fn contains_vertex(&self, v: Vertex) -> bool {
        self.verts.contains(&v)
    }

    /// Concatenates `self` (ending at `x`) with the reverse of `other`
    /// (which must also end at `x`), producing a `self.source() ⇝
    /// other.source()` walk through the shared endpoint `x`.
    ///
    /// This is the restoration lemma's path composition: given the selected
    /// paths `π(s, x)` and `π(t, x)`, `π(s, x).join_at(&π(t, x))` is the
    /// candidate `s ⇝ t` replacement path.
    ///
    /// Returns `None` if the two paths do not end at the same vertex.
    pub fn join_at(&self, other: &Path) -> Option<Path> {
        if self.target() != other.target() {
            return None;
        }
        let mut verts = self.verts.clone();
        verts.extend(other.verts.iter().rev().skip(1));
        Some(Path { verts })
    }

    /// Appends `other` to `self`; `other` must start where `self` ends.
    ///
    /// Returns `None` on endpoint mismatch.
    pub fn concat(&self, other: &Path) -> Option<Path> {
        if self.target() != other.source() {
            return None;
        }
        let mut verts = self.verts.clone();
        verts.extend(other.verts.iter().skip(1));
        Some(Path { verts })
    }

    /// Returns the contiguous subpath from position `i` to position `j`
    /// (inclusive, vertex indices).
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j` is out of range.
    pub fn subpath(&self, i: usize, j: usize) -> Path {
        assert!(i <= j && j < self.verts.len(), "invalid subpath range {i}..={j}");
        Path { verts: self.verts[i..=j].to_vec() }
    }

    /// Returns the position of vertex `v` in the path, if present.
    pub fn position_of(&self, v: Vertex) -> Option<usize> {
        self.verts.iter().position(|&u| u == v)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, v) in self.verts.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultSet;

    fn path_graph5() -> Graph {
        Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(3);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.source(), 3);
        assert_eq!(p.target(), 3);
        assert!(p.is_simple());
    }

    #[test]
    fn validity() {
        let g = path_graph5();
        assert!(Path::new(vec![0, 1, 2]).is_valid_in(&g));
        assert!(!Path::new(vec![0, 2]).is_valid_in(&g));
        assert!(!Path::new(vec![0, 9]).is_valid_in(&g));
    }

    #[test]
    fn join_at_shared_midpoint() {
        let p = Path::new(vec![0, 1, 2]);
        let q = Path::new(vec![4, 3, 2]);
        let joined = p.join_at(&q).unwrap();
        assert_eq!(joined.vertices(), &[0, 1, 2, 3, 4]);
        assert!(p.join_at(&Path::new(vec![4, 3])).is_none());
    }

    #[test]
    fn join_at_trivial_midpoint() {
        // x = t: π(t, t) is trivial, join yields π(s, t) itself.
        let p = Path::new(vec![0, 1, 2]);
        let q = Path::trivial(2);
        assert_eq!(p.join_at(&q).unwrap(), p);
    }

    #[test]
    fn concat_endpoints() {
        let p = Path::new(vec![0, 1]);
        let q = Path::new(vec![1, 2, 3]);
        assert_eq!(p.concat(&q).unwrap().vertices(), &[0, 1, 2, 3]);
        assert!(q.concat(&p).is_none());
    }

    #[test]
    fn uses_and_avoids_edges() {
        let g = path_graph5();
        let p = Path::new(vec![1, 2, 3]);
        let e12 = g.edge_between(1, 2).unwrap();
        let e34 = g.edge_between(3, 4).unwrap();
        assert!(p.uses_edge(&g, e12));
        assert!(!p.uses_edge(&g, e34));
        assert!(p.avoids(&g, &FaultSet::single(e34)));
        assert!(!p.avoids(&g, &FaultSet::from_edges([e12, e34])));
    }

    #[test]
    fn edge_ids_resolution() {
        let g = path_graph5();
        let p = Path::new(vec![2, 1, 0]);
        let ids = p.edge_ids(&g).unwrap();
        assert_eq!(ids, vec![g.edge_between(1, 2).unwrap(), g.edge_between(0, 1).unwrap()]);
        assert!(Path::new(vec![0, 3]).edge_ids(&g).is_none());
    }

    #[test]
    fn subpath_and_position() {
        let p = Path::new(vec![5, 6, 7, 8]);
        assert_eq!(p.subpath(1, 2).vertices(), &[6, 7]);
        assert_eq!(p.position_of(7), Some(2));
        assert_eq!(p.position_of(9), None);
    }

    #[test]
    fn simplicity() {
        assert!(Path::new(vec![0, 1, 2]).is_simple());
        assert!(!Path::new(vec![0, 1, 0]).is_simple());
    }

    #[test]
    fn display() {
        assert_eq!(Path::new(vec![0, 1, 2]).to_string(), "0 → 1 → 2");
    }
}
