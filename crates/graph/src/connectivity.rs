//! Connectivity queries over fault subgraphs.

use crate::fault::FaultSet;
use crate::graph::{Graph, Vertex};

/// Labels each vertex with a connected-component id in `g \ faults`.
///
/// Component ids are in `0..k` with `k` the number of components, assigned
/// in order of lowest contained vertex.
///
/// # Examples
///
/// ```
/// use rsp_graph::{components, generators, FaultSet};
///
/// let g = generators::path_graph(4);
/// let cut = FaultSet::single(g.edge_between(1, 2).unwrap());
/// assert_eq!(components(&g, &cut), vec![0, 0, 1, 1]);
/// ```
pub fn components(g: &Graph, faults: &FaultSet) -> Vec<usize> {
    let mut comp = vec![usize::MAX; g.n()];
    let mut next = 0;
    let mut stack = Vec::new();
    for s in g.vertices() {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = next;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for (v, e) in g.neighbors(u) {
                if !faults.contains(e) && comp[v] == usize::MAX {
                    comp[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Returns `true` iff `g` is connected (vacuously true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    is_connected_avoiding(g, &FaultSet::empty())
}

/// Returns `true` iff `g \ faults` is connected.
pub fn is_connected_avoiding(g: &Graph, faults: &FaultSet) -> bool {
    if g.n() <= 1 {
        return true;
    }
    let comp = components(g, faults);
    comp.iter().all(|&c| c == 0)
}

/// Returns `true` iff `s` and `t` are connected in `g \ faults`.
pub fn connected_pair(g: &Graph, s: Vertex, t: Vertex, faults: &FaultSet) -> bool {
    let comp = components(g, faults);
    comp[s] == comp[t]
}

/// The diameter of `g`: the maximum finite distance over all pairs.
///
/// Computed by BFS from every vertex (`O(n·(n + m))`); returns `0` for
/// graphs with at most one vertex. Disconnected pairs are ignored (the
/// result is the largest intra-component eccentricity).
pub fn diameter(g: &Graph) -> u32 {
    let empty = FaultSet::empty();
    g.vertices().map(|s| crate::bfs(g, s, &empty).eccentricity()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn connected_families() {
        assert!(is_connected(&generators::cycle(7)));
        assert!(is_connected(&generators::complete(5)));
        assert!(is_connected(&generators::petersen()));
        assert!(is_connected(&generators::grid(3, 4)));
    }

    #[test]
    fn single_vertex_connected() {
        let g = Graph::from_edges(1, []).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn disconnected_after_bridge_cut() {
        let g = generators::path_graph(5);
        let e = g.edge_between(2, 3).unwrap();
        assert!(!is_connected_avoiding(&g, &FaultSet::single(e)));
        assert!(connected_pair(&g, 0, 2, &FaultSet::single(e)));
        assert!(!connected_pair(&g, 0, 4, &FaultSet::single(e)));
    }

    #[test]
    fn cycle_survives_one_fault() {
        let g = generators::cycle(6);
        for (e, _, _) in g.edges() {
            assert!(is_connected_avoiding(&g, &FaultSet::single(e)));
        }
    }

    #[test]
    fn component_ids_ordered() {
        let g = Graph::from_edges(4, [(2, 3)]).unwrap();
        assert_eq!(components(&g, &FaultSet::empty()), vec![0, 1, 2, 2]);
    }
}
