//! Replacement path algorithms (Section 4.2 of Bodwin & Parter).
//!
//! The **subset-rp** problem: given `G` and sources `S`, report
//! `dist_{G\{e}}(s, t)` for every pair `s, t ∈ S` and every failing edge
//! `e`. This crate provides:
//!
//! * [`single_pair_replacement_paths`] — the near-linear single-pair
//!   algorithm the paper cites as Theorem 28 (Hershberger–Suri / Malik et
//!   al. style): two shortest-path trees under unique perturbed weights,
//!   one candidate per non-path edge covering a contiguous interval of
//!   failing path edges, and a union-find sweep; `O(m log m)` after the
//!   trees (sorting dominates the inverse-Ackermann sweep);
//! * [`subset_replacement_paths`] — **Algorithm 1** (Theorem 29): compute
//!   one restorable-scheme SPT per source (`O(σ·m log n)`), then solve each
//!   pair on the `O(n)`-edge *union of two trees*, for `O(σm) + Õ(σ²n)`
//!   total — restorability of the tiebreaking scheme is exactly what makes
//!   the union of two trees distance-preserving under any single fault;
//! * [`naive_subset_rp`] / [`per_pair_subset_rp`] — the baselines the
//!   benches compare against (BFS-per-fault recompute, and the single-pair
//!   algorithm run on the full graph per pair).
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`single_pair_replacement_paths`] | Theorem 28 single-pair algorithm (trees + interval sweep) |
//! | [`ReplacementScratch`] | hot-loop state for Algorithm 1's inner loop: two Dijkstra scratches + the perturbed cost buffers |
//! | [`subset_replacement_paths`] | **Algorithm 1** (Theorem 29): union-of-two-trees sub-instances |
//! | [`subset_replacement_paths_par`] | Algorithm 1 with SPT builds and pair sub-instances fanned out over workers |
//! | [`weighted_single_pair`], [`verify_weighted_restoration_lemma`] | Theorem 11, the weighted restoration lemma |
//! | [`SourcewiseReplacementPaths`] | Section 1.1 sourcewise setting (`{s} × V`) |
//! | [`SingleFaultOracle`] | Section 4.3's distance-sensitivity-oracle connection |
//! | [`NextFree`] | the union-find sweep inside Theorem 28 |
//! | [`naive_subset_rp`], [`per_pair_subset_rp`] | baselines the benches compare against |
//!
//! # Examples
//!
//! ```
//! use rsp_replacement::subset_replacement_paths;
//! use rsp_graph::generators;
//!
//! let g = generators::petersen();
//! let result = subset_replacement_paths(&g, &[0, 5, 7], 42);
//! // Failing any edge on the selected 0⇝5 path reroutes around girth 5.
//! let pair = result.pair(0, 5).unwrap();
//! assert_eq!(pair.base_dist(), 1);
//! for entry in pair.entries() {
//!     assert_eq!(entry.dist, Some(4));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod oracle;
mod single_pair;
mod sourcewise;
mod subset_rp;
mod unionfind;
mod weighted;

pub use baseline::{
    naive_single_pair, naive_single_pair_with, naive_subset_rp, per_pair_subset_rp,
};
pub use oracle::SingleFaultOracle;
pub use single_pair::{
    single_pair_replacement_paths, single_pair_replacement_paths_with, ReplacementEntry,
    ReplacementScratch, SinglePairResult,
};
pub use sourcewise::SourcewiseReplacementPaths;
pub use subset_rp::{
    subset_replacement_paths, subset_replacement_paths_par, PairReplacements, SubsetRpResult,
};
pub use unionfind::NextFree;
pub use weighted::{
    verify_weighted_restoration_lemma, weighted_single_pair, RestorationLemmaStats, WeightedEntry,
    WeightedSinglePair,
};
