//! Shared workload definitions for the experiments and benches.

use rsp_graph::{generators, Graph, Vertex};

/// A named graph instance for the sweep tables.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (family + parameters).
    pub name: String,
    /// The graph.
    pub graph: Graph,
}

impl Workload {
    fn new(name: impl Into<String>, graph: Graph) -> Self {
        Workload { name: name.into(), graph }
    }
}

/// The small tie-rich graphs used by the exhaustive experiments
/// (restorability, C4, MPLS failover).
pub fn tie_rich_small() -> Vec<Workload> {
    vec![
        Workload::new("C4", generators::cycle(4)),
        Workload::new("C6", generators::cycle(6)),
        Workload::new("grid-3x3", generators::grid(3, 3)),
        Workload::new("grid-3x4", generators::grid(3, 4)),
        Workload::new("hypercube-3", generators::hypercube(3)),
        Workload::new("petersen", generators::petersen()),
        Workload::new("K5", generators::complete(5)),
        Workload::new("gnm-16-32", generators::connected_gnm(16, 32, 7)),
    ]
}

/// Medium random graphs (`m = 3n`) for the scaling sweeps.
pub fn sparse_sweep(sizes: &[usize], seed: u64) -> Vec<Workload> {
    sizes
        .iter()
        .map(|&n| {
            Workload::new(
                format!("gnm-{n}-{}", 3 * n),
                generators::connected_gnm(n, 3 * n, seed + n as u64),
            )
        })
        .collect()
}

/// Dense random graphs (`m ≈ n²/8`) where subset-rp's tree-union trick
/// pays off.
pub fn dense_sweep(sizes: &[usize], seed: u64) -> Vec<Workload> {
    sizes
        .iter()
        .map(|&n| {
            let m = (n * (n - 1) / 8).max(2 * n);
            Workload::new(format!("gnm-{n}-{m}"), generators::connected_gnm(n, m, seed + n as u64))
        })
        .collect()
}

/// Evenly spread `k` sources over `0..n`.
pub fn spread_sources(n: usize, k: usize) -> Vec<Vertex> {
    assert!(k <= n, "cannot pick {k} sources from {n} vertices");
    (0..k).map(|i| i * n / k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::is_connected;

    #[test]
    fn small_workloads_are_connected() {
        for w in tie_rich_small() {
            assert!(is_connected(&w.graph), "{}", w.name);
        }
    }

    #[test]
    fn sweeps_scale() {
        let s = sparse_sweep(&[20, 40], 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].graph.n(), 20);
        assert_eq!(s[0].graph.m(), 60);
        let d = dense_sweep(&[24], 1);
        assert!(d[0].graph.m() >= 48);
    }

    #[test]
    fn sources_spread_and_distinct() {
        let s = spread_sources(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| v < 100));
    }
}
