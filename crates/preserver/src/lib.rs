//! Fault-tolerant distance preservers (Section 4.1 of Bodwin & Parter).
//!
//! An `S × T` `f`-FT preserver (Definition 4) is a subgraph `H ⊆ G` with
//! `dist_{H\F}(s, t) = dist_{G\F}(s, t)` for all `s ∈ S`, `t ∈ T`, and
//! `|F| ≤ f`. This crate builds them the paper's way:
//!
//! * [`ft_sv_preserver`] — overlay all `S × V` replacement paths selected
//!   by a consistent stable RPTS under `≤ f` faults (Theorem 26; the
//!   relevant fault sets are enumerated through stability, growing each
//!   fault set only by edges of the current tree). The enumeration also
//!   runs on a work-stealing frontier of fault sets
//!   ([`ft_sv_preserver_frontier`] / [`ft_bfs_structure_frontier`], with
//!   [`EnumerationStats`] observability) — identical output, parallel
//!   inside a single source;
//! * [`ft_subset_preserver`] — the `(f+1)`-FT `S × S` preserver of
//!   Theorem 31: the union of `f`-FT `{s} × V` preservers under a
//!   *restorable* scheme. Restorability is what upgrades `f` to `f + 1`
//!   for subset pairs. For `f + 1 = 1` this degenerates to a union of
//!   SPTs — the paper's "simply take the union of BFS trees" remark;
//! * [`verify_preserver`] — ground-truth verification under exhaustive or
//!   sampled fault sets;
//! * [`lower_bound`] — the `G_f(d)` / `G*_f(V, E, W)` family of Theorem 27
//!   (Appendix B, Figures 2–3): a *bad* consistent stable scheme forcing
//!   `Ω(n^{2−1/2^f} σ^{1/2^f})` preserver edges, together with the
//!   perturbation-based comparison showing random tiebreaking escapes the
//!   bound on the same graph.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), the preserver
//! enumeration pipeline, and the serving layer (its "Serving layer"
//! chapter — `rsp_oracle` snapshots can carry a [`Preserver`] edge set
//! as a shippable artifact alongside the compiled trees).
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`Preserver`] | Definition 4: `S × T` `f`-FT distance preserver |
//! | [`overlay_paths`], [`overlay_paths_par`] | the raw overlay primitive behind every Section 4.1 construction |
//! | [`ft_bfs_structure`], [`ft_bfs_structure_frontier`] | Theorem 26 with `\|S\| = 1` (FT-BFS structure, stability-driven enumeration — sequential or work-stealing) |
//! | [`ft_sv_preserver`], [`ft_sv_preserver_par`], [`ft_sv_preserver_frontier`] | Theorem 26 `S × V` preserver (sources and fault sets share one frontier) |
//! | [`ft_subset_preserver`] | Theorem 31: restorability upgrades `f` to `f + 1` for `S × S` |
//! | [`verify_preserver`] | Definition 4 checked against ground-truth BFS |
//! | [`lower_bound`] | Theorem 27 / Appendix B `G_f(d)` family (Figures 2–3) |
//!
//! # Examples
//!
//! ```
//! use rsp_core::RandomGridAtw;
//! use rsp_preserver::{ft_subset_preserver, verify_preserver, PairSet};
//! use rsp_graph::generators;
//!
//! let g = generators::petersen();
//! let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
//! // 1-FT S×S preserver: union of two restorable-scheme SPTs.
//! let h = ft_subset_preserver(&scheme, &[0, 5], 1);
//! assert!(h.edge_count() <= 2 * (g.n() - 1));
//! let faults: Vec<_> = g.edges().map(|(e, _, _)| rsp_graph::FaultSet::single(e)).collect();
//! verify_preserver(&g, &h, &PairSet::subset(vec![0, 5]), &faults).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ft_bfs;
pub mod lower_bound;
mod verify;

pub use ft_bfs::{
    ft_bfs_structure, ft_bfs_structure_frontier, ft_bfs_structure_with, ft_subset_preserver,
    ft_sv_preserver, ft_sv_preserver_frontier, ft_sv_preserver_par, overlay_paths,
    overlay_paths_par, EnumerationStats, Preserver,
};
pub use verify::{
    translate_faults, verify_preserver, verify_preserver_counting, PairSet, PreserverViolation,
};
