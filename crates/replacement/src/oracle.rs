//! A single-fault distance sensitivity oracle built from Algorithm 1.
//!
//! Section 4.3 of the paper relates fault-tolerant labels to *distance
//! sensitivity oracles* (Weimann–Yuster, van den Brand–Saranurak): global
//! structures answering `dist_{G\{e}}(s, t)` queries. This is the direct
//! construction the restorable machinery yields: run subset-rp over
//! `S = V` and store, per pair, the per-path-edge replacement distances.
//! Space `O(n²·ℓ̄)` entries (ℓ̄ = average path length), query `O(log ℓ)`.
//! It is the all-pairs ground-truth structure the labeling scheme is
//! measured against in the benches.

use std::collections::HashMap;

use rsp_graph::{EdgeId, Graph, Vertex};

use crate::subset_rp::subset_replacement_paths;

/// An all-pairs, single-fault exact distance oracle.
///
/// # Examples
///
/// ```
/// use rsp_replacement::SingleFaultOracle;
/// use rsp_graph::generators;
///
/// let g = generators::cycle(6);
/// let oracle = SingleFaultOracle::build(&g, 7);
/// // Any cycle edge failure reroutes the 0⇝3 distance to 3 hops.
/// for (e, _, _) in g.edges() {
///     assert_eq!(oracle.query(0, 3, e), Some(3));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SingleFaultOracle {
    n: usize,
    /// Per unordered pair: fault-free distance and per-path-edge entries.
    pairs: HashMap<(Vertex, Vertex), PairData>,
}

#[derive(Clone, Debug)]
struct PairData {
    base: u32,
    /// Sorted by edge id for binary-search queries.
    entries: Vec<(EdgeId, Option<u32>)>,
}

impl SingleFaultOracle {
    /// Builds the oracle over all vertex pairs. `O(n·m + n²·n)` time via
    /// Algorithm 1 with `S = V`; the underlying `O(n²)` tree queries run
    /// through Algorithm 1's reused search scratches, so the build
    /// allocates per *pair result*, not per query.
    pub fn build(g: &Graph, seed: u64) -> Self {
        let sources: Vec<Vertex> = g.vertices().collect();
        let rp = subset_replacement_paths(g, &sources, seed);
        let pairs = rp
            .iter()
            .map(|p| {
                let (s, t) = p.pair();
                let mut entries: Vec<(EdgeId, Option<u32>)> =
                    p.entries().iter().map(|e| (e.edge, e.dist)).collect();
                entries.sort_unstable_by_key(|&(e, _)| e);
                ((s.min(t), s.max(t)), PairData { base: p.base_dist(), entries })
            })
            .collect();
        SingleFaultOracle { n: g.n(), pairs }
    }

    /// `dist_{G\{e}}(s, t)`; `None` if the failure (or the graph)
    /// disconnects the pair.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range.
    pub fn query(&self, s: Vertex, t: Vertex, e: EdgeId) -> Option<u32> {
        assert!(s < self.n && t < self.n, "query pair out of range");
        if s == t {
            return Some(0);
        }
        let data = self.pairs.get(&(s.min(t), s.max(t)))?;
        match data.entries.binary_search_by_key(&e, |&(id, _)| id) {
            Ok(i) => data.entries[i].1,
            Err(_) => Some(data.base), // off-path faults leave the distance
        }
    }

    /// Fault-free distance, `None` if disconnected.
    pub fn base_dist(&self, s: Vertex, t: Vertex) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        self.pairs.get(&(s.min(t), s.max(t))).map(|d| d.base)
    }

    /// Total stored `(pair, edge)` entries — the space objective.
    pub fn entry_count(&self) -> usize {
        self.pairs.values().map(|d| d.entries.len()).sum()
    }

    /// Number of connected pairs served.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::{bfs, generators, FaultSet};

    #[test]
    fn oracle_matches_bfs_truth_everywhere() {
        let g = generators::connected_gnm(16, 34, 3);
        let oracle = SingleFaultOracle::build(&g, 9);
        for (e, _, _) in g.edges() {
            let fs = FaultSet::single(e);
            for s in g.vertices() {
                let truth = bfs(&g, s, &fs);
                for t in g.vertices() {
                    assert_eq!(oracle.query(s, t, e), truth.dist(t), "({s},{t}) e={e}");
                }
            }
        }
    }

    #[test]
    fn disconnected_pairs_and_bridges() {
        let g = generators::path_graph(4);
        let oracle = SingleFaultOracle::build(&g, 1);
        let bridge = g.edge_between(1, 2).unwrap();
        assert_eq!(oracle.query(0, 3, bridge), None);
        assert_eq!(oracle.query(0, 1, bridge), Some(1));
        assert_eq!(oracle.base_dist(0, 3), Some(3));
    }

    #[test]
    fn space_accounting() {
        let g = generators::cycle(8);
        let oracle = SingleFaultOracle::build(&g, 2);
        assert_eq!(oracle.pair_count(), 8 * 7 / 2);
        // Each pair stores one entry per selected path edge.
        assert!(oracle.entry_count() >= oracle.pair_count());
    }

    #[test]
    fn trivial_queries() {
        let g = generators::cycle(5);
        let oracle = SingleFaultOracle::build(&g, 4);
        assert_eq!(oracle.query(2, 2, 0), Some(0));
        assert_eq!(oracle.base_dist(3, 3), Some(0));
    }
}
