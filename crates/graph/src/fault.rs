//! Fault sets: the `F ⊆ E` of the paper, `|F| ≤ f`.

use crate::graph::EdgeId;

/// A small sorted set of failed edges.
///
/// All traversal routines in this workspace take a `&FaultSet` and treat the
/// contained edges as deleted, realizing the paper's `G \ F` without copying
/// the graph. Fault sets are tiny (the paper's `f` is a small constant), so
/// a sorted `Vec` with binary-search membership is the right trade-off.
///
/// # Examples
///
/// ```
/// use rsp_graph::FaultSet;
///
/// let f = FaultSet::from_edges([3, 1, 3]);
/// assert_eq!(f.len(), 2);
/// assert!(f.contains(1));
/// assert!(!f.contains(2));
/// let g = f.with(2);
/// assert_eq!(g.len(), 3);
/// assert!(f.is_subset_of(&g));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct FaultSet {
    /// Sorted, deduplicated edge ids.
    edges: Vec<EdgeId>,
}

impl FaultSet {
    /// The empty fault set (`F = ∅`, the fault-free graph).
    pub fn empty() -> Self {
        FaultSet { edges: Vec::new() }
    }

    /// A fault set containing exactly one edge.
    pub fn single(e: EdgeId) -> Self {
        FaultSet { edges: vec![e] }
    }

    /// Builds a fault set from edge ids, sorting and deduplicating.
    pub fn from_edges(edges: impl IntoIterator<Item = EdgeId>) -> Self {
        let mut edges: Vec<EdgeId> = edges.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        FaultSet { edges }
    }

    /// Number of failed edges, `|F|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` iff no edges have failed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns `true` iff edge `e` has failed.
    ///
    /// Membership is the innermost check of every traversal (once per
    /// scanned adjacency slot), and the paper's regime is `|F| ≤ f` for a
    /// small constant `f`, so small sets use a branch-predictable linear
    /// scan; only larger sets pay for binary search.
    #[inline]
    pub fn contains(&self, e: EdgeId) -> bool {
        if self.edges.len() <= Self::LINEAR_SCAN_MAX {
            self.edges.contains(&e)
        } else {
            self.edges.binary_search(&e).is_ok()
        }
    }

    /// Largest set size probed by linear scan in [`FaultSet::contains`].
    const LINEAR_SCAN_MAX: usize = 8;

    /// Iterates over the failed edge ids in increasing order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Replaces the contents with the single edge `e`, in place.
    ///
    /// The allocation-free companion of [`FaultSet::single`] for loops that
    /// probe one failing edge at a time (the replacement-path baselines):
    /// one set is allocated once and re-pointed per iteration.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultSet;
    /// let mut f = FaultSet::from_edges([1, 5]);
    /// f.replace_single(3);
    /// assert_eq!(f, FaultSet::single(3));
    /// ```
    #[inline]
    pub fn replace_single(&mut self, e: EdgeId) {
        self.edges.clear();
        self.edges.push(e);
    }

    /// Replaces the contents with an arbitrary (possibly unsorted,
    /// possibly duplicated) edge list, normalizing in place.
    ///
    /// This is the **boundary normalization** the serving layer relies
    /// on: every `FaultSet` in the workspace is sorted and deduplicated
    /// by construction, and both the [`FaultSet::contains`] fast path
    /// and any lookup keyed by fault sets (label caches, snapshot
    /// routing) assume that canonical representation. `set_from` lets a
    /// long-lived query buffer absorb raw caller input — duplicate edge
    /// ids and all — without allocating once its capacity is warm.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultSet;
    /// let mut f = FaultSet::empty();
    /// f.set_from([7, 3, 7, 3, 7]);
    /// assert_eq!(f, FaultSet::from_edges([3, 7]));
    /// assert_eq!(f.len(), 2);
    /// ```
    pub fn set_from(&mut self, edges: impl IntoIterator<Item = EdgeId>) {
        self.edges.clear();
        self.edges.extend(edges);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// The normalized (sorted, deduplicated) edge ids as a slice.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultSet;
    /// assert_eq!(FaultSet::from_edges([9, 2, 9]).as_slice(), &[2, 9]);
    /// ```
    #[inline]
    pub fn as_slice(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Inserts `e` in place, keeping the canonical sorted-dedup form.
    /// Returns `true` iff `e` was newly inserted.
    ///
    /// The in-place companion of [`FaultSet::with`] for long-lived
    /// states that churn (the `fault arrives` half of
    /// [`crate::FaultState`]): no clone, one `O(|F|)` shift.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultSet;
    /// let mut f = FaultSet::from_edges([5]);
    /// assert!(f.insert(2));
    /// assert!(!f.insert(2));
    /// assert_eq!(f.as_slice(), &[2, 5]);
    /// ```
    pub fn insert(&mut self, e: EdgeId) -> bool {
        match self.edges.binary_search(&e) {
            Ok(_) => false,
            Err(pos) => {
                self.edges.insert(pos, e);
                true
            }
        }
    }

    /// Removes `e` in place. Returns `true` iff `e` was present.
    ///
    /// The in-place companion of [`FaultSet::without`] (the
    /// `fault repairs` half of [`crate::FaultState`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultSet;
    /// let mut f = FaultSet::from_edges([2, 5]);
    /// assert!(f.remove(5));
    /// assert!(!f.remove(5));
    /// assert_eq!(f.as_slice(), &[2]);
    /// ```
    pub fn remove(&mut self, e: EdgeId) -> bool {
        match self.edges.binary_search(&e) {
            Ok(pos) => {
                self.edges.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns a new fault set with `e` additionally failed.
    pub fn with(&self, e: EdgeId) -> FaultSet {
        match self.edges.binary_search(&e) {
            Ok(_) => self.clone(),
            Err(pos) => {
                let mut edges = self.edges.clone();
                edges.insert(pos, e);
                FaultSet { edges }
            }
        }
    }

    /// Returns a new fault set with `e` removed (if present).
    pub fn without(&self, e: EdgeId) -> FaultSet {
        match self.edges.binary_search(&e) {
            Err(_) => self.clone(),
            Ok(pos) => {
                let mut edges = self.edges.clone();
                edges.remove(pos);
                FaultSet { edges }
            }
        }
    }

    /// Returns `true` iff every edge of `self` is in `other`.
    pub fn is_subset_of(&self, other: &FaultSet) -> bool {
        self.edges.iter().all(|&e| other.contains(e))
    }

    /// Enumerates all *proper* subsets `F' ⊊ F`.
    ///
    /// The definition of `f`-restorability (Definition 17) quantifies over
    /// proper fault subsets; `f` is a small constant so the `2^|F| − 1`
    /// enumeration is cheap.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_graph::FaultSet;
    /// let f = FaultSet::from_edges([0, 1]);
    /// let subs: Vec<_> = f.proper_subsets().collect();
    /// assert_eq!(subs.len(), 3); // {}, {0}, {1}
    /// ```
    pub fn proper_subsets(&self) -> impl Iterator<Item = FaultSet> + '_ {
        let k = self.edges.len();
        let full: u64 = (1u64 << k) - 1;
        (0..full).map(move |mask| {
            let edges = self
                .edges
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &e)| e)
                .collect();
            FaultSet { edges }
        })
    }
}

impl FromIterator<EdgeId> for FaultSet {
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        FaultSet::from_edges(iter)
    }
}

impl std::fmt::Display for FaultSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let f = FaultSet::from_edges([5, 1, 5, 3]);
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn with_without() {
        let f = FaultSet::from_edges([2]);
        assert_eq!(f.with(2), f);
        assert_eq!(f.with(1).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(f.without(2), FaultSet::empty());
        assert_eq!(f.without(9), f);
    }

    #[test]
    fn proper_subsets_of_empty_is_empty() {
        assert_eq!(FaultSet::empty().proper_subsets().count(), 0);
    }

    #[test]
    fn proper_subsets_of_three() {
        let f = FaultSet::from_edges([0, 1, 2]);
        let subs: Vec<_> = f.proper_subsets().collect();
        assert_eq!(subs.len(), 7);
        assert!(subs.iter().all(|s| s.is_subset_of(&f) && s != &f));
        assert!(subs.contains(&FaultSet::empty()));
    }

    #[test]
    fn contains_agrees_across_scan_strategies() {
        // Below and above the linear-scan cutoff, membership must agree
        // with the definitional answer.
        for size in [0usize, 1, 7, 8, 9, 40] {
            let f = FaultSet::from_edges((0..size).map(|i| 3 * i));
            for e in 0..(3 * size + 2) {
                assert_eq!(f.contains(e), e % 3 == 0 && e < 3 * size, "size {size}, edge {e}");
            }
        }
    }

    #[test]
    fn replace_single_reuses_in_place() {
        let mut f = FaultSet::from_edges([4, 9, 11]);
        f.replace_single(7);
        assert_eq!(f, FaultSet::single(7));
        f.replace_single(7);
        assert_eq!(f.len(), 1);
        assert!(f.contains(7) && !f.contains(4));
    }

    #[test]
    fn set_from_normalizes_duplicates_in_place() {
        // Regression for the serving-layer boundary: raw caller input with
        // duplicate edge ids must land in the same canonical form that
        // `from_edges` produces, so `contains` (linear or binary) and any
        // representation-keyed lookup agree.
        let mut f = FaultSet::from_edges([100]);
        f.set_from([5, 1, 5, 5, 1]);
        assert_eq!(f, FaultSet::from_edges([1, 5]));
        assert_eq!(f.as_slice(), &[1, 5]);
        assert!(f.contains(1) && f.contains(5) && !f.contains(100));
        f.set_from([]);
        assert_eq!(f, FaultSet::empty());
        // Above the linear-scan cutoff too: 20 ids, each duplicated.
        f.set_from((0..40).map(|i| (i % 20) * 2));
        assert_eq!(f.len(), 20);
        assert!(f.contains(38) && !f.contains(39));
    }

    #[test]
    fn subset_relation() {
        let a = FaultSet::from_edges([1, 2]);
        let b = FaultSet::from_edges([0, 1, 2]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(FaultSet::empty().is_subset_of(&a));
    }

    #[test]
    fn display_format() {
        assert_eq!(FaultSet::from_edges([2, 0]).to_string(), "{0, 2}");
        assert_eq!(FaultSet::empty().to_string(), "{}");
    }
}
