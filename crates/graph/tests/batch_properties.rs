//! Property tests for the batch query engine: `bfs_batch` /
//! `dijkstra_batch` (prefix sharing) and the `*_batch_par` worker-pool
//! fan-out must be byte-for-byte indistinguishable — distances, costs,
//! parents, tie flags — from running the single-query engine once per
//! `(source, fault set)`, for fault sets in arbitrary order and for
//! worker counts 1, 2, and 8.

use std::ops::ControlFlow;

use proptest::prelude::*;
use rsp_graph::{
    bfs_batch, bfs_batch_par, bfs_into, dijkstra_batch, dijkstra_batch_par, dijkstra_into,
    generators, BatchScratch, CheckpointMode, DirectedCosts, FaultSet, Graph, HeapKind,
    SearchScratch, Vertex,
};

fn gnm_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (3usize..=24, 0usize..=3, any::<u64>()).prop_map(|(n, density, seed)| {
        let extra = density * n / 2;
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        (n, m, seed)
    })
}

/// Fault sets in arbitrary order: empty, singles, and doubles interleaved
/// however the picks land — the batch engine must not care whether
/// near-source faults precede or follow far ones.
fn fault_sets(g: &Graph, picks: &[prop::sample::Index]) -> Vec<FaultSet> {
    picks
        .iter()
        .enumerate()
        .map(|(i, pick)| {
            let e = pick.index(g.m());
            match i % 3 {
                0 => FaultSet::single(e),
                1 => FaultSet::from_edges([e, (e + g.m() / 2) % g.m()]),
                _ => FaultSet::empty(),
            }
        })
        .collect()
}

fn sources(g: &Graph, picks: &[prop::sample::Index]) -> Vec<Vertex> {
    picks.iter().map(|p| p.index(g.n())).collect()
}

/// Everything observable about one query result, materialized for
/// cross-engine and cross-worker-count comparison.
type Snapshot<C> = (Vec<Option<(C, u32)>>, Vec<Option<(Vertex, usize)>>, bool, usize);

fn snapshot<C: rsp_arith::PathCost>(g: &Graph, s: &SearchScratch<C>) -> Snapshot<C> {
    (
        g.vertices().map(|v| s.cost(v).map(|c| (c.clone(), s.hops(v).unwrap()))).collect(),
        g.vertices().map(|v| s.parent(v)).collect(),
        s.ties_detected(),
        s.reachable_count(),
    )
}

/// The BFS analogue of [`Snapshot`]: per-vertex distances and parents.
type BfsSnapshot = (Vec<Option<u32>>, Vec<Option<(Vertex, usize)>>);

fn bfs_snapshot(g: &Graph, s: &SearchScratch<u32>) -> BfsSnapshot {
    (g.vertices().map(|v| s.dist(v)).collect(), g.vertices().map(|v| s.parent(v)).collect())
}

proptest! {
    /// `bfs_batch` equals per-query `bfs_into` on every query of a random
    /// `sources × fault_sets` plan.
    #[test]
    fn bfs_batch_equals_single_queries(
        (n, m, seed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..8),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let fs = fault_sets(&g, &fault_picks);
        let srcs = sources(&g, &source_picks);
        let mut batch = BatchScratch::<u32>::new();
        let mut single = SearchScratch::<u32>::new();
        let mut visited = 0usize;
        bfs_batch(&g, &srcs, &fs, &mut batch, |si, fi, result| {
            visited += 1;
            bfs_into(&g, srcs[si], &fs[fi], &mut single);
            assert_eq!(bfs_snapshot(&g, result), bfs_snapshot(&g, &single), "s{si} f{fi}");
            ControlFlow::Continue(())
        });
        prop_assert_eq!(visited, srcs.len() * fs.len());
    }

    /// `dijkstra_batch` equals per-query `dijkstra_into` — u64 costs with
    /// per-edge, per-direction variation.
    #[test]
    fn dijkstra_batch_equals_single_queries_u64(
        (n, m, seed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..8),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let fs = fault_sets(&g, &fault_picks);
        let srcs = sources(&g, &source_picks);
        let cost = |e: usize, from: usize, to: usize| {
            1_000_000u64 + (e as u64 * 17) % 1000 + if from < to { 3 } else { 5 }
        };
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        dijkstra_batch(&g, &srcs, &fs, cost, &mut batch, |si, fi, result| {
            dijkstra_into(&g, srcs[si], &fs[fi], cost, &mut single);
            assert_eq!(snapshot(&g, result), snapshot(&g, &single), "s{si} f{fi}");
            ControlFlow::Continue(())
        });
    }

    /// Unit costs collide everywhere: prefix sharing must reproduce the
    /// exact tie flags and tree choices of the single-query engine.
    #[test]
    fn dijkstra_batch_ties_equal_single_queries(
        (n, m, seed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let fs = fault_sets(&g, &fault_picks);
        let mut batch = BatchScratch::<u64>::new();
        let mut single = SearchScratch::<u64>::new();
        let srcs: Vec<Vertex> = vec![0, g.n() - 1];
        dijkstra_batch(&g, &srcs, &fs, |_, _, _| 1u64, &mut batch, |si, fi, result| {
            dijkstra_into(&g, srcs[si], &fs[fi], |_, _, _| 1u64, &mut single);
            assert_eq!(snapshot(&g, result), snapshot(&g, &single), "s{si} f{fi}");
            ControlFlow::Continue(())
        });
    }

    /// The u128 `DirectedCosts` path (the exact-scheme workload) through
    /// the batch engine.
    #[test]
    fn dijkstra_batch_equals_single_queries_u128(
        (n, m, seed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let unit = 1u128 << 40;
        let fwd: Vec<u128> = (0..g.m()).map(|e| unit + (e as u128 * 7919) % 1024).collect();
        let bwd: Vec<u128> = fwd.iter().map(|f| 2 * unit - f).collect();
        let fs = fault_sets(&g, &fault_picks);
        let srcs = sources(&g, &source_picks);
        let mut batch = BatchScratch::<u128>::new();
        let mut single = SearchScratch::<u128>::new();
        dijkstra_batch(&g, &srcs, &fs, DirectedCosts::new(&fwd, &bwd), &mut batch, |si, fi, r| {
            dijkstra_into(&g, srcs[si], &fs[fi], DirectedCosts::new(&fwd, &bwd), &mut single);
            assert_eq!(snapshot(&g, r), snapshot(&g, &single), "s{si} f{fi}");
            ControlFlow::Continue(())
        });
    }

    /// Checkpointed and checkpoint-free resume are byte-identical to each
    /// other and to the single-query engine — under both heap engines —
    /// for arbitrary graphs, fault-set orders, and sources. Graphs are
    /// drawn large enough that `Always` genuinely captures (depth
    /// `n/2 ≥ 8`), and near-colliding costs make tie flags part of the
    /// comparison.
    #[test]
    fn checkpointed_resume_equals_checkpoint_free_and_single_queries(
        n in 16usize..=48,
        density in 0usize..=3,
        seed in any::<u64>(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..8),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let m = (n - 1 + density * n / 2).min(n * (n - 1) / 2);
        let g = generators::connected_gnm(n, m, seed);
        let fs = fault_sets(&g, &fault_picks);
        let srcs = sources(&g, &source_picks);
        let cost = |e: usize, from: usize, to: usize| {
            1_000u64 + (e as u64 * 17) % 3 + u64::from(from < to)
        };
        let mut single = SearchScratch::<u64>::new();
        for heap in [HeapKind::InlineKey, HeapKind::Indexed] {
            for mode in [CheckpointMode::Always, CheckpointMode::Never, CheckpointMode::Auto] {
                let mut batch =
                    BatchScratch::<u64>::new().with_checkpoint_mode(mode).with_heap_kind(heap);
                dijkstra_batch(&g, &srcs, &fs, cost, &mut batch, |si, fi, result| {
                    dijkstra_into(&g, srcs[si], &fs[fi], cost, &mut single);
                    assert_eq!(
                        snapshot(&g, result),
                        snapshot(&g, &single),
                        "{heap:?}/{mode:?} s{si} f{fi}"
                    );
                    ControlFlow::Continue(())
                });
                let stats = batch.stats();
                prop_assert_eq!(stats.queries, srcs.len() * fs.len(), "{:?}", mode);
                prop_assert_eq!(
                    stats.queries,
                    stats.baseline_answered + stats.checkpoint_resumed + stats.prefix_resumed
                        + stats.full_searches,
                    "query accounting ({:?}/{:?})", heap, mode
                );
                if mode == CheckpointMode::Never {
                    prop_assert_eq!(stats.checkpoints_captured, 0usize);
                    prop_assert_eq!(stats.checkpoint_resumed, 0usize);
                } else {
                    // u64 is inline-eligible: Auto checkpoints like
                    // Always, and n ≥ 16 means at least the n/2 depth is
                    // capturable on a connected graph.
                    prop_assert!(stats.checkpoints_captured >= srcs.len(), "{:?}", mode);
                }
            }
        }
    }

    /// Worker counts 1, 2, and 8 produce identical result matrices — and
    /// all match the sequential single-query engine.
    #[test]
    fn parallel_fan_out_is_worker_count_invariant(
        (n, m, seed) in gnm_params(),
        fault_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6),
        source_picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let g = generators::connected_gnm(n, m, seed);
        let fs = fault_sets(&g, &fault_picks);
        let srcs = sources(&g, &source_picks);
        let cost = |e: usize, from: usize, to: usize| {
            1_000u64 + (e as u64 % 13) + u64::from(from < to)
        };

        // Sequential reference, one single-query run per cell.
        let mut single = SearchScratch::<u64>::new();
        let reference: Vec<Vec<Snapshot<u64>>> = srcs
            .iter()
            .map(|&s| {
                fs.iter()
                    .map(|f| {
                        dijkstra_into(&g, s, f, cost, &mut single);
                        snapshot(&g, &single)
                    })
                    .collect()
            })
            .collect();

        for workers in [1usize, 2, 8] {
            let par = dijkstra_batch_par(&g, &srcs, &fs, || cost, workers, |_, _, r| {
                snapshot(&g, r)
            });
            prop_assert_eq!(&par, &reference, "dijkstra workers={}", workers);
        }

        let mut bfs_single = SearchScratch::<u32>::new();
        let bfs_reference: Vec<Vec<_>> = srcs
            .iter()
            .map(|&s| {
                fs.iter()
                    .map(|f| {
                        bfs_into(&g, s, f, &mut bfs_single);
                        bfs_snapshot(&g, &bfs_single)
                    })
                    .collect()
            })
            .collect();
        for workers in [1usize, 2, 8] {
            let par =
                bfs_batch_par::<u32, _, _>(&g, &srcs, &fs, workers, |_, _, r| bfs_snapshot(&g, r));
            prop_assert_eq!(&par, &bfs_reference, "bfs workers={}", workers);
        }
    }
}
