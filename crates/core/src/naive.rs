//! The arbitrary-but-consistent baseline scheme: BFS with neighbor-order
//! tiebreaking.
//!
//! This is the scheme a routing table built from a textbook BFS (or
//! Floyd–Warshall) implicitly commits to. It is a perfectly legitimate
//! replacement-path tiebreaking scheme — consistent per fault set — but it
//! is **not restorable**: Figure 1 of the paper illustrates how its
//! canonical `π(s, x)` can use the failing edge even when a tied
//! alternative avoids it. Experiment E1 quantifies how often that actually
//! happens.

use rsp_graph::{bfs, bfs_into, BfsTree, FaultSet, Graph, Vertex};

use crate::scheme::{Rpts, RptsScratch};

/// Neighbor visit order for the baseline BFS scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BfsOrder {
    /// Visit neighbors in increasing vertex id (the usual arbitrary choice).
    #[default]
    Ascending,
    /// Visit neighbors in decreasing vertex id.
    Descending,
}

/// BFS with deterministic neighbor-order tiebreaking: the "naive routing
/// table" baseline of experiment E1.
///
/// # Examples
///
/// ```
/// use rsp_core::{BfsScheme, BfsOrder, Rpts};
/// use rsp_graph::{generators, FaultSet};
///
/// let g = generators::cycle(4);
/// let scheme = BfsScheme::new(&g, BfsOrder::Ascending);
/// let p = scheme.path(1, 3, &FaultSet::empty()).unwrap();
/// assert_eq!(p.hops(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct BfsScheme {
    graph: Graph,
    order: BfsOrder,
    /// Vertex relabeling for Descending order (BFS visits sorted adjacency,
    /// so descending is realized by flipping ids).
    flip: bool,
}

impl BfsScheme {
    /// Creates the baseline scheme over `g`.
    pub fn new(g: &Graph, order: BfsOrder) -> Self {
        BfsScheme { graph: g.clone(), order, flip: order == BfsOrder::Descending }
    }

    /// The neighbor order in use.
    pub fn order(&self) -> BfsOrder {
        self.order
    }
}

impl Rpts for BfsScheme {
    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn tree_from(&self, s: Vertex, faults: &FaultSet) -> BfsTree {
        if !self.flip {
            return bfs(&self.graph, s, faults);
        }
        // Descending neighbor order == ascending order on flipped ids.
        // Build the flipped graph lazily per call; the baseline is only
        // used on small experimental inputs.
        let n = self.graph.n();
        let flip = |v: Vertex| n - 1 - v;
        let flipped = Graph::from_edges(n, self.graph.edges().map(|(_, u, v)| (flip(u), flip(v))))
            .expect("flipping preserves validity");
        let flipped_faults = FaultSet::from_edges(faults.iter().map(|e| {
            let (u, v) = self.graph.endpoints(e);
            flipped.edge_between(flip(u), flip(v)).expect("edge exists in flipped graph")
        }));
        let tree = bfs(&flipped, flip(s), &flipped_faults);
        // Translate the tree back to original ids.
        let mut dist = vec![None; n];
        let mut parent = vec![None; n];
        for v in 0..n {
            dist[flip(v)] = tree.dist(v);
            if let Some((p, _)) = tree.parent(v) {
                let e = self
                    .graph
                    .edge_between(flip(v), flip(p))
                    .expect("tree edges exist in the original graph");
                parent[flip(v)] = Some((flip(p), e));
            }
        }
        BfsTree::from_parts(s, dist, parent)
    }

    fn tree_from_with(&self, s: Vertex, faults: &FaultSet, scratch: &mut RptsScratch) -> BfsTree {
        if self.flip {
            // The descending order rebuilds a flipped graph per call anyway;
            // scratch reuse would be noise. Take the cold path.
            return self.tree_from(s, faults);
        }
        // Every RptsScratch carries unweighted BFS state; no payload needed.
        let sc = scratch.bfs_scratch();
        bfs_into(&self.graph, s, faults, sc);
        sc.to_bfs_tree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_graph::generators;

    #[test]
    fn ascending_prefers_low_ids() {
        // C4: two tied 2-hop paths 1→0→3 and 1→2→3; ascending picks via 0.
        let g = generators::cycle(4);
        let s = BfsScheme::new(&g, BfsOrder::Ascending);
        let p = s.path(1, 3, &FaultSet::empty()).unwrap();
        assert_eq!(p.vertices(), &[1, 0, 3]);
    }

    #[test]
    fn descending_prefers_high_ids() {
        let g = generators::cycle(4);
        let s = BfsScheme::new(&g, BfsOrder::Descending);
        let p = s.path(1, 3, &FaultSet::empty()).unwrap();
        assert_eq!(p.vertices(), &[1, 2, 3]);
    }

    #[test]
    fn distances_correct_in_both_orders() {
        let g = generators::grid(3, 4);
        for order in [BfsOrder::Ascending, BfsOrder::Descending] {
            let s = BfsScheme::new(&g, order);
            for src in g.vertices() {
                let tree = s.tree_from(src, &FaultSet::empty());
                let truth = bfs(&g, src, &FaultSet::empty());
                for t in g.vertices() {
                    assert_eq!(tree.dist(t), truth.dist(t));
                }
            }
        }
    }

    #[test]
    fn scratch_queries_match_allocating_queries() {
        let g = generators::grid(3, 3);
        for order in [BfsOrder::Ascending, BfsOrder::Descending] {
            let s = BfsScheme::new(&g, order);
            let mut scratch = s.new_scratch();
            for src in g.vertices() {
                let with = s.tree_from_with(src, &FaultSet::single(0), &mut scratch);
                let plain = s.tree_from(src, &FaultSet::single(0));
                for t in g.vertices() {
                    assert_eq!(with.dist(t), plain.dist(t));
                    assert_eq!(with.parent(t), plain.parent(t));
                }
            }
        }
    }

    #[test]
    fn respects_faults() {
        let g = generators::cycle(5);
        let e = g.edge_between(0, 1).unwrap();
        for order in [BfsOrder::Ascending, BfsOrder::Descending] {
            let s = BfsScheme::new(&g, order);
            let p = s.path(0, 1, &FaultSet::single(e)).unwrap();
            assert_eq!(p.hops(), 4);
        }
    }
}
