//! The data plane's artifact: an immutable, compiled routing snapshot.
//!
//! A [`OracleSnapshot`] is everything the control plane precomputes,
//! frozen into flat arrays so the read path is pointer-chasing-free:
//!
//! * the graph and the scheme's per-direction exact costs (owned, so a
//!   snapshot is self-contained and `'static`);
//! * one **canonical fault-free tree per serving source**, stored
//!   struct-of-arrays (`u32` parent vertex / parent edge / hop count,
//!   plus the exact path cost) — the restoration lemma's "paths you
//!   already stored";
//! * optionally, the Theorem 30 **fault labels** and the Theorem 26
//!   **`S × V` preserver edge set**, the two shippable artifacts a
//!   deployment distributes to off-box consumers.
//!
//! Queries go through [`OracleSnapshot::query`]: a fault set that misses
//! the source's canonical tree is answered straight from the flat arrays
//! (zero traversal, zero allocation); one that hits it falls back to the
//! exact engine inside a caller-held [`SearchScratch`]. Either way the
//! answer is byte-identical to [`rsp_core::Rpts::tree_from_with`] — the
//! property suite in `tests/oracle_properties.rs` pins this.

use std::borrow::Cow;
use std::sync::Arc;

use rsp_arith::PathCost;
use rsp_core::{ExactScheme, Rpts};
use rsp_graph::{EdgeId, FaultSet, Graph, Path, SearchScratch, Vertex};
use rsp_labeling::{build_labeling, DistanceLabeling};
use rsp_preserver::{ft_sv_preserver, Preserver};

/// Why [`SnapshotBuilder::try_build`] rejected a configuration.
///
/// These are *validation* failures — the fallible twin of the panics
/// documented on [`SnapshotBuilder::build`] — so a control plane fed
/// untrusted configuration (the churn pipeline) can refuse a bad build
/// without unwinding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A requested serving source is not a vertex of the graph.
    SourceOutOfRange {
        /// The offending source.
        source: Vertex,
        /// The graph's vertex count.
        n: usize,
    },
    /// A base fault edge id is not an edge of the graph.
    BaseFaultOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// The graph's edge count.
        m: usize,
    },
    /// The graph has too many vertices or edges for `u32` snapshot ids.
    GraphTooLarge {
        /// The graph's vertex count.
        n: usize,
        /// The graph's edge count.
        m: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::SourceOutOfRange { source, n } => {
                write!(f, "serving source {source} out of range (graph has {n} vertices)")
            }
            BuildError::BaseFaultOutOfRange { edge, m } => {
                write!(f, "base fault edge {edge} out of range (graph has {m} edges)")
            }
            BuildError::GraphTooLarge { n, m } => {
                write!(f, "graph too large for u32 snapshot ids (n = {n}, m = {m})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Why [`OracleSnapshot::try_query`] rejected a query.
///
/// The fallible twin of the panics documented on
/// [`OracleSnapshot::query`]: a malformed wire query (out-of-range
/// source, out-of-range fault edge id) is a client error, and a serving
/// thread must be able to refuse it without unwinding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query source is not a vertex of the graph.
    SourceOutOfRange {
        /// The offending source.
        source: Vertex,
        /// The graph's vertex count.
        n: usize,
    },
    /// A fault edge id is not an edge of the graph.
    FaultOutOfRange {
        /// The offending edge id.
        edge: EdgeId,
        /// The graph's edge count.
        m: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::SourceOutOfRange { source, n } => {
                write!(f, "query source {source} out of range (graph has {n} vertices)")
            }
            QueryError::FaultOutOfRange { edge, m } => {
                write!(f, "fault edge {edge} out of range (graph has {m} edges)")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Flat-array sentinel: "no parent" / "unreachable" / "not a serving
/// source". Graph sizes are asserted below `u32::MAX`, so the sentinel
/// never collides with a real vertex, edge, or hop count.
pub(crate) const NONE: u32 = u32::MAX;

/// One interned canonical tree row: the flat per-vertex arrays of a
/// single source's selected shortest-path tree.
///
/// Rows are stored behind [`Arc`] so snapshots derived from one another
/// (the delta builder in [`crate::delta`]) share the storage of every
/// row the change did not touch — copy-on-write via [`Arc::make_mut`].
/// [`OracleSnapshot::shares_row_storage`] exposes the sharing for
/// tests, so "delta commit" can be asserted to mean "patched", never
/// "silently rebuilt".
#[derive(Clone, Debug)]
pub(crate) struct TreeRow<C> {
    /// Parent vertex in the selected tree, [`NONE`] for the source and
    /// unreachable vertices.
    pub(crate) parent_vertex: Vec<u32>,
    /// Edge id to the parent, [`NONE`] alongside `parent_vertex`.
    pub(crate) parent_edge: Vec<u32>,
    /// Hop count from the source, [`NONE`] when unreachable.
    pub(crate) hops: Vec<u32>,
    /// Exact perturbed path cost; meaningful only where `hops` is not
    /// [`NONE`] (unreachable cells hold `C::zero()`).
    pub(crate) costs: Vec<C>,
}

impl<C: PathCost> TreeRow<C> {
    /// A row with every vertex unreached.
    pub(crate) fn unreached(n: usize) -> Self {
        let mut costs = Vec::new();
        costs.resize_with(n, C::zero);
        TreeRow {
            parent_vertex: vec![NONE; n],
            parent_edge: vec![NONE; n],
            hops: vec![NONE; n],
            costs,
        }
    }

    /// Resets one cell to the unreached state, keeping cost storage.
    pub(crate) fn clear_cell(&mut self, v: Vertex) {
        self.parent_vertex[v] = NONE;
        self.parent_edge[v] = NONE;
        self.hops[v] = NONE;
        self.costs[v].set_zero();
    }
}

/// An immutable compiled routing snapshot: the data-plane artifact the
/// serving layer publishes and readers answer `(s, t, F)` queries from.
///
/// Build one with [`OracleSnapshot::builder`]; serve it through
/// [`crate::Oracle`]. A snapshot is plain owned data (`Send + Sync` for
/// thread-safe cost types), never mutated after
/// [`SnapshotBuilder::build`] — concurrent readers need no
/// synchronization on it whatsoever.
///
/// # Examples
///
/// ```
/// use rsp_core::RandomGridAtw;
/// use rsp_graph::{generators, FaultSet, SearchScratch};
/// use rsp_oracle::OracleSnapshot;
///
/// let g = generators::grid(4, 4);
/// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
/// let snap = OracleSnapshot::builder(&scheme).version(1).build();
///
/// let mut scratch = SearchScratch::with_capacity(g.n());
/// let view = snap.query(0, &FaultSet::empty(), &mut scratch);
/// assert!(view.from_baseline(), "fault-free queries are pure lookups");
/// assert_eq!(view.dist(15), Some(6));
/// ```
#[derive(Clone, Debug)]
pub struct OracleSnapshot<C> {
    scheme: ExactScheme<C>,
    version: u64,
    /// Faults baked into every canonical tree: the snapshot serves the
    /// subgraph `G \ base_faults` (the churn pipeline's current fault
    /// state). Per-query faults are layered on top.
    base_faults: FaultSet,
    /// Serving sources, in row order (row `i` of the flat arrays is the
    /// canonical tree rooted at `sources[i]`).
    sources: Vec<Vertex>,
    /// `source_row[v]` is `v`'s row index, or [`NONE`] if not served.
    source_row: Vec<u32>,
    /// One interned canonical tree per serving source, in `sources`
    /// order. Rows are `Arc`'d so delta-derived snapshots share the
    /// storage of untouched rows (copy-on-write — see [`TreeRow`]).
    rows: Vec<Arc<TreeRow<C>>>,
    /// `quarantined[i]` marks row `i` as failed integrity audit: the
    /// scrubber ([`crate::scrub`]) found its flat arrays disagreeing
    /// with the exact engine. Quarantined rows are never served from
    /// the fast path — [`OracleSnapshot::try_query`] answers them
    /// through the engine fallback, which recomputes from the graph and
    /// therefore cannot repeat the corruption.
    quarantined: Vec<bool>,
    labels: Option<DistanceLabeling>,
    preserver: Option<Preserver>,
}

/// Configures and compiles an [`OracleSnapshot`] — the control-plane
/// side of the serving layer.
///
/// Obtained from [`OracleSnapshot::builder`]. Building is where all the
/// cost lives (one exact SPT per serving source, plus the optional
/// label/preserver constructions); it allocates freely and runs on the
/// publisher's thread, never on a reader's.
#[derive(Debug)]
pub struct SnapshotBuilder<'a, C> {
    scheme: &'a ExactScheme<C>,
    sources: Option<Vec<Vertex>>,
    base_faults: FaultSet,
    label_faults: Option<usize>,
    preserver_faults: Option<usize>,
    version: u64,
}

impl<'a, C: PathCost + 'static> SnapshotBuilder<'a, C> {
    fn new(scheme: &'a ExactScheme<C>) -> Self {
        SnapshotBuilder {
            scheme,
            sources: None,
            base_faults: FaultSet::empty(),
            label_faults: None,
            preserver_faults: None,
            version: 0,
        }
    }

    /// Restricts the precomputed canonical trees to these sources
    /// (default: every vertex). Queries from a non-serving source still
    /// answer correctly — they always take the engine path.
    ///
    /// Duplicates are dropped (first occurrence wins).
    ///
    /// # Panics
    ///
    /// [`SnapshotBuilder::build`] panics on out-of-range sources.
    pub fn sources(mut self, sources: impl IntoIterator<Item = Vertex>) -> Self {
        self.sources = Some(sources.into_iter().collect());
        self
    }

    /// Also compile the Theorem 30 fault labels at fault budget `f`
    /// (queries on the labels tolerate `f + 1` faults). Expensive:
    /// one `f`-FT preserver per vertex — strictly a control-plane cost.
    pub fn fault_labels(mut self, f: usize) -> Self {
        self.label_faults = Some(f);
        self
    }

    /// Also compile the Theorem 26 `S × V` preserver edge set over the
    /// serving sources at fault budget `f`.
    pub fn preserver(mut self, f: usize) -> Self {
        self.preserver_faults = Some(f);
        self
    }

    /// Tags the snapshot with an application-chosen version number
    /// (default 0). Readers see it via [`OracleSnapshot::version`] —
    /// the concurrency suite uses it to prove every answer is
    /// internally consistent with exactly one published epoch, and the
    /// churn pipeline stamps it with the journal sequence the snapshot
    /// folds in.
    pub fn version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Bakes a fault set into the snapshot: every canonical tree is
    /// computed in `G \ faults`, and queries answer against
    /// `G \ (faults ∪ F_query)`. This is how the churn pipeline serves
    /// the *current* fault state — wire queries keep passing only their
    /// own incremental faults.
    ///
    /// Edges are validated by [`SnapshotBuilder::try_build`]
    /// ([`BuildError::BaseFaultOutOfRange`]). The optional
    /// label/preserver artifacts are *not* re-derived under the base
    /// faults — they remain compiled from the fault-free scheme, so a
    /// churn deployment ships them from a separate fault-free snapshot.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultSet, SearchScratch};
    /// use rsp_oracle::OracleSnapshot;
    ///
    /// let g = generators::cycle(5);
    /// let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    /// let e = g.edge_between(0, 1).unwrap();
    /// let snap = OracleSnapshot::builder(&scheme)
    ///     .base_faults(FaultSet::single(e))
    ///     .build();
    /// let mut scratch = SearchScratch::with_capacity(g.n());
    /// // A fault-free *query* still routes around the baked-in fault.
    /// let view = snap.query(0, &FaultSet::empty(), &mut scratch);
    /// assert_eq!(view.dist(1), Some(4));
    /// ```
    pub fn base_faults(mut self, faults: FaultSet) -> Self {
        self.base_faults = faults;
        self
    }

    /// Compiles the snapshot: one exact SPT per serving source in
    /// `G \ base_faults` into the flat arrays, plus the optional
    /// label/preserver artifacts.
    ///
    /// # Panics
    ///
    /// Panics if a serving source or base fault edge is out of range or
    /// the graph has `u32::MAX` or more vertices/edges. Control planes
    /// fed untrusted configuration should use
    /// [`SnapshotBuilder::try_build`] instead.
    pub fn build(self) -> OracleSnapshot<C> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible twin of [`SnapshotBuilder::build`]: validates the
    /// configuration against the graph and returns a [`BuildError`]
    /// instead of panicking.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::generators;
    /// use rsp_oracle::{BuildError, OracleSnapshot};
    ///
    /// let g = generators::petersen();
    /// let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    /// let err = OracleSnapshot::builder(&scheme).sources([99]).try_build();
    /// assert_eq!(err.unwrap_err(), BuildError::SourceOutOfRange { source: 99, n: 10 });
    /// ```
    pub fn try_build(self) -> Result<OracleSnapshot<C>, BuildError> {
        let scheme = self.scheme.clone();
        let g = scheme.graph();
        let n = g.n();
        if n >= NONE as usize || g.m() >= NONE as usize {
            return Err(BuildError::GraphTooLarge { n, m: g.m() });
        }
        if let Some(edge) = self.base_faults.iter().find(|&e| e >= g.m()) {
            return Err(BuildError::BaseFaultOutOfRange { edge, m: g.m() });
        }

        let requested: Vec<Vertex> = self.sources.unwrap_or_else(|| g.vertices().collect());
        let mut source_row = vec![NONE; n];
        let mut sources = Vec::with_capacity(requested.len());
        for &s in &requested {
            if s >= n {
                return Err(BuildError::SourceOutOfRange { source: s, n });
            }
            if source_row[s] == NONE {
                source_row[s] = sources.len() as u32;
                sources.push(s);
            }
        }

        let mut rows = Vec::with_capacity(sources.len());
        let mut scratch = SearchScratch::<C>::with_capacity(n);
        for &s in &sources {
            scheme.spt_into(s, &self.base_faults, &mut scratch);
            let mut row: TreeRow<C> = TreeRow::unreached(n);
            for v in g.vertices() {
                let Some(h) = scratch.hops(v) else { continue };
                row.hops[v] = h;
                if let Some(c) = scratch.cost(v) {
                    row.costs[v].clone_from(c);
                }
                if let Some((p, e)) = scratch.parent(v) {
                    row.parent_vertex[v] = p as u32;
                    row.parent_edge[v] = e as u32;
                }
            }
            rows.push(Arc::new(row));
        }

        let labels = self.label_faults.map(|f| build_labeling(&scheme, f));
        let preserver = self.preserver_faults.map(|f| ft_sv_preserver(&scheme, &sources, f));

        let quarantined = vec![false; sources.len()];
        Ok(OracleSnapshot {
            scheme,
            version: self.version,
            base_faults: self.base_faults,
            sources,
            source_row,
            rows,
            quarantined,
            labels,
            preserver,
        })
    }
}

impl<C: PathCost + 'static> OracleSnapshot<C> {
    /// Starts building a snapshot from a compiled tiebreaking scheme.
    ///
    /// The scheme is cloned into the snapshot, so the snapshot outlives
    /// the builder's borrow and can be shipped across threads.
    pub fn builder(scheme: &ExactScheme<C>) -> SnapshotBuilder<'_, C> {
        SnapshotBuilder::new(scheme)
    }

    /// The underlying fault-free graph `G`.
    pub fn graph(&self) -> &Graph {
        self.scheme.graph()
    }

    /// The compiled tiebreaking scheme the snapshot serves.
    pub fn scheme(&self) -> &ExactScheme<C> {
        &self.scheme
    }

    /// The application-chosen version tag (see
    /// [`SnapshotBuilder::version`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The fault set baked into every canonical tree (see
    /// [`SnapshotBuilder::base_faults`]); empty for plain snapshots.
    /// Queries answer against `G \ (base_faults ∪ F_query)`.
    pub fn base_faults(&self) -> &FaultSet {
        &self.base_faults
    }

    /// The serving sources, in the order their tree rows are stored.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }

    /// `true` iff `s` has a precomputed canonical tree in this snapshot.
    pub fn serves(&self, s: Vertex) -> bool {
        self.row_of(s).is_some()
    }

    /// The Theorem 30 fault labels, if compiled
    /// ([`SnapshotBuilder::fault_labels`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::generators;
    /// use rsp_oracle::OracleSnapshot;
    ///
    /// let g = generators::petersen();
    /// let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
    /// let snap = OracleSnapshot::builder(&scheme).fault_labels(0).build();
    /// let labels = snap.fault_labels().unwrap();
    /// // Distance recovered from two labels + the fault description only:
    /// assert_eq!(labels.query(0, 1, &[(0, 1)]), Some(4));
    /// ```
    pub fn fault_labels(&self) -> Option<&DistanceLabeling> {
        self.labels.as_ref()
    }

    /// The Theorem 26 `S × V` preserver over the serving sources, if
    /// compiled ([`SnapshotBuilder::preserver`]).
    pub fn preserver(&self) -> Option<&Preserver> {
        self.preserver.as_ref()
    }

    pub(crate) fn row_of(&self, s: Vertex) -> Option<usize> {
        let row = *self.source_row.get(s)?;
        (row != NONE).then_some(row as usize)
    }

    /// `true` iff `s`'s tree row is quarantined: the integrity scrubber
    /// ([`crate::scrub`]) caught its flat arrays disagreeing with the
    /// exact engine and fenced it off. Quarantined rows still answer
    /// *correctly* — [`OracleSnapshot::try_query`] routes them through
    /// the engine fallback — they just lose the zero-traversal fast
    /// path until repaired. Always `false` for non-serving sources.
    pub fn is_quarantined(&self, s: Vertex) -> bool {
        self.row_of(s).is_some_and(|row| self.quarantined[row])
    }

    /// How many tree rows are currently quarantined (see
    /// [`OracleSnapshot::is_quarantined`]). Zero for freshly built
    /// snapshots; nonzero only while the scrubber has detected
    /// corruption it has not yet healed.
    pub fn quarantined_rows(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// Marks / unmarks `s`'s row as quarantined (scrubber seam).
    /// Returns `false` if `s` has no row.
    pub(crate) fn set_row_quarantined(&mut self, s: Vertex, quarantined: bool) -> bool {
        match self.row_of(s) {
            Some(row) => {
                self.quarantined[row] = quarantined;
                true
            }
            None => false,
        }
    }

    /// Replaces `s`'s tree row with a freshly recomputed one and lifts
    /// its quarantine (scrubber repair seam). Returns `false` if `s`
    /// has no row.
    pub(crate) fn replace_row(&mut self, s: Vertex, row: TreeRow<C>) -> bool {
        match self.row_of(s) {
            Some(i) => {
                self.rows[i] = Arc::new(row);
                self.quarantined[i] = false;
                true
            }
            None => false,
        }
    }

    /// `true` iff some fault edge lies on `row`'s canonical tree (the
    /// condition under which the precomputed answer cannot be used).
    ///
    /// An edge `e = (u, v)` is a tree edge iff it is the parent edge of
    /// `u` or of `v` — an `O(|F|)` check against the flat arrays, no
    /// per-source edge bitmap needed. Out-of-range ids cannot be tree
    /// edges (and the engines ignore them too).
    fn faults_touch_row(&self, row: usize, faults: &FaultSet) -> bool {
        let g = self.scheme.graph();
        let r = &self.rows[row];
        faults.iter().any(|e| {
            e < g.m() && {
                let (u, v) = g.endpoints(e);
                r.parent_edge[u] == e as u32 || r.parent_edge[v] == e as u32
            }
        })
    }

    /// `true` iff both snapshots serve `s` **and their tree rows for
    /// `s` are the same physical allocation** (Arc pointer equality) —
    /// the copy-on-write sharing the delta builder ([`crate::delta`])
    /// establishes for rows a change did not touch.
    ///
    /// Independently built snapshots never share rows, even when their
    /// cells are equal; this is a storage predicate, not a value
    /// comparison. The delta test suite uses it to prove "delta commit"
    /// means "patched", not "silently rebuilt".
    pub fn shares_row_storage(&self, other: &OracleSnapshot<C>, s: Vertex) -> bool {
        match (self.row_of(s), other.row_of(s)) {
            (Some(a), Some(b)) => Arc::ptr_eq(&self.rows[a], &other.rows[b]),
            _ => false,
        }
    }

    /// The interned row at `row` (delta-builder seam).
    pub(crate) fn row_arc(&self, row: usize) -> &Arc<TreeRow<C>> {
        &self.rows[row]
    }

    /// Mutable access to the interned row at `row` (delta-builder
    /// seam); patch through [`Arc::make_mut`] to keep copy-on-write.
    pub(crate) fn row_arc_mut(&mut self, row: usize) -> &mut Arc<TreeRow<C>> {
        &mut self.rows[row]
    }

    /// Re-stamps the version tag (delta-builder seam).
    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Re-bases the baked-in fault set (delta-builder seam; the caller
    /// has already re-derived every affected row for the new set).
    pub(crate) fn set_base_faults(&mut self, faults: FaultSet) {
        self.base_faults = faults;
    }

    /// `true` iff the snapshot carries compiled label/preserver
    /// artifacts (which a delta patch cannot keep consistent).
    pub(crate) fn has_derived_artifacts(&self) -> bool {
        self.labels.is_some() || self.preserver.is_some()
    }

    /// The precomputed fault-free canonical tree rooted at `s`, or
    /// `None` if `s` is not a serving source. Zero-cost: the view
    /// borrows the flat arrays.
    pub fn baseline(&self, s: Vertex) -> Option<TreeView<'_, C>> {
        let row = self.row_of(s)?;
        Some(TreeView { inner: ViewInner::Baseline { snap: self, row, source: s } })
    }

    /// Answers the `(s, · , F)` query: the canonical selected tree from
    /// `s` in `G \ (base_faults ∪ F)`, as a borrowed [`TreeView`].
    ///
    /// **Fast path** (no traversal, no allocation): if `s` is a serving
    /// source, its row is not quarantined by the integrity scrubber
    /// ([`OracleSnapshot::is_quarantined`]), and no fault edge lies on
    /// its canonical tree, the precomputed tree *is* the answer — removing non-tree edges
    /// changes no selected shortest path (the unique minimum-cost paths
    /// survive and nothing cheaper appears). **Engine path** otherwise:
    /// an exact search in `G* \ (base ∪ F)` inside `scratch`,
    /// allocation-free once the scratch is warm (snapshots with
    /// non-empty [`OracleSnapshot::base_faults`] allocate one temporary
    /// union set on this path). Both paths return answers
    /// byte-identical to [`rsp_core::Rpts::tree_from_with`].
    ///
    /// # Panics
    ///
    /// Panics if `s` or a fault edge id is out of range. Serving
    /// boundaries handling untrusted wire input should use
    /// [`OracleSnapshot::try_query`] instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultSet, SearchScratch};
    /// use rsp_oracle::OracleSnapshot;
    ///
    /// let g = generators::grid(4, 4);
    /// let scheme = RandomGridAtw::theorem20(&g, 42).into_scheme();
    /// let snap = OracleSnapshot::builder(&scheme).build();
    /// let mut scratch = SearchScratch::with_capacity(g.n());
    ///
    /// // Fail an edge on the selected 0 → 15 route: the query re-routes
    /// // (engine path) but the distance in the 4×4 grid is unchanged.
    /// let view = snap.query(0, &FaultSet::empty(), &mut scratch);
    /// let (u, v) = view.path_to(15).unwrap().steps().next().unwrap();
    /// let first_hop = g.edge_between(u, v).unwrap();
    /// let view = snap.query(0, &FaultSet::single(first_hop), &mut scratch);
    /// assert!(!view.from_baseline());
    /// assert_eq!(view.dist(15), Some(6));
    /// ```
    pub fn query<'q>(
        &'q self,
        s: Vertex,
        faults: &FaultSet,
        scratch: &'q mut SearchScratch<C>,
    ) -> TreeView<'q, C> {
        self.try_query(s, faults, scratch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible twin of [`OracleSnapshot::query`]: a malformed
    /// query — out-of-range source, out-of-range edge id in the fault
    /// list — returns a [`QueryError`] instead of panicking, so one bad
    /// wire frame cannot take down a serving thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_core::RandomGridAtw;
    /// use rsp_graph::{generators, FaultSet, SearchScratch};
    /// use rsp_oracle::{OracleSnapshot, QueryError};
    ///
    /// let g = generators::petersen(); // 10 vertices, 15 edges
    /// let scheme = RandomGridAtw::theorem20(&g, 1).into_scheme();
    /// let snap = OracleSnapshot::builder(&scheme).build();
    /// let mut scratch = SearchScratch::with_capacity(g.n());
    ///
    /// let err = snap.try_query(42, &FaultSet::empty(), &mut scratch).map(|_| ());
    /// assert_eq!(err.unwrap_err(), QueryError::SourceOutOfRange { source: 42, n: 10 });
    /// let err = snap.try_query(0, &FaultSet::single(15), &mut scratch).map(|_| ());
    /// assert_eq!(err.unwrap_err(), QueryError::FaultOutOfRange { edge: 15, m: 15 });
    /// assert!(snap.try_query(0, &FaultSet::single(14), &mut scratch).is_ok());
    /// ```
    pub fn try_query<'q>(
        &'q self,
        s: Vertex,
        faults: &FaultSet,
        scratch: &'q mut SearchScratch<C>,
    ) -> Result<TreeView<'q, C>, QueryError> {
        let g = self.scheme.graph();
        if s >= g.n() {
            return Err(QueryError::SourceOutOfRange { source: s, n: g.n() });
        }
        if let Some(edge) = faults.iter().find(|&e| e >= g.m()) {
            return Err(QueryError::FaultOutOfRange { edge, m: g.m() });
        }
        if let Some(row) = self.row_of(s) {
            if !self.quarantined[row] && !self.faults_touch_row(row, faults) {
                return Ok(TreeView { inner: ViewInner::Baseline { snap: self, row, source: s } });
            }
        }
        let effective = self.effective_faults(faults);
        rsp_graph::dijkstra_into(g, s, &effective, self.scheme.directed_costs(), scratch);
        Ok(TreeView { inner: ViewInner::Searched { scratch } })
    }

    /// [`OracleSnapshot::try_query`] from a **raw wire edge-id list**:
    /// normalizes (sorts, deduplicates) the ids into `faults_buf` via
    /// [`FaultSet::set_from`], then validates and answers. The reusable
    /// buffer keeps the path allocation-free once warm; see
    /// [`crate::OracleReader::try_query_edges`] for the per-thread
    /// serving wrapper that owns one.
    pub fn try_query_edges<'q>(
        &'q self,
        s: Vertex,
        edges: &[EdgeId],
        faults_buf: &mut FaultSet,
        scratch: &'q mut SearchScratch<C>,
    ) -> Result<TreeView<'q, C>, QueryError> {
        faults_buf.set_from(edges.iter().copied());
        // `faults_buf` is only read (never stored) by the query; reborrow
        // immutably so the returned view can borrow `scratch` alone.
        self.try_query(s, &*faults_buf, scratch)
    }

    /// The faults the engine path must honor: the per-query set alone,
    /// or its union with the baked-in base faults.
    fn effective_faults<'f>(&self, faults: &'f FaultSet) -> Cow<'f, FaultSet> {
        if self.base_faults.is_empty() {
            Cow::Borrowed(faults)
        } else {
            let mut all = self.base_faults.clone();
            for e in faults.iter() {
                all.insert(e);
            }
            Cow::Owned(all)
        }
    }

    /// Fault-injection seam: deliberately corrupts one reachable
    /// non-source cell of `s`'s tree row (hop count bumped by 1), so a
    /// downstream cross-check against the batch engine MUST reject this
    /// snapshot. Returns `false` if `s` has no row or no corruptible
    /// cell. Only the churn pipeline's injection probe calls this —
    /// it is how the test harness proves the cross-check gate works.
    pub(crate) fn corrupt_row_for_injection(&mut self, s: Vertex) -> bool {
        let Some(row) = self.row_of(s) else { return false };
        let n = self.scheme.graph().n();
        let r = Arc::make_mut(&mut self.rows[row]);
        for v in 0..n {
            if v != s && r.hops[v] != NONE {
                r.hops[v] += 1;
                return true;
            }
        }
        false
    }
}

/// How a [`TreeView`] answer was produced.
enum ViewInner<'q, C> {
    /// Borrowed straight from the snapshot's flat baseline arrays.
    Baseline { snap: &'q OracleSnapshot<C>, row: usize, source: Vertex },
    /// Computed by the exact engine into the caller's scratch.
    Searched { scratch: &'q SearchScratch<C> },
}

/// One query's answer: the selected tree `π(s, · | F)`, borrowed — from
/// the snapshot's precomputed arrays or from the caller's scratch —
/// so reading distances, costs, and parents allocates nothing.
///
/// [`TreeView::path_to`] materializes an owned [`Path`] and is the one
/// allocating accessor; hot paths should read [`TreeView::parent`] /
/// [`TreeView::dist`] / [`TreeView::cost`] instead.
pub struct TreeView<'q, C> {
    inner: ViewInner<'q, C>,
}

impl<C: PathCost + 'static> TreeView<'_, C> {
    /// The query's source vertex `s`.
    pub fn source(&self) -> Vertex {
        match &self.inner {
            ViewInner::Baseline { source, .. } => *source,
            ViewInner::Searched { scratch } => scratch.source(),
        }
    }

    /// `true` iff this answer came from the precomputed baseline tree
    /// (the zero-traversal fast path).
    pub fn from_baseline(&self) -> bool {
        matches!(self.inner, ViewInner::Baseline { .. })
    }

    /// `true` iff `t` is reachable from the source in `G \ F`.
    pub fn reached(&self, t: Vertex) -> bool {
        match &self.inner {
            ViewInner::Baseline { snap, row, .. } => {
                t < snap.graph().n() && snap.rows[*row].hops[t] != NONE
            }
            ViewInner::Searched { scratch } => scratch.reached(t),
        }
    }

    /// Hop count (= unweighted distance `dist_{G\F}(s, t)`, since
    /// selected paths are shortest) of the selected path to `t`, or
    /// `None` if unreachable.
    pub fn dist(&self, t: Vertex) -> Option<u32> {
        match &self.inner {
            ViewInner::Baseline { snap, row, .. } => {
                let h = *snap.rows[*row].hops.get(t)?;
                (h != NONE).then_some(h)
            }
            ViewInner::Searched { scratch } => scratch.hops(t),
        }
    }

    /// Exact perturbed cost of the selected path to `t`, or `None` if
    /// unreachable.
    pub fn cost(&self, t: Vertex) -> Option<&C> {
        match &self.inner {
            ViewInner::Baseline { snap, row, .. } => {
                let r = &snap.rows[*row];
                (*r.hops.get(t)? != NONE).then(|| &r.costs[t])
            }
            ViewInner::Searched { scratch } => scratch.cost(t),
        }
    }

    /// Parent of `t` in the selected tree as `(vertex, edge id)`, or
    /// `None` for the source and unreachable vertices. This is the
    /// routing next hop *toward the source* — the MPLS-table view.
    pub fn parent(&self, t: Vertex) -> Option<(Vertex, EdgeId)> {
        match &self.inner {
            ViewInner::Baseline { snap, row, .. } => {
                let r = &snap.rows[*row];
                let p = *r.parent_vertex.get(t)?;
                (p != NONE).then(|| (p as Vertex, r.parent_edge[t] as EdgeId))
            }
            ViewInner::Searched { scratch } => scratch.parent(t),
        }
    }

    /// The selected path `π(s, t | F)`, or `None` if `t` is unreachable.
    ///
    /// Allocates the returned [`Path`] — use the zero-allocation
    /// accessors on the hot path and this for result materialization.
    pub fn path_to(&self, t: Vertex) -> Option<Path> {
        match &self.inner {
            ViewInner::Baseline { source, .. } => {
                if !self.reached(t) {
                    return None;
                }
                let mut verts = vec![t];
                let mut cur = t;
                while cur != *source {
                    let (p, _) = self.parent(cur).expect("reached non-source has a parent");
                    verts.push(p);
                    cur = p;
                }
                verts.reverse();
                Some(Path::new(verts))
            }
            ViewInner::Searched { scratch } => scratch.path_to(t),
        }
    }
}
