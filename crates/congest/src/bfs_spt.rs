//! Lemma 34: distributed shortest-path tree under a tiebreaking weight
//! function, in `O(D)` rounds with `O(1)` messages per edge.
//!
//! Because a tiebreaking weight function only perturbs weights *within* a
//! hop class, the SPT of `G*` is layered exactly like a BFS tree: all
//! vertices at unweighted distance `k` from the source settle in wave
//! `k`. The protocol is therefore BFS flooding where each settled vertex
//! announces its exact perturbed distance once, and an unsettled vertex
//! picks as parent the announcing neighbor minimizing
//! `dist*(s, w) + ω(w, v)` — each vertex announces exactly once, so each
//! edge carries at most two messages in the entire run.

use std::collections::HashMap;

use rsp_core::ExactScheme;
use rsp_graph::{EdgeId, Graph, Vertex};

use crate::sim::{MsgSize, Network, NodeCtx, Outbox, Program, RunStats};

/// The single message of the protocol: "my exact perturbed distance from
/// the source is `dist`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SptMsg {
    /// Scaled exact distance `dist*(s, v)`.
    pub dist: u128,
}

impl MsgSize for SptMsg {
    fn bits(&self) -> usize {
        (128 - self.dist.leading_zeros() as usize).max(1)
    }
}

/// Core per-node SPT state, shared between the single-instance program and
/// the multi-instance scheduler.
#[derive(Clone, Debug)]
pub(crate) struct SptState {
    /// Scaled cost of traversing the incident edge *from* each neighbor
    /// into this node — `ω(w, v)` with `v` = this node.
    pub(crate) weight_in: HashMap<Vertex, u128>,
    pub(crate) dist: Option<u128>,
    pub(crate) parent: Option<Vertex>,
    pub(crate) announced: bool,
}

impl SptState {
    pub(crate) fn source() -> Self {
        SptState { weight_in: HashMap::new(), dist: Some(0), parent: None, announced: false }
    }

    pub(crate) fn node() -> Self {
        SptState { weight_in: HashMap::new(), dist: None, parent: None, announced: false }
    }

    /// Processes announcements, keeping the exact minimum; returns the
    /// distance to (re-)announce if the estimate is new or improved.
    ///
    /// In the lone-instance setting announcements arrive in perfect BFS
    /// waves and no estimate ever improves after settling — each node
    /// announces exactly once, which is Lemma 34's `O(1)` messages per
    /// edge. Under the random-delay scheduler queueing can skew waves, so
    /// the state is written to converge under arbitrary delays
    /// (distance-vector style): any improvement triggers one
    /// re-announcement, and exact unique weights guarantee the fixpoint is
    /// the centralized SPT.
    pub(crate) fn on_round(&mut self, inbox: &[(Vertex, u128)]) -> Option<u128> {
        let mut improved = false;
        for &(from, d) in inbox {
            let w =
                *self.weight_in.get(&from).expect("announcements only arrive over incident edges");
            let cand = d + w;
            if self.dist.is_none() || cand < self.dist.expect("checked") {
                self.dist = Some(cand);
                self.parent = Some(from);
                improved = true;
            }
        }
        if self.dist.is_some() && (!self.announced || improved) {
            self.announced = true;
            self.dist
        } else {
            None
        }
    }
}

/// The per-node program for one SPT construction.
#[derive(Clone, Debug)]
pub struct SptProgram {
    state: SptState,
}

impl Program<SptMsg> for SptProgram {
    fn step(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, SptMsg)], out: &mut Outbox<SptMsg>) {
        let plain: Vec<(Vertex, u128)> = inbox.iter().map(|&(f, m)| (f, m.dist)).collect();
        if let Some(dist) = self.state.on_round(&plain) {
            for &nb in ctx.neighbors {
                out.send(nb, SptMsg { dist });
            }
        }
    }

    fn pending(&self, _round: usize) -> bool {
        // Only an unannounced settled node (the source at round 0) acts
        // spontaneously.
        self.state.dist.is_some() && !self.state.announced
    }
}

/// Output of [`distributed_spt`].
#[derive(Clone, Debug)]
pub struct DistributedSptResult {
    /// Parent of each vertex in the constructed tree.
    pub parent: Vec<Option<Vertex>>,
    /// Exact perturbed distance of each vertex (scaled), `None` if
    /// unreachable.
    pub dist: Vec<Option<u128>>,
    /// The tree's edge ids in the host graph.
    pub tree_edges: Vec<EdgeId>,
    /// Round/message statistics of the run.
    pub stats: RunStats,
}

/// Builds the per-node incident weight tables from a scheme.
pub(crate) fn weight_tables(g: &Graph, scheme: &ExactScheme<u128>) -> Vec<HashMap<Vertex, u128>> {
    g.vertices()
        .map(|v| g.neighbors(v).map(|(w, e)| (w, scheme.edge_cost(e, w, v))).collect())
        .collect()
}

/// Runs the Lemma 34 protocol: an SPT rooted at `source` under the exact
/// weights of `scheme`, distributedly.
///
/// # Errors
///
/// Propagates [`crate::CongestionError`] (the protocol itself never
/// violates the quota; an error indicates a bug).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn distributed_spt(
    g: &Graph,
    scheme: &ExactScheme<u128>,
    source: Vertex,
) -> Result<DistributedSptResult, crate::CongestionError> {
    assert!(source < g.n(), "source out of range");
    let mut tables = weight_tables(g, scheme);
    let programs: Vec<SptProgram> = g
        .vertices()
        .map(|v| {
            let mut state = if v == source { SptState::source() } else { SptState::node() };
            state.weight_in = std::mem::take(&mut tables[v]);
            SptProgram { state }
        })
        .collect();
    let mut net = Network::new(g, programs);
    let stats = net.run(2 * g.n() + 4)?;
    let programs = net.into_programs();
    let parent: Vec<Option<Vertex>> = programs.iter().map(|p| p.state.parent).collect();
    let dist: Vec<Option<u128>> = programs.iter().map(|p| p.state.dist).collect();
    let tree_edges = parent
        .iter()
        .enumerate()
        .filter_map(|(v, p)| p.map(|u| g.edge_between(u, v).expect("tree edges exist")))
        .collect();
    Ok(DistributedSptResult { parent, dist, tree_edges, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_core::RandomGridAtw;
    use rsp_graph::{diameter, generators, FaultSet};

    fn check_matches_centralized(g: &Graph, seed: u64, source: Vertex) {
        let scheme = RandomGridAtw::theorem20(g, seed).into_scheme();
        let result = distributed_spt(g, &scheme, source).unwrap();
        let central = scheme.spt(source, &FaultSet::empty());
        for v in g.vertices() {
            assert_eq!(result.dist[v].as_ref(), central.cost(v), "dist of {v}");
            if v != source {
                assert_eq!(result.parent[v], central.parent(v).map(|(p, _)| p), "parent of {v}");
            }
        }
    }

    #[test]
    fn matches_centralized_on_grid() {
        let g = generators::grid(4, 5);
        check_matches_centralized(&g, 1, 0);
        check_matches_centralized(&g, 1, 13);
    }

    #[test]
    fn matches_centralized_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::connected_gnm(40, 100, seed);
            check_matches_centralized(&g, seed + 10, (seed as usize * 7) % 40);
        }
    }

    #[test]
    fn lemma34_round_and_message_bounds() {
        let g = generators::torus(5, 5);
        let scheme = RandomGridAtw::theorem20(&g, 5).into_scheme();
        let result = distributed_spt(&g, &scheme, 0).unwrap();
        let d = diameter(&g) as usize;
        assert!(
            result.stats.rounds <= d + 3,
            "O(D) rounds: got {} for D = {d}",
            result.stats.rounds
        );
        assert!(
            result.stats.max_messages_per_edge <= 2,
            "O(1) messages per edge: got {}",
            result.stats.max_messages_per_edge
        );
    }

    #[test]
    fn tree_spans_component() {
        let g = generators::petersen();
        let scheme = RandomGridAtw::theorem20(&g, 7).into_scheme();
        let result = distributed_spt(&g, &scheme, 3).unwrap();
        assert_eq!(result.tree_edges.len(), g.n() - 1);
        assert!(result.dist.iter().all(|d| d.is_some()));
    }

    #[test]
    fn message_width_is_logarithmic() {
        // Scaled perturbed distances fit comfortably in O(log n + log K)
        // bits; with the Corollary 22 grid this is the paper's O(f log n).
        let g = generators::grid(5, 5);
        let atw = RandomGridAtw::corollary22(&g, 1, 1, 2);
        let bits_per_weight = atw.bits_per_weight();
        let scheme = atw.into_scheme();
        let result = distributed_spt(&g, &scheme, 0).unwrap();
        let bound = bits_per_weight + 2 * (usize::BITS - g.n().leading_zeros()) as usize;
        assert!(
            result.stats.max_message_bits <= bound,
            "message bits {} exceed O(f log n) bound {bound}",
            result.stats.max_message_bits
        );
    }
}
