//! Churn-pipeline robustness: hostile wire input, injected build
//! failures, degraded serving, escalation, and deterministic recovery.
//!
//! The contract under test (ISSUE 7): whatever the fault-event stream
//! does — byte garbage, duplicates, repairs of healthy edges, reorders,
//! drops — and whatever the builder does — panics, corrupted output —
//! the pipeline never panics, never publishes a snapshot disagreeing
//! with the exact engines on the accepted-event fault state, and keeps
//! serving the last good snapshot whenever it cannot publish a new one.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use rsp_core::{RandomGridAtw, Rpts};
use rsp_graph::{generators, FaultEvent, FaultSet, FaultState, Graph};
use rsp_oracle::churn::inject::{
    flaky_builder, random_trace, random_trace_with, verify_converged, verify_published,
    InjectionPlan, StreamInjector, TraceOptions,
};
use rsp_oracle::churn::{BuildFailure, ChurnConfig, ChurnPipeline};

type Scheme = rsp_core::ExactScheme<u128>;

fn scheme_for(g: &Graph, wseed: u64) -> Scheme {
    RandomGridAtw::theorem20(g, wseed).into_scheme()
}

/// A config with instant, recorded backoff — robustness tests assert
/// the schedule instead of sleeping it.
fn test_config() -> ChurnConfig {
    ChurnConfig { backoff_base: Duration::from_millis(5), ..ChurnConfig::default() }
}

fn recording_sleeper(pipeline: &mut ChurnPipeline<u128>) -> Arc<Mutex<Vec<Duration>>> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    pipeline.set_sleeper(move |d| sink.lock().unwrap().push(d));
    log
}

/// An independent fold of the journal — deliberately *not* via the
/// pipeline's own state — for cross-validating what "accepted" means.
fn independent_fold(g: &Graph, journal: &[FaultEvent]) -> FaultSet {
    let mut state = FaultState::for_graph(g);
    for &ev in journal {
        state.apply(ev).expect("journaled events re-apply cleanly in order");
    }
    state.faults().clone()
}

// ---------------------------------------------------------------------
// Deterministic integration scenarios
// ---------------------------------------------------------------------

/// The full attack: a valid trace mangled by the hostile injector, fed
/// as raw bytes, committed, and verified cell-for-cell — including a
/// `tree_from_with` comparison on the accepted-event fault state.
#[test]
fn hostile_wire_stream_converges_to_accepted_state() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);
    let mut reader = pipeline.reader();

    let trace = random_trace(&g, 60, 0xdead_beef);
    let mut injector = StreamInjector::new(InjectionPlan::hostile(0xdead_beef));
    let frames = injector.perturb(&trace);
    let mut accepted = 0u64;
    for frame in &frames {
        if pipeline.ingest_wire(frame).is_ok() {
            accepted += 1;
        }
    }
    // The hostile mix must actually have quarantined something, or the
    // test lost its teeth.
    assert!(pipeline.quarantined().len() > 5, "injection produced no quarantines");
    assert_eq!(accepted, pipeline.journal().len() as u64);

    let report = pipeline.commit().unwrap();
    assert!(report.published);
    verify_converged(&pipeline).unwrap();

    // The published base faults are exactly the independent fold of the
    // journal, and the served tree equals `tree_from_with` on it.
    let folded = independent_fold(&g, pipeline.journal());
    let snapshot = pipeline.published_snapshot();
    assert_eq!(snapshot.base_faults(), &folded);
    let mut rpts_scratch = scheme.new_scratch();
    for s in g.vertices() {
        let tree = scheme.tree_from_with(s, &folded, &mut rpts_scratch);
        let view = reader.query(s, &FaultSet::empty());
        for v in g.vertices() {
            assert_eq!(view.dist(v), tree.dist(v), "dist s{s} v{v}");
            assert_eq!(view.parent(v), tree.parent(v), "parent s{s} v{v}");
        }
    }
}

/// Builder panics beyond every retry *and* the full rebuild: the commit
/// stalls, readers keep answering from the last good snapshot, health
/// reports the degradation honestly — and the next healthy commit heals.
#[test]
fn stalled_commit_serves_last_good_snapshot_and_recovers() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);
    let mut reader = pipeline.reader();
    let healthy_answer = reader.query(0, &FaultSet::empty()).dist(15);
    let epoch_before = pipeline.oracle().epoch();

    // 3 incremental attempts + 1 full rebuild, all panicking.
    pipeline.set_build_probe(Some(flaky_builder(4, 0)));
    let e = g.edge_between(0, 1).unwrap();
    pipeline.ingest(FaultEvent::Arrive(e)).unwrap();
    let stalled = pipeline.commit().unwrap_err();
    assert_eq!(stalled.attempts, 4);
    assert!(matches!(stalled.last_failure, BuildFailure::Panicked(_)));

    // Degraded serving: same epoch, same answers, staleness exposed.
    assert_eq!(pipeline.oracle().epoch(), epoch_before);
    assert!(!reader.refresh(), "no new epoch was published");
    assert_eq!(reader.query(0, &FaultSet::empty()).dist(15), healthy_answer);
    let health = pipeline.health();
    assert!(health.degraded);
    assert_eq!(health.pending_events, 1);
    assert_eq!(health.consecutive_failures, 4);
    assert_eq!(health.full_rebuilds, 1);
    assert!(health.last_failure.unwrap().contains("panicked"));

    // The probe is exhausted: the next commit cycle publishes and heals.
    let report = pipeline.commit().unwrap();
    assert!(report.published);
    assert_eq!(pipeline.oracle().epoch(), epoch_before + 1);
    verify_converged(&pipeline).unwrap();
    assert_eq!(reader.query(0, &FaultSet::empty()).dist(1), Some(3), "routes around the fault");
}

/// Exactly the retry budget fails incrementally: the escalation path —
/// fault state re-derived from the journal, built from scratch —
/// publishes, and the report says so.
#[test]
fn full_rebuild_escalation_publishes() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);
    pipeline.set_build_probe(Some(flaky_builder(3, 0)));
    pipeline.ingest(FaultEvent::Arrive(0)).unwrap();
    let report = pipeline.commit().unwrap();
    assert!(report.published);
    assert!(report.full_rebuild);
    assert_eq!(report.attempts, 4);
    assert_eq!(pipeline.health().full_rebuilds, 1);
    verify_converged(&pipeline).unwrap();
}

/// The cross-check gate: a build whose output is corrupted must be
/// rejected before publication — the mismatching snapshot never reaches
/// readers, and the retry publishes a correct one.
#[test]
fn cross_check_rejects_corrupted_snapshot() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);
    let epoch_before = pipeline.oracle().epoch();

    pipeline.set_build_probe(Some(flaky_builder(0, 1)));
    pipeline.ingest(FaultEvent::Arrive(0)).unwrap();
    let report = pipeline.commit().unwrap();
    assert_eq!(report.attempts, 2, "first build was rejected by the cross-check");
    assert!(report.published);
    // Exactly one publish happened: the corrupt snapshot was discarded,
    // not swapped in and replaced.
    assert_eq!(pipeline.oracle().epoch(), epoch_before + 1);
    verify_converged(&pipeline).unwrap();
}

/// The backoff schedule is exponential from `backoff_base` and capped
/// at `backoff_cap` — asserted through the recording sleeper, not
/// wall-clock.
#[test]
fn backoff_schedule_is_exponential_and_capped() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 7);
    let config = ChurnConfig {
        retry_budget: 4,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(35),
        ..ChurnConfig::default()
    };
    let mut pipeline = ChurnPipeline::with_config(&scheme, config).unwrap();
    let log = recording_sleeper(&mut pipeline);

    pipeline.set_build_probe(Some(flaky_builder(4, 0)));
    pipeline.ingest(FaultEvent::Arrive(0)).unwrap();
    pipeline.commit().unwrap();
    let slept = log.lock().unwrap().clone();
    assert_eq!(
        slept,
        vec![
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(35), // capped from 40
            Duration::from_millis(35), // capped from 80
        ]
    );
}

/// Crash recovery: replaying the journal reconstructs a pipeline whose
/// fault state, published sequence, and snapshot cells are identical.
#[test]
fn journal_replay_is_deterministic() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut original = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut original);
    let trace = random_trace(&g, 40, 0x0bad_5eed);
    let mut injector = StreamInjector::new(InjectionPlan::hostile(0x0bad_5eed));
    for frame in injector.perturb(&trace) {
        let _ = original.ingest_wire(&frame);
    }
    original.commit().unwrap();

    let recovered = ChurnPipeline::replay(&scheme, original.journal(), test_config()).unwrap();
    assert_eq!(recovered.fault_state(), original.fault_state());
    assert_eq!(recovered.health().published_seq, original.health().published_seq);
    assert_eq!(
        recovered.published_snapshot().base_faults(),
        original.published_snapshot().base_faults()
    );
    verify_converged(&recovered).unwrap();
    // Cell-for-cell equality of the two served snapshots.
    let (a, b) = (original.published_snapshot(), recovered.published_snapshot());
    for s in g.vertices() {
        let (ra, rb) = (a.baseline(s).unwrap(), b.baseline(s).unwrap());
        for v in g.vertices() {
            assert_eq!(ra.dist(v), rb.dist(v));
            assert_eq!(ra.parent(v), rb.parent(v));
            assert_eq!(ra.cost(v), rb.cost(v));
        }
    }
}

/// Every quarantine carries the right reason code, and quarantined
/// events leave the fault state untouched.
#[test]
fn quarantine_reason_codes() {
    let g = generators::petersen(); // 15 edges
    let scheme = scheme_for(&g, 7);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);

    assert_eq!(pipeline.ingest(FaultEvent::Arrive(3)).unwrap(), 1);
    let dup = pipeline.ingest(FaultEvent::Arrive(3)).unwrap_err();
    assert_eq!(dup.code(), "duplicate-arrival");
    let oor = pipeline.ingest(FaultEvent::Arrive(15)).unwrap_err();
    assert_eq!(oor.code(), "edge-out-of-range");
    let ghost = pipeline.ingest(FaultEvent::Repair(4)).unwrap_err();
    assert_eq!(ghost.code(), "repair-without-fault");
    let short = pipeline.ingest_wire(&[0x01, 0x00]).unwrap_err();
    assert_eq!(short.code(), "bad-length");
    let tag = pipeline.ingest_wire(&[0xff; 9]).unwrap_err();
    assert_eq!(tag.code(), "bad-tag");
    let huge = FaultEvent::Arrive(0).encode();
    let mut overflow = huge;
    overflow[1..].copy_from_slice(&u64::MAX.to_le_bytes());
    let code = pipeline.ingest_wire(&overflow).unwrap_err().code();
    assert!(code == "edge-overflow" || code == "edge-out-of-range");

    // One accepted event, five-plus quarantined; state only holds edge 3.
    assert_eq!(pipeline.journal().len(), 1);
    assert!(pipeline.quarantined().len() >= 5);
    assert_eq!(pipeline.fault_state().faults(), &FaultSet::single(3));
    pipeline.commit().unwrap();
    verify_converged(&pipeline).unwrap();
}

/// Regression (ISSUE 8): a dense same-edge burst — arrive, repair,
/// arrive of one edge — folded inside a **single** commit window. The
/// plain generator never produced this interleaving, so nothing
/// exercised a batch whose net effect re-faults an edge the same batch
/// repaired. The committed snapshot must fold the *final* state (edge
/// faulted) and match the engines cell-for-cell.
#[test]
fn same_edge_arrive_repair_arrive_in_one_batch() {
    let g = generators::grid(4, 4);
    let scheme = scheme_for(&g, 42);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);

    let e = g.edge_between(0, 1).unwrap();
    pipeline.ingest(FaultEvent::Arrive(e)).unwrap();
    pipeline.ingest(FaultEvent::Repair(e)).unwrap();
    pipeline.ingest(FaultEvent::Arrive(e)).unwrap();
    let report = pipeline.commit().unwrap();
    assert!(report.published);
    assert_eq!(report.seq, 3, "all three burst events fold into one epoch");
    assert!(pipeline.published_snapshot().base_faults().contains(e));
    verify_converged(&pipeline).unwrap();

    // And the opposite net effect — burst ending in a repair — lands
    // back on the fault-free state in one batch too.
    pipeline.ingest(FaultEvent::Repair(e)).unwrap();
    pipeline.ingest(FaultEvent::Arrive(e)).unwrap();
    pipeline.ingest(FaultEvent::Repair(e)).unwrap();
    pipeline.commit().unwrap();
    assert!(pipeline.published_snapshot().base_faults().is_empty());
    verify_converged(&pipeline).unwrap();
}

/// An empty commit is a no-op: no build, no epoch bump.
#[test]
fn idle_commit_is_a_noop() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 7);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    let epoch = pipeline.oracle().epoch();
    let report = pipeline.commit().unwrap();
    assert!(!report.published);
    assert_eq!(report.attempts, 0);
    assert_eq!(pipeline.oracle().epoch(), epoch);
}

// ---------------------------------------------------------------------
// Property tests: arbitrary hostile input never panics, never corrupts
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte garbage on the wire: every frame is either
    /// accepted (it decoded to an admissible event) or quarantined;
    /// nothing panics; the committed snapshot matches the engines on
    /// whatever was accepted.
    #[test]
    fn byte_garbage_never_panics_and_converges(
        wseed in any::<u64>(),
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..40),
    ) {
        let g = generators::grid(3, 3);
        let scheme = scheme_for(&g, wseed);
        let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
        recording_sleeper(&mut pipeline);
        for frame in &frames {
            let _ = pipeline.ingest_wire(frame);
        }
        prop_assert_eq!(
            pipeline.journal().len() + pipeline.quarantined().len(),
            frames.len(),
            "every frame is accounted for"
        );
        pipeline.commit().unwrap();
        verify_converged(&pipeline).unwrap();
        prop_assert_eq!(
            pipeline.published_snapshot().base_faults(),
            &independent_fold(&g, pipeline.journal())
        );
    }

    /// Hostile *decoded* event lists — duplicate arrivals, repairs of
    /// healthy edges, ids at and beyond `m` — never panic, and the
    /// published snapshot folds exactly the accepted prefix order.
    #[test]
    fn hostile_event_lists_never_panic_and_converge(
        (n, gseed, wseed) in (4usize..=12, any::<u64>(), any::<u64>()),
        raw in prop::collection::vec((any::<bool>(), 0usize..40), 0..60),
    ) {
        let m = (n - 1 + n / 2).min(n * (n - 1) / 2);
        let g = generators::connected_gnm(n, m, gseed);
        let scheme = scheme_for(&g, wseed);
        let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
        recording_sleeper(&mut pipeline);
        for &(arrive, edge) in &raw {
            let ev = if arrive { FaultEvent::Arrive(edge) } else { FaultEvent::Repair(edge) };
            let _ = pipeline.ingest(ev);
        }
        pipeline.commit().unwrap();
        verify_converged(&pipeline).unwrap();
        prop_assert_eq!(
            pipeline.published_snapshot().base_faults(),
            &independent_fold(&g, pipeline.journal())
        );
        // Out-of-range ids never entered the journal.
        prop_assert!(pipeline.journal().iter().all(|ev| ev.edge() < g.m()));
    }

    /// Bursty traces stay valid (every event admissible in order, the
    /// fault cap held at every prefix) and survive the hostile wire
    /// injector: the pipeline converges on whatever was accepted, dense
    /// same-edge repair bursts included.
    #[test]
    fn bursty_hostile_streams_converge(
        wseed in any::<u64>(),
        tseed in any::<u64>(),
        burst_pct in 10u32..=60,
    ) {
        let g = generators::grid(3, 3);
        let opts = TraceOptions {
            burst: f64::from(burst_pct) / 100.0,
            max_faults: Some(3),
            ..TraceOptions::default()
        };
        let trace = random_trace_with(&g, 40, tseed, opts);
        let mut state = FaultState::for_graph(&g);
        for ev in &trace {
            state.apply(*ev).expect("bursty trace events validate in order");
            prop_assert!(state.len() <= 3, "fault cap violated");
        }
        let scheme = scheme_for(&g, wseed);
        let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
        recording_sleeper(&mut pipeline);
        let mut injector = StreamInjector::new(InjectionPlan::hostile(tseed));
        for frame in injector.perturb(&trace) {
            let _ = pipeline.ingest_wire(&frame);
        }
        pipeline.commit().unwrap();
        verify_converged(&pipeline).unwrap();
        prop_assert_eq!(
            pipeline.published_snapshot().base_faults(),
            &independent_fold(&g, pipeline.journal())
        );
    }

    /// Injected builder panics at arbitrary points never tear state:
    /// once the probe is exhausted the pipeline always converges, and
    /// the panic count shows up in health, not in a crash.
    #[test]
    fn injected_build_panics_always_heal(
        wseed in any::<u64>(),
        tseed in any::<u64>(),
        panics in 0u32..6,
        corrupts in 0u32..3,
    ) {
        let g = generators::grid(3, 3);
        let scheme = scheme_for(&g, wseed);
        let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
        recording_sleeper(&mut pipeline);
        for ev in random_trace(&g, 10, tseed) {
            pipeline.ingest(ev).unwrap();
        }
        pipeline.set_build_probe(Some(flaky_builder(panics, corrupts)));
        // At most two commit cycles exhaust any probe in range: each
        // cycle burns retry_budget + 1 = 4 attempts.
        let first = pipeline.commit();
        if first.is_err() {
            pipeline.commit().unwrap();
        }
        verify_converged(&pipeline).unwrap();
    }
}

/// The `verify_published` helper itself is honest: it must *fail* on a
/// deliberately corrupted snapshot (guards against a vacuous verifier).
#[test]
fn verifier_detects_corruption() {
    let g = generators::grid(3, 3);
    let scheme = scheme_for(&g, 7);
    let mut pipeline = ChurnPipeline::with_config(&scheme, test_config()).unwrap();
    recording_sleeper(&mut pipeline);
    // Sneak a corrupt snapshot past the gate by disabling cross-checks.
    let mut cfg = test_config();
    cfg.cross_check_sources = 0;
    let mut unchecked = ChurnPipeline::with_config(&scheme, cfg).unwrap();
    recording_sleeper(&mut unchecked);
    unchecked.set_build_probe(Some(flaky_builder(0, 1)));
    unchecked.ingest(FaultEvent::Arrive(0)).unwrap();
    unchecked.commit().unwrap();
    assert!(verify_published(&unchecked).is_err(), "corruption must be visible to the verifier");
    // And the checked pipeline rejects the same corruption (sanity).
    pipeline.set_build_probe(Some(flaky_builder(0, 1)));
    pipeline.ingest(FaultEvent::Arrive(0)).unwrap();
    let report = pipeline.commit().unwrap();
    assert_eq!(report.attempts, 2);
    verify_published(&pipeline).unwrap();
}
