//! Exact arithmetic substrate for restorable shortest path tiebreaking.
//!
//! The tiebreaking schemes of Bodwin–Parter (PODC 2021) perturb the unit edge
//! weights of a graph by tiny antisymmetric amounts and then demand *unique*
//! shortest paths in the reweighted graph `G*`. Floating point cannot deliver
//! the required exactness: two distinct perturbed path weights may round to
//! the same `f64`, silently re-introducing the ties the construction exists
//! to remove. This crate therefore provides the exact numeric machinery the
//! rest of the workspace builds on:
//!
//! * [`BigInt`] — a small arbitrary-precision signed integer, sufficient for
//!   the deterministic geometric weights of Theorem 23 (which need
//!   `O(|E|)` bits per weight);
//! * [`PathCost`] — the trait abstracting "a totally ordered cost that can be
//!   accumulated along a path", implemented for the native unsigned integers
//!   (used by the randomized schemes of Theorem 20 / Corollary 22, whose
//!   scaled weights fit in `u128`) and for [`BigInt`];
//! * [`HeapKind`] — the per-cost-type heap policy ([`PathCost::HEAP`])
//!   steering the `rsp-graph` query engine: register-copy costs run on a
//!   flat inline-key lazy heap, heavyweight costs on an indexed
//!   decrease-key heap, with identical results either way.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the guide-level
//! workspace architecture: the crate layering, the three-level query
//! engine (scratch -> batch/checkpoint -> pool/frontier), and the
//! preserver enumeration pipeline.
//!
//! # Paper cross-reference
//!
//! | Module / item | Paper (PAPER.md) |
//! |---|---|
//! | [`PathCost`] | exact scaled-integer substitution for the paper's real-valued weights (DESIGN.md substitution 1) |
//! | `u128` impl | Theorem 20 / Corollary 22 randomized grids (`O(f log n)` bits fit a machine word) |
//! | [`BigInt`] | Theorem 23 deterministic geometric weights (`O(\|E\|)` bits per weight) |
//! | [`PathCost::add_into`] | in-place relaxation arithmetic for the query engine (README "Performance") |
//! | [`PathCost::HEAP`] / [`HeapKind`] | cost-specialized heap policy for the query engine (README "Performance") |
//!
//! # Examples
//!
//! ```
//! use rsp_arith::{BigInt, PathCost};
//!
//! let a = BigInt::from_i128(1) << 200; // 2^200
//! let b = BigInt::from_i128(-1) << 199; // -2^199
//! assert_eq!(a.clone() + b, BigInt::from_i128(1) << 199);
//! assert_eq!(u128::zero().plus(&7u128), 7u128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod cost;

pub use bigint::BigInt;
pub use cost::{HeapKind, PathCost};
